#!/usr/bin/env python3
"""Fail on dead relative links in the repo's markdown documentation.

Scans every ``.md`` file at the repository root (``README.md``,
``DESIGN.md``, ``EXPERIMENTS.md``, ...) and under ``docs/`` for inline
markdown links/images (``[text](target)``) and reference definitions
(``[label]: target``), resolves each *relative* target against the file
that contains it, and exits non-zero listing every target that does not
exist on disk.

Skipped on purpose: absolute URLs (``http(s)://``, ``mailto:``),
in-page anchors (``#section``), and bare autolinks.  A relative target
may carry an anchor (``file.md#section``); only the file part is
checked.

Usage::

    python tools/check_links.py            # from the repo root
    python tools/check_links.py --root P   # explicit repo root
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

# [text](target) and ![alt](target) — target up to the first unescaped ')'
_INLINE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# [label]: target  reference-style definitions at line start
_REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
_SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def _strip_code(text: str) -> str:
    """Blank out fenced and inline code so example links are ignored."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`\n]*`", "", text)


def _targets(text: str) -> Iterable[str]:
    clean = _strip_code(text)
    for match in _INLINE.finditer(clean):
        yield match.group(1)
    for match in _REFDEF.finditer(clean):
        yield match.group(1)


def check_file(md_file: Path, root: Path) -> List[Tuple[str, str]]:
    """Return (file, target) pairs for every dead relative link."""
    dead = []
    for target in _targets(md_file.read_text(encoding="utf-8")):
        if target.startswith(_SKIP_SCHEMES) or target.startswith("#"):
            continue
        path_part = target.split("#", 1)[0]
        if not path_part:
            continue
        resolved = (md_file.parent / path_part).resolve()
        if not resolved.exists():
            dead.append((str(md_file.relative_to(root)), target))
    return dead


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root (default: the parent of tools/)",
    )
    args = parser.parse_args(argv)
    root = args.root.resolve()

    files = sorted((root / "docs").glob("**/*.md")) + sorted(root.glob("*.md"))
    files = [f for f in files if f.exists()]

    dead: List[Tuple[str, str]] = []
    checked = 0
    for md_file in files:
        found = check_file(md_file, root)
        checked += 1
        dead.extend(found)

    if dead:
        print(f"dead relative links ({len(dead)}):", file=sys.stderr)
        for source, target in dead:
            print(f"  {source}: {target}", file=sys.stderr)
        return 1
    print(f"checked {checked} markdown file(s): all relative links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
