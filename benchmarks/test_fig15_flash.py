"""Figure 15: FLASH I/O checkpoint writes, all three methods (log scale).

Paper shapes: data sieving wins by a wide margin at small client counts
(one buffered request vs thousands of small ones), multiple I/O is worst
by far, list I/O sits between; data sieving's advantage erodes as clients
grow (barrier serialization + more foreign data per window), while
multiple and list stay roughly flat per client count.
"""

import pytest

from repro.config import ClusterConfig
from repro.experiments import SCALED, des_point, figure15
from repro.patterns import flash_io


@pytest.fixture(scope="module")
def fig15_result():
    return figure15(
        scale=SCALED, mode="des", clients=(2, 4, 8), include_text_accounting=True
    )


def test_fig15_regenerate_table(fig15_result, save_result):
    save_result("fig15_scaled_des", fig15_result.markdown())
    assert fig15_result.points


def test_fig15_paper_claims_hold(fig15_result):
    failed = [str(c) for c in fig15_result.checks if not c.passed]
    assert not failed, failed


def test_fig15_ordering_at_small_clients(fig15_result):
    by = {
        (p.series, p.x): p.elapsed for p in fig15_result.points
    }
    for n in (2, 4):
        assert by[("datasieve", n)] < by[("list", n)] < by[("multiple", n)]


def test_fig15_request_accounting(fig15_result):
    """Multiple I/O must issue one request per checkpointed double; list
    I/O one per 64 (memory, file) piece pairs."""
    cfg = SCALED.flash
    per_proc_doubles = cfg.mem_regions_per_proc
    p_multiple = [p for p in fig15_result.points if p.series == "multiple" and p.x == 2][0]
    assert p_multiple.logical_requests == 2 * per_proc_doubles
    p_list = [p for p in fig15_result.points if p.series == "list" and p.x == 2][0]
    assert p_list.logical_requests == 2 * (per_proc_doubles // 64)


def test_fig15_accounting_discrepancy_documented(fig15_result):
    """The paper's text derives 30 list requests/proc; its measured figure
    implies memory-side splitting (15,360/proc at full scale).  Run both:
    the text-accounting variant is faster than even data sieving, which
    contradicts the published figure — the measured-behaviour variant
    (our default) reproduces it.  See EXPERIMENTS.md."""
    by = {(p.series, p.x): p for p in fig15_result.points}
    for n in (2, 4, 8):
        text = by[("list-text", n)]
        measured = by[("list", n)]
        sieve = by[("datasieve", n)]
        assert text.logical_requests < measured.logical_requests
        assert text.elapsed < sieve.elapsed          # contradicts Figure 15
        assert measured.elapsed > sieve.elapsed      # matches Figure 15


def test_fig15_sieve_requests_tiny(fig15_result):
    sieve = [p for p in fig15_result.points if p.series == "datasieve"]
    for p in sieve:
        # RMW: one read + one write request per 32 MB window per proc.
        assert p.logical_requests <= 4 * p.n_clients


@pytest.mark.benchmark(group="fig15")
def test_fig15_bench_multiple(benchmark):
    pattern = flash_io(2, SCALED.flash)
    cfg = ClusterConfig.chiba_city(n_clients=2)
    benchmark.pedantic(
        lambda: des_point(pattern, "multiple", "write", cfg), rounds=1, iterations=1
    )


@pytest.mark.benchmark(group="fig15")
def test_fig15_bench_list(benchmark):
    pattern = flash_io(2, SCALED.flash)
    cfg = ClusterConfig.chiba_city(n_clients=2)
    benchmark.pedantic(
        lambda: des_point(pattern, "list", "write", cfg), rounds=3, iterations=1
    )


@pytest.mark.benchmark(group="fig15")
def test_fig15_bench_datasieve(benchmark):
    pattern = flash_io(2, SCALED.flash)
    cfg = ClusterConfig.chiba_city(n_clients=2)
    benchmark.pedantic(
        lambda: des_point(pattern, "datasieve", "write", cfg), rounds=3, iterations=1
    )
