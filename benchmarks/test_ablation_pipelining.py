"""Ablation: can nonblocking (pipelined) multiple I/O close the gap?

An obvious objection to the paper's multiple-I/O baseline is that a real
application could keep several contiguous requests outstanding.  This
bench sweeps the pipeline depth and shows the objection fails: latency
overlap helps a few x, but every request still pays full server-side
processing, so throughput caps at the servers' request rate — far short of
list I/O, which eliminates most of the requests outright.
"""

import pytest

from repro.config import ClusterConfig
from repro.experiments import SCALED, des_point
from repro.patterns import one_dim_cyclic

DEPTHS = (1, 4, 16, 64)


@pytest.fixture(scope="module")
def pipeline_sweep():
    pattern = one_dim_cyclic(SCALED.artificial_total, 8, 2048)
    cfg = ClusterConfig.chiba_city(n_clients=8)
    out = {}
    for depth in DEPTHS:
        out[depth] = des_point(
            pattern,
            "multiple",
            "read",
            cfg,
            figure="ablation",
            x=depth,
            method_opts={"pipeline_depth": depth},
        )
    out["list"] = des_point(pattern, "list", "read", cfg, figure="ablation", x=0)
    return out


def test_pipelining_table(pipeline_sweep, save_result):
    lines = [
        "## ablation: pipelined multiple I/O (cyclic read, 8 clients, 2048 accesses)\n",
        "| strategy | time (s) |",
        "|---|---|",
    ]
    for depth in DEPTHS:
        lines.append(f"| multiple, depth {depth} | {pipeline_sweep[depth].elapsed:.3f} |")
    lines.append(f"| list I/O | {pipeline_sweep['list'].elapsed:.3f} |")
    save_result("ablation_pipelining", "\n".join(lines) + "\n")


def test_pipelining_helps(pipeline_sweep):
    assert pipeline_sweep[16].elapsed < pipeline_sweep[1].elapsed


def test_pipelining_saturates(pipeline_sweep):
    """Beyond modest depth the servers are the wall: 16 -> 64 gains
    little compared to 1 -> 16."""
    gain_early = pipeline_sweep[1].elapsed / pipeline_sweep[16].elapsed
    gain_late = pipeline_sweep[16].elapsed / pipeline_sweep[64].elapsed
    assert gain_early > 1.5 * gain_late


def test_list_still_wins_at_any_depth(pipeline_sweep):
    best_pipelined = min(pipeline_sweep[d].elapsed for d in DEPTHS)
    assert pipeline_sweep["list"].elapsed < best_pipelined


def test_pipelined_correctness():
    """Deep pipelining must not corrupt data (out-of-order completions)."""
    import numpy as np

    from repro.core import MultipleIO
    from repro.pvfs import Cluster
    from repro.regions import RegionList, build_flat_indices
    from repro.config import StripeParams

    cluster = Cluster.build(
        ClusterConfig(n_clients=1, n_iods=4, stripe=StripeParams(stripe_size=128))
    )
    regions = RegionList.strided(0, 50, 16, 64)
    payload = (np.arange(800) % 251).astype(np.uint8)
    out = np.zeros(800, np.uint8)

    def wl(client):
        f = yield from client.open("/pipe", create=True)
        yield from MultipleIO(pipeline_depth=8).write(
            f, payload, RegionList.single(0, 800), regions
        )
        yield from MultipleIO(pipeline_depth=8).read(
            f, out, RegionList.single(0, 800), regions
        )
        yield from f.close()

    cluster.run_workload(wl, clients=[0])
    np.testing.assert_array_equal(out, payload)


@pytest.mark.benchmark(group="ablation-pipeline")
@pytest.mark.parametrize("depth", [1, 16])
def test_bench_pipelined(benchmark, depth):
    pattern = one_dim_cyclic(SCALED.artificial_total, 8, 512)
    cfg = ClusterConfig.chiba_city(n_clients=8)
    benchmark.pedantic(
        lambda: des_point(
            pattern, "multiple", "read", cfg, method_opts={"pipeline_depth": depth}
        ),
        rounds=2,
        iterations=1,
    )
