"""Figure 11: block-block READ, multiple vs data sieving vs list.

Paper shapes: multiple grows linearly; data sieving is flat and *cheaper
than in the cyclic case* (denser useful data per fetched window); list I/O
rises with fragmentation and turns upward once accesses shrink to
~150 bytes because each block-block client hammers only a fraction of the
I/O servers.
"""

import pytest

from repro.config import ClusterConfig
from repro.experiments import SCALED, des_point, figure9, figure11
from repro.patterns import block_block

ACCESSES = (1024, 2048, 4096)
CLIENTS = (4, 16)


@pytest.fixture(scope="module")
def fig11_result():
    return figure11(scale=SCALED, mode="des", clients=CLIENTS, accesses=ACCESSES)


def test_fig11_regenerate_table(fig11_result, save_result):
    save_result("fig11_scaled_des", fig11_result.markdown())
    assert fig11_result.points


def test_fig11_paper_claims_hold(fig11_result):
    failed = [str(c) for c in fig11_result.checks if not c.passed]
    assert not failed, failed


def test_fig11_sieving_cheaper_than_cyclic(fig11_result):
    """Paper: 'the data sieving I/O times are reduced [vs Figure 9 at equal
    clients] ... because the data sieving I/O accesses less irrelevant
    data using the block-block access pattern.'"""
    cyc = figure9(scale=SCALED, mode="des", clients=(16,), accesses=(2048,))
    sieve_cyc = cyc.points_for("datasieve", n_clients=16)[0].elapsed
    sieve_bb = fig11_result.points_for("datasieve", n_clients=16)[0].elapsed
    assert sieve_bb < sieve_cyc


def test_fig11_clients_use_subset_of_servers(fig11_result):
    """The mechanism behind the upturn: block-block requests touch fewer
    distinct servers per logical request than cyclic ones."""
    bb = fig11_result.points_for("list", n_clients=16)[-1]
    fanout_bb = bb.server_messages / bb.logical_requests
    cyc = figure9(scale=SCALED, mode="des", clients=(16,), accesses=(4096,))
    lc = cyc.points_for("list", n_clients=16)[-1]
    fanout_cyc = lc.server_messages / lc.logical_requests
    assert fanout_bb < fanout_cyc


def test_fig11_upturn_zoom(save_result):
    """The paper's ~150 B/access list-I/O upturn, zoomed in with the DES.

    As accesses shrink below the stripe unit, each request's regions land
    on ever fewer servers: server messages SATURATE while requests keep
    doubling, so per-server work concentrates and the curve turns
    super-linear — exactly the mechanism the paper describes for 9/16
    clients."""
    cfg = ClusterConfig.chiba_city(n_clients=16)
    rows = []
    series = []
    for acc in (1024, 2048, 4096, 8192, 16384):
        pattern = block_block(SCALED.artificial_total, 16, acc)
        size = int(pattern.rank(0).file_regions.lengths[0])
        p = des_point(pattern, "list", "read", cfg, figure="fig11zoom", x=acc)
        series.append(p)
        rows.append(
            f"| {acc} | {size} | {p.elapsed:.3f} | {p.logical_requests} "
            f"| {p.server_messages} |"
        )
    save_result(
        "fig11_upturn_zoom",
        "## fig11 zoom: the ~150 B/access list I/O upturn (16 clients, DES)\n\n"
        "| accesses/client | B/access | list (s) | requests | server msgs |\n"
        "|---|---|---|---|---|\n" + "\n".join(rows) + "\n",
    )
    # slope ratio between successive doublings must increase (the knee)
    t = [p.elapsed for p in series]
    early_growth = t[1] / t[0]
    late_growth = t[4] / t[3]
    assert late_growth > early_growth * 1.2
    # mechanism: messages saturate while requests keep growing
    assert series[4].server_messages == series[2].server_messages
    assert series[4].logical_requests == 4 * series[2].logical_requests


@pytest.mark.benchmark(group="fig11")
def test_fig11_bench_multiple(benchmark):
    pattern = block_block(SCALED.artificial_total, 4, 1024)
    cfg = ClusterConfig.chiba_city(n_clients=4)
    benchmark.pedantic(
        lambda: des_point(pattern, "multiple", "read", cfg), rounds=2, iterations=1
    )


@pytest.mark.benchmark(group="fig11")
def test_fig11_bench_list(benchmark):
    pattern = block_block(SCALED.artificial_total, 4, 1024)
    cfg = ClusterConfig.chiba_city(n_clients=4)
    benchmark.pedantic(
        lambda: des_point(pattern, "list", "read", cfg), rounds=3, iterations=1
    )
