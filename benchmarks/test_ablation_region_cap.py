"""Ablation: the 64-regions-per-request trailing-data cap.

The paper derives 64 from the 1500-byte Ethernet MTU ("chosen to allow the
I/O request and trailing data to travel through the network in a single
Ethernet packet").  This bench sweeps the cap and shows the design point
is near-optimal on this network: smaller caps waste requests, much larger
caps buy little once per-request overhead is amortized (and the request no
longer fits one frame).
"""

import pytest

from repro.config import ClusterConfig, NetworkConfig
from repro.experiments import SCALED, model_point
from repro.patterns import one_dim_cyclic
from repro.pvfs.protocol import request_wire_bytes

CAPS = (8, 16, 32, 64, 128, 256, 1024)


@pytest.fixture(scope="module")
def cap_sweep():
    pattern = one_dim_cyclic(SCALED.artificial_total, 8, 8192)
    out = {}
    for cap in CAPS:
        cfg = ClusterConfig.chiba_city(n_clients=8, list_io_max_regions=cap)
        out[cap] = model_point(pattern, "list", "write", cfg, figure="ablation", x=cap)
    return out


def test_region_cap_table(cap_sweep, save_result):
    lines = [
        "## ablation: list I/O trailing-data region cap (cyclic write, 8 clients)\n",
        "| cap | time (s) | logical requests | fits one frame |",
        "|---|---|---|---|",
    ]
    net = NetworkConfig()
    for cap, p in cap_sweep.items():
        fits = net.frames_for(request_wire_bytes(cap)) == 1
        lines.append(
            f"| {cap} | {p.elapsed:.2f} | {p.logical_requests} | {'yes' if fits else 'no'} |"
        )
    save_result("ablation_region_cap", "\n".join(lines) + "\n")


def test_cap_64_is_last_single_frame_point():
    net = NetworkConfig()
    assert net.frames_for(request_wire_bytes(64)) == 1
    assert net.frames_for(request_wire_bytes(128)) > 1


def test_small_caps_hurt(cap_sweep):
    assert cap_sweep[8].elapsed > 2 * cap_sweep[64].elapsed


def test_write_time_tracks_request_count(cap_sweep):
    """Writes are per-request-turnaround bound, so time scales ~inversely
    with the cap — the paper's 64 is a conservative *network* design point
    ('a conservative limit'), not a write-throughput optimum.  This is the
    quantified cost of keeping requests single-frame."""
    t8, t64, t256 = (cap_sweep[c].elapsed for c in (8, 64, 256))
    assert t8 / t64 == pytest.approx(8192 / 1024, rel=0.4)
    assert t64 / t256 > 2.0  # still improving past the frame boundary


def test_read_benefit_saturates_at_transfer_floor(cap_sweep):
    """On the READ path there is no turnaround stall: raising the cap
    128x (8 -> 1024, i.e. 128x fewer requests) buys under 4x because the
    time floors at data transfer + per-region service — whereas the same
    sweep on writes (cap_sweep) is near-inversely proportional."""
    pattern = one_dim_cyclic(SCALED.artificial_total, 8, 8192)
    t = {}
    for cap in (8, 1024):
        cfg = ClusterConfig.chiba_city(n_clients=8, list_io_max_regions=cap)
        t[cap] = model_point(pattern, "list", "read", cfg).elapsed
    read_gain = t[8] / t[1024]
    write_gain = cap_sweep[8].elapsed / cap_sweep[1024].elapsed
    assert read_gain < 5.0
    assert write_gain > 4 * read_gain


@pytest.mark.benchmark(group="ablation-cap")
@pytest.mark.parametrize("cap", [16, 64, 256])
def test_bench_cap(benchmark, cap):
    pattern = one_dim_cyclic(SCALED.artificial_total, 8, 2048)
    cfg = ClusterConfig.chiba_city(n_clients=8, list_io_max_regions=cap)
    benchmark.pedantic(
        lambda: model_point(pattern, "list", "write", cfg), rounds=3, iterations=1
    )
