"""Ablations: stripe size and data-sieving buffer size.

The paper fixes stripe size at 16,384 bytes and the sieve buffer at 32 MB
without sweeping either; these benches fill that gap.
"""

import pytest

from repro.config import ClusterConfig, StripeParams
from repro.experiments import SCALED, des_point
from repro.patterns import one_dim_cyclic
from repro.units import KiB, MiB

STRIPES = (4 * KiB, 16 * KiB, 64 * KiB, 256 * KiB)
SIEVE_BUFFERS = (1 * MiB, 4 * MiB, 16 * MiB, 32 * MiB)


@pytest.fixture(scope="module")
def stripe_sweep():
    pattern = one_dim_cyclic(SCALED.artificial_total, 8, 2048)
    out = {}
    for s in STRIPES:
        cfg = ClusterConfig.chiba_city(n_clients=8, stripe=StripeParams(stripe_size=s))
        out[s] = {
            m: des_point(pattern, m, "read", cfg, figure="ablation", x=s)
            for m in ("multiple", "list")
        }
    return out


def test_stripe_table(stripe_sweep, save_result):
    lines = [
        "## ablation: stripe size (cyclic read, 8 clients, 2048 accesses)\n",
        "| stripe | multiple (s) | list (s) | list fan-out (msgs/req) |",
        "|---|---|---|---|",
    ]
    for s, methods in stripe_sweep.items():
        l = methods["list"]
        fanout = l.server_messages / max(l.logical_requests, 1)
        lines.append(
            f"| {s // KiB} KiB | {methods['multiple'].elapsed:.2f} | "
            f"{l.elapsed:.2f} | {fanout:.1f} |"
        )
    save_result("ablation_stripe", "\n".join(lines) + "\n")


def test_larger_stripes_reduce_list_fanout(stripe_sweep):
    """Bigger stripe units concentrate a request's regions on fewer
    servers, shrinking per-request fan-out."""
    fan = {
        s: v["list"].server_messages / max(v["list"].logical_requests, 1)
        for s, v in stripe_sweep.items()
    }
    assert fan[256 * KiB] <= fan[4 * KiB]


def test_list_beats_multiple_at_every_stripe(stripe_sweep):
    for s, methods in stripe_sweep.items():
        assert methods["list"].elapsed < methods["multiple"].elapsed


@pytest.fixture(scope="module")
def sieve_sweep():
    pattern = one_dim_cyclic(SCALED.artificial_total, 8, 2048)
    cfg = ClusterConfig.chiba_city(n_clients=8)
    return {
        b: des_point(
            pattern,
            "datasieve",
            "read",
            cfg,
            figure="ablation",
            x=b,
            method_opts={"buffer_size": b},
        )
        for b in SIEVE_BUFFERS
    }


def test_sieve_buffer_table(sieve_sweep, save_result):
    lines = [
        "## ablation: data sieving buffer size (cyclic read, 8 clients)\n",
        "| buffer | time (s) | logical requests |",
        "|---|---|---|",
    ]
    for b, p in sieve_sweep.items():
        lines.append(f"| {b // MiB} MiB | {p.elapsed:.2f} | {p.logical_requests} |")
    save_result("ablation_sieve_buffer", "\n".join(lines) + "\n")


def test_bigger_buffers_mean_fewer_requests(sieve_sweep):
    reqs = [sieve_sweep[b].logical_requests for b in SIEVE_BUFFERS]
    assert reqs == sorted(reqs, reverse=True)
    assert reqs[0] > reqs[-1]


def test_sieve_buffer_is_second_order(sieve_sweep):
    """Buffer size is a second-order effect: the same bytes move either
    way, so 1 MiB..32 MiB stays within ~2x.  Smaller buffers are actually
    mildly FASTER here — more windows means window k+1's server-side disk
    work overlaps window k's network transfer (pipelining the simulator
    captures and a single monolithic window cannot)."""
    t1 = sieve_sweep[1 * MiB].elapsed
    t32 = sieve_sweep[32 * MiB].elapsed
    assert t1 <= t32 <= 2.5 * t1


@pytest.mark.benchmark(group="ablation-stripe")
def test_bench_stripe_16k(benchmark):
    pattern = one_dim_cyclic(SCALED.artificial_total, 8, 1024)
    cfg = ClusterConfig.chiba_city(n_clients=8)
    benchmark.pedantic(
        lambda: des_point(pattern, "list", "read", cfg), rounds=3, iterations=1
    )
