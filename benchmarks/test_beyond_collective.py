"""Beyond the paper: two-phase collective I/O over list I/O.

The paper's closing discussion points at MPI-style request descriptions;
historically, the next step (ROMIO on PVFS) was *collective* I/O, where
ranks exchange data over the compute network so each aggregator issues one
large, contiguous file request.  This bench runs the FLASH checkpoint
through the repository's MPI-IO layer and compares:

* independent writes through the file view (list I/O underneath),
* two-phase collective writes (``write_at_all``).

On the interleaved FLASH file layout the collective collapses each rank's
thousands of pieces into one streaming domain write per aggregator and
should beat independent list I/O handily — and even challenge data
sieving, without sieving's serialization.
"""

import pytest

from repro.config import ClusterConfig
from repro.datatypes import BYTE, Contiguous, Resized
from repro.experiments import SCALED, des_point
from repro.mpi import Communicator
from repro.mpiio import open_one
from repro.patterns import flash_io
from repro.pvfs import Cluster


def run_flash_mpiio(n_ranks: int, collective: bool, cb_nodes=None):
    """FLASH-shaped interleaved checkpoint via MPI-IO views."""
    mesh = SCALED.flash
    chunk = mesh.chunk_bytes
    per_rank_chunks = mesh.n_blocks * mesh.n_vars
    cluster = Cluster.build(
        ClusterConfig.chiba_city(n_clients=n_ranks), move_bytes=False
    )
    comm = Communicator(cluster.sim, n_ranks)
    shared = {}

    def wl(client):
        r = client.index
        mf = yield from open_one(comm, client, "/flash", shared, cb_nodes=cb_nodes)
        mf.set_view(
            disp=r * chunk,
            filetype=Resized(Contiguous(BYTE, chunk), chunk * n_ranks),
        )
        nbytes = per_rank_chunks * chunk
        if collective:
            yield from mf.write_at_all(0, None, nbytes=nbytes)
        else:
            yield from mf.write_at(0, None, nbytes=nbytes)
        yield from mf.close()

    res = cluster.run_workload(wl)
    return res


@pytest.fixture(scope="module")
def flash_mpiio():
    return {
        "independent": run_flash_mpiio(4, collective=False),
        "collective": run_flash_mpiio(4, collective=True),
    }


def test_beyond_collective_table(flash_mpiio, save_result):
    lines = [
        "## beyond the paper: two-phase collective vs independent list I/O "
        "(FLASH-shaped writes, 4 ranks)\n",
        "| strategy | time (s) | logical requests |",
        "|---|---|---|",
    ]
    for name, res in flash_mpiio.items():
        lines.append(
            f"| {name} | {res.elapsed:.3f} | {res.total_logical_requests} |"
        )
    # context: the paper's three methods on the same pattern
    pattern = flash_io(4, SCALED.flash)
    cfg = ClusterConfig.chiba_city(n_clients=4)
    for m in ("datasieve", "list"):
        p = des_point(pattern, m, "write", cfg)
        lines.append(f"| paper: {m} | {p.elapsed:.3f} | {p.logical_requests} |")
    save_result("beyond_collective", "\n".join(lines) + "\n")


def test_fig18_driver_regenerates(save_result):
    """The formalized extension figure: table + checks + ASCII chart."""
    from repro.experiments.collective import figure18
    from repro.experiments.plot import render_figure

    res = figure18(scale=SCALED, clients=(2, 4))
    save_result("fig18_extension_des", res.markdown() + "\n```\n" + render_figure(res) + "```\n")
    failed = [str(c) for c in res.checks if not c.passed]
    assert not failed, failed


def test_collective_beats_independent(flash_mpiio):
    ind = flash_mpiio["independent"]
    coll = flash_mpiio["collective"]
    assert coll.elapsed < 0.7 * ind.elapsed
    assert coll.total_logical_requests < ind.total_logical_requests


def test_collective_competitive_with_sieving(flash_mpiio):
    """Two-phase reaches sieving-like request counts WITHOUT barrier
    serialization, so it must land within an order of magnitude of
    sieving (and scale better with ranks)."""
    pattern = flash_io(4, SCALED.flash)
    cfg = ClusterConfig.chiba_city(n_clients=4)
    sieve = des_point(pattern, "datasieve", "write", cfg)
    coll = flash_mpiio["collective"]
    assert coll.elapsed < 10 * sieve.elapsed


def test_cb_nodes_sweep(save_result):
    """ROMIO's cb_nodes hint: fewer aggregators mean fewer, larger file
    requests but less parallelism; the sweep shows the trade-off."""
    rows = []
    times = {}
    for cb in (1, 2, 4, 8):
        res = run_flash_mpiio(8, collective=True, cb_nodes=cb)
        times[cb] = res.elapsed
        rows.append(f"| {cb} | {res.elapsed:.3f} | {res.total_logical_requests} |")
    save_result(
        "ablation_cb_nodes",
        "## ablation: collective aggregator count (FLASH-shaped, 8 ranks)\n\n"
        "| cb_nodes | time (s) | file requests |\n|---|---|---|\n"
        + "\n".join(rows)
        + "\n",
    )
    # a single aggregator funnels everything through one NIC: slower
    assert times[1] > times[8]


def test_collective_scales_with_ranks():
    t2 = run_flash_mpiio(2, collective=True).elapsed
    t8 = run_flash_mpiio(8, collective=True).elapsed
    # aggregate volume grows 4x; parallel aggregators keep growth sublinear
    assert t8 < 4 * t2


@pytest.mark.benchmark(group="beyond")
@pytest.mark.parametrize("mode", ["independent", "collective"])
def test_bench_mpiio(benchmark, mode):
    benchmark.pedantic(
        lambda: run_flash_mpiio(2, collective=(mode == "collective")),
        rounds=3,
        iterations=1,
    )
