"""Figure 9: one-dimensional cyclic READ, multiple vs data sieving vs list.

Paper shape: multiple I/O and list I/O grow linearly with the number of
accesses (list far shallower); data sieving is flat in accesses and
roughly doubles when the client count doubles.
"""

import pytest

from repro.config import ClusterConfig
from repro.experiments import SCALED, figure9, des_point
from repro.patterns import one_dim_cyclic

ACCESSES = (512, 1024, 2048)
CLIENTS = (8, 16)


@pytest.fixture(scope="module")
def fig9_result():
    return figure9(scale=SCALED, mode="des", clients=CLIENTS, accesses=ACCESSES)


def test_fig09_regenerate_table(fig9_result, save_result):
    save_result("fig09_scaled_des", fig9_result.markdown())
    assert fig9_result.points


def test_fig09_paper_claims_hold(fig9_result):
    failed = [str(c) for c in fig9_result.checks if not c.passed]
    assert not failed, failed


def test_fig09_list_beats_multiple_everywhere(fig9_result):
    for n in CLIENTS:
        for acc in ACCESSES:
            multiple = fig9_result.points_for("multiple", n_clients=n)
            listio = fig9_result.points_for("list", n_clients=n)
            m = {p.x: p.elapsed for p in multiple}
            l = {p.x: p.elapsed for p in listio}
            assert l[acc] < m[acc]


def test_fig09_request_count_ratio(fig9_result):
    """List I/O issues ~64x fewer logical requests than multiple I/O."""
    for n in CLIENTS:
        m = fig9_result.points_for("multiple", n_clients=n)[-1]
        l = fig9_result.points_for("list", n_clients=n)[-1]
        assert m.logical_requests == pytest.approx(64 * l.logical_requests, rel=0.05)


@pytest.mark.benchmark(group="fig09")
def test_fig09_bench_multiple(benchmark):
    pattern = one_dim_cyclic(SCALED.artificial_total, 8, 512)
    cfg = ClusterConfig.chiba_city(n_clients=8)
    benchmark.pedantic(
        lambda: des_point(pattern, "multiple", "read", cfg), rounds=2, iterations=1
    )


@pytest.mark.benchmark(group="fig09")
def test_fig09_bench_list(benchmark):
    pattern = one_dim_cyclic(SCALED.artificial_total, 8, 512)
    cfg = ClusterConfig.chiba_city(n_clients=8)
    benchmark.pedantic(
        lambda: des_point(pattern, "list", "read", cfg), rounds=3, iterations=1
    )


@pytest.mark.benchmark(group="fig09")
def test_fig09_bench_datasieve(benchmark):
    pattern = one_dim_cyclic(SCALED.artificial_total, 8, 512)
    cfg = ClusterConfig.chiba_city(n_clients=8)
    benchmark.pedantic(
        lambda: des_point(pattern, "datasieve", "read", cfg), rounds=3, iterations=1
    )
