"""Ablations for the paper's Section 5 future-work extensions.

* **Hybrid I/O** — "if two noncontiguous regions are close to each other,
  a data sieving operation may take place for just those particular
  regions": sweep the gap threshold across access densities and show the
  hybrid tracks the better of the two pure methods.
* **Datatype (vector) I/O** — "support for I/O requests that use an
  approach similar to MPI datatypes ... would eliminate the linear
  relationship between the number of contiguous regions and the number of
  I/O requests": show the request count goes constant and the regular-
  pattern cost drops below list I/O.
"""

import pytest

from repro.config import ClusterConfig
from repro.experiments import SCALED, des_point
from repro.patterns import one_dim_cyclic
from repro.units import KiB

DENSITIES = {
    # accesses per client -> fragment size shrinks as accesses grow
    "coarse": 512,
    "medium": 2048,
    "fine": 8192,
}


@pytest.fixture(scope="module")
def hybrid_sweep():
    """Read path, modest gap threshold: the hybrid should track list I/O
    (coalescing only genuinely-close neighbours, never regressing to a
    whole-extent sieve the way a too-aggressive threshold would)."""
    cfg = ClusterConfig.chiba_city(n_clients=8)
    out = {}
    for label, acc in DENSITIES.items():
        pattern = one_dim_cyclic(SCALED.artificial_total, 8, acc)
        out[label] = {
            "list": des_point(pattern, "list", "read", cfg, x=acc),
            "datasieve": des_point(pattern, "datasieve", "read", cfg, x=acc),
            "hybrid": des_point(
                pattern,
                "hybrid",
                "read",
                cfg,
                x=acc,
                method_opts={"gap_threshold": 256},
            ),
        }
    return out


def test_hybrid_table(hybrid_sweep, save_result):
    lines = [
        "## ablation: hybrid list+sieving I/O (cyclic read, 8 clients, threshold 256 B)\n",
        "| density | list (s) | datasieve (s) | hybrid (s) |",
        "|---|---|---|---|",
    ]
    for label, methods in hybrid_sweep.items():
        lines.append(
            f"| {label} | {methods['list'].elapsed:.2f} | "
            f"{methods['datasieve'].elapsed:.2f} | {methods['hybrid'].elapsed:.2f} |"
        )
    save_result("ablation_hybrid", "\n".join(lines) + "\n")


def test_hybrid_never_far_from_best(hybrid_sweep):
    """The hybrid must track the better pure method within 1.5x at every
    density (the paper's hoped-for 'applicable over a larger range')."""
    for label, methods in hybrid_sweep.items():
        best = min(methods["list"].elapsed, methods["datasieve"].elapsed)
        assert methods["hybrid"].elapsed <= 1.5 * best, label


def test_hybrid_beats_list_on_dense_small_writes(save_result):
    """The hybrid's win condition (and the paper's motivating case for it):
    many tiny regions with small gaps, on the WRITE path, where each list
    request pays the small-write turnaround but the hybrid coalesces
    neighbourhoods into a few big read-modify-write extents."""
    from repro.regions import RegionList

    cfg = ClusterConfig.chiba_city(n_clients=1)
    n, frag, stride = 16384, 64, 72  # 64 B fragments, 8 B gaps
    file_regions = RegionList.strided(0, n, frag, stride)
    pattern_rows = []
    results = {}
    for name, opts in (("list", None), ("hybrid", {"gap_threshold": 1 * KiB})):
        from repro.patterns.base import Pattern, RankAccess

        pattern = Pattern(
            name="dense-writes",
            accesses=(
                RankAccess(0, RegionList.single(0, n * frag), file_regions),
            ),
            file_size=file_regions.extent[1],
        )
        results[name] = des_point(
            pattern, name, "write", cfg, x=0, method_opts=opts
        )
        pattern_rows.append(f"| {name} | {results[name].elapsed:.2f} | "
                            f"{results[name].logical_requests} |")
    save_result(
        "ablation_hybrid_writes",
        "## hybrid vs list on dense small writes (1 client)\n\n"
        "| method | time (s) | requests |\n|---|---|---|\n"
        + "\n".join(pattern_rows) + "\n",
    )
    assert results["hybrid"].elapsed < 0.5 * results["list"].elapsed
    assert results["hybrid"].logical_requests < results["list"].logical_requests


@pytest.fixture(scope="module")
def vector_sweep():
    cfg = ClusterConfig.chiba_city(n_clients=8)
    out = {}
    for acc in (512, 2048, 8192):
        pattern = one_dim_cyclic(SCALED.artificial_total, 8, acc)
        out[acc] = {
            "list": des_point(pattern, "list", "read", cfg, x=acc),
            "vector": des_point(pattern, "vector", "read", cfg, x=acc),
        }
    return out


def test_vector_table(vector_sweep, save_result):
    lines = [
        "## ablation: datatype (vector) requests vs list I/O (cyclic read)\n",
        "| accesses/client | list reqs | vector reqs | list (s) | vector (s) |",
        "|---|---|---|---|---|",
    ]
    for acc, methods in vector_sweep.items():
        lines.append(
            f"| {acc} | {methods['list'].logical_requests} | "
            f"{methods['vector'].logical_requests} | "
            f"{methods['list'].elapsed:.2f} | {methods['vector'].elapsed:.2f} |"
        )
    save_result("ablation_datatype", "\n".join(lines) + "\n")


def test_vector_request_count_constant(vector_sweep):
    """The headline of the extension: request count independent of the
    number of contiguous regions."""
    counts = {acc: m["vector"].logical_requests for acc, m in vector_sweep.items()}
    assert len(set(counts.values())) == 1


def test_vector_wins_at_high_fragmentation(vector_sweep):
    """At coarse fragmentation both methods are request-cheap and the
    single huge vector response loses pipelining, so the payoff only
    appears once list I/O needs many requests."""
    fine = vector_sweep[8192]
    assert fine["vector"].elapsed < fine["list"].elapsed


def test_vector_advantage_grows_with_fragmentation(vector_sweep):
    ratios = [
        vector_sweep[acc]["list"].elapsed / vector_sweep[acc]["vector"].elapsed
        for acc in (512, 2048, 8192)
    ]
    assert ratios[-1] > ratios[0]


@pytest.mark.benchmark(group="ablation-ext")
@pytest.mark.parametrize("method", ["list", "hybrid", "vector"])
def test_bench_extensions(benchmark, method):
    pattern = one_dim_cyclic(SCALED.artificial_total, 8, 2048)
    cfg = ClusterConfig.chiba_city(n_clients=8)
    benchmark.pedantic(
        lambda: des_point(pattern, method, "read", cfg), rounds=3, iterations=1
    )
