"""Figure 12: block-block WRITE, multiple vs list (log scale).

Paper shape: "the block-block write results perform similar to the
one-dimensional cyclic write results ... as the number of accesses
increases, multiple I/O and list I/O run times increase while maintaining
the two orders of magnitude difference."
"""

import pytest

from repro.config import ClusterConfig
from repro.experiments import SCALED, des_point, figure10, figure12
from repro.patterns import block_block

ACCESSES = (1024, 2048, 4096)
CLIENTS = (4, 16)


@pytest.fixture(scope="module")
def fig12_result():
    return figure12(scale=SCALED, mode="des", clients=CLIENTS, accesses=ACCESSES)


def test_fig12_regenerate_table(fig12_result, save_result):
    save_result("fig12_scaled_des", fig12_result.markdown())
    assert fig12_result.points


def test_fig12_paper_claims_hold(fig12_result):
    failed = [str(c) for c in fig12_result.checks if not c.passed]
    assert not failed, failed


def test_fig12_similar_to_cyclic_writes(fig12_result):
    """The paper notes the block-block write trend follows the cyclic one:
    the multiple/list gap should be within ~3x across the two patterns at
    matched parameters."""
    cyc = figure10(scale=SCALED, mode="des", clients=(16,), accesses=(2048,))
    gap_cyc = (
        cyc.points_for("multiple", n_clients=16)[0].elapsed
        / cyc.points_for("list", n_clients=16)[0].elapsed
    )
    m = {p.x: p.elapsed for p in fig12_result.points_for("multiple", n_clients=16)}
    l = {p.x: p.elapsed for p in fig12_result.points_for("list", n_clients=16)}
    gap_bb = m[2048] / l[2048]
    assert gap_bb / gap_cyc < 3 and gap_cyc / gap_bb < 3


@pytest.mark.benchmark(group="fig12")
def test_fig12_bench_multiple_write(benchmark):
    pattern = block_block(SCALED.artificial_total, 4, 1024)
    cfg = ClusterConfig.chiba_city(n_clients=4)
    benchmark.pedantic(
        lambda: des_point(pattern, "multiple", "write", cfg), rounds=2, iterations=1
    )


@pytest.mark.benchmark(group="fig12")
def test_fig12_bench_list_write(benchmark):
    pattern = block_block(SCALED.artificial_total, 4, 1024)
    cfg = ClusterConfig.chiba_city(n_clients=4)
    benchmark.pedantic(
        lambda: des_point(pattern, "list", "write", cfg), rounds=3, iterations=1
    )
