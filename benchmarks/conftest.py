"""Shared fixtures for the benchmark suite.

Each ``test_figNN_*`` module regenerates one figure of the paper:

* the figure's data table (simulated seconds per method/sweep point) is
  printed AND written to ``benchmarks/results/figNN_<scale>.md``;
* the paper's qualitative claims are asserted via the driver's checks;
* pytest-benchmark times the simulator itself on a representative point
  (wall-clock cost of reproducing the experiment, not simulated time).

Scaled DES runs keep the paper's topology (8 iods, 16 KiB stripes) at
1/64 volume; EXPERIMENTS.md holds the paper-scale model tables.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_result(results_dir):
    """Write one figure's markdown to the results directory and echo it."""

    def _save(name: str, markdown: str) -> None:
        path = results_dir / f"{name}.md"
        path.write_text(markdown)
        print(f"\n{markdown}\n[saved to {path}]")

    return _save
