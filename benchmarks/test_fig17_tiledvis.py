"""Figure 17: tiled visualization reads with open/read/close breakdown.

This figure runs at the paper's REAL scale (the frame file is ~10.2 MB):
6 clients, 3x2 displays of 1024x768 at 24-bit colour with 270/128-pixel
overlaps.  Paper shape: list I/O more than twice as fast as either other
method; 768 contiguous requests per client for multiple I/O vs 12 list
requests.
"""

import pytest

from repro.config import ClusterConfig
from repro.experiments import SCALED, des_point, figure17
from repro.patterns import tiled_visualization


@pytest.fixture(scope="module")
def fig17_result():
    return figure17(scale=SCALED, mode="des")


def _phase_markdown(result) -> str:
    lines = [
        "### open / read / close breakdown (seconds)\n",
        "| method | open | read | close | total |",
        "|---|---|---|---|---|",
    ]
    for p in result.points:
        lines.append(
            f"| {p.series} | {p.phases['open']:.4f} | {p.phases['transfer']:.4f} "
            f"| {p.phases['close']:.4f} | {p.elapsed:.4f} |"
        )
    return "\n".join(lines) + "\n"


def test_fig17_regenerate_table(fig17_result, save_result):
    save_result(
        "fig17_paper_scale_des", fig17_result.markdown() + "\n" + _phase_markdown(fig17_result)
    )
    assert fig17_result.points


def test_fig17_paper_claims_hold(fig17_result):
    failed = [str(c) for c in fig17_result.checks if not c.passed]
    assert not failed, failed


def test_fig17_phase_structure(fig17_result):
    """Open and close are metadata round-trips — tiny next to the read."""
    for p in fig17_result.points:
        assert p.phases["open"] < 0.1 * p.phases["transfer"]
        assert p.phases["close"] < 0.1 * p.phases["transfer"]


def test_fig17_sieving_fetches_overlap_waste(fig17_result):
    """Each sieving client fetches whole frame rows but uses ~1/3 of them
    (1 / tiles_x, per the paper's analysis in Section 4.4.1)."""
    sieve = next(p for p in fig17_result.points if p.series == "datasieve")
    listio = next(p for p in fig17_result.points if p.series == "list")
    assert sieve.moved_bytes > 2 * listio.moved_bytes


@pytest.mark.benchmark(group="fig17")
@pytest.mark.parametrize("method", ["multiple", "datasieve", "list"])
def test_fig17_bench(benchmark, method):
    pattern = tiled_visualization(SCALED.tiled)
    cfg = ClusterConfig.chiba_city(n_clients=pattern.n_ranks)
    benchmark.pedantic(
        lambda: des_point(pattern, method, "read", cfg), rounds=3, iterations=1
    )
