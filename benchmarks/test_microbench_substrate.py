"""Microbenchmarks of the substrates: event kernel, region algebra,
striping, cache.

These are wall-clock benchmarks of the *simulator implementation* (not
simulated time) — they guard the vectorized hot paths against regressions,
since a slow region algebra makes paper-scale sweeps infeasible.
"""

import numpy as np
import pytest

from repro.config import CacheConfig, StripeParams
from repro.pvfs.striping import map_regions
from repro.regions import RegionList, build_flat_indices, pair_pieces
from repro.simulate import Resource, Simulator
from repro.storage import BlockCache


@pytest.mark.benchmark(group="micro-kernel")
def test_bench_event_throughput(benchmark):
    """Chained timeout events (the kernel's basic step rate)."""

    def run():
        sim = Simulator()

        def ticker(sim):
            for _ in range(10_000):
                yield sim.timeout(1.0)

        sim.process(ticker(sim))
        sim.run()
        return sim.now

    assert benchmark(run) == 10_000


@pytest.mark.benchmark(group="micro-kernel")
def test_bench_resource_contention(benchmark):
    """1000 jobs through a capacity-2 resource."""

    def run():
        sim = Simulator()
        res = Resource(sim, capacity=2)

        def job(sim):
            with res.request() as req:
                yield req
                yield sim.timeout(1.0)

        for _ in range(1000):
            sim.process(job(sim))
        sim.run()
        return res.total_requests

    assert benchmark(run) == 1000


@pytest.mark.benchmark(group="micro-regions")
def test_bench_coalesce_100k(benchmark):
    rng = np.random.default_rng(1)
    r = RegionList(np.sort(rng.integers(0, 10**9, 100_000)), rng.integers(1, 100, 100_000))
    out = benchmark(r.coalesced)
    assert out.count <= r.count


@pytest.mark.benchmark(group="micro-regions")
def test_bench_split_at_boundaries_100k(benchmark):
    r = RegionList.strided(0, 100_000, 100, 150)
    out = benchmark(lambda: r.split_at_boundaries(64))
    assert out.total_bytes == r.total_bytes


@pytest.mark.benchmark(group="micro-regions")
def test_bench_pair_pieces_100k(benchmark):
    a = RegionList.strided(0, 100_000, 64, 100)
    b = RegionList.strided(0, 50_000, 128, 200)
    ao, bo, ln = benchmark(lambda: pair_pieces(a, b))
    assert int(ln.sum()) == a.total_bytes


@pytest.mark.benchmark(group="micro-regions")
def test_bench_flat_indices_1m_bytes(benchmark):
    r = RegionList.strided(0, 10_000, 100, 173)
    idx = benchmark(lambda: build_flat_indices(r.offsets, r.lengths))
    assert idx.size == r.total_bytes


@pytest.mark.benchmark(group="micro-striping")
def test_bench_map_regions_100k(benchmark):
    r = RegionList.strided(0, 100_000, 149, 1200)
    sp = StripeParams(stripe_size=16384)
    smap = benchmark(lambda: map_regions(r, sp, 8))
    assert smap.total_bytes == r.total_bytes


@pytest.mark.benchmark(group="micro-cache")
def test_bench_cache_churn(benchmark):
    cfg = CacheConfig(capacity=1024 * 4096, block_size=4096)
    blocks = np.arange(4096, dtype=np.int64)

    def run():
        cache = BlockCache(cfg)
        for start in range(0, 4096, 64):
            cache.insert("f", blocks[start : start + 64], dirty=True)
            cache.lookup("f", blocks[start : start + 64])
        return len(cache)

    assert benchmark(run) == 1024
