"""Figure 10: one-dimensional cyclic WRITE, multiple vs list (log scale).

Paper shape: both grow with the number of accesses while keeping a
near-two-orders-of-magnitude gap (the paper skips data sieving writes in
the artificial benchmark because of the read-modify-write serialization
requirement; so do we).
"""

import pytest

from repro.config import ClusterConfig
from repro.experiments import SCALED, des_point, figure10
from repro.patterns import one_dim_cyclic

ACCESSES = (512, 1024, 2048)
CLIENTS = (8, 16)


@pytest.fixture(scope="module")
def fig10_result():
    return figure10(scale=SCALED, mode="des", clients=CLIENTS, accesses=ACCESSES)


def test_fig10_regenerate_table(fig10_result, save_result):
    save_result("fig10_scaled_des", fig10_result.markdown())
    assert fig10_result.points


def test_fig10_paper_claims_hold(fig10_result):
    failed = [str(c) for c in fig10_result.checks if not c.passed]
    assert not failed, failed


def test_fig10_gap_persists_across_sweep(fig10_result):
    """The two-orders gap holds at every access count, not just the max."""
    for n in CLIENTS:
        m = {p.x: p.elapsed for p in fig10_result.points_for("multiple", n_clients=n)}
        l = {p.x: p.elapsed for p in fig10_result.points_for("list", n_clients=n)}
        for acc in ACCESSES:
            assert m[acc] / l[acc] > 20, f"{n} clients @{acc}: {m[acc]/l[acc]:.1f}x"


def test_fig10_writes_slower_than_reads(fig10_result):
    """Cross-figure sanity: the write path carries the small-write
    turnaround penalty, so multiple I/O writes dwarf its reads."""
    pattern = one_dim_cyclic(SCALED.artificial_total, 8, ACCESSES[0])
    cfg = ClusterConfig.chiba_city(n_clients=8)
    read = des_point(pattern, "multiple", "read", cfg).elapsed
    write = next(
        p.elapsed
        for p in fig10_result.points_for("multiple", n_clients=8)
        if p.x == ACCESSES[0]
    )
    assert write > 5 * read


@pytest.mark.benchmark(group="fig10")
def test_fig10_bench_multiple_write(benchmark):
    pattern = one_dim_cyclic(SCALED.artificial_total, 8, 512)
    cfg = ClusterConfig.chiba_city(n_clients=8)
    benchmark.pedantic(
        lambda: des_point(pattern, "multiple", "write", cfg), rounds=2, iterations=1
    )


@pytest.mark.benchmark(group="fig10")
def test_fig10_bench_list_write(benchmark):
    pattern = one_dim_cyclic(SCALED.artificial_total, 8, 512)
    cfg = ClusterConfig.chiba_city(n_clients=8)
    benchmark.pedantic(
        lambda: des_point(pattern, "list", "write", cfg), rounds=3, iterations=1
    )
