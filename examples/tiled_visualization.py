#!/usr/bin/env python
"""Tiled visualization reads with open/read/close breakdown (Figure 17).

Six simulated display nodes each read their tile of a ~10.2 MB frame file
(3x2 displays, 1024x768 at 24-bit colour, 270/128-pixel overlaps — the
paper's exact geometry).  Each tile is 768 noncontiguous row runs, so list
I/O needs only ceil(768/64) = 12 requests where multiple I/O needs 768.

Run:  python examples/tiled_visualization.py
"""

from repro.config import ClusterConfig
from repro.core import DataSievingIO, ListIO, MultipleIO
from repro.patterns import TiledConfig, tiled_visualization
from repro.pvfs import Cluster
from repro.units import fmt_bytes, fmt_time


def run_method(pattern, method):
    cfg = ClusterConfig.chiba_city(n_clients=pattern.n_ranks)
    cluster = Cluster.build(cfg, move_bytes=False)
    phases = {"open": [], "read": [], "close": []}

    def workload(client):
        access = pattern.rank(client.index)
        sim = client.sim
        t0 = sim.now
        f = yield from client.open("/frame.rgb", create=True)
        t1 = sim.now
        yield from method.read(f, None, access.mem_regions, access.file_regions)
        t2 = sim.now
        yield from f.close()
        t3 = sim.now
        phases["open"].append(t1 - t0)
        phases["read"].append(t2 - t1)
        phases["close"].append(t3 - t2)

    result = cluster.run_workload(workload)
    return result, {k: max(v) for k, v in phases.items()}


def main() -> None:
    geometry = TiledConfig()
    pattern = tiled_visualization(geometry)
    print("tiled visualization (paper geometry):")
    print(f"  {geometry.tiles_x}x{geometry.tiles_y} displays of "
          f"{geometry.tile_width}x{geometry.tile_height} @ 24-bit colour")
    print(f"  overlaps {geometry.overlap_x}/{geometry.overlap_y} px -> frame "
          f"{geometry.frame_width}x{geometry.frame_height}, file "
          f"{fmt_bytes(geometry.file_size)}")
    print(f"  {pattern.n_ranks} clients, {geometry.regions_per_tile} row runs each\n")

    print(f"{'method':>10} | {'open':>10} | {'read':>10} | {'close':>10} | {'total':>10} | reqs/client")
    for method in (MultipleIO(), DataSievingIO(), ListIO()):
        result, phases = run_method(pattern, method)
        reqs = int(result.total_logical_requests) // pattern.n_ranks
        print(f"{method.name:>10} | {fmt_time(phases['open']):>10} "
              f"| {fmt_time(phases['read']):>10} | {fmt_time(phases['close']):>10} "
              f"| {fmt_time(result.elapsed):>10} | {reqs}")

    print("\nOpen and close are metadata round-trips to the manager daemon; "
          "the read phase is where the methods separate.  The paper reports "
          "list I/O 'more than twice as well as either of the other two "
          "methods' on this workload.")


if __name__ == "__main__":
    main()
