#!/usr/bin/env python
"""FLASH checkpoint writes through all three noncontiguous methods.

Reproduces the paper's Section 4.3 scenario at reduced mesh size: every
process holds FLASH blocks (inner elements + guard cells, 24 variables
interleaved per element) and checkpoints them into a variable-major file.
The memory side is brutally noncontiguous (one 8-byte region per double),
which is exactly why the paper calls FLASH "a challenging application for
parallel I/O systems".

Data sieving writes are serialized with the barrier loop, as in the paper
(PVFS has no locks, so concurrent read-modify-write would race).

Run:  python examples/flash_checkpoint.py
"""

from repro.config import ClusterConfig
from repro.core import DataSievingIO, ListIO, MultipleIO
from repro.mpi import Communicator
from repro.patterns import FlashConfig, flash_io
from repro.pvfs import Cluster
from repro.units import fmt_bytes, fmt_time


def run_method(pattern, method, serialize: bool) -> tuple:
    cfg = ClusterConfig.chiba_city(n_clients=pattern.n_ranks)
    cluster = Cluster.build(cfg, move_bytes=False)  # timing-only byte store
    comm = Communicator(cluster.sim, pattern.n_ranks)

    def workload(client):
        access = pattern.rank(client.index)
        f = yield from client.open("/flash.chk", create=True)
        if serialize:
            yield from method.serialized_write(
                comm, client.index, f, None, access.mem_regions, access.file_regions
            )
        else:
            yield from method.write(f, None, access.mem_regions, access.file_regions)
        yield from f.close()

    result = cluster.run_workload(workload)
    requests = int(result.total_logical_requests)
    return result.elapsed, requests


def main() -> None:
    mesh = FlashConfig(n_blocks=8, nxb=4, nyb=4, nzb=4, n_vars=24, n_guard=2)
    n_procs = 4
    pattern = flash_io(n_procs, mesh)
    per_proc = pattern.rank(0)
    print("FLASH checkpoint (scaled mesh):")
    print(f"  {n_procs} processes x {mesh.n_blocks} blocks x "
          f"{mesh.nxb}^3 elements x {mesh.n_vars} variables")
    print(f"  per process: {per_proc.mem_regions.count} memory regions "
          f"(8 B each), {per_proc.n_file_regions} file regions "
          f"({mesh.chunk_bytes} B each), {fmt_bytes(per_proc.nbytes)}")
    print(f"  checkpoint file: {fmt_bytes(pattern.file_size)}\n")

    print(f"{'method':>10} | {'simulated time':>14} | {'requests':>9} | note")
    rows = [
        (MultipleIO(), False, "one request per 8-byte double"),
        (DataSievingIO(), True, "RMW windows, barrier-serialized"),
        (ListIO(), False, "64 region pairs per request"),
    ]
    times = {}
    for method, serialize, note in rows:
        elapsed, requests = run_method(pattern, method, serialize)
        times[method.name] = elapsed
        print(f"{method.name:>10} | {fmt_time(elapsed):>14} | {requests:9d} | {note}")

    print(f"\ndata sieving vs list I/O : {times['list'] / times['datasieve']:6.1f}x")
    print(f"list I/O vs multiple I/O : {times['multiple'] / times['list']:6.1f}x")
    print("\n(The paper's Figure 15 shows the same ordering: buffered sieving "
          "wins this pattern outright, list I/O beats raw multiple I/O by "
          "over an order of magnitude.)")


if __name__ == "__main__":
    main()
