#!/usr/bin/env python
"""MPI-IO views and two-phase collective I/O on simulated PVFS.

The paper's closing line of future work — describing noncontiguous access
with MPI datatypes — is where parallel I/O actually went: applications set
a *file view* (displacement + etype + filetype) and call collective
read/write, and the MPI-IO layer (ROMIO) turns interleaved per-rank
accesses into a few large streaming requests via two-phase I/O.

This example checkpoints a FLASH-shaped interleaved file four ways and
prints time + request counts:

1. multiple I/O            (the paper's baseline)
2. native list I/O         (the paper's contribution)
3. independent MPI-IO      (file view -> list I/O underneath)
4. collective MPI-IO       (two-phase aggregation)

Run:  python examples/mpiio_collective.py
"""


from repro.config import ClusterConfig
from repro.core import ListIO, MultipleIO
from repro.datatypes import BYTE, Contiguous, Resized
from repro.mpi import Communicator
from repro.mpiio import open_one
from repro.patterns import FlashConfig, flash_io
from repro.pvfs import Cluster
from repro.units import fmt_bytes, fmt_time

MESH = FlashConfig(n_blocks=8, nxb=4, nyb=4, nzb=4, n_vars=24, n_guard=2)
N_RANKS = 4


def run_paper_method(method):
    pattern = flash_io(N_RANKS, MESH)
    cluster = Cluster.build(ClusterConfig.chiba_city(n_clients=N_RANKS), move_bytes=False)

    def wl(client):
        a = pattern.rank(client.index)
        f = yield from client.open("/ckpt", create=True)
        yield from method.write(f, None, a.mem_regions, a.file_regions)
        yield from f.close()

    res = cluster.run_workload(wl)
    return res.elapsed, res.total_logical_requests


def run_mpiio(collective: bool):
    chunk = MESH.chunk_bytes
    per_rank = MESH.n_blocks * MESH.n_vars * chunk
    cluster = Cluster.build(ClusterConfig.chiba_city(n_clients=N_RANKS), move_bytes=False)
    comm = Communicator(cluster.sim, N_RANKS)
    shared = {}

    def wl(client):
        r = client.index
        mf = yield from open_one(comm, client, "/ckpt", shared)
        mf.set_view(
            disp=r * chunk,
            filetype=Resized(Contiguous(BYTE, chunk), chunk * N_RANKS),
        )
        if collective:
            yield from mf.write_at_all(0, None, nbytes=per_rank)
        else:
            yield from mf.write_at(0, None, nbytes=per_rank)
        yield from mf.close()

    res = cluster.run_workload(wl)
    return res.elapsed, res.total_logical_requests


def main() -> None:
    per_rank = MESH.checkpoint_bytes_per_proc
    print(f"FLASH-shaped checkpoint: {N_RANKS} ranks x {fmt_bytes(per_rank)}, "
          f"{MESH.file_regions_per_proc} interleaved {MESH.chunk_bytes}-byte "
          f"chunks per rank\n")
    print(f"{'strategy':>22} | {'time':>12} | requests")
    rows = [
        ("multiple I/O", run_paper_method(MultipleIO())),
        ("native list I/O", run_paper_method(ListIO())),
        ("MPI-IO independent", run_mpiio(collective=False)),
        ("MPI-IO collective", run_mpiio(collective=True)),
    ]
    for name, (elapsed, requests) in rows:
        print(f"{name:>22} | {fmt_time(elapsed):>12} | {requests}")

    print("\nThe file view alone already helps (contiguous per-rank streams "
          "instead of 8-byte memory pieces); two-phase collective I/O then "
          "trades cheap compute-network exchange for one streaming file "
          "request per aggregator — the design ROMIO adopted on top of "
          "exactly the list I/O interface this paper introduced.")


if __name__ == "__main__":
    main()
