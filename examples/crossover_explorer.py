#!/usr/bin/env python
"""Where does data sieving beat list I/O?  (Section 3.4's analysis, mapped.)

The paper's qualitative rule: "Except for the case when noncontiguous
regions are close enough for data sieving benefits to overcome the
advantages of list I/O, list I/O will perform better than data sieving
I/O."  On the read path list I/O wins almost everywhere (the paper's own
Figure 9 shows sieving above list at every measured point); the crossover
lives on the *write* path, where every list request pays the small-write
turnaround and sieving batches everything into a few large read-modify-
write windows — that is exactly how sieving crushes list I/O on FLASH
(Figure 15).

This example sweeps fragment size and packing density for a fixed data
volume and reports the winner in each cell, plus where the hybrid
extension lands.

Run:  python examples/crossover_explorer.py
"""

from repro.config import ClusterConfig
from repro.core import DataSievingIO, HybridIO, ListIO
from repro.pvfs import Cluster
from repro.regions import RegionList
from repro.units import MiB, fmt_time


def time_write(regions: RegionList, method) -> float:
    cfg = ClusterConfig.chiba_city(n_clients=1)
    cluster = Cluster.build(cfg, move_bytes=False)

    def workload(client):
        mem = RegionList.single(0, regions.total_bytes)
        f = yield from client.open("/sweep", create=True)
        yield from method.write(f, None, mem, regions)
        yield from f.close()

    return cluster.run_workload(workload).elapsed


def main() -> None:
    volume = 4 * MiB
    print(f"single client writing {volume // MiB} MiB, fragment size x density sweep\n")
    print(f"{'fragment':>9} | {'density':>8} | {'list':>10} | {'sieve':>10} | "
          f"{'hybrid':>10} | winner")
    for frag in (64, 256, 1024, 4096):
        for density in (0.9, 0.25):
            n = volume // frag
            stride = int(frag / density)
            regions = RegionList.strided(0, n, frag, stride)
            t_list = time_write(regions, ListIO())
            t_sieve = time_write(regions, DataSievingIO())
            t_hybrid = time_write(regions, HybridIO(gap_threshold=1024))
            best = min(
                ("list", t_list), ("sieve", t_sieve), ("hybrid", t_hybrid),
                key=lambda kv: kv[1],
            )
            print(f"{frag:7d} B | {density:8.0%} | {fmt_time(t_list):>10} | "
                  f"{fmt_time(t_sieve):>10} | {fmt_time(t_hybrid):>10} | {best[0]}")

    print("\nSmall fragments mean many list requests, each paying the "
          "per-request turnaround — sieving's few big windows win even "
          "though they haul junk and read-modify-write.  Large fragments "
          "amortize the per-request cost and list I/O takes over, "
          "especially at low density where sieving's windows are mostly "
          "junk.  The hybrid (paper Section 5) coalesces only "
          "close-together regions and should track the winner.")


if __name__ == "__main__":
    main()
