#!/usr/bin/env python
"""Datatype-described requests: the paper's closing idea, implemented.

Section 5: "Support for I/O requests that use an approach similar to MPI
datatypes ... would describe these patterns with vector datatypes.  This
would eliminate the linear relationship between the number of contiguous
regions and the number of I/O requests."

This example reads the same strided pattern at increasing fragmentation
through list I/O (requests grow linearly) and through VectorIO (always
one request), and prints the request counts and simulated times side by
side.

Run:  python examples/datatype_requests.py
"""

from repro.config import ClusterConfig
from repro.core import ListIO, VectorIO
from repro.patterns import one_dim_cyclic
from repro.pvfs import Cluster
from repro.units import MiB, fmt_time


def run(pattern, method):
    cfg = ClusterConfig.chiba_city(n_clients=pattern.n_ranks)
    cluster = Cluster.build(cfg, move_bytes=False)

    def workload(client):
        access = pattern.rank(client.index)
        f = yield from client.open("/vec", create=True)
        yield from method.read(f, None, access.mem_regions, access.file_regions)
        yield from f.close()

    result = cluster.run_workload(workload)
    return result.elapsed, int(result.total_logical_requests) // pattern.n_ranks


def main() -> None:
    total = 16 * MiB
    n_clients = 8
    print(f"cyclic reads of {total // MiB} MiB over {n_clients} clients; the "
          "pattern is a perfect vector (constant block, constant stride)\n")
    print(f"{'accesses':>9} | {'list reqs':>9} | {'vec reqs':>8} | "
          f"{'list time':>10} | {'vec time':>10} | speedup")
    for accesses in (1024, 4096, 16384, 65536):
        pattern = one_dim_cyclic(total, n_clients, accesses)
        t_list, r_list = run(pattern, ListIO())
        t_vec, r_vec = run(pattern, VectorIO())
        print(f"{accesses:9d} | {r_list:9d} | {r_vec:8d} | "
              f"{fmt_time(t_list):>10} | {fmt_time(t_vec):>10} | "
              f"{t_list / t_vec:5.1f}x")

    print("\nThe vector descriptor rides in two trailing-data slots no matter "
          "how many regions it expands to, so the request count — list I/O's "
          "'largest drawback' — stops growing entirely.  (At coarse "
          "fragmentation list I/O is already request-cheap and the single "
          "monolithic vector response loses request/response pipelining, so "
          "the payoff appears as fragmentation grows.)")


if __name__ == "__main__":
    main()
