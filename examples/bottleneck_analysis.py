#!/usr/bin/env python
"""Where does the time go?  Tracing and utilization for one benchmark point.

Runs the 1-D cyclic read benchmark once per method with request tracing
enabled, then prints (a) per-category latency percentiles from the tracer
and (b) the cluster utilization report — showing that multiple I/O is
limited by request processing on the I/O daemons, data sieving by raw
network bandwidth, and list I/O by neither (it finishes before saturating
anything).

Run:  python examples/bottleneck_analysis.py
"""

from repro.config import ClusterConfig
from repro.core import DataSievingIO, ListIO, MultipleIO
from repro.patterns import one_dim_cyclic
from repro.pvfs import Cluster
from repro.units import MiB, fmt_time


def run_traced(method):
    pattern = one_dim_cyclic(8 * MiB, 4, 1024)
    cluster = Cluster.build(
        ClusterConfig.chiba_city(n_clients=4), move_bytes=False, trace=True
    )

    def wl(client):
        a = pattern.rank(client.index)
        f = yield from client.open("/trace", create=True)
        yield from method.read(f, None, a.mem_regions, a.file_regions)
        yield from f.close()

    result = cluster.run_workload(wl)
    return cluster, result


def main() -> None:
    for method in (MultipleIO(), DataSievingIO(), ListIO()):
        cluster, result = run_traced(method)
        print(f"\n{'=' * 72}")
        print(f"method: {method.name}   simulated time: {fmt_time(result.elapsed)}")
        print(f"{'=' * 72}\n")
        print(cluster.tracer.format_summary())
        print(cluster.utilization_report())

    print(
        "Reading the reports: multiple I/O shows thousands of short\n"
        "iod.service spans and busy daemons (request-processing bound);\n"
        "data sieving shows few huge client.request spans with hot client\n"
        "RX links (bandwidth bound, hauling unwanted bytes); list I/O's\n"
        "spans are few AND small — the paper's point, in a trace."
    )


if __name__ == "__main__":
    main()
