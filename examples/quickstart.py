#!/usr/bin/env python
"""Quickstart: a simulated PVFS cluster and the paper's list I/O interface.

Builds the paper's Chiba City configuration (8 I/O servers, 16 KiB
stripes, 100 Mbit/s Fast Ethernet), writes a noncontiguous pattern through
``pvfs_write_list``, reads it back three ways (multiple I/O, data sieving,
list I/O), verifies every byte, and prints the time and request accounting
that make the paper's point.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.config import ClusterConfig
from repro.core import DataSievingIO, ListIO, MultipleIO, pvfs_write_list
from repro.pvfs import Cluster
from repro.regions import RegionList, build_flat_indices
from repro.units import fmt_time


def main() -> None:
    cfg = ClusterConfig.chiba_city(n_clients=1)
    print(f"cluster: {cfg.n_iods} I/O servers, stripe {cfg.stripe.stripe_size} B, "
          f"list I/O cap {cfg.list_io_max_regions} regions/request\n")

    # The access: 1000 records of 256 bytes, each at a 1 KiB stride in the
    # file (think: one column of a 2-D array), from a contiguous buffer.
    n, rec, stride = 1000, 256, 1024
    file_regions = RegionList.strided(start=0, count=n, length=rec, stride=stride)
    mem_regions = RegionList.single(0, n * rec)
    payload = (np.arange(n * rec) % 251).astype(np.uint8)

    # ---- write once through the paper's interface -----------------------
    cluster = Cluster.build(cfg)

    def writer(client):
        f = yield from client.open("/quickstart", create=True)
        yield from pvfs_write_list(
            f,
            payload,
            mem_regions.offsets,
            mem_regions.lengths,
            file_regions.offsets,
            file_regions.lengths,
        )
        yield from f.close()

    result = cluster.run_workload(writer, clients=[0])
    print(f"wrote {n} records ({n * rec} B) via pvfs_write_list "
          f"in {fmt_time(result.elapsed)} simulated, "
          f"{int(cluster.counters['client.0.logical_requests'])} requests")

    # ---- read back three ways, on fresh clusters each time --------------
    print("\nreading the same pattern back with each access method:")
    print(f"{'method':>10} | {'simulated time':>14} | {'requests':>8} | verified")
    for method in (MultipleIO(), DataSievingIO(), ListIO()):
        c2 = Cluster.build(cfg)

        def prefill(client):
            f = yield from client.open("/quickstart", create=True)
            yield from f.write_list(file_regions, payload)
            yield from f.close()

        c2.run_workload(prefill, clients=[0])
        before = c2.counters["client.0.logical_requests"]
        buf = np.zeros(n * rec, np.uint8)

        def reader(client):
            f = yield from client.open("/quickstart")
            yield from method.read(f, buf, mem_regions, file_regions)
            yield from f.close()

        res = c2.run_workload(reader, clients=[0])
        reqs = int(c2.counters["client.0.logical_requests"] - before)
        idx = build_flat_indices(mem_regions.offsets, mem_regions.lengths)
        ok = bool(np.array_equal(buf[idx], payload))
        print(f"{method.name:>10} | {fmt_time(res.elapsed):>14} | {reqs:8d} | {ok}")

    print("\nlist I/O describes up to 64 file regions per request "
          "(one Ethernet frame of trailing data), so it needs "
          f"{-(-n // 64)} requests where multiple I/O needs {n}.")


if __name__ == "__main__":
    main()
