# Convenience targets for the pvfs-sim reproduction.

PYTHON ?= python

.PHONY: install test test-out bench bench-compare bench-pytest bench-only \
	profile lint figures figures-paper examples clean

install:
	pip install -e . --no-build-isolation

# mirrors the tier-1 CI invocation exactly
test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

test-out:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q 2>&1 | tee test_output.txt

# deterministic regression suite (see docs/benchmarking.md)
bench:
	PYTHONPATH=src $(PYTHON) -m repro.experiments.cli bench run --scale smoke

bench-compare:
	PYTHONPATH=src $(PYTHON) -m repro.experiments.cli bench run \
		--scale smoke --out BENCH_local.json
	PYTHONPATH=src $(PYTHON) -m repro.experiments.cli bench compare \
		benchmarks/baseline_smoke.json BENCH_local.json --wall-tolerance none

# kernel + host profiling: SSR headline, per-handler table, flamegraph
# input (profile.json / profile.collapsed / profile.pstats, metrics JSONL)
profile:
	PYTHONPATH=src $(PYTHON) -m repro.experiments.cli profile \
		--scale smoke --out profile --metrics-out profile_metrics.jsonl

# pytest-benchmark microbenchmarks (wall-clock timings, not gated)
bench-pytest:
	$(PYTHON) -m pytest benchmarks/

bench-only:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

# requires ruff (CI installs it; not part of the runtime deps)
lint:
	ruff check .
	ruff format --check src/repro/bench

# regenerate every figure from the paper's evaluation
figures:
	$(PYTHON) -m repro.experiments.cli --all --scale scaled --mode des

figures-paper:
	mkdir -p results
	$(PYTHON) -m repro.experiments.cli --all --scale paper --mode model \
		--csv results/paper_scale_model.csv | tee results/paper_scale_model.md

examples:
	for e in examples/*.py; do echo "== $$e"; $(PYTHON) $$e || exit 1; done

clean:
	rm -rf .pytest_cache build *.egg-info benchmarks/results/*.md
	find . -name __pycache__ -type d -exec rm -rf {} +
