# Convenience targets for the pvfs-sim reproduction.

PYTHON ?= python

.PHONY: install test bench figures figures-paper examples clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

test-out:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/

bench-only:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

# regenerate every figure from the paper's evaluation
figures:
	$(PYTHON) -m repro.experiments.cli --all --scale scaled --mode des

figures-paper:
	mkdir -p results
	$(PYTHON) -m repro.experiments.cli --all --scale paper --mode model \
		--csv results/paper_scale_model.csv | tee results/paper_scale_model.md

examples:
	for e in examples/*.py; do echo "== $$e"; $(PYTHON) $$e || exit 1; done

clean:
	rm -rf .pytest_cache build *.egg-info benchmarks/results/*.md
	find . -name __pycache__ -type d -exec rm -rf {} +
