"""Tests for the tracing subsystem (repro.simulate.trace + cluster wiring)."""

import numpy as np
import pytest

from repro.config import ClusterConfig, StripeParams
from repro.pvfs import Cluster
from repro.regions import RegionList
from repro.simulate import Tracer


class TestTracer:
    def test_record_and_len(self):
        t = Tracer()
        t.record("cat", "x", 0.0, 1.0)
        t.record("cat", "y", 1.0, 3.0)
        assert len(t) == 2
        assert t.categories() == ["cat"]

    def test_disabled_records_nothing(self):
        t = Tracer(enabled=False)
        t.record("cat", "x", 0.0, 1.0)
        assert len(t) == 0

    def test_negative_span_rejected(self):
        with pytest.raises(ValueError):
            Tracer().record("c", "l", 2.0, 1.0)

    def test_span_duration_and_meta(self):
        t = Tracer()
        t.record("c", "l", 1.0, 2.5, bytes=100)
        s = t.spans[0]
        assert s.duration == 1.5
        assert dict(s.meta) == {"bytes": 100}
        assert "ms" in repr(s)

    def test_filters(self):
        t = Tracer()
        t.record("a", "x", 0, 1)
        t.record("a", "y", 0, 2)
        t.record("b", "x", 0, 3)
        assert len(t.spans_for("a")) == 2
        assert len(t.spans_for("a", label="x")) == 1
        assert t.durations("b") == [3]

    def test_capacity_drops(self):
        t = Tracer(capacity=2)
        for i in range(5):
            t.record("c", "l", 0, 1)
        assert len(t) == 2
        assert t.dropped == 3
        assert "dropped" in t.format_summary()

    def test_drops_accounted_per_category(self):
        t = Tracer(capacity=3)
        t.record("a", "x", 0, 1)
        t.record("a", "x", 0, 1)
        t.record("b", "y", 0, 1)
        for _ in range(4):
            t.record("a", "x", 0, 1)  # dropped
        t.record("b", "y", 0, 1)  # dropped
        assert t.dropped == 5
        assert dict(t.dropped_by_category) == {"a": 4, "b": 1}
        out = t.format_summary()
        assert "a=4" in out and "b=1" in out

    def test_no_drops_no_per_category_detail(self):
        t = Tracer()
        t.record("c", "l", 0, 1)
        assert dict(t.dropped_by_category) == {}
        assert "dropped" not in t.format_summary()

    def test_summary_statistics(self):
        t = Tracer()
        for d in (1.0, 2.0, 3.0, 4.0, 100.0):
            t.record("c", "l", 0.0, d)
        s = t.summary()["c"]
        assert s["count"] == 5
        assert s["total"] == 110.0
        assert s["mean"] == 22.0
        assert s["p50"] == 3.0
        assert s["max"] == 100.0
        assert s["p95"] == 100.0
        assert s["p99"] == 100.0

    def test_p99_separates_tail_from_p95(self):
        t = Tracer()
        for i in range(1, 101):
            t.record("c", "l", 0.0, float(i))
        s = t.summary()["c"]
        assert s["p95"] == 95.0
        assert s["p99"] == 99.0
        assert s["max"] == 100.0
        assert "p99" in t.format_summary()

    def test_format_summary_markdown(self):
        t = Tracer()
        t.record("iod.service", "read", 0.0, 0.004)
        out = t.format_summary()
        assert "| iod.service |" in out
        assert "p95" in out

    def test_empty_summary(self):
        assert "(no spans" in Tracer().format_summary()

    def test_repr(self):
        assert "Tracer on" in repr(Tracer())
        assert "Tracer off" in repr(Tracer(enabled=False))


class TestClusterTracing:
    def run_traced(self):
        cluster = Cluster.build(
            ClusterConfig(n_clients=2, n_iods=2, stripe=StripeParams(stripe_size=128)),
            trace=True,
        )

        def wl(client):
            f = yield from client.open("/t", create=True)
            yield from f.write_list(
                RegionList.strided(client.index * 64, 10, 8, 256),
                np.zeros(80, np.uint8),
            )
            yield from f.read(0, 64)
            yield from f.close()

        cluster.run_workload(wl)
        return cluster

    def test_spans_collected(self):
        cluster = self.run_traced()
        t = cluster.tracer
        assert len(t.spans_for("client.request")) > 0
        assert len(t.spans_for("iod.service")) > 0
        assert len(t.spans_for("iod.queue_wait")) == len(t.spans_for("iod.service"))

    def test_service_spans_have_meta(self):
        cluster = self.run_traced()
        s = cluster.tracer.spans_for("iod.service")[0]
        meta = dict(s.meta)
        assert {"iod", "regions", "nbytes"} <= set(meta)

    def test_client_spans_cover_service_spans(self):
        cluster = self.run_traced()
        t = cluster.tracer
        total_client = sum(s.duration for s in t.spans_for("client.request"))
        assert total_client > 0
        # a client request includes its servers' service time plus wire time
        assert max(s.duration for s in t.spans_for("client.request")) >= max(
            s.duration for s in t.spans_for("iod.service")
        )

    def test_tracing_off_by_default_and_free(self):
        cluster = Cluster.build(
            ClusterConfig(n_clients=1, n_iods=2, stripe=StripeParams(stripe_size=128))
        )

        def wl(client):
            f = yield from client.open("/n", create=True)
            yield from f.write(0, np.zeros(100, np.uint8))
            yield from f.close()

        cluster.run_workload(wl)
        assert len(cluster.tracer) == 0

    def test_tracing_does_not_change_simulated_time(self):
        def run(trace):
            cluster = Cluster.build(
                ClusterConfig(n_clients=2, n_iods=2), trace=trace
            )

            def wl(client):
                f = yield from client.open("/same", create=True)
                yield from f.write(0, np.zeros(50_000, np.uint8))
                yield from f.close()

            return cluster.run_workload(wl).elapsed

        assert run(True) == run(False)
