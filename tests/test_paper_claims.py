"""The paper's headline claims, asserted at full 1 GiB scale via the model.

These are the sentences a reader would quote from the paper, each encoded
as an executable assertion.  They run through the analytic model (exact
request/byte accounting, bound-based timing) at the paper's aggregate
volume with a single representative sweep point, so the whole module stays
fast enough for the default test run.
"""

import pytest

from repro.config import ClusterConfig
from repro.model import predict_pattern
from repro.patterns import (
    FlashConfig,
    block_block,
    flash_io,
    one_dim_cyclic,
    tiled_visualization,
)
from repro.units import GiB

ACCESSES = 100_000  # representative paper sweep point (per client)


@pytest.fixture(scope="module")
def cyclic8():
    return one_dim_cyclic(1 * GiB, 8, ACCESSES)


@pytest.fixture(scope="module")
def cfg8():
    return ClusterConfig.chiba_city(n_clients=8)


class TestAbstractClaims:
    def test_list_outperforms_traditional_methods_in_most_situations(
        self, cyclic8, cfg8
    ):
        """Abstract: 'list I/O outperforms current noncontiguous I/O access
        methods in most I/O situations'."""
        t = {
            m: predict_pattern(cyclic8, m, "read", cfg8).elapsed
            for m in ("multiple", "datasieve", "list")
        }
        assert t["list"] < t["multiple"]
        assert t["list"] < t["datasieve"]

    def test_up_to_two_orders_of_magnitude(self, cfg8):
        """Abstract: 'list I/O outperforms traditional noncontiguous
        methods by up to two orders of magnitude' — realized on writes."""
        pattern = one_dim_cyclic(1 * GiB, 8, 800_000)
        multiple = predict_pattern(pattern, "multiple", "write", cfg8).elapsed
        listio = predict_pattern(pattern, "list", "write", cfg8).elapsed
        assert multiple / listio > 50


class TestSection4Claims:
    def test_multiple_and_list_scale_linearly(self, cfg8):
        """4.2.2: 'multiple I/O and list I/O scale linearly with the
        number of accesses'."""
        t = [
            predict_pattern(one_dim_cyclic(1 * GiB, 8, a), "multiple", "read", cfg8).elapsed
            for a in (200_000, 400_000, 800_000)
        ]
        # doubling accesses roughly doubles time once past the flat base
        assert 1.6 < t[1] / t[0] < 2.4
        assert 1.6 < t[2] / t[1] < 2.4

    def test_datasieve_constant_and_doubles_with_clients(self):
        """4.2.2: sieving constant in accesses; 'time nearly doubles with
        data sieving I/O when the clients double'."""
        c8 = ClusterConfig.chiba_city(n_clients=8)
        c16 = ClusterConfig.chiba_city(n_clients=16)
        t8a = predict_pattern(one_dim_cyclic(1 * GiB, 8, 100_000), "datasieve", "read", c8).elapsed
        t8b = predict_pattern(one_dim_cyclic(1 * GiB, 8, 400_000), "datasieve", "read", c8).elapsed
        assert t8b / t8a == pytest.approx(1.0, abs=0.1)
        t16 = predict_pattern(one_dim_cyclic(1 * GiB, 16, 100_000), "datasieve", "read", c16).elapsed
        assert 1.4 < t16 / t8a < 2.6

    def test_blockblock_sieving_cheaper_than_cyclic(self):
        """4.2.2: 'the data sieving I/O times are reduced [vs cyclic]
        ... accesses less irrelevant data'."""
        c16 = ClusterConfig.chiba_city(n_clients=16)
        cyc = predict_pattern(
            one_dim_cyclic(1 * GiB, 16, 262_144), "datasieve", "read", c16
        ).elapsed
        bb = predict_pattern(
            block_block(1 * GiB, 16, 262_144), "datasieve", "read", c16
        ).elapsed
        assert bb < cyc

    def test_blockblock_access_size_at_paper_turning_point(self):
        """4.2.2: at 800k accesses and 9 clients each access is ~149 B."""
        pattern = block_block(1 * GiB, 9, 800_000)
        size = int(pattern.rank(0).file_regions.lengths[0])
        assert 100 <= size <= 200


class TestFlashClaims:
    def test_request_count_arithmetic(self):
        """4.3.1: 983,040 multiple-I/O requests/processor; 30 list
        requests/processor by the paper's file-side formula; 7.5 MB/proc."""
        cfg = FlashConfig()
        assert cfg.mem_regions_per_proc == 983_040
        from repro.core import ListIO

        pattern = flash_io(1)
        assert ListIO.request_count(pattern.rank(0).file_regions, 64) == 30
        assert cfg.checkpoint_bytes_per_proc == 7_864_320

    def test_flash_ordering(self):
        """4.3.2: sieving beats list; list beats multiple by over an
        order of magnitude."""
        pattern = flash_io(4)
        cfg = ClusterConfig.chiba_city(n_clients=4)
        sieve = predict_pattern(pattern, "datasieve", "write", cfg).elapsed
        listio = predict_pattern(pattern, "list", "write", cfg).elapsed
        multiple = predict_pattern(pattern, "multiple", "write", cfg).elapsed
        assert sieve < listio < multiple
        assert multiple / listio > 10
        assert listio / sieve > 10


class TestTiledClaims:
    def test_request_counts(self):
        """4.4.1: 768 multiple-I/O requests, 768/64 = 12 list requests."""
        pattern = tiled_visualization()
        from repro.core import ListIO, MultipleIO

        a = pattern.rank(0)
        assert MultipleIO.request_count(a.mem_regions, a.file_regions) == 768
        assert ListIO.request_count(a.file_regions, 64) == 12

    def test_list_twice_as_fast(self):
        """4.4.2: 'list I/O is able to perform more than twice as well as
        either of the other two methods'."""
        pattern = tiled_visualization()
        cfg = ClusterConfig.chiba_city(n_clients=6)
        t = {
            m: predict_pattern(pattern, m, "read", cfg).elapsed
            for m in ("multiple", "datasieve", "list")
        }
        assert t["multiple"] / t["list"] > 2
        assert t["datasieve"] / t["list"] > 2

    def test_sieving_uses_a_third_of_fetched_data(self):
        """4.4.1: 'the client will end up using only ... 1/3 of the actual
        data read' (1 / tiles in x)."""
        pattern = tiled_visualization()
        cfg = ClusterConfig.chiba_city(n_clients=6)
        pred = predict_pattern(pattern, "datasieve", "read", cfg)
        useful_fraction = pred.useful_bytes / pred.moved_bytes
        assert useful_fraction == pytest.approx(1 / 3, abs=0.08)


class TestConclusionClaims:
    def test_sieving_wins_when_regions_close_together(self):
        """Section 5: 'in situations where most of the noncontiguous
        regions are close together, data sieving produces better
        results' — true on the write path."""
        from repro.patterns import uniform_fragments

        pattern = uniform_fragments(1, 16384, 64, density=0.9)
        cfg = ClusterConfig.chiba_city(n_clients=1)
        sieve = predict_pattern(pattern, "datasieve", "write", cfg).elapsed
        listio = predict_pattern(pattern, "list", "write", cfg).elapsed
        assert sieve < listio

    def test_multiple_io_should_not_be_considered(self, cyclic8, cfg8):
        """Section 5: 'multiple I/O should not be considered for
        large-scale scientific applications' — worst in every regime we
        measure."""
        for kind in ("read", "write"):
            t = {
                m: predict_pattern(cyclic8, m, kind, cfg8).elapsed
                for m in ("multiple", "list")
            }
            assert t["multiple"] > t["list"]
