"""Wire codec contract: canonical round-trip, cache-key stability,
typed decode errors.

The invariant the whole service rests on (docs/service.md): for every
spec the drivers can build, ``decode_spec(canonical(spec))`` equals the
original — same dataclass, same canonical form, same ResultCache key —
so a spec that crosses the wire dedups against the identical spec built
in-process.
"""

import pytest

from repro.bench.micro import DiskRunsSpec, KernelChurnSpec, NetStreamSpec
from repro.config import ClusterConfig
from repro.errors import ReproError, ServiceError
from repro.experiments.presets import SMOKE
from repro.faults import FaultConfig, FaultPlan, IodCrash, RetryPolicy, Straggler
from repro.service.wire import SpecPayloadError, decode_spec, decode_specs, encode_spec
from repro.sweep import ChaosSpec, MpiioSpec, PointSpec, ResultCache, canonical
from repro.units import MiB


def _point_spec(**kw):
    cfg = ClusterConfig.chiba_city(n_clients=2)
    defaults = dict(
        figure="figT",
        pattern="one_dim_cyclic",
        pattern_args=(1 * MiB, 2, 8),
        method="list",
        kind="read",
        mode="des",
        cfg=cfg,
        x=8.0,
    )
    defaults.update(kw)
    return PointSpec(**defaults)


def _driver_specs():
    """Every flavour of spec the figure drivers and bench suite build."""
    from repro.experiments.artificial import build_specs as artificial
    from repro.experiments.collective import build_specs as collective
    from repro.experiments.flashio import build_specs as flashio
    from repro.experiments.tiledvis import build_specs as tiledvis

    specs = []
    specs += artificial("9", SMOKE, "des")
    specs += flashio(SMOKE, "des", include_text_accounting=True)
    specs += tiledvis(SMOKE, "des")
    specs += collective(SMOKE)
    specs.append(ChaosSpec(scenario="crash", benchmark="artificial", scale=SMOKE))
    specs.append(
        ChaosSpec(
            scenario="failover-read",
            benchmark="artificial",
            scale=SMOKE,
            replicas=2,
            ack="quorum",
        )
    )
    specs.append(KernelChurnSpec(n_procs=4, events_per_proc=8))
    specs.append(NetStreamSpec(n_senders=2, messages=4))
    specs.append(DiskRunsSpec(n_runs=8))
    return specs


class TestRoundTrip:
    def test_every_driver_spec_round_trips_exactly(self):
        for spec in _driver_specs():
            decoded = decode_spec(encode_spec(spec))
            assert decoded == spec
            assert canonical(decoded) == canonical(spec)

    def test_round_trip_preserves_cache_key(self):
        cache = ResultCache("/tmp/unused", fingerprint="fp")
        for spec in _driver_specs():
            decoded = decode_spec(encode_spec(spec))
            assert cache.key(decoded) == cache.key(spec)

    def test_round_trip_survives_json(self):
        # The actual wire: canonical -> json -> parse -> decode.
        import json

        for spec in _driver_specs():
            wire = json.loads(json.dumps(encode_spec(spec)))
            assert decode_spec(wire) == spec

    def test_faulted_config_round_trips(self):
        faults = FaultConfig(
            plan=FaultPlan((IodCrash(iod=0, at=1.0, restart_after=2.0), Straggler(0, 4.0))),
            retry=RetryPolicy(request_timeout=0.5, max_retries=3, jitter=0.1),
        )
        cfg = ClusterConfig.chiba_city(n_clients=2).with_(faults=faults)
        spec = _point_spec(cfg=cfg)
        decoded = decode_spec(encode_spec(spec))
        assert decoded == spec
        assert decoded.cfg.faults.plan.faults[0].restart_after == 2.0

    def test_tuples_come_back_as_tuples(self):
        spec = _point_spec(opts=(("split_memory_regions", False),))
        decoded = decode_spec(encode_spec(spec))
        assert isinstance(decoded.pattern_args, tuple)
        assert isinstance(decoded.opts, tuple)
        assert dict(decoded.opts) == {"split_memory_regions": False}

    def test_no_numeric_coercion(self):
        # int stays int, float stays float — cache keys depend on it.
        spec = _point_spec(x=8.0)
        wire = encode_spec(spec)
        assert isinstance(wire["x"], float)
        assert isinstance(wire["pattern_args"][1], int)
        decoded = decode_spec(wire)
        assert isinstance(decoded.x, float)
        assert isinstance(decoded.pattern_args[1], int)


class TestDecodeErrors:
    def test_unknown_type_tag(self):
        with pytest.raises(SpecPayloadError, match="unknown spec type"):
            decode_spec({"__type__": "EvilSpec"})

    def test_unknown_field(self):
        wire = encode_spec(_point_spec())
        wire["bogus"] = 1
        with pytest.raises(SpecPayloadError, match="no field 'bogus'"):
            decode_spec(wire)

    def test_invalid_field_value_hits_dataclass_validation(self):
        wire = encode_spec(_point_spec())
        wire["cfg"]["n_clients"] = -1
        with pytest.raises(SpecPayloadError, match="invalid ClusterConfig"):
            decode_spec(wire)

    def test_non_spec_top_level_rejected(self):
        wire = encode_spec(ClusterConfig.chiba_city())
        with pytest.raises(SpecPayloadError, match="not a runnable job spec"):
            decode_spec(wire)

    def test_untagged_payload_rejected(self):
        with pytest.raises(SpecPayloadError, match="__type__"):
            decode_spec({"figure": "9"})
        with pytest.raises(SpecPayloadError):
            decode_spec("not an object")

    def test_empty_spec_list_rejected(self):
        with pytest.raises(SpecPayloadError, match="non-empty list"):
            decode_specs([])

    def test_error_is_typed(self):
        # The daemon maps SpecPayloadError to HTTP 400; it must stay a
        # ServiceError subclass so clients can catch the family.
        assert issubclass(SpecPayloadError, ServiceError)
        assert issubclass(SpecPayloadError, ReproError)


class TestJobKey:
    def test_same_specs_same_key(self):
        from repro.service import job_key

        a = [_point_spec(), _point_spec(method="multiple")]
        b = [_point_spec(), _point_spec(method="multiple")]
        assert job_key("sweep", a, "fp") == job_key("sweep", b, "fp")

    def test_key_covers_kind_specs_and_code(self):
        from repro.service import job_key

        specs = [_point_spec()]
        base = job_key("sweep", specs, "fp")
        assert job_key("figure", specs, "fp") != base
        assert job_key("sweep", specs, "fp2") != base
        assert job_key("sweep", [_point_spec(method="multiple")], "fp") != base

    def test_decoded_spec_hits_same_job_key(self):
        from repro.service import job_key

        spec = _point_spec()
        decoded = decode_spec(encode_spec(spec))
        assert job_key("sweep", [decoded], "fp") == job_key("sweep", [spec], "fp")

    def test_mpiio_spec_round_trip(self):
        spec = MpiioSpec(scale=SMOKE, n_ranks=2, collective=True)
        assert decode_spec(encode_spec(spec)) == spec
