"""Tests for the simulated MPI communicator."""

import pytest

from repro.errors import ConfigError
from repro.mpi import Communicator
from repro.simulate import Simulator


class TestBarrier:
    def test_all_ranks_released_together(self):
        sim = Simulator()
        comm = Communicator(sim, 3)
        times = []

        def rank(sim, delay):
            yield sim.timeout(delay)
            yield comm.barrier()
            times.append(sim.now)

        for d in (1, 7, 4):
            sim.process(rank(sim, d))
        sim.run()
        assert times == [7, 7, 7]

    def test_barrier_sync_charges_latency(self):
        sim = Simulator()
        comm = Communicator(sim, 4, latency=1e-3)

        def rank(sim):
            yield from comm.barrier_sync(0)
            return sim.now

        procs = [sim.process(rank(sim)) for _ in range(4)]
        sim.run()
        assert all(p.value == pytest.approx(2e-3) for p in procs)  # log2(4)=2 hops


class TestBcast:
    def test_root_value_reaches_all(self):
        sim = Simulator()
        comm = Communicator(sim, 3)
        got = []

        def rank(sim, r):
            value = yield from comm.bcast(r, f"from-{r}" if r == 0 else None, root=0)
            got.append((r, value))

        for r in range(3):
            sim.process(rank(sim, r))
        sim.run()
        assert got == [(0, "from-0"), (1, "from-0"), (2, "from-0")]

    def test_successive_bcasts_are_independent(self):
        sim = Simulator()
        comm = Communicator(sim, 2)
        got = {}

        def rank(sim, r):
            a = yield from comm.bcast(r, "first" if r == 0 else None, root=0)
            b = yield from comm.bcast(r, "second" if r == 0 else None, root=0)
            got[r] = (a, b)

        for r in range(2):
            sim.process(rank(sim, r))
        sim.run()
        assert got == {0: ("first", "second"), 1: ("first", "second")}


class TestGather:
    def test_root_collects_in_rank_order(self):
        sim = Simulator()
        comm = Communicator(sim, 3)
        out = {}

        def rank(sim, r):
            yield sim.timeout(3 - r)  # arrive in reverse order
            res = yield from comm.gather(r, r * 10, root=1)
            out[r] = res

        for r in range(3):
            sim.process(rank(sim, r))
        sim.run()
        assert out[1] == [0, 10, 20]
        assert out[0] is None
        assert out[2] is None


class TestValidation:
    def test_size_must_be_positive(self):
        with pytest.raises(ConfigError):
            Communicator(Simulator(), 0)

    def test_repr(self):
        assert "Communicator" in repr(Communicator(Simulator(), 2))

    def test_single_rank_collectives(self):
        sim = Simulator()
        comm = Communicator(sim, 1)

        def rank(sim):
            yield comm.barrier()
            v = yield from comm.bcast(0, 42, root=0)
            g = yield from comm.gather(0, 7, root=0)
            return (v, g)

        p = sim.process(rank(sim))
        sim.run()
        assert p.value == (42, [7])
