"""Tests for MPI-style derived datatypes (repro.datatypes)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatypes import (
    BYTE,
    DOUBLE,
    INT,
    Contiguous,
    DatatypeError,
    HIndexed,
    HVector,
    Indexed,
    Resized,
    Struct,
    Subarray,
    Vector,
)


class TestPredefined:
    def test_sizes(self):
        assert BYTE.size == 1
        assert INT.size == 4
        assert DOUBLE.size == 8
        assert DOUBLE.extent == 8
        assert DOUBLE.region_count == 1

    def test_flatten(self):
        r = DOUBLE.flatten(3, displacement=16)
        assert list(r) == [(16, 24)]  # contiguous doubles coalesce

    def test_flatten_zero(self):
        assert DOUBLE.flatten(0).count == 0

    def test_negative_count(self):
        with pytest.raises(DatatypeError):
            DOUBLE.flatten(-1)

    def test_density(self):
        assert DOUBLE.density == 1.0


class TestContiguous:
    def test_size_extent(self):
        t = Contiguous(INT, 5)
        assert t.size == 20
        assert t.extent == 20

    def test_mul_operator(self):
        assert (INT * 5).size == 20

    def test_of_noncontiguous_base(self):
        v = Vector(BYTE, count=2, blocklength=2, stride=4)  # XX..XX..
        t = Contiguous(v, 2)
        r = t.flatten()
        # instances tile at extent 6: blocks at 0,4 then 6,10 -> middle pair merges
        assert t.size == 8
        assert list(r) == [(0, 2), (4, 4), (10, 2)]


class TestVector:
    def test_basic(self):
        t = Vector(BYTE, count=3, blocklength=2, stride=5)
        assert t.size == 6
        assert t.extent == 2 * 5 + 2
        assert list(t.flatten()) == [(0, 2), (5, 2), (10, 2)]

    def test_element_stride_scales_by_base_extent(self):
        t = Vector(DOUBLE, count=2, blocklength=1, stride=3)
        assert list(t.flatten()) == [(0, 8), (24, 8)]

    def test_hvector_byte_stride(self):
        t = HVector(DOUBLE, count=2, blocklength=1, stride=10)
        assert list(t.flatten()) == [(0, 8), (10, 8)]

    def test_overlapping_stride_rejected(self):
        with pytest.raises(DatatypeError):
            HVector(BYTE, count=2, blocklength=4, stride=2)

    def test_flatten_repetition_tiles_extent(self):
        t = Vector(BYTE, count=2, blocklength=1, stride=2)  # X.X extent 3
        r = t.flatten(2, displacement=100)
        assert list(r) == [(100, 1), (102, 2), (105, 1)]

    def test_density(self):
        t = Vector(BYTE, count=2, blocklength=1, stride=4)
        assert t.density == pytest.approx(2 / 5)


class TestIndexed:
    def test_hindexed(self):
        t = HIndexed(BYTE, blocklengths=[2, 3], displacements=[0, 10])
        assert t.size == 5
        assert t.extent == 13
        assert list(t.flatten()) == [(0, 2), (10, 3)]

    def test_indexed_scales_displacements(self):
        t = Indexed(INT, blocklengths=[1, 1], displacements=[0, 3])
        assert list(t.flatten()) == [(0, 4), (12, 4)]

    def test_validation(self):
        with pytest.raises(DatatypeError):
            HIndexed(BYTE, [1, 2], [0])
        with pytest.raises(DatatypeError):
            HIndexed(BYTE, [-1], [0])
        with pytest.raises(DatatypeError):
            HIndexed(BYTE, [1], [-5])

    def test_overlap_detected(self):
        with pytest.raises(DatatypeError):
            HIndexed(BYTE, [4, 4], [0, 2]).typemap()


class TestStruct:
    def test_mixed_fields(self):
        # a FLASH element: 24 doubles, checkpoint takes var v only
        t = Struct([(DOUBLE, 1, 8), (INT, 2, 24)])
        assert t.size == 16
        assert t.extent == 32
        assert list(t.flatten()) == [(8, 8), (24, 8)]

    def test_empty_rejected(self):
        with pytest.raises(DatatypeError):
            Struct([])


class TestSubarray:
    def test_2d_block(self):
        # 4x4 array, 2x2 block at (1, 1): the paper's block-block tile.
        t = Subarray(shape=(4, 4), subsizes=(2, 2), starts=(1, 1))
        assert t.size == 4
        assert t.extent == 16
        assert list(t.flatten()) == [(5, 2), (9, 2)]

    def test_3d_flash_inner_block(self):
        # 4x4x4 padded block, inner 2x2x2 at (1,1,1), double elements.
        t = Subarray(shape=(4, 4, 4), subsizes=(2, 2, 2), starts=(1, 1, 1), base=DOUBLE)
        assert t.size == 8 * 8
        assert t.region_count == 4  # 2x2 rows of 2 contiguous doubles
        first = t.flatten().offsets[0]
        assert first == (1 * 16 + 1 * 4 + 1) * 8

    def test_full_array_is_contiguous(self):
        t = Subarray(shape=(4, 4), subsizes=(4, 4), starts=(0, 0))
        assert t.region_count == 1

    def test_row_runs_merge_when_full_width(self):
        t = Subarray(shape=(4, 4), subsizes=(2, 4), starts=(1, 0))
        assert list(t.flatten()) == [(4, 8)]

    def test_1d(self):
        t = Subarray(shape=(10,), subsizes=(3,), starts=(2,))
        assert list(t.flatten()) == [(2, 3)]

    def test_validation(self):
        with pytest.raises(DatatypeError):
            Subarray((4, 4), (2, 2), (3, 0))  # out of range
        with pytest.raises(DatatypeError):
            Subarray((4,), (2, 2), (0, 0))  # rank mismatch
        with pytest.raises(DatatypeError):
            v = Vector(BYTE, 2, 1, 2)
            Subarray((4,), (2,), (0,), base=v)  # noncontiguous base


class TestResized:
    def test_extent_override(self):
        t = Resized(INT, 16)
        assert t.size == 4
        assert t.extent == 16
        assert list(t.flatten(2)) == [(0, 4), (16, 4)]

    def test_negative_extent(self):
        with pytest.raises(DatatypeError):
            Resized(INT, -1)


class TestComposition:
    def test_vector_of_subarray(self):
        tile = Subarray((4, 4), (2, 2), (0, 0))
        t = HVector(tile, count=2, blocklength=1, stride=100)
        assert t.size == 8
        r = t.flatten()
        assert r.count == 4

    def test_flash_block_as_datatype(self):
        """The FLASH memory layout expressed as nested datatypes must give
        the same regions as the hand-built pattern generator."""
        from repro.patterns import FlashConfig, flash_io

        cfg = FlashConfig(n_blocks=2, nxb=2, nyb=2, nzb=2, n_vars=3, n_guard=1)
        pattern = flash_io(1, cfg)
        # element = 3 doubles; var v of inner 2x2x2 of a 4x4x4 padded block
        px = cfg.nxb + 2 * cfg.n_guard
        elem_bytes = cfg.n_vars * 8
        one_var_inner = Subarray(
            shape=(px, px, px),
            subsizes=(cfg.nxb, cfg.nyb, cfg.nzb),
            starts=(cfg.n_guard,) * 3,
            base=Resized(DOUBLE, elem_bytes),
        )
        # compare the first (v=0, b=0) file region's memory bytes
        expect = pattern.rank(0).mem_regions.slice_regions(0, 8).coalesced()
        got = one_var_inner.flatten().coalesced()
        assert got == expect

    def test_paper_cyclic_as_vector(self):
        from repro.patterns import one_dim_cyclic

        pattern = one_dim_cyclic(4096, 4, 8)  # block 128
        v = HVector(BYTE, count=8, blocklength=128, stride=512)
        got = v.flatten(displacement=128)  # rank 1
        assert got == pattern.rank(1).file_regions.coalesced()


class TestDatatypeProperties:
    @given(
        st.integers(1, 6), st.integers(1, 6), st.integers(0, 10), st.integers(1, 5)
    )
    @settings(max_examples=60)
    def test_vector_size_invariant(self, count, blocklength, gap, reps):
        stride = blocklength + gap
        t = Vector(BYTE, count, blocklength, stride)
        r = t.flatten(reps)
        assert r.total_bytes == t.size * reps
        assert r.is_disjoint()
        assert r.is_sorted()

    @given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4))
    @settings(max_examples=40)
    def test_subarray_volume(self, a, b, c):
        t = Subarray((4, 4, 4), (a, b, c), (0, 0, 0))
        assert t.flatten().total_bytes == a * b * c

    def test_repr(self):
        assert "Vector" in repr(Vector(BYTE, 2, 1, 2))
        assert "BYTE" in repr(BYTE)
