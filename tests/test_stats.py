"""Tests for instrumentation (repro.simulate.stats)."""

import pytest

from repro.simulate import Counters, Timeline


class TestCounters:
    def test_add_and_get(self):
        c = Counters()
        c.add("a.b")
        c.add("a.b", 2.5)
        assert c["a.b"] == 3.5
        assert c.get("missing", 7.0) == 7.0
        assert c["missing"] == 0.0

    def test_set_overwrites(self):
        c = Counters()
        c.add("x", 5)
        c.set("x", 1)
        assert c["x"] == 1

    def test_contains_and_iter_sorted(self):
        c = Counters()
        c.add("b")
        c.add("a")
        assert "a" in c
        assert "z" not in c
        assert list(c) == ["a", "b"]
        assert c.items() == [("a", 1.0), ("b", 1.0)]

    def test_merge_accumulates(self):
        a, b = Counters(), Counters()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 3)
        a.merge(b)
        assert a["x"] == 3
        assert a["y"] == 3

    def test_total_prefix(self):
        c = Counters()
        c.add("iod.0.reqs", 5)
        c.add("iod.1.reqs", 7)
        c.add("iodine", 100)  # must NOT match the "iod." prefix
        assert c.total("iod") == 12

    def test_scoped_view_shares_storage(self):
        c = Counters()
        s = c.scoped("client.3")
        s.add("requests", 2)
        s.set("bytes", 10)
        assert c["client.3.requests"] == 2
        assert s["requests"] == 2
        assert s.get("bytes") == 10

    def test_as_dict_and_repr(self):
        c = Counters()
        c.add("k")
        assert c.as_dict() == {"k": 1.0}
        assert "Counters" in repr(c)


class TestTimeline:
    def test_record_and_last(self):
        t = Timeline("queue")
        t.record(0.0, 1)
        t.record(2.0, 3)
        assert len(t) == 2
        assert t.last() == (2.0, 3)
        assert t.max_value() == 3

    def test_rejects_time_travel(self):
        t = Timeline()
        t.record(5.0, 1)
        with pytest.raises(ValueError):
            t.record(4.0, 2)

    def test_empty(self):
        t = Timeline()
        assert len(t) == 0
        assert t.max_value() == 0.0
        with pytest.raises(IndexError):
            t.last()

    def test_time_weighted_mean(self):
        t = Timeline()
        t.record(0.0, 0.0)
        t.record(1.0, 10.0)  # value 0 held for 1s
        t.record(3.0, 0.0)  # value 10 held for 2s
        assert t.time_weighted_mean() == pytest.approx((0 * 1 + 10 * 2) / 3)

    def test_time_weighted_mean_single_sample(self):
        t = Timeline()
        t.record(1.0, 4.0)
        assert t.time_weighted_mean() == 4.0

    def test_time_weighted_mean_zero_span(self):
        t = Timeline()
        t.record(1.0, 4.0)
        t.record(1.0, 6.0)
        assert t.time_weighted_mean() == 6.0

    def test_time_weighted_mean_empty(self):
        assert Timeline().time_weighted_mean() == 0.0


class TestTimelineIntegrate:
    def timeline(self):
        t = Timeline("depth")
        t.record(1.0, 2.0)  # value 2 on [1, 3)
        t.record(3.0, 4.0)  # value 4 on [3, inf)
        return t

    def test_integrate_full_window(self):
        t = self.timeline()
        # [1,3): 2*2 = 4; [3,5): 4*2 = 8
        assert t.integrate(1.0, 5.0) == pytest.approx(12.0)

    def test_integrate_clips_to_window(self):
        t = self.timeline()
        # [2,3): 2*1; [3,4): 4*1
        assert t.integrate(2.0, 4.0) == pytest.approx(6.0)

    def test_integrate_before_first_sample_uses_initial(self):
        t = self.timeline()
        # [0,1): initial 7; [1,3): 2*2
        assert t.integrate(0.0, 3.0, initial=7.0) == pytest.approx(11.0)
        # default initial is 0
        assert t.integrate(0.0, 3.0) == pytest.approx(4.0)

    def test_integrate_window_entirely_before_samples(self):
        t = self.timeline()
        assert t.integrate(0.0, 0.5, initial=3.0) == pytest.approx(1.5)

    def test_integrate_last_value_persists(self):
        t = self.timeline()
        assert t.integrate(10.0, 12.0) == pytest.approx(8.0)

    def test_integrate_empty_timeline(self):
        t = Timeline()
        assert t.integrate(0.0, 4.0) == 0.0
        assert t.integrate(0.0, 4.0, initial=2.5) == pytest.approx(10.0)

    def test_integrate_reversed_window_raises(self):
        with pytest.raises(ValueError):
            self.timeline().integrate(5.0, 1.0)

    def test_mean_over(self):
        t = self.timeline()
        assert t.mean_over(1.0, 5.0) == pytest.approx(3.0)
        assert t.mean_over(10.0, 12.0) == pytest.approx(4.0)

    def test_mean_over_degenerate_window(self):
        t = self.timeline()
        assert t.mean_over(2.0, 2.0) == 0.0
        assert t.mean_over(3.0, 2.0) == 0.0
