"""Tests for wire-protocol sizing and request records."""

import numpy as np
import pytest

from repro.config import NetworkConfig
from repro.errors import ProtocolError
from repro.pvfs.protocol import (
    BYTES_PER_REGION,
    REQUEST_HEADER_BYTES,
    RESPONSE_HEADER_BYTES,
    IORequest,
    ManagerRequest,
    request_wire_bytes,
    response_wire_bytes,
)
from repro.regions import RegionList
from repro.simulate import Event, Simulator


class TestWireSizes:
    def test_contiguous_request_is_header_only(self):
        assert request_wire_bytes(1) == REQUEST_HEADER_BYTES

    def test_list_request_adds_trailing_data(self):
        assert request_wire_bytes(64) == REQUEST_HEADER_BYTES + 64 * BYTES_PER_REGION

    def test_write_request_carries_data(self):
        assert request_wire_bytes(1, data_bytes=500) == REQUEST_HEADER_BYTES + 500

    def test_max_list_request_fits_one_ethernet_frame(self):
        # The paper's design point (Section 3.3): a 64-region list request
        # (header + trailing data) travels in a single 1500-byte packet.
        net = NetworkConfig()
        assert request_wire_bytes(64) <= net.mtu_payload
        assert net.frames_for(request_wire_bytes(64)) == 1

    def test_65_regions_would_not_fit(self):
        net = NetworkConfig()
        assert net.frames_for(request_wire_bytes(90)) > 1

    def test_invalid_inputs(self):
        with pytest.raises(ProtocolError):
            request_wire_bytes(0)
        with pytest.raises(ProtocolError):
            request_wire_bytes(1, data_bytes=-1)
        with pytest.raises(ProtocolError):
            response_wire_bytes(-1)

    def test_response_sizes(self):
        assert response_wire_bytes() == RESPONSE_HEADER_BYTES
        assert response_wire_bytes(100) == RESPONSE_HEADER_BYTES + 100


class TestIORequest:
    def make(self, kind="read", n=4, data=None):
        sim = Simulator()
        regions = RegionList.contiguous(0, n * 10, 10)
        return IORequest(
            kind=kind,
            file_id=1,
            regions=regions,
            client_node=None,
            response=Event(sim),
            data=data,
        )

    def test_read_sizes(self):
        req = self.make("read", n=4)
        assert req.n_described == 4
        assert req.data_bytes == 0
        assert req.wire_bytes == request_wire_bytes(4)
        assert req.response_bytes == RESPONSE_HEADER_BYTES + 40

    def test_write_sizes(self):
        req = self.make("write", n=4, data=np.zeros(40, np.uint8))
        assert req.data_bytes == 40
        assert req.wire_bytes == request_wire_bytes(4, 40)
        assert req.response_bytes == RESPONSE_HEADER_BYTES

    def test_write_payload_size_checked(self):
        with pytest.raises(ProtocolError):
            self.make("write", n=4, data=np.zeros(39, np.uint8))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError):
            self.make("erase")

    def test_request_ids_unique(self):
        a, b = self.make(), self.make()
        assert a.request_id != b.request_id


class TestManagerRequest:
    def test_ops_validated(self):
        with pytest.raises(ProtocolError):
            ManagerRequest(op="format")

    def test_fixed_sizes(self):
        req = ManagerRequest(op="open", path="/x")
        assert req.wire_bytes == 256
        assert req.response_bytes == 256
