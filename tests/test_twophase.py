"""Two-phase collective I/O: the first-class ``twophase`` method.

Covers the ISSUE-10 acceptance surface: byte-identical file contents vs
the independent ``multiple`` method on random noncontiguous patterns
(property-based), jobs1 == jobs4 determinism through the sweep engine,
the aggregator/file-domain/round helpers, the analytic model, and the
wire codec round-trip of the new ``cb_buffer`` spec field.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ClusterConfig
from repro.core import METHODS, TwoPhaseIO
from repro.errors import RegionError
from repro.mpi import Communicator
from repro.mpiio.twophase import (
    MPIIOError,
    partition_file_domains,
    round_count,
    round_window,
    select_aggregators,
)
from repro.patterns import block_block, one_dim_cyclic
from repro.pvfs import Cluster
from repro.regions import RegionList, build_flat_indices
from repro.sweep import PointSpec, run_sweep
from repro.sweep.spec import MpiioSpec, canonical


# ---------------------------------------------------------------------------
# helpers: drive one collective transfer on a byte-moving cluster
# ---------------------------------------------------------------------------
def _contiguous_mem(file_regions: RegionList) -> RegionList:
    lengths = file_regions.lengths
    starts = np.concatenate(([0], np.cumsum(lengths)[:-1])) if lengths.size else lengths
    return RegionList(starts, lengths)


def _run_write(method_name, rank_regions, opts=None):
    """Write each rank's regions with random bytes; return the logical
    file contents (and total extent)."""
    n = len(rank_regions)
    cfg = ClusterConfig.chiba_city(n_clients=n)
    cluster = Cluster.build(cfg, move_bytes=True)
    method = METHODS[method_name](**(opts or {}))
    collective = getattr(method, "collective", False)
    comm = Communicator(cluster.sim, n) if collective else None
    shared = {}

    def workload(client):
        file_regions = rank_regions[client.index]
        mem_regions = _contiguous_mem(file_regions)
        rng = np.random.default_rng(1234 + client.index)
        mem = rng.integers(0, 256, max(mem_regions.total_bytes, 1), dtype=np.uint8)
        f = yield from client.open("/x", create=True)
        if collective:
            yield from method.collective_write(
                comm, client.index, shared, f, mem, mem_regions, file_regions
            )
        else:
            yield from method.write(f, mem, mem_regions, file_regions)
        yield from f.close()

    cluster.run_workload(workload)

    total = max((r.extent[1] for r in rank_regions if r.count), default=1)
    out = {}

    def reader(client):
        if client.index != 0:
            return
            yield
        f = yield from client.open("/x", create=False)
        data = yield from f.read_list(RegionList.from_pairs([(0, total)]))
        out["data"] = bytes(data)
        yield from f.close()

    cluster.run_workload(reader)
    return out["data"]


def _run_read(method_name, rank_regions, opts=None):
    """Seed the file with ``multiple`` writes, read back with
    ``method_name``; return per-rank read buffers + expected bytes."""
    n = len(rank_regions)
    cfg = ClusterConfig.chiba_city(n_clients=n)
    cluster = Cluster.build(cfg, move_bytes=True)
    seed_method = METHODS["multiple"]()
    method = METHODS[method_name](**(opts or {}))
    collective = getattr(method, "collective", False)
    comm = Communicator(cluster.sim, n) if collective else None
    shared = {}
    got = {}

    def workload(client):
        file_regions = rank_regions[client.index]
        mem_regions = _contiguous_mem(file_regions)
        rng = np.random.default_rng(99 + client.index)
        wmem = rng.integers(0, 256, max(mem_regions.total_bytes, 1), dtype=np.uint8)
        f = yield from client.open("/x", create=True)
        yield from seed_method.write(f, wmem, mem_regions, file_regions)
        mem = np.zeros(max(mem_regions.total_bytes, 1), np.uint8)
        got[client.index] = (wmem, mem, mem_regions)
        if collective:
            yield from method.collective_read(
                comm, client.index, shared, f, mem, mem_regions, file_regions
            )
        else:
            yield from method.read(f, mem, mem_regions, file_regions)
        yield from f.close()

    cluster.run_workload(workload)
    return got


# ---------------------------------------------------------------------------
# strategies: random noncontiguous patterns, disjoint across ranks
# ---------------------------------------------------------------------------
@st.composite
def rank_patterns(draw, max_ranks=4, max_regions=24, max_len=64, max_gap=64):
    n_ranks = draw(st.integers(2, max_ranks))
    n = draw(st.integers(n_ranks, max_regions))
    lengths = draw(st.lists(st.integers(1, max_len), min_size=n, max_size=n))
    gaps = draw(st.lists(st.integers(0, max_gap), min_size=n, max_size=n))
    owner = draw(st.lists(st.integers(0, n_ranks - 1), min_size=n, max_size=n))
    per_rank = [[] for _ in range(n_ranks)]
    pos = gaps[0]
    for ln, gap, r in zip(lengths, gaps, owner):
        per_rank[r].append((pos, ln))
        pos += ln + gap
    # present regions in reverse order on odd ranks: the method must sort
    out = []
    for r, pairs in enumerate(per_rank):
        if r % 2:
            pairs = list(reversed(pairs))
        out.append(RegionList.from_pairs(pairs))
    return out


class TestContentEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(rank_patterns())
    def test_write_matches_multiple(self, rank_regions):
        expect = _run_write("multiple", rank_regions)
        assert _run_write("twophase", rank_regions) == expect

    @settings(max_examples=6, deadline=None)
    @given(rank_patterns())
    def test_write_matches_multiple_multiround(self, rank_regions):
        expect = _run_write("multiple", rank_regions)
        got = _run_write("twophase", rank_regions, {"cb_nodes": 2, "cb_buffer": 256})
        assert got == expect

    @settings(max_examples=6, deadline=None)
    @given(rank_patterns())
    def test_read_returns_written_bytes(self, rank_regions):
        got = _run_read("twophase", rank_regions, {"cb_buffer": 512})
        for _rank, (wmem, mem, mem_regions) in got.items():
            idx = build_flat_indices(mem_regions.offsets, mem_regions.lengths)
            assert (wmem[idx] == mem[idx]).all()

    def test_fixed_blockblock_write_and_read(self):
        pattern = block_block(1 << 16, 4, 16)
        rank_regions = [pattern.rank(r).file_regions for r in range(4)]
        expect = _run_write("multiple", rank_regions)
        assert _run_write("twophase", rank_regions) == expect
        got = _run_read("twophase", rank_regions, {"cb_nodes": 3, "cb_buffer": 4096})
        for _rank, (wmem, mem, mem_regions) in got.items():
            idx = build_flat_indices(mem_regions.offsets, mem_regions.lengths)
            assert (wmem[idx] == mem[idx]).all()


# ---------------------------------------------------------------------------
# aggregator / file-domain / round helpers
# ---------------------------------------------------------------------------
class TestPartitioning:
    def test_select_aggregators_default_is_all_ranks(self):
        assert select_aggregators(4) == (0, 1, 2, 3)
        assert select_aggregators(4, 2) == (0, 1)

    @pytest.mark.parametrize("bad", [0, 5, -1])
    def test_select_aggregators_rejects_out_of_range(self, bad):
        with pytest.raises(MPIIOError):
            select_aggregators(4, bad)

    def test_domains_cover_extent_and_align(self):
        metas = {
            0: RegionList.from_pairs([(100, 50)]),
            1: RegionList.from_pairs([(1000, 200)]),
            2: RegionList.empty(),
        }
        domains = partition_file_domains(metas, 3, 2, align=128)
        assert domains[2] == (0, 0)  # not an aggregator's worth of work
        (a0, b0), (a1, b1) = domains[0], domains[1]
        assert a0 == 100 and b1 == 1200
        assert b0 == a1  # contiguous split
        assert (b0 - a0) % 128 == 0  # stripe-aligned slice

    def test_empty_metas_give_empty_domains(self):
        metas = {0: RegionList.empty(), 1: RegionList.empty()}
        assert partition_file_domains(metas, 2, 2, 64) == [(0, 0), (0, 0)]

    def test_round_count_and_windows_tile_the_domain(self):
        domains = [(0, 1000), (1000, 1600)]
        assert round_count(domains, None) == 1
        assert round_count(domains, 256) == 4
        covered = []
        for rnd in range(round_count(domains, 256)):
            covered.append(round_window(domains[0], rnd, 256))
        assert covered[0] == (0, 256)
        assert covered[-1] == (768, 1000)
        assert all(a == b or a < b for a, b in covered)

    def test_round_count_rejects_bad_buffer(self):
        with pytest.raises(MPIIOError):
            round_count([(0, 10)], 0)


# ---------------------------------------------------------------------------
# method-level contracts
# ---------------------------------------------------------------------------
class TestMethodContract:
    def test_registered_in_methods(self):
        assert METHODS["twophase"] is TwoPhaseIO
        assert TwoPhaseIO.collective is True

    def test_independent_calls_are_rejected(self):
        method = TwoPhaseIO()
        with pytest.raises(MPIIOError):
            next(method.read(None, None, RegionList.empty(), RegionList.empty()))
        with pytest.raises(MPIIOError):
            next(method.write(None, None, RegionList.empty(), RegionList.empty()))

    def test_constructor_validates_hints(self):
        with pytest.raises(MPIIOError):
            TwoPhaseIO(cb_nodes=0)
        with pytest.raises(MPIIOError):
            TwoPhaseIO(cb_buffer=0)

    def test_overlapping_regions_rejected(self):
        overlapping = RegionList.from_pairs([(0, 10), (5, 10)])
        regions = [overlapping, RegionList.from_pairs([(100, 10)])]
        with pytest.raises(RegionError):
            _run_write("twophase", regions)


# ---------------------------------------------------------------------------
# determinism through the sweep engine
# ---------------------------------------------------------------------------
class TestDeterminism:
    def _specs(self):
        cfg = ClusterConfig.chiba_city(n_clients=4)
        specs = []
        for pattern, kind, opts in (
            ("one_dim_cyclic", "write", ()),
            ("block_block", "read", (("cb_buffer", 65536),)),
        ):
            specs.append(
                PointSpec(
                    figure="figTP",
                    pattern=pattern,
                    pattern_args=(1 << 20, 4, 64),
                    method="twophase",
                    kind=kind,
                    mode="des",
                    cfg=cfg,
                    x=64,
                    opts=opts,
                )
            )
        return specs

    def test_jobs4_bit_identical_to_jobs1(self):
        specs = self._specs()
        serial, _ = run_sweep(specs, jobs=1)
        parallel, _ = run_sweep(specs, jobs=4)
        assert parallel == serial  # dataclass equality: exact floats


# ---------------------------------------------------------------------------
# analytic model
# ---------------------------------------------------------------------------
class TestModel:
    def test_prediction_structure(self):
        from repro.model import predict_pattern

        pattern = block_block(1 << 20, 4, 64)
        pred = predict_pattern(pattern, "twophase", "write", ClusterConfig.chiba_city(4))
        assert pred.exchange_bound > 0
        assert pred.elapsed >= pred.exchange_bound
        assert pred.useful_bytes == pattern.total_bytes
        assert pred.moved_bytes > pred.useful_bytes  # exchange traffic counted

    def test_model_agrees_with_des_on_blockblock_write(self):
        from repro.experiments.harness import des_point, model_point

        pattern = block_block(1 << 20, 4, 64)
        des_tp = des_point(pattern, "twophase", "write").elapsed
        des_ls = des_point(pattern, "list", "write").elapsed
        mod_tp = model_point(pattern, "twophase", "write").elapsed
        mod_ls = model_point(pattern, "list", "write").elapsed
        assert des_tp < des_ls  # two-phase wins on interleaved block-block
        assert mod_tp < mod_ls  # and the model predicts the same winner

    def test_crossover_point(self):
        from repro.model import crossover_point

        assert crossover_point([1, 2, 3], [5, 3, 1], [4, 4, 4]) == 2
        assert crossover_point([1, 2], [9, 9], [1, 1]) is None

    def test_cb_buffer_adds_rounds_and_cost(self):
        from repro.model import predict_twophase

        pattern = one_dim_cyclic(1 << 20, 4, 64)
        cfg = ClusterConfig.chiba_city(4)
        one = predict_twophase(pattern, "write", cfg)
        many = predict_twophase(pattern, "write", cfg, cb_buffer=16 * 1024)
        assert many.exchange_bound > one.exchange_bound


# ---------------------------------------------------------------------------
# wire codec / cache keys
# ---------------------------------------------------------------------------
class TestWire:
    def test_mpiio_spec_cb_buffer_roundtrips(self):
        from repro.experiments.presets import SMOKE
        from repro.service import decode_spec, encode_spec

        spec = MpiioSpec(
            scale=SMOKE, n_ranks=2, collective=True, cb_buffer=65536
        )
        assert decode_spec(encode_spec(spec)) == spec
        assert canonical(decode_spec(encode_spec(spec))) == canonical(spec)

    def test_cb_buffer_changes_cache_key(self):
        from repro.experiments.presets import SMOKE

        a = MpiioSpec(scale=SMOKE, n_ranks=2, collective=True)
        b = MpiioSpec(scale=SMOKE, n_ranks=2, collective=True, cb_buffer=65536)
        assert a.cache_token() != b.cache_token()
