"""The top-level public API surface must stay importable and complete."""

import repro


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_core_types_present(self):
        assert repro.Cluster is not None
        assert repro.ClusterConfig is not None
        assert repro.RegionList is not None
        for m in ("MultipleIO", "DataSievingIO", "ListIO", "HybridIO", "VectorIO"):
            assert getattr(repro, m).name

    def test_readme_quickstart_runs(self):
        """The README's quickstart snippet, verbatim in spirit."""
        import numpy as np

        cluster = repro.Cluster.build(repro.ClusterConfig.chiba_city(n_clients=1))
        payload = np.arange(4096, dtype=np.uint8)

        def workload(client):
            f = yield from client.open("/demo", create=True)
            yield from repro.pvfs_write_list(
                f,
                payload,
                mem_offsets=[0],
                mem_lengths=[4096],
                file_offsets=[0, 65536],
                file_lengths=[2048, 2048],
            )
            yield from f.close()

        result = cluster.run_workload(workload, clients=[0])
        assert result.elapsed > 0
        assert cluster.counters["client.0.logical_requests"] == 1
