"""Integration tests: whole-stack scenarios across modules."""

import numpy as np

from repro.config import ClusterConfig, StripeParams
from repro.core import DataSievingIO, ListIO, MultipleIO, VectorIO
from repro.mpi import Communicator
from repro.patterns import FlashConfig, flash_io, one_dim_cyclic, tiled_visualization
from repro.pvfs import Cluster
from repro.regions import RegionList, build_flat_indices
from repro.units import KiB


def cluster_(**kw) -> Cluster:
    kw.setdefault("n_clients", 4)
    kw.setdefault("n_iods", 4)
    kw.setdefault("stripe", StripeParams(stripe_size=256))
    return Cluster.build(ClusterConfig(**kw))


class TestDeterminism:
    def test_identical_runs_produce_identical_times(self):
        def run():
            cluster = cluster_()

            def wl(client):
                f = yield from client.open(f"/d{client.index}", create=True)
                yield from f.write(0, np.zeros(10_000, np.uint8))
                yield from f.read(0, 10_000)
                yield from f.close()
                return float(client.sim.now)

            return cluster.run_workload(wl).elapsed

        assert run() == run()

    def test_counters_consistent_with_daemon_state(self):
        cluster = cluster_()

        def wl(client):
            f = yield from client.open("/c", create=True)
            yield from f.write_list(
                RegionList.strided(client.index * 64, 10, 8, 1024),
                np.zeros(80, np.uint8),
            )
            yield from f.close()

        res = cluster.run_workload(wl)
        served = sum(iod.requests_served for iod in cluster.iods)
        assert served == res.total_server_messages


class TestConcurrentClients:
    def test_parallel_writers_to_disjoint_regions(self):
        cluster = cluster_()
        n = cluster.config.n_clients

        def wl(client):
            regions = RegionList.strided(client.index * 100, 20, 100, 100 * n)
            payload = np.full(2000, client.index + 1, np.uint8)
            f = yield from client.open("/par", create=True)
            yield from f.write_list(regions, payload)
            yield from f.close()

        cluster.run_workload(wl)

        def check(client):
            f = yield from client.open("/par")
            data = yield from f.read(0, 100 * n * 20)
            yield from f.close()
            return data

        data = cluster.run_workload(check, clients=[0]).client_returns[0]
        for c in range(n):
            idx = build_flat_indices(
                RegionList.strided(c * 100, 20, 100, 100 * n).offsets,
                np.full(20, 100, np.int64),
            )
            assert (data[idx] == c + 1).all()

    def test_mixed_methods_interoperate(self):
        """A file written with list I/O must read identically through every
        other method, concurrently."""
        cluster = cluster_()
        total = 6400
        payload = (np.arange(total) % 199).astype(np.uint8)
        regions = RegionList.strided(0, 64, 100, 100)

        def writer(client):
            f = yield from client.open("/mix", create=True)
            yield from ListIO().write(
                f, payload, RegionList.single(0, total), regions
            )
            yield from f.close()

        cluster.run_workload(writer, clients=[0])
        methods = [MultipleIO(), DataSievingIO(), ListIO(), VectorIO()]
        bufs = [np.zeros(total, np.uint8) for _ in methods]

        def reader(client):
            f = yield from client.open("/mix")
            yield from methods[client.index].read(
                f, bufs[client.index], RegionList.single(0, total), regions
            )
            yield from f.close()

        cluster.run_workload(reader)
        for method, buf in zip(methods, bufs):
            np.testing.assert_array_equal(buf, payload, err_msg=method.name)


class TestFlashEndToEnd:
    def test_checkpoint_bytes_land_in_variable_major_order(self):
        mesh = FlashConfig(n_blocks=2, nxb=2, nyb=2, nzb=2, n_vars=2, n_guard=1)
        pattern = flash_io(2, mesh)
        cluster = cluster_(n_clients=2)
        # each proc fills its padded blocks with (rank+1)
        buf_size = pattern.rank(0).mem_regions.extent[1]

        def wl(client):
            access = pattern.rank(client.index)
            memory = np.full(buf_size, client.index + 1, np.uint8)
            f = yield from client.open("/flash", create=True)
            yield from ListIO().write(
                f, memory, access.mem_regions, access.file_regions
            )
            yield from f.close()

        cluster.run_workload(wl)

        def check(client):
            f = yield from client.open("/flash")
            data = yield from f.read(0, pattern.file_size)
            yield from f.close()
            return data

        data = cluster.run_workload(check, clients=[0]).client_returns[0]
        chunk = mesh.chunk_bytes
        # offset(v, b, p): proc p's chunks hold value p+1
        for vb in range(mesh.n_vars * mesh.n_blocks):
            for p in range(2):
                lo = (vb * 2 + p) * chunk
                assert (data[lo : lo + chunk] == p + 1).all()

    def test_sieving_checkpoint_equivalent_to_list(self):
        mesh = FlashConfig(n_blocks=2, nxb=2, nyb=2, nzb=2, n_vars=3, n_guard=1)
        pattern = flash_io(2, mesh)

        def run(method, serialize):
            cluster = cluster_(n_clients=2)
            comm = Communicator(cluster.sim, 2)
            buf_size = pattern.rank(0).mem_regions.extent[1]

            def wl(client):
                access = pattern.rank(client.index)
                rng = np.random.default_rng(client.index)
                memory = rng.integers(0, 256, buf_size).astype(np.uint8)
                f = yield from client.open("/f", create=True)
                if serialize:
                    yield from method.serialized_write(
                        comm, client.index, f, memory,
                        access.mem_regions, access.file_regions,
                    )
                else:
                    yield from method.write(
                        f, memory, access.mem_regions, access.file_regions
                    )
                yield from f.close()

            cluster.run_workload(wl)

            def check(client):
                f = yield from client.open("/f")
                data = yield from f.read(0, pattern.file_size)
                yield from f.close()
                return data

            return cluster.run_workload(check, clients=[0]).client_returns[0]

        np.testing.assert_array_equal(
            run(ListIO(), False), run(DataSievingIO(), True)
        )


class TestTiledEndToEnd:
    def test_overlapping_tiles_read_shared_pixels(self):
        from repro.patterns import TiledConfig

        geometry = TiledConfig(
            tiles_x=2, tiles_y=1, tile_width=8, tile_height=4,
            overlap_x=2, overlap_y=0, bytes_per_pixel=1,
        )
        pattern = tiled_visualization(geometry)
        cluster = cluster_(n_clients=2)
        frame = (np.arange(geometry.file_size) % 251).astype(np.uint8)

        def prefill(client):
            f = yield from client.open("/frame", create=True)
            yield from f.write(0, frame)
            yield from f.close()

        cluster.run_workload(prefill, clients=[0])
        tiles = [np.zeros(pattern.rank(r).nbytes, np.uint8) for r in range(2)]

        def reader(client):
            access = pattern.rank(client.index)
            f = yield from client.open("/frame")
            yield from ListIO().read(
                f, tiles[client.index], access.mem_regions, access.file_regions
            )
            yield from f.close()

        cluster.run_workload(reader)
        # tile 0 cols 0..8, tile 1 cols 6..14 -> shared cols 6..8
        width = geometry.frame_width
        for row in range(4):
            t0_row = tiles[0][row * 8 : row * 8 + 8]
            t1_row = tiles[1][row * 8 : row * 8 + 8]
            np.testing.assert_array_equal(t0_row, frame[row * width : row * width + 8])
            np.testing.assert_array_equal(
                t0_row[6:8], t1_row[0:2]
            )  # the overlap pixels agree


class TestDescribedRequests:
    def test_described_read_matches_list_read(self):
        cluster = cluster_(n_clients=1)
        regions = RegionList.strided(0, 100, 8, 64)
        payload = (np.arange(800) % 250).astype(np.uint8)

        def wl(client):
            f = yield from client.open("/v", create=True)
            yield from f.write_list(regions, payload)
            via_list = yield from f.read_list(regions)
            via_vec = yield from f.read_described(regions)
            yield from f.close()
            return via_list, via_vec

        res = cluster.run_workload(wl, clients=[0])
        via_list, via_vec = res.client_returns[0]
        np.testing.assert_array_equal(via_list, via_vec)

    def test_described_request_counts_as_one(self):
        cluster = cluster_(n_clients=1)
        regions = RegionList.strided(0, 1000, 8, 64)

        def wl(client):
            f = yield from client.open("/v1", create=True)
            yield from f.read_described(regions)
            yield from f.close()

        cluster.run_workload(wl, clients=[0])
        assert cluster.counters["client.0.logical_requests"] == 1

    def test_described_write_roundtrip(self):
        cluster = cluster_(n_clients=1)
        regions = RegionList.strided(16, 50, 4, 40)
        payload = np.arange(200, dtype=np.uint8)

        def wl(client):
            f = yield from client.open("/v2", create=True)
            yield from f.write_described(regions, payload)
            got = yield from f.read_list(regions)
            yield from f.close()
            return got

        res = cluster.run_workload(wl, clients=[0])
        np.testing.assert_array_equal(res.client_returns[0], payload)


class TestScalingBehaviour:
    def test_more_servers_speed_up_bulk_reads(self):
        def run(n_iods):
            cluster = Cluster.build(
                ClusterConfig(n_clients=2, n_iods=n_iods, stripe=StripeParams(stripe_size=16 * KiB)),
                move_bytes=False,
            )

            def wl(client):
                f = yield from client.open("/bulk", create=True)
                yield from f.write(0, None, length=4_000_000)
                yield from f.close()

            return cluster.run_workload(wl).elapsed

        assert run(8) < run(1)

    def test_request_counts_scale_with_fragmentation_not_volume(self):
        pattern_coarse = one_dim_cyclic(1 << 20, 4, 128)
        pattern_fine = one_dim_cyclic(1 << 20, 4, 1024)

        def count(pattern):
            cluster = Cluster.build(
                ClusterConfig(n_clients=4), move_bytes=False
            )

            def wl(client):
                a = pattern.rank(client.index)
                f = yield from client.open("/r", create=True)
                yield from ListIO().read(f, None, a.mem_regions, a.file_regions)
                yield from f.close()

            return cluster.run_workload(wl).total_logical_requests

        assert count(pattern_fine) == 8 * count(pattern_coarse)
