"""Kernel stress tests for the fast-path/lazy-cancellation heap.

Satellite of the fast-path PR: seeded programs interleaving schedule /
interrupt / ``any_of`` races must produce *identical* observable event
orderings and final simulation time with the kernel fast paths on
(eager process start + lazy cancellation) and off (the exact legacy
event chains, ``PVFS_SIM_NO_FASTPATH=1``) — plus direct unit coverage of
``Event.cancel`` semantics and the cancellation-aware accounting in
``Simulator`` and ``repro.obs.prof``.
"""

import os
import random
from contextlib import contextmanager

import pytest

from repro.errors import SimulationError
from repro.obs.prof import KernelProfiler, profiled
from repro.simulate import NO_FASTPATH_ENV, Interrupt, Simulator


@contextmanager
def _fastpath(enabled):
    old = os.environ.get(NO_FASTPATH_ENV)
    if enabled:
        os.environ.pop(NO_FASTPATH_ENV, None)
    else:
        os.environ[NO_FASTPATH_ENV] = "1"
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(NO_FASTPATH_ENV, None)
        else:
            os.environ[NO_FASTPATH_ENV] = old


def _make_sim(fastpath):
    with _fastpath(fastpath):
        sim = Simulator()
    assert sim.fastpath is fastpath
    return sim


# ---------------------------------------------------------------------------
# Randomized stress: schedule / interrupt / cancel interleavings.
# ---------------------------------------------------------------------------

#: Delays are multiples of 1/8 so float arithmetic is exact and trace
#: comparison can use ``==``.
_Q = 8.0
#: A sentinel sleep longer than any generated op/interrupt time, so the
#: heap always drains past every lazily-cancelled orphan and the final
#: clock is comparable between modes.
_HORIZON = 100.0


def _stress_program(seed):
    """Precompute a deterministic op schedule (never draw during the run:
    both modes must replay the exact same program)."""
    rng = random.Random(seed)
    workers = []
    for _ in range(6):
        ops = []
        for _ in range(rng.randint(3, 8)):
            kind = rng.choice(["timeout", "race", "join", "spawn"])
            d1 = rng.randint(1, 24) / _Q
            d2 = rng.randint(1, 48) / _Q
            ops.append((kind, d1, d2))
        workers.append(ops)
    interrupts = sorted(
        ((rng.randint(1, 40) / _Q, rng.randrange(len(workers))) for _ in range(5))
    )
    return workers, interrupts


def _run_stress(seed, fastpath):
    workers, interrupts = _stress_program(seed)
    sim = _make_sim(fastpath)
    trace = []
    procs = []

    def worker(sim, wid, ops):
        for i, (kind, d1, d2) in enumerate(ops):
            try:
                if kind == "timeout":
                    yield sim.timeout(d1)
                elif kind == "race":
                    got = yield sim.any_of([sim.timeout(d1, "fast"), sim.timeout(d2, "slow")])
                    trace.append((sim.now, wid, i, f"race:{got[0]}"))
                elif kind == "join":
                    yield sim.all_of([sim.timeout(d1), sim.timeout(d2)])
                else:  # spawn: nested process started mid-run
                    child = sim.process(_child(sim, wid, i, d1), name=f"w{wid}.c{i}")
                    yield child
            except Interrupt as exc:
                trace.append((sim.now, wid, i, f"interrupted:{exc.cause}"))
            else:
                trace.append((sim.now, wid, i, kind))
        trace.append((sim.now, wid, -1, "done"))

    def _child(sim, wid, i, d):
        trace.append((sim.now, wid, i, "child-start"))
        yield sim.timeout(d)
        return d

    def saboteur(sim):
        for k, (when, target) in enumerate(interrupts):
            if when > sim.now:
                yield sim.timeout(when - sim.now)
            p = procs[target]
            if p.is_alive:
                p.interrupt(k)
                trace.append((sim.now, -1, k, f"hit:w{target}"))

    def closer(sim):
        yield sim.timeout(_HORIZON)
        trace.append((sim.now, -2, -2, "horizon"))

    for wid, ops in enumerate(workers):
        procs.append(sim.process(worker(sim, wid, ops), name=f"w{wid}"))
    sim.process(saboteur(sim), name="saboteur")
    sim.process(closer(sim), name="closer")
    final = sim.run()
    return {
        "trace": trace,
        "final": final,
        "scheduled": sim.events_scheduled,
        "cancelled": sim.events_cancelled,
    }


@pytest.mark.parametrize("seed", range(10))
def test_stress_interleavings_identical_on_vs_off(seed):
    on = _run_stress(seed, fastpath=True)
    off = _run_stress(seed, fastpath=False)
    assert on["trace"] == off["trace"]
    assert on["final"] == off["final"] == _HORIZON
    # The legacy mode never cancels; the fast mode never dispatches more.
    assert off["cancelled"] == 0
    assert on["scheduled"] <= off["scheduled"]


def test_stress_exercises_cancellation():
    """At least one seed must actually hit the lazy-cancel path, or the
    stress comparison above proves nothing about it."""
    assert any(_run_stress(seed, fastpath=True)["cancelled"] > 0 for seed in range(10))


# ---------------------------------------------------------------------------
# Event.cancel semantics.
# ---------------------------------------------------------------------------


class TestCancelSemantics:
    def test_cancel_triggered_timeout(self):
        sim = _make_sim(True)
        ev = sim.timeout(5.0)
        assert ev.cancel() is True
        assert sim.events_cancelled == 1
        assert ev.cancel() is False  # idempotent

    def test_cancel_pending_event_refused(self):
        sim = _make_sim(True)
        ev = sim.event()  # never triggered
        assert ev.cancel() is False
        assert sim.events_cancelled == 0

    def test_cancel_processed_event_refused(self):
        sim = _make_sim(True)
        ev = sim.timeout(1.0)
        sim.run()
        assert ev.processed
        assert ev.cancel() is False

    def test_peek_and_step_skip_cancelled(self):
        sim = _make_sim(True)
        dead = sim.timeout(1.0)
        live = sim.timeout(2.0)
        dead.cancel()
        assert sim.peek() == 2.0
        sim.step()
        assert sim.now == 2.0
        assert live.processed and not dead.processed

    def test_step_on_all_cancelled_heap_raises(self):
        sim = _make_sim(True)
        sim.timeout(1.0).cancel()
        assert sim.peek() == float("inf")
        with pytest.raises(SimulationError):
            sim.step()

    def test_run_never_advances_to_cancelled_tail(self):
        """A cancelled orphan at the heap tail is skipped without the
        clock ever reaching its timestamp."""
        sim = _make_sim(True)

        def sleeper(sim):
            try:
                yield sim.timeout(50.0)
            except Interrupt:
                pass

        def boss(sim, p):
            yield sim.timeout(1.0)
            p.interrupt("stop")

        p = sim.process(sleeper(sim))
        sim.process(boss(sim, p))
        sim.run()
        assert sim.now == 1.0
        assert sim.events_cancelled == 1


# ---------------------------------------------------------------------------
# Accounting: events_scheduled / profiler heap lanes stay truthful.
# ---------------------------------------------------------------------------


def _interrupted_workload(sim):
    def sleeper(sim):
        try:
            yield sim.timeout(50.0)
        except Interrupt:
            yield sim.timeout(0.5)

    def boss(sim, ps):
        yield sim.timeout(1.0)
        for p in ps:
            p.interrupt("stop")

    ps = [sim.process(sleeper(sim), name=f"s{i}") for i in range(4)]
    sim.process(boss(sim, ps), name="boss")


def test_events_scheduled_excludes_cancelled():
    sim = _make_sim(True)
    _interrupted_workload(sim)
    sim.run()
    assert sim.events_cancelled == 4  # one orphaned 50 s timeout per sleeper
    assert sim.events_scheduled == sim._seq - 4
    # The raw sequence counter keeps total ordering; the public counter
    # only reflects events the dispatcher actually ran.
    assert sim.events_scheduled < sim._seq


def test_profiler_heap_lanes_truthful_under_cancellation():
    prof = KernelProfiler()
    with profiled(prof):
        sim = Simulator()
        if not sim.fastpath:  # pragma: no cover - env override
            pytest.skip("fast paths disabled in this environment")
        _interrupted_workload(sim)
        sim.run()
    profile = prof.profile()
    # The invariant the heap-stats lane exists to protect: live pushes
    # match dispatched events exactly, cancelled churn is lane-separated.
    assert profile.heap_pushes == profile.events == sim.events_scheduled
    assert profile.heap_cancelled == sim.events_cancelled == 4
    assert "(+4 cancelled)" in profile.to_markdown()
    assert profile.to_json()["heap_cancelled"] == 4


def test_profiler_heap_lanes_identical_semantics_without_fastpath():
    prof = KernelProfiler()
    with profiled(prof):
        with _fastpath(False):
            sim = Simulator()
        _interrupted_workload(sim)
        sim.run()
    profile = prof.profile()
    assert profile.heap_pushes == profile.events == sim.events_scheduled
    assert profile.heap_cancelled == sim.events_cancelled == 0
