"""Shared test configuration.

Hypothesis: disable deadlines globally (simulation-backed properties have
legitimately variable wall time) and fix a generous example budget so the
suite stays deterministic across machines.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
