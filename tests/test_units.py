"""Tests for repro.units."""

from repro import units


def test_binary_units_are_powers_of_two():
    assert units.KiB == 2**10
    assert units.MiB == 2**20
    assert units.GiB == 2**30


def test_decimal_units():
    assert units.KB == 1000
    assert units.MB == 10**6
    assert units.GB == 10**9


def test_time_helpers():
    assert units.usec(1.0) == 1e-6
    assert units.msec(2.0) == 2e-3
    assert units.msec(1000.0) == 1.0


def test_bandwidth_helper():
    # 100 Mbit/s == 12.5 MB/s
    assert units.Mbit_per_s(100.0) == 12.5e6


def test_fmt_bytes():
    assert units.fmt_bytes(512) == "512 B"
    assert units.fmt_bytes(2048) == "2.00 KiB"
    assert units.fmt_bytes(3 * units.MiB) == "3.00 MiB"
    assert units.fmt_bytes(units.GiB) == "1.00 GiB"


def test_fmt_time():
    assert units.fmt_time(2.5) == "2.500 s"
    assert units.fmt_time(0.0025) == "2.500 ms"
    assert units.fmt_time(25e-6) == "25.0 us"
