"""Tests for the MPI-IO layer: views, independent I/O, two-phase collectives."""

import numpy as np
import pytest

from repro.config import ClusterConfig, StripeParams
from repro.datatypes import BYTE, DOUBLE, Contiguous, DatatypeError, HVector
from repro.mpi import Communicator
from repro.mpiio import FileView, open_one
from repro.pvfs import Cluster
from repro.regions import RegionList


def make_cluster(n_clients=2, **kw) -> Cluster:
    kw.setdefault("n_iods", 4)
    kw.setdefault("stripe", StripeParams(stripe_size=128))
    return Cluster.build(ClusterConfig(n_clients=n_clients, **kw))


class TestFileView:
    def test_default_view_is_raw_bytes(self):
        v = FileView()
        assert v.is_contiguous
        assert list(v.regions_for(10, 5)) == [(10, 5)]

    def test_displacement_shifts(self):
        v = FileView(disp=100)
        assert list(v.regions_for(0, 4)) == [(100, 4)]

    def test_vector_filetype(self):
        # see 2 bytes of every 8
        v = FileView(filetype=HVector(BYTE, count=1, blocklength=2, stride=8))
        # hvector extent = 2; tile stride comes from extent... use Resized
        from repro.datatypes import Resized

        v = FileView(filetype=Resized(Contiguous(BYTE, 2), 8))
        assert list(v.regions_for(0, 6)) == [(0, 2), (8, 2), (16, 2)]

    def test_offset_in_etype_units(self):
        from repro.datatypes import Resized

        v = FileView(
            etype=DOUBLE, filetype=Resized(Contiguous(DOUBLE, 1), 32)
        )
        # etype offset 2 = 16 stream bytes = 2 filetype instances in
        assert list(v.regions_for(2, 8)) == [(64, 8)]

    def test_partial_instance_reads(self):
        from repro.datatypes import Resized

        v = FileView(filetype=Resized(Contiguous(BYTE, 4), 16))
        assert list(v.regions_for(2, 4)) == [(2, 2), (16, 2)]

    def test_non_etype_multiple_rejected(self):
        v = FileView(etype=DOUBLE, filetype=DOUBLE)
        with pytest.raises(DatatypeError):
            v.regions_for(0, 4)  # half a double

    def test_filetype_must_hold_whole_etypes(self):
        with pytest.raises(DatatypeError):
            FileView(etype=DOUBLE, filetype=Contiguous(BYTE, 4))

    def test_zero_bytes(self):
        assert FileView().regions_for(5, 0).count == 0


def run_ranks(cluster, body):
    """Run `body(client, shared)` on every client; returns client_returns."""
    shared = {}

    def wl(client):
        result = yield from body(client, shared)
        return result

    return cluster.run_workload(wl).client_returns


class TestIndependentIO:
    def test_read_write_roundtrip_with_view(self):
        from repro.datatypes import Resized

        cluster = make_cluster(n_clients=2)
        comm = Communicator(cluster.sim, 2)
        # interleaved views: rank r sees bytes r*4 .. r*4+4 of every 8
        payloads = [np.full(64, r + 1, np.uint8) for r in range(2)]
        outs = [None, None]

        def body(client, shared):
            r = client.index
            mf = yield from open_one(comm, client, "/v", shared)
            mf.set_view(
                disp=r * 4, filetype=Resized(Contiguous(BYTE, 4), 8)
            )
            yield from mf.write_at(0, payloads[r])
            outs[r] = yield from mf.read_at(0, 64)
            yield from mf.close()

        run_ranks(cluster, body)
        for r in range(2):
            np.testing.assert_array_equal(outs[r], payloads[r])

    def test_views_interleave_in_file(self):
        from repro.datatypes import Resized

        cluster = make_cluster(n_clients=2)
        comm = Communicator(cluster.sim, 2)

        def body(client, shared):
            r = client.index
            mf = yield from open_one(comm, client, "/i", shared)
            mf.set_view(disp=r * 2, filetype=Resized(Contiguous(BYTE, 2), 4))
            yield from mf.write_at(0, np.full(8, r + 1, np.uint8))
            yield from mf.close()

        run_ranks(cluster, body)

        def check(client):
            f = yield from client.open("/i")
            data = yield from f.read(0, 16)
            yield from f.close()
            return data

        data = cluster.run_workload(check, clients=[0]).client_returns[0]
        np.testing.assert_array_equal(
            data, np.array([1, 1, 2, 2] * 4, np.uint8)
        )


class TestMemoryDatatypes:
    def test_noncontig_memory_and_file_roundtrip(self):
        """The paper's hardest case (FLASH-like): noncontiguous in memory
        AND file, through MPI datatypes on both sides."""
        from repro.datatypes import Contiguous, Resized

        cluster = make_cluster(n_clients=1)
        comm = Communicator(cluster.sim, 1)
        shared = {}
        # memory: 4 data bytes every 12; file: 4 visible bytes every 8
        mem_t = Resized(Contiguous(BYTE, 4), 12)
        buf = np.zeros(12 * 16, np.uint8)
        src = (np.arange(12 * 16) % 97).astype(np.uint8)
        out = np.zeros_like(buf)

        def wl(client):
            mf = yield from open_one(comm, client, "/md", shared)
            mf.set_view(filetype=Resized(Contiguous(BYTE, 4), 8))
            yield from mf.write_at(0, src, mem_datatype=mem_t, count=16)
            yield from mf.read_at(0, memory=out, mem_datatype=mem_t, count=16)
            yield from mf.close()

        cluster.run_workload(wl)
        from repro.regions import build_flat_indices

        regions = mem_t.flatten(16)
        idx = build_flat_indices(regions.offsets, regions.lengths)
        np.testing.assert_array_equal(out[idx], src[idx])
        assert (np.delete(out, idx) == 0).all()  # gaps untouched

    def test_mem_datatype_gaps_not_written_to_file(self):
        from repro.datatypes import Contiguous, Resized

        cluster = make_cluster(n_clients=1)
        comm = Communicator(cluster.sim, 1)
        shared = {}
        mem_t = Resized(Contiguous(BYTE, 2), 4)  # 2 data, 2 gap

        def wl(client):
            mf = yield from open_one(comm, client, "/mg", shared)
            src = np.array([1, 2, 99, 99, 3, 4, 99, 99], np.uint8)
            yield from mf.write_at(0, src, mem_datatype=mem_t, count=2)
            got = yield from mf.read_at(0, 4)
            yield from mf.close()
            return got

        res = cluster.run_workload(wl)
        np.testing.assert_array_equal(res.client_returns[0], [1, 2, 3, 4])


class TestCollectiveWrite:
    def _roundtrip(self, n_ranks, stride_elems=None):
        """Each rank writes its interleaved slice collectively; verify the
        assembled file."""
        from repro.datatypes import Resized

        cluster = make_cluster(n_clients=n_ranks)
        comm = Communicator(cluster.sim, n_ranks)
        piece = 8
        reps = 16

        def body(client, shared):
            r = client.index
            mf = yield from open_one(comm, client, "/coll", shared)
            mf.set_view(
                disp=r * piece,
                filetype=Resized(Contiguous(BYTE, piece), piece * n_ranks),
            )
            payload = np.full(piece * reps, r + 1, np.uint8)
            yield from mf.write_at_all(0, payload)
            yield from mf.close()

        shared = {}

        def wl(client):
            yield from body(client, shared)

        cluster.run_workload(wl)

        def check(client):
            f = yield from client.open("/coll")
            data = yield from f.read(0, piece * n_ranks * reps)
            yield from f.close()
            return data

        data = cluster.run_workload(check, clients=[0]).client_returns[0]
        expect = np.tile(
            np.repeat(np.arange(1, n_ranks + 1, dtype=np.uint8), piece), reps
        )
        np.testing.assert_array_equal(data, expect)

    def test_two_ranks(self):
        self._roundtrip(2)

    def test_four_ranks(self):
        self._roundtrip(4)

    def test_collective_write_coalesces_requests(self):
        """The whole point of two-phase: interleaved tiny writes become one
        streaming request per aggregator."""
        from repro.datatypes import Resized

        n_ranks, piece, reps = 4, 8, 1024

        def run(collective):
            cluster = make_cluster(n_clients=n_ranks)
            comm = Communicator(cluster.sim, n_ranks)
            shared = {}

            def wl(client):
                r = client.index
                mf = yield from open_one(comm, client, "/c2", shared)
                mf.set_view(
                    disp=r * piece,
                    filetype=Resized(Contiguous(BYTE, piece), piece * n_ranks),
                )
                payload = np.zeros(piece * reps, np.uint8)
                if collective:
                    yield from mf.write_at_all(0, payload)
                else:
                    yield from mf.write_at(0, payload)
                yield from mf.close()

            res = cluster.run_workload(wl)
            return res, cluster

        res_ind, cl_ind = run(collective=False)
        res_coll, cl_coll = run(collective=True)
        # independent: every rank writes `reps` interleaved pieces
        # collective: each aggregator writes one contiguous domain
        assert res_coll.total_logical_requests < res_ind.total_logical_requests
        assert res_coll.elapsed < res_ind.elapsed

    @pytest.mark.parametrize("cb_nodes", [1, 2, 4])
    def test_cb_nodes_roundtrip(self, cb_nodes):
        """Any aggregator count must produce the same file contents."""
        from repro.datatypes import BYTE, Contiguous, Resized

        n_ranks, piece, reps = 4, 8, 8
        cluster = make_cluster(n_clients=n_ranks)
        comm = Communicator(cluster.sim, n_ranks)
        shared = {}

        def wl(client):
            r = client.index
            mf = yield from open_one(
                comm, client, "/cb", shared, cb_nodes=cb_nodes
            )
            mf.set_view(
                disp=r * piece,
                filetype=Resized(Contiguous(BYTE, piece), piece * n_ranks),
            )
            yield from mf.write_at_all(0, np.full(piece * reps, r + 1, np.uint8))
            yield from mf.close()

        cluster.run_workload(wl)

        def check(client):
            f = yield from client.open("/cb")
            data = yield from f.read(0, piece * n_ranks * reps)
            yield from f.close()
            return data

        data = cluster.run_workload(check, clients=[0]).client_returns[0]
        expect = np.tile(
            np.repeat(np.arange(1, n_ranks + 1, dtype=np.uint8), piece), reps
        )
        np.testing.assert_array_equal(data, expect)

    def test_cb_nodes_validated(self):
        cluster = make_cluster(n_clients=2)
        comm = Communicator(cluster.sim, 2)
        shared = {}

        def wl(client):
            try:
                yield from open_one(comm, client, "/bad", shared, cb_nodes=5)
            except Exception as e:
                return type(e).__name__

        res = cluster.run_workload(wl)
        assert res.client_returns == ["MPIIOError", "MPIIOError"]

    def test_rank_with_empty_contribution(self):
        cluster = make_cluster(n_clients=2)
        comm = Communicator(cluster.sim, 2)
        shared = {}

        def wl(client):
            mf = yield from open_one(comm, client, "/e", shared)
            if client.index == 0:
                yield from mf.write_at_all(0, np.full(32, 7, np.uint8))
            else:
                yield from mf.write_at_all(0, None, nbytes=0)
            yield from mf.close()

        cluster.run_workload(wl)

        def check(client):
            f = yield from client.open("/e")
            data = yield from f.read(0, 32)
            yield from f.close()
            return data

        data = cluster.run_workload(check, clients=[0]).client_returns[0]
        assert (data == 7).all()


class TestCollectiveRead:
    def test_roundtrip(self):
        from repro.datatypes import Resized

        n_ranks, piece, reps = 4, 8, 16
        cluster = make_cluster(n_clients=n_ranks)
        comm = Communicator(cluster.sim, n_ranks)
        total = piece * n_ranks * reps
        frame = (np.arange(total) % 241).astype(np.uint8)

        def prefill(client):
            f = yield from client.open("/cr", create=True)
            yield from f.write(0, frame)
            yield from f.close()

        cluster.run_workload(prefill, clients=[0])
        outs = [None] * n_ranks
        shared = {}

        def wl(client):
            r = client.index
            mf = yield from open_one(comm, client, "/cr", shared)
            mf.set_view(
                disp=r * piece,
                filetype=Resized(Contiguous(BYTE, piece), piece * n_ranks),
            )
            outs[r] = yield from mf.read_at_all(0, piece * reps)
            yield from mf.close()

        cluster.run_workload(wl)
        for r in range(n_ranks):
            idx = np.concatenate(
                [
                    np.arange(piece) + (k * n_ranks + r) * piece
                    for k in range(reps)
                ]
            )
            np.testing.assert_array_equal(outs[r], frame[idx])

    def test_collective_read_matches_independent(self):
        from repro.datatypes import Resized

        cluster = make_cluster(n_clients=2)
        comm = Communicator(cluster.sim, 2)
        frame = (np.arange(256) % 199).astype(np.uint8)

        def prefill(client):
            f = yield from client.open("/cmp", create=True)
            yield from f.write(0, frame)
            yield from f.close()

        cluster.run_workload(prefill, clients=[0])
        results = {}
        shared = {}

        def wl(client):
            r = client.index
            mf = yield from open_one(comm, client, "/cmp", shared)
            mf.set_view(disp=r * 4, filetype=Resized(Contiguous(BYTE, 4), 8))
            a = yield from mf.read_at(0, 64)
            b = yield from mf.read_at_all(0, 64)
            results[r] = (a, b)
            yield from mf.close()

        cluster.run_workload(wl)
        for r, (a, b) in results.items():
            np.testing.assert_array_equal(a, b)


class TestViewProperties:
    """Property-based check: the view mapping equals brute-force stream
    enumeration."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        st.integers(1, 6),   # blocklen (bytes of data per filetype)
        st.integers(0, 8),   # gap after the data
        st.integers(0, 40),  # disp
        st.integers(0, 30),  # offset (etypes = bytes here)
        st.integers(0, 40),  # nbytes
    )
    @settings(max_examples=80, deadline=None)
    def test_regions_match_bruteforce(self, blocklen, gap, disp, offset, nbytes):
        import numpy as np

        from repro.datatypes import Contiguous, Resized
        from repro.regions import build_flat_indices

        ft = Resized(Contiguous(BYTE, blocklen), blocklen + gap)
        v = FileView(disp=disp, filetype=ft)
        regions = v.regions_for(offset, nbytes)
        got = build_flat_indices(regions.offsets, regions.lengths)
        # brute force: enumerate visible bytes one filetype instance at a time
        visible = []
        inst = 0
        while len(visible) < offset + nbytes:
            base = disp + inst * (blocklen + gap)
            visible.extend(range(base, base + blocklen))
            inst += 1
        expect = np.array(visible[offset : offset + nbytes], dtype=np.int64)
        np.testing.assert_array_equal(got, expect)


class TestErrors:
    def test_double_entry_detected(self):
        cluster = make_cluster(n_clients=2)
        from repro.mpiio.file import _CollectiveContext, _Exchange

        ex = _Exchange(cluster.sim, 2)
        ex.deposit_meta(0, RegionList.single(0, 4))
        with pytest.raises(Exception):
            ex.deposit_meta(0, RegionList.single(0, 4))

    def test_repr(self):
        cluster = make_cluster(n_clients=1)
        comm = Communicator(cluster.sim, 1)
        shared = {}

        def wl(client):
            mf = yield from open_one(comm, client, "/r", shared)
            yield from mf.close()
            return repr(mf)

        out = cluster.run_workload(wl).client_returns[0]
        assert "MPIFile" in out
