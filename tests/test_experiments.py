"""Tests for the experiment harness, figure drivers, reporting, and CLI."""

import pytest

from repro.config import ClusterConfig
from repro.errors import ConfigError
from repro.experiments import (
    SCALES,
    SMOKE,
    Check,
    DataPoint,
    des_point,
    figure9,
    figure10,
    figure11,
    figure12,
    figure15,
    figure17,
    model_point,
    points_to_csv,
)
from repro.experiments.cli import FIGURES, main
from repro.patterns import one_dim_cyclic, tiled_visualization


class TestHarness:
    def test_des_and_model_points_agree_on_accounting(self):
        pattern = one_dim_cyclic(SMOKE.artificial_total, 4, 64)
        cfg = ClusterConfig.chiba_city(n_clients=4)
        d = des_point(pattern, "list", "read", cfg, figure="t", x=64)
        m = model_point(pattern, "list", "read", cfg, figure="t", x=64)
        assert d.logical_requests == m.logical_requests
        assert d.mode == "des" and m.mode == "model"
        assert d.elapsed > 0 and m.elapsed > 0

    def test_des_point_phases(self):
        pattern = tiled_visualization(SMOKE.tiled)
        p = des_point(pattern, "list", "read", measure_phases=True)
        assert set(p.phases) == {"open", "transfer", "close"}
        assert p.phases["transfer"] > p.phases["open"] > 0

    def test_unknown_method_rejected(self):
        pattern = one_dim_cyclic(SMOKE.artificial_total, 4, 64)
        with pytest.raises(ConfigError):
            des_point(pattern, "wormhole", "read")

    def test_sieve_write_point_serializes(self):
        pattern = one_dim_cyclic(SMOKE.artificial_total, 4, 64)
        p_sieve = des_point(pattern, "datasieve", "write", figure="t", x=1)
        p_list = des_point(pattern, "list", "write", figure="t", x=1)
        assert p_sieve.elapsed > 0 and p_list.elapsed > 0

    def test_cluster_config_adjusted_to_pattern(self):
        pattern = one_dim_cyclic(SMOKE.artificial_total, 4, 64)
        cfg = ClusterConfig.chiba_city(n_clients=32)  # wrong client count
        p = des_point(pattern, "list", "read", cfg)
        assert p.n_clients == 4

    def test_wasted_bytes(self):
        p = DataPoint(
            figure="f", series="s", x=0, elapsed=1, mode="des", kind="read",
            n_clients=1, moved_bytes=10, useful_bytes=7,
        )
        assert p.wasted_bytes == 3
        assert "f/s" in repr(p)


class TestFigureDrivers:
    """Every figure driver must produce passing checks at smoke scale
    through BOTH engines."""

    @pytest.mark.parametrize("mode", ["model", "des"])
    def test_figure9(self, mode):
        res = figure9(scale=SMOKE, mode=mode)
        assert res.all_passed, [str(c) for c in res.checks if not c.passed]
        assert len(res.points) == 1 * 2 * 3  # clients x accesses x methods

    @pytest.mark.parametrize("mode", ["model", "des"])
    def test_figure10(self, mode):
        res = figure10(scale=SMOKE, mode=mode)
        assert res.all_passed, [str(c) for c in res.checks if not c.passed]

    @pytest.mark.parametrize("mode", ["model", "des"])
    def test_figure11(self, mode):
        res = figure11(scale=SMOKE, mode=mode)
        assert res.all_passed, [str(c) for c in res.checks if not c.passed]

    @pytest.mark.parametrize("mode", ["model", "des"])
    def test_figure12(self, mode):
        res = figure12(scale=SMOKE, mode=mode)
        assert res.all_passed, [str(c) for c in res.checks if not c.passed]

    @pytest.mark.parametrize("mode", ["model", "des"])
    def test_figure15(self, mode):
        res = figure15(scale=SMOKE, mode=mode)
        # smoke flash is tiny; only structural checks must hold
        assert res.points
        sieve = [p for p in res.points if p.series == "datasieve"]
        assert all(p.kind == "write" for p in res.points)
        assert sieve

    @pytest.mark.parametrize("mode", ["model", "des"])
    def test_figure17(self, mode):
        res = figure17(scale=SMOKE, mode=mode)
        by = {p.series: p for p in res.points}
        assert by["list"].elapsed < by["multiple"].elapsed

    def test_figure18_extension(self):
        from repro.experiments.collective import figure18

        res = figure18(scale=SMOKE, clients=(2,))
        assert res.figure == "fig18"
        series = {p.series for p in res.points}
        assert series == {
            "multiple",
            "list",
            "mpiio-indep",
            "mpiio-coll",
            "twophase",
            "twophase-model",
            "list-model",
        }
        by = {p.series: p.elapsed for p in res.points}
        assert by["mpiio-coll"] < by["multiple"]
        assert by["twophase"] < by["multiple"]
        modes = {p.series: p.mode for p in res.points}
        assert modes["twophase"] == "des"
        assert modes["twophase-model"] == "model"

    def test_figure18_falls_back_from_paper_scale(self):
        from repro.experiments.collective import figure18
        from repro.experiments.presets import PAPER

        # must not attempt a 983k-requests-per-rank DES run
        res = figure18(scale=PAPER, clients=(2,))
        assert res.points  # completed at the scaled fallback

    def test_figure17_paper_geometry_checks(self):
        from repro.experiments.presets import SCALED

        res = figure17(scale=SCALED, mode="des")
        assert res.all_passed, [str(c) for c in res.checks if not c.passed]
        # phase breakdown present, read dominates
        p = res.points[0]
        assert p.phases["transfer"] > p.phases["close"]


class TestReporting:
    def test_markdown_contains_tables_and_checks(self):
        res = figure9(scale=SMOKE, mode="model")
        md = res.markdown()
        assert "fig09" in md
        assert "| x |" in md
        assert "[PASS]" in md or "[FAIL]" in md

    def test_points_for_filters_and_sorts(self):
        res = figure9(scale=SMOKE, mode="model")
        pts = res.points_for("multiple", n_clients=SMOKE.cyclic_clients[0])
        assert pts == sorted(pts, key=lambda p: p.x)
        assert all(p.series == "multiple" for p in pts)

    def test_csv_roundtrip(self):
        res = figure9(scale=SMOKE, mode="model")
        csv_text = points_to_csv(res.points)
        lines = csv_text.strip().splitlines()
        assert len(lines) == len(res.points) + 1
        assert lines[0].startswith("figure,series")

    def test_check_str(self):
        assert "[PASS] ok" in str(Check("ok", True))
        assert "[FAIL] bad (why)" in str(Check("bad", False, "why"))

    def test_series_names_order(self):
        res = figure9(scale=SMOKE, mode="model")
        assert res.series_names()[0] == "multiple"


class TestCLI:
    def test_figure_registry_covers_all_result_figures(self):
        # 9..17 are the paper's; 18 is the repository's extension experiment
        assert sorted(FIGURES, key=int) == ["9", "10", "11", "12", "15", "17", "18"]

    def test_cli_single_figure(self, capsys):
        rc = main(["--figure", "17", "--scale", "smoke", "--mode", "des"])
        out = capsys.readouterr().out
        assert "fig17" in out
        assert rc in (0, 1)

    def test_cli_csv_output(self, tmp_path, capsys):
        csv_path = tmp_path / "points.csv"
        main(["--figure", "9", "--scale", "smoke", "--mode", "model", "--csv", str(csv_path)])
        assert csv_path.exists()
        assert "fig09" in csv_path.read_text()

    def test_cli_rejects_des_at_paper_scale(self, capsys):
        rc = main(["--figure", "9", "--scale", "paper", "--mode", "des"])
        assert rc == 2

    def test_scales_registry(self):
        assert {"paper", "scaled", "smoke"} <= set(SCALES)
        assert not SCALES["paper"].des_friendly
