"""Tests for PVFS striping (repro.pvfs.striping)."""

import numpy as np
import pytest

from repro.config import StripeParams
from repro.regions import RegionList
from repro.pvfs.striping import map_regions, server_for_offset


class TestServerForOffset:
    def test_round_robin(self):
        sp = StripeParams(stripe_size=100)
        assert [server_for_offset(o, sp, 4) for o in (0, 100, 200, 300, 400)] == [0, 1, 2, 3, 0]

    def test_within_unit_same_server(self):
        sp = StripeParams(stripe_size=100)
        assert server_for_offset(0, sp, 4) == server_for_offset(99, sp, 4)

    def test_base_shift(self):
        sp = StripeParams(stripe_size=100, base=2)
        assert server_for_offset(0, sp, 4) == 2
        assert server_for_offset(200, sp, 4) == 0  # wraps

    def test_pcount_subset(self):
        sp = StripeParams(stripe_size=100, pcount=2)
        servers = {server_for_offset(o, sp, 8) for o in range(0, 1000, 100)}
        assert servers == {0, 1}


class TestMapRegions:
    def test_empty(self):
        smap = map_regions(RegionList.empty(), StripeParams(), 8)
        assert smap.n_servers == 0
        assert smap.total_bytes == 0

    def test_single_region_one_unit(self):
        sp = StripeParams(stripe_size=100)
        smap = map_regions(RegionList.single(250, 30), sp, 4)
        assert smap.n_servers == 1
        sl = smap.slices[0]
        assert sl.server == 2
        # third unit maps to physical unit 0 on server 2, offset 50 within it
        assert list(sl.physical) == [(50, 30)]
        assert list(sl.stream_offsets) == [0]

    def test_region_spanning_servers(self):
        sp = StripeParams(stripe_size=100)
        smap = map_regions(RegionList.single(50, 200), sp, 4)
        # bytes 50-99 on srv0, 100-199 on srv1, 200-249 on srv2
        assert smap.servers == [0, 1, 2]
        s0 = smap.slice_for(0)
        assert list(s0.physical) == [(50, 50)]
        s1 = smap.slice_for(1)
        assert list(s1.physical) == [(0, 100)]
        assert list(s1.stream_offsets) == [50]
        s2 = smap.slice_for(2)
        assert list(s2.physical) == [(0, 50)]
        assert list(s2.stream_offsets) == [150]

    def test_physical_offsets_wrap_rounds(self):
        sp = StripeParams(stripe_size=100)
        # unit 4 (offsets 400-499) is server 0's second unit -> phys 100.
        smap = map_regions(RegionList.single(400, 10), sp, 4)
        assert list(smap.slice_for(0).physical) == [(100, 10)]

    def test_total_bytes_preserved(self):
        sp = StripeParams(stripe_size=64)
        r = RegionList.strided(start=3, count=50, length=20, stride=37)
        smap = map_regions(r, sp, 8)
        assert smap.total_bytes == r.total_bytes
        assert sum(sl.nbytes for sl in smap) == r.total_bytes

    def test_stream_offsets_partition_the_stream(self):
        sp = StripeParams(stripe_size=64)
        r = RegionList.strided(start=0, count=30, length=50, stride=97)
        smap = map_regions(r, sp, 4)
        covered = np.concatenate([sl.gather_stream_indices() for sl in smap])
        covered.sort()
        np.testing.assert_array_equal(covered, np.arange(r.total_bytes))

    def test_pcount_and_base(self):
        sp = StripeParams(stripe_size=10, base=1, pcount=2)
        smap = map_regions(RegionList.single(0, 40), sp, 8)
        assert sorted(smap.servers) == [1, 2]

    def test_slice_for_missing_raises(self):
        smap = map_regions(RegionList.single(0, 10), StripeParams(stripe_size=100), 4)
        with pytest.raises(KeyError):
            smap.slice_for(3)

    def test_small_regions_far_apart_single_server_each(self):
        sp = StripeParams(stripe_size=16384)
        # paper-style: 149-byte accesses -> each one entirely on one server
        r = RegionList.strided(start=0, count=64, length=149, stride=16384 * 8)
        smap = map_regions(r, sp, 8)
        assert smap.n_servers == 1  # stride is 8 units -> always server 0
        assert smap.slices[0].physical.count == 64

    def test_iteration_order_and_repr(self):
        sp = StripeParams(stripe_size=10)
        smap = map_regions(RegionList.single(0, 40), sp, 4)
        assert [sl.server for sl in smap] == smap.servers
