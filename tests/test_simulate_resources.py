"""Tests for Resource / Store / Barrier / Mutex (repro.simulate.resources)."""

import pytest

from repro.errors import SimulationError
from repro.simulate import Barrier, Mutex, Resource, Simulator, Store, hold


class TestResource:
    def test_serializes_unit_capacity(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        finish = []

        def job(sim, tag):
            with res.request() as req:
                yield req
                yield sim.timeout(2)
            finish.append((tag, sim.now))

        for t in ("a", "b", "c"):
            sim.process(job(sim, t))
        sim.run()
        assert finish == [("a", 2), ("b", 4), ("c", 6)]

    def test_capacity_two_overlaps(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        finish = []

        def job(sim, tag):
            with res.request() as req:
                yield req
                yield sim.timeout(2)
            finish.append((tag, sim.now))

        for t in range(4):
            sim.process(job(sim, t))
        sim.run()
        assert [f[1] for f in finish] == [2, 2, 4, 4]

    def test_fcfs_order(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        order = []

        def job(sim, tag, arrive):
            yield sim.timeout(arrive)
            with res.request() as req:
                yield req
                order.append(tag)
                yield sim.timeout(10)

        sim.process(job(sim, "late", 2))
        sim.process(job(sim, "early", 1))
        sim.run()
        assert order == ["early", "late"]

    def test_release_without_grant_cancels(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)

        def holder(sim):
            with res.request() as req:
                yield req
                yield sim.timeout(5)

        def quitter(sim):
            yield sim.timeout(1)
            req = res.request()
            assert not req.triggered
            res.release(req)  # cancel while queued

        def third(sim):
            yield sim.timeout(2)
            with res.request() as req:
                yield req
            return sim.now

        sim.process(holder(sim))
        sim.process(quitter(sim))
        p3 = sim.process(third(sim))
        sim.run()
        assert p3.value == 5  # quitter did not consume a grant

    def test_utilization_tracking(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)

        def job(sim):
            yield sim.timeout(5)
            with res.request() as req:
                yield req
                yield sim.timeout(5)

        sim.process(job(sim))
        sim.run()
        assert res.utilization() == pytest.approx(0.5)
        assert res.total_requests == 1

    def test_bad_capacity(self):
        with pytest.raises(SimulationError):
            Resource(Simulator(), capacity=0)

    def test_hold_helper(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)

        def p(sim):
            yield from hold(sim, res, 3.0)
            return sim.now

        proc = sim.process(p(sim))
        sim.run()
        assert proc.value == 3.0
        assert res.in_use == 0

    def test_repr(self):
        assert "Resource" in repr(Resource(Simulator(), name="disk"))


class TestMutex:
    def test_is_capacity_one(self):
        assert Mutex(Simulator()).capacity == 1


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        store.put("x")

        def consumer(sim):
            item = yield store.get()
            return item

        proc = sim.process(consumer(sim))
        sim.run()
        assert proc.value == "x"

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)

        def consumer(sim):
            item = yield store.get()
            return (item, sim.now)

        def producer(sim):
            yield sim.timeout(4)
            store.put("late")

        proc = sim.process(consumer(sim))
        sim.process(producer(sim))
        sim.run()
        assert proc.value == ("late", 4)

    def test_fifo_both_sides(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer(sim, tag):
            item = yield store.get()
            got.append((tag, item))

        sim.process(consumer(sim, "c1"))
        sim.process(consumer(sim, "c2"))

        def producer(sim):
            yield sim.timeout(1)
            store.put("i1")
            store.put("i2")

        sim.process(producer(sim))
        sim.run()
        assert got == [("c1", "i1"), ("c2", "i2")]

    def test_len_counts_buffered(self):
        sim = Simulator()
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert len(store) == 2
        assert store.total_put == 2

    def test_repr(self):
        assert "Store" in repr(Store(Simulator()))


class TestBarrier:
    def test_releases_all_at_last_arrival(self):
        sim = Simulator()
        bar = Barrier(sim, parties=3)
        times = []

        def p(sim, arrive):
            yield sim.timeout(arrive)
            yield bar.wait()
            times.append(sim.now)

        for a in (1, 5, 3):
            sim.process(p(sim, a))
        sim.run()
        assert times == [5, 5, 5]

    def test_reusable_generations(self):
        sim = Simulator()
        bar = Barrier(sim, parties=2)
        gens = []

        def p(sim):
            g0 = yield bar.wait()
            yield sim.timeout(1)
            g1 = yield bar.wait()
            gens.append((g0, g1))

        sim.process(p(sim))
        sim.process(p(sim))
        sim.run()
        assert gens == [(0, 1), (0, 1)]
        assert bar.generation == 2

    def test_single_party_is_noop(self):
        sim = Simulator()
        bar = Barrier(sim, parties=1)

        def p(sim):
            yield bar.wait()
            return sim.now

        proc = sim.process(p(sim))
        sim.run()
        assert proc.value == 0.0

    def test_bad_parties(self):
        with pytest.raises(SimulationError):
            Barrier(Simulator(), parties=0)

    def test_repr(self):
        assert "Barrier" in repr(Barrier(Simulator(), parties=2))
