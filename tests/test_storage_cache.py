"""Tests for the LRU block cache."""

import numpy as np

from repro.config import CacheConfig
from repro.storage import BlockCache


def cache_of(n_blocks: int, **kw) -> BlockCache:
    return BlockCache(CacheConfig(capacity=n_blocks * 4096, block_size=4096, **kw))


class TestBlockSpan:
    def test_exact_blocks(self):
        c = cache_of(8)
        assert list(c.block_span(0, 4096)) == [0]
        assert list(c.block_span(0, 8192)) == [0, 1]

    def test_partial_blocks(self):
        c = cache_of(8)
        assert list(c.block_span(100, 10)) == [0]
        assert list(c.block_span(4000, 200)) == [0, 1]

    def test_zero_length(self):
        c = cache_of(8)
        assert c.block_span(0, 0).size == 0


class TestLookupInsert:
    def test_cold_miss_then_hit(self):
        c = cache_of(8)
        blocks = np.array([0, 1, 2])
        hits = c.lookup("f", blocks)
        assert not hits.any()
        c.insert("f", blocks)
        hits = c.lookup("f", blocks)
        assert hits.all()
        assert c.stats.hits == 3
        assert c.stats.misses == 3

    def test_files_are_namespaced(self):
        c = cache_of(8)
        c.insert("f", np.array([0]))
        assert not c.lookup("g", np.array([0])).any()

    def test_lru_eviction_order(self):
        c = cache_of(2)
        c.insert("f", np.array([0]))
        c.insert("f", np.array([1]))
        c.lookup("f", np.array([0]))  # touch 0 -> 1 is now LRU
        c.insert("f", np.array([2]))  # evicts 1
        assert c.contains("f", 0)
        assert not c.contains("f", 1)
        assert c.contains("f", 2)
        assert c.stats.evictions == 1

    def test_dirty_eviction_counted_and_returned(self):
        c = cache_of(1)
        c.insert("f", np.array([0]), dirty=True)
        n = c.insert("f", np.array([1]))
        assert n == 1
        assert c.stats.dirty_evictions == 1

    def test_clean_eviction_returns_zero(self):
        c = cache_of(1)
        c.insert("f", np.array([0]))
        assert c.insert("f", np.array([1])) == 0

    def test_reinsert_refreshes_and_keeps_dirty(self):
        c = cache_of(2)
        c.insert("f", np.array([0]), dirty=True)
        c.insert("f", np.array([1]))
        c.insert("f", np.array([0]))  # clean re-insert: refresh, keep dirty
        assert c.dirty_blocks == 1
        c.insert("f", np.array([2]))  # evicts 1 (0 was refreshed to MRU)
        assert c.contains("f", 0)
        assert not c.contains("f", 1)

    def test_zero_capacity_cache(self):
        c = BlockCache(CacheConfig(capacity=0))
        assert c.insert("f", np.array([0, 1]), dirty=True) == 2
        assert c.insert("f", np.array([0]), dirty=False) == 0
        assert not c.lookup("f", np.array([0])).any()


class TestMaintenance:
    def test_clean_marks_flushed(self):
        c = cache_of(4)
        c.insert("f", np.array([0, 1]), dirty=True)
        c.clean("f", np.array([0]))
        assert c.dirty_blocks == 1

    def test_flush_all(self):
        c = cache_of(4)
        c.insert("f", np.array([0, 1]), dirty=True)
        c.insert("f", np.array([2]))
        assert c.flush_all() == 2
        assert c.dirty_blocks == 0
        assert len(c) == 3  # flush does not evict

    def test_drop_file(self):
        c = cache_of(4)
        c.insert("f", np.array([0, 1]))
        c.insert("g", np.array([0]))
        c.drop("f")
        assert len(c) == 1
        assert c.contains("g", 0)

    def test_stats_repr_and_hit_rate(self):
        c = cache_of(4)
        assert c.stats.hit_rate == 0.0
        c.insert("f", np.array([0]))
        c.lookup("f", np.array([0, 1]))
        assert c.stats.hit_rate == 0.5
        assert "CacheStats" in repr(c.stats)
        assert "BlockCache" in repr(c)
