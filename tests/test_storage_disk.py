"""Tests for the disk service-time model."""

import pytest

from repro.config import CacheConfig, DiskConfig
from repro.regions import RegionList
from repro.storage import Disk
from repro.units import KiB, MiB


def make_disk(**cache_kw) -> Disk:
    cache_kw.setdefault("capacity", 4 * MiB)
    cache_kw.setdefault("block_size", 4 * KiB)
    cache_kw.setdefault("readahead", 128 * KiB)
    return Disk(DiskConfig(), CacheConfig(**cache_kw))


class TestReads:
    def test_empty_request_is_free(self):
        d = make_disk()
        assert d.read_time("f", RegionList.empty()) == 0.0

    def test_cold_read_pays_positioning_and_media(self):
        d = make_disk()
        t = d.read_time("f", RegionList.single(0, 4 * KiB))
        assert t >= d.cfg.positioning_time
        assert d.media_reads == 1
        # Readahead widened the fetch to the full window.
        assert d.media_read_bytes == 128 * KiB

    def test_warm_read_is_memcpy_only(self):
        d = make_disk()
        r = RegionList.single(0, 4 * KiB)
        cold = d.read_time("f", r)
        warm = d.read_time("f", r)
        assert warm < cold / 100
        assert warm == pytest.approx(4 * KiB / d.cache.cfg.memory_copy_rate)

    def test_readahead_makes_sequential_small_reads_cheap(self):
        d = make_disk()
        first = d.read_time("f", RegionList.single(0, 1 * KiB))
        # Next 31 reads of 4 KiB fall inside the 128 KiB readahead window.
        warm = [d.read_time("f", RegionList.single(i * 4 * KiB, 4 * KiB)) for i in range(1, 32)]
        assert all(w < first / 50 for w in warm)
        assert d.media_reads == 1

    def test_sequential_runs_skip_positioning(self):
        d = make_disk(readahead=0)
        a = d.read_time("f", RegionList.single(0, 128 * KiB))
        b = d.read_time("f", RegionList.single(128 * KiB, 128 * KiB))
        # Second fetch continues at the head: no positioning charge.
        assert b == pytest.approx(a - d.cfg.positioning_time)
        assert d.positionings == 1

    def test_far_apart_runs_each_pay_positioning(self):
        d = make_disk(readahead=0)
        r = RegionList([0, 512 * MiB], [4 * KiB, 4 * KiB])
        d.read_time("f", r)
        assert d.positionings == 2

    def test_coalesces_adjacent_regions_before_charging(self):
        d1 = make_disk(readahead=0)
        many = RegionList.contiguous(0, 64 * KiB, 4 * KiB)  # 16 adjacent
        t_many = d1.read_time("f", many)
        d2 = make_disk(readahead=0)
        t_one = d2.read_time("f", RegionList.single(0, 64 * KiB))
        assert t_many == pytest.approx(t_one)
        assert d1.positionings == 1


class TestWrites:
    def test_empty_write_is_free(self):
        d = make_disk()
        assert d.write_time("f", RegionList.empty()) == 0.0

    def test_writeback_write_is_memcpy(self):
        d = make_disk()
        t = d.write_time("f", RegionList.single(0, 64 * KiB))
        assert t == pytest.approx(64 * KiB / d.cache.cfg.memory_copy_rate)
        assert d.media_writes == 0

    def test_dirty_eviction_charges_media(self):
        # 8-block cache; write 16 blocks -> 8 dirty evictions.
        d = make_disk(capacity=8 * 4 * KiB)
        t = d.write_time("f", RegionList.single(0, 16 * 4 * KiB))
        assert d.media_writes >= 1
        assert d.media_write_bytes == 8 * 4 * KiB
        assert t > 16 * 4 * KiB / d.cache.cfg.memory_copy_rate

    def test_write_through_pays_media_immediately(self):
        d = make_disk(write_through=True)
        t = d.write_time("f", RegionList.single(0, 64 * KiB))
        assert t >= d.cfg.positioning_time + 64 * KiB / d.cfg.transfer_rate
        assert d.media_write_bytes == 64 * KiB
        assert d.cache.dirty_blocks == 0

    def test_written_blocks_become_read_hits(self):
        d = make_disk()
        d.write_time("f", RegionList.single(0, 8 * KiB))
        t = d.read_time("f", RegionList.single(0, 8 * KiB))
        assert d.media_reads == 0
        assert t == pytest.approx(8 * KiB / d.cache.cfg.memory_copy_rate)


class TestFlush:
    def test_flush_clean_cache_is_free(self):
        d = make_disk()
        d.read_time("f", RegionList.single(0, 4 * KiB))
        assert d.flush_time() == 0.0

    def test_flush_charges_dirty_volume(self):
        d = make_disk()
        d.write_time("f", RegionList.single(0, 64 * KiB))
        t = d.flush_time()
        assert t == pytest.approx(d.cfg.positioning_time + 64 * KiB / d.cfg.transfer_rate)
        assert d.cache.dirty_blocks == 0

    def test_repr(self):
        assert "Disk" in repr(make_disk())
