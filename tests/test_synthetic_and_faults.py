"""Tests for synthetic workloads, fault injection, and utilization reporting."""

import numpy as np
import pytest

from repro.config import ClusterConfig
from repro.core import ListIO
from repro.errors import PatternError
from repro.patterns import random_fragments, uniform_fragments
from repro.pvfs import Cluster


class TestUniformFragments:
    def test_interleaved_density_one_tiles_file(self):
        p = uniform_fragments(4, 8, 64, density=1.0, layout="interleaved")
        assert p.verify_disjoint_across_ranks()
        assert p.verify_covers_file()

    def test_density_creates_gaps(self):
        p = uniform_fragments(2, 4, 50, density=0.5)
        r = p.rank(0).file_regions
        assert r.lengths[0] == 50
        assert r.offsets[1] - r.offsets[0] == 200  # slot 100 x 2 clients

    def test_partitioned_zones_disjoint(self):
        p = uniform_fragments(3, 5, 10, density=0.25, layout="partitioned")
        assert p.verify_disjoint_across_ranks()
        # client zones don't interleave: extents are ordered
        extents = [p.rank(c).file_regions.extent for c in range(3)]
        for (a0, a1), (b0, b1) in zip(extents, extents[1:]):
            assert a1 <= b0

    def test_validation(self):
        with pytest.raises(PatternError):
            uniform_fragments(0, 1, 1)
        with pytest.raises(PatternError):
            uniform_fragments(1, 1, 1, density=0.0)
        with pytest.raises(PatternError):
            uniform_fragments(1, 1, 1, density=1.5)
        with pytest.raises(PatternError):
            uniform_fragments(1, 1, 1, layout="diagonal")


class TestRandomFragments:
    def test_deterministic_per_seed(self):
        a = random_fragments(3, 10, seed=7)
        b = random_fragments(3, 10, seed=7)
        for r in range(3):
            assert a.rank(r).file_regions == b.rank(r).file_regions

    def test_seeds_differ(self):
        a = random_fragments(2, 10, seed=1)
        b = random_fragments(2, 10, seed=2)
        assert any(
            a.rank(r).file_regions != b.rank(r).file_regions for r in range(2)
        )

    def test_always_disjoint_and_sorted(self):
        for seed in range(5):
            p = random_fragments(4, 12, seed=seed)
            assert p.verify_disjoint_across_ranks()
            for r in range(4):
                assert p.rank(r).file_regions.is_sorted()

    def test_size_bounds_respected(self):
        p = random_fragments(2, 50, min_size=16, max_size=64, seed=3)
        for r in range(2):
            lens = p.rank(r).file_regions.lengths
            assert lens.min() >= 16
            assert lens.max() <= 64

    def test_validation(self):
        with pytest.raises(PatternError):
            random_fragments(0, 1)
        with pytest.raises(PatternError):
            random_fragments(1, 1, min_size=0)
        with pytest.raises(PatternError):
            random_fragments(1, 1, min_gap=5, max_gap=2)

    def test_roundtrip_through_cluster(self):
        p = random_fragments(2, 8, max_size=128, max_gap=256, seed=11)
        cluster = Cluster.build(ClusterConfig(n_clients=2, n_iods=4))

        def wl(client):
            a = p.rank(client.index)
            payload = np.full(a.nbytes, client.index + 1, np.uint8)
            f = yield from client.open("/rand", create=True)
            yield from ListIO().write(f, payload, a.mem_regions, a.file_regions)
            got = yield from f.read_list(a.file_regions)
            yield from f.close()
            return got

        res = cluster.run_workload(wl)
        for r, got in enumerate(res.client_returns):
            assert (got == r + 1).all()


class TestFaultInjection:
    def _elapsed(self, straggler_scale=1.0):
        pattern = uniform_fragments(4, 256, 512, density=1.0)
        cluster = Cluster.build(
            ClusterConfig.chiba_city(n_clients=4), move_bytes=False
        )
        cluster.iods[0].service_scale = straggler_scale

        def wl(client):
            a = pattern.rank(client.index)
            f = yield from client.open("/s", create=True)
            yield from ListIO().read(f, None, a.mem_regions, a.file_regions)
            yield from f.close()

        return cluster.run_workload(wl).elapsed

    def test_straggler_slows_the_whole_run(self):
        healthy = self._elapsed(1.0)
        degraded = self._elapsed(8.0)
        assert degraded > 1.5 * healthy

    def test_straggler_bounded_by_its_share(self):
        """One of 8 servers being 8x slower must not slow the run 8x —
        only that server's share of the work dilates."""
        healthy = self._elapsed(1.0)
        degraded = self._elapsed(8.0)
        assert degraded < 8 * healthy

    def test_fanout_requests_hostage_to_slowest_server(self):
        """List requests wait for ALL involved servers, so a straggler
        hurts a fanned-out request pattern more than one whose requests
        touch single servers."""

        def run(method, scale):
            pattern = uniform_fragments(4, 128, 2048, density=1.0)
            cluster = Cluster.build(
                ClusterConfig.chiba_city(n_clients=4), move_bytes=False
            )
            cluster.iods[0].service_scale = scale

            def wl(client):
                a = pattern.rank(client.index)
                f = yield from client.open("/f", create=True)
                yield from method.read(f, None, a.mem_regions, a.file_regions)
                yield from f.close()

            return cluster.run_workload(wl).elapsed

        slowdown_list = run(ListIO(), 8.0) / run(ListIO(), 1.0)
        assert slowdown_list > 1.2  # the straggler is on the critical path


class TestJitter:
    def _elapsed(self, jitter, seed=0x5EED):
        from repro.config import CostModel

        pattern = uniform_fragments(2, 64, 256, density=1.0)
        cfg = ClusterConfig.chiba_city(
            n_clients=2, costs=CostModel(jitter=jitter), seed=seed
        )
        cluster = Cluster.build(cfg, move_bytes=False)

        def wl(client):
            a = pattern.rank(client.index)
            f = yield from client.open("/j", create=True)
            yield from ListIO().read(f, None, a.mem_regions, a.file_regions)
            yield from f.close()

        return cluster.run_workload(wl).elapsed

    def test_zero_jitter_is_deterministic(self):
        assert self._elapsed(0.0) == self._elapsed(0.0)

    def test_jitter_varies_with_seed_but_reproducibly(self):
        a1 = self._elapsed(0.2, seed=1)
        a2 = self._elapsed(0.2, seed=1)
        b = self._elapsed(0.2, seed=2)
        assert a1 == a2
        assert a1 != b

    def test_jitter_bounded(self):
        base = self._elapsed(0.0)
        for seed in range(5):
            t = self._elapsed(0.1, seed=seed)
            assert 0.8 * base < t < 1.25 * base

    def test_jitter_validated(self):
        from repro.config import CostModel
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            CostModel(jitter=1.0)
        with pytest.raises(ConfigError):
            CostModel(jitter=-0.1)

    def test_repeats_report_mean_and_std(self):
        from repro.config import CostModel
        from repro.experiments import des_point

        pattern = uniform_fragments(2, 64, 256, density=1.0)
        cfg = ClusterConfig.chiba_city(n_clients=2, costs=CostModel(jitter=0.2))
        p = des_point(pattern, "list", "read", cfg, repeats=3)
        assert p.repeats == 3
        assert p.elapsed_std > 0
        # deterministic model/config: std collapses
        cfg0 = ClusterConfig.chiba_city(n_clients=2)
        p0 = des_point(pattern, "list", "read", cfg0, repeats=3)
        assert p0.elapsed_std == 0.0


class TestUtilizationReport:
    def test_report_structure(self):
        cluster = Cluster.build(ClusterConfig(n_clients=2, n_iods=4), move_bytes=False)

        def wl(client):
            f = yield from client.open("/u", create=True)
            yield from f.write(0, None, length=500_000)
            yield from f.close()

        cluster.run_workload(wl)
        report = cluster.utilization_report()
        assert "iod0" in report and "iod3" in report
        assert "manager" in report
        assert "client0" in report
        assert "%" in report

    def test_busy_servers_show_nonzero_utilization(self):
        cluster = Cluster.build(ClusterConfig(n_clients=2, n_iods=2), move_bytes=False)

        def wl(client):
            f = yield from client.open("/b", create=True)
            for _ in range(5):
                # spans both servers' stripe units
                yield from f.write(0, None, length=40_000)
            yield from f.close()

        cluster.run_workload(wl)
        assert all(iod.busy_time > 0 for iod in cluster.iods)
        report = cluster.utilization_report()
        assert "0.0% | 0.0% | 0.0%" not in report.split("iod0")[1].splitlines()[0]
