"""Tests for the region algebra (repro.regions)."""

import numpy as np
import pytest

from repro.errors import RegionError
from repro.regions import RegionList, build_flat_indices, pair_pieces


class TestConstruction:
    def test_empty(self):
        r = RegionList.empty()
        assert r.count == 0
        assert r.total_bytes == 0
        assert r.extent == (0, 0)

    def test_single(self):
        r = RegionList.single(10, 5)
        assert r.count == 1
        assert r.total_bytes == 5
        assert r.extent == (10, 15)

    def test_from_pairs(self):
        r = RegionList.from_pairs([(0, 4), (10, 2)])
        assert list(r) == [(0, 4), (10, 2)]

    def test_from_pairs_empty(self):
        assert RegionList.from_pairs([]).count == 0

    def test_rejects_negative_offset(self):
        with pytest.raises(RegionError):
            RegionList([-1], [4])

    def test_rejects_negative_length(self):
        with pytest.raises(RegionError):
            RegionList([0], [-4])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(RegionError):
            RegionList([0, 1], [4])

    def test_rejects_2d(self):
        with pytest.raises(RegionError):
            RegionList([[0, 1]], [[4, 4]])

    def test_contiguous_constructor(self):
        r = RegionList.contiguous(100, 10, 4)
        assert list(r) == [(100, 4), (104, 4), (108, 2)]
        assert r.total_bytes == 10

    def test_contiguous_zero_total(self):
        assert RegionList.contiguous(0, 0, 4).count == 0

    def test_contiguous_bad_piece(self):
        with pytest.raises(RegionError):
            RegionList.contiguous(0, 10, 0)

    def test_strided_constructor(self):
        r = RegionList.strided(start=5, count=3, length=2, stride=10)
        assert list(r) == [(5, 2), (15, 2), (25, 2)]

    def test_arrays_are_readonly(self):
        r = RegionList([0], [4])
        with pytest.raises(ValueError):
            r.offsets[0] = 7


class TestProperties:
    def test_extent_ignores_empty_regions(self):
        r = RegionList([100, 5, 50], [0, 10, 5])
        assert r.extent == (5, 55)

    def test_is_sorted(self):
        assert RegionList([0, 5, 9], [1, 1, 1]).is_sorted()
        assert not RegionList([5, 0], [1, 1]).is_sorted()
        assert RegionList.empty().is_sorted()

    def test_is_disjoint(self):
        assert RegionList([0, 10], [5, 5]).is_disjoint()
        assert RegionList([0, 5], [5, 5]).is_disjoint()  # adjacency is fine
        assert not RegionList([0, 4], [5, 5]).is_disjoint()
        assert RegionList([10, 0], [5, 5]).is_disjoint()  # unsorted input

    def test_is_contiguous(self):
        assert RegionList([0, 5], [5, 3]).is_contiguous()
        assert not RegionList([0, 6], [5, 3]).is_contiguous()
        assert RegionList.single(7, 3).is_contiguous()


class TestTransforms:
    def test_sorted(self):
        r = RegionList([9, 0, 5], [1, 2, 3]).sorted()
        assert list(r) == [(0, 2), (5, 3), (9, 1)]

    def test_shift(self):
        r = RegionList([10, 20], [5, 5]).shift(-10)
        assert list(r) == [(0, 5), (10, 5)]
        with pytest.raises(RegionError):
            RegionList([10], [5]).shift(-11)

    def test_coalesced_merges_adjacent(self):
        r = RegionList([0, 4, 10], [4, 4, 2]).coalesced()
        assert list(r) == [(0, 8), (10, 2)]

    def test_coalesced_merges_overlapping(self):
        r = RegionList([0, 2, 20], [5, 10, 1]).coalesced()
        assert list(r) == [(0, 12), (20, 1)]

    def test_coalesced_handles_contained_region(self):
        r = RegionList([0, 2], [100, 5]).coalesced()
        assert list(r) == [(0, 100)]

    def test_coalesced_sorts_and_drops_empty(self):
        r = RegionList([50, 0, 10], [1, 0, 2]).coalesced()
        assert list(r) == [(10, 2), (50, 1)]

    def test_clip(self):
        r = RegionList([0, 10, 20], [5, 5, 5]).clip(3, 22)
        assert list(r) == [(3, 2), (10, 5), (20, 2)]

    def test_clip_drops_outside(self):
        r = RegionList([0, 100], [5, 5]).clip(10, 50)
        assert r.count == 0

    def test_clip_bad_window(self):
        with pytest.raises(RegionError):
            RegionList([0], [5]).clip(10, 5)

    def test_gaps(self):
        r = RegionList([0, 10, 13], [5, 2, 4])
        assert list(r.gaps()) == [(5, 5), (12, 1)]

    def test_gaps_of_contiguous_is_empty(self):
        assert RegionList([0, 5], [5, 5]).gaps().count == 0

    def test_gaps_requires_disjoint(self):
        with pytest.raises(RegionError):
            RegionList([0, 2], [5, 5]).gaps()

    def test_concat_and_take(self):
        r = RegionList([0], [1]).concat(RegionList([10], [2]))
        assert list(r) == [(0, 1), (10, 2)]
        assert list(r.take([1])) == [(10, 2)]


class TestSplitAtBoundaries:
    def test_no_crossing_is_identity(self):
        r = RegionList([0, 16], [8, 8])
        assert r.split_at_boundaries(16) == r

    def test_single_region_crossing_once(self):
        r = RegionList([10], [10]).split_at_boundaries(16)
        assert list(r) == [(10, 6), (16, 4)]

    def test_region_spanning_many_units(self):
        r = RegionList([5], [40]).split_at_boundaries(16)
        assert list(r) == [(5, 11), (16, 16), (32, 13)]

    def test_mixed(self):
        r = RegionList([0, 30], [4, 10]).split_at_boundaries(16)
        assert list(r) == [(0, 4), (30, 2), (32, 8)]

    def test_preserves_total_bytes(self):
        rng = np.random.default_rng(42)
        off = np.sort(rng.integers(0, 10000, 100)) * 3
        ln = rng.integers(1, 200, 100)
        r = RegionList(off, ln)
        s = r.split_at_boundaries(64)
        assert s.total_bytes == r.total_bytes
        # every piece within one unit
        assert ((s.offsets // 64) == ((s.ends - 1) // 64)).all()

    def test_bad_boundary(self):
        with pytest.raises(RegionError):
            RegionList([0], [5]).split_at_boundaries(0)


class TestSubdivide:
    def test_exact_pieces(self):
        r = RegionList([0, 100], [8, 8]).subdivide(4)
        assert list(r) == [(0, 4), (4, 4), (100, 4), (104, 4)]

    def test_short_tail(self):
        r = RegionList([10], [10]).subdivide(4)
        assert list(r) == [(10, 4), (14, 4), (18, 2)]

    def test_noop_when_pieces_big_enough(self):
        r = RegionList([0, 100], [8, 8])
        assert r.subdivide(8) == r
        assert r.subdivide(100) == r

    def test_preserves_bytes_and_coverage(self):
        r = RegionList.strided(3, 20, 57, 100)
        s = r.subdivide(13)
        assert s.total_bytes == r.total_bytes
        assert s.coalesced() == r.coalesced()

    def test_bad_piece_size(self):
        with pytest.raises(RegionError):
            RegionList([0], [8]).subdivide(0)

    def test_empty(self):
        assert RegionList.empty().subdivide(4).count == 0


class TestChunksOf:
    def test_exact_split(self):
        r = RegionList.contiguous(0, 128, 1)  # 128 one-byte regions
        groups = list(r.chunks_of(64))
        assert len(groups) == 2
        assert all(g.count == 64 for g in groups)

    def test_remainder(self):
        r = RegionList.contiguous(0, 130, 1)
        groups = list(r.chunks_of(64))
        assert [g.count for g in groups] == [64, 64, 2]

    def test_paper_flash_request_count(self):
        # Paper 4.3.1: 80 blocks * 24 variables = 1920 regions -> 30 requests.
        r = RegionList.contiguous(0, 1920 * 4096, 4096)
        assert len(list(r.chunks_of(64))) == 30

    def test_paper_tiled_request_count(self):
        # Paper 4.4.1: 768 file regions -> 768/64 = 12 list I/O requests.
        r = RegionList.contiguous(0, 768 * 100, 100)
        assert len(list(r.chunks_of(64))) == 12

    def test_bad_max(self):
        with pytest.raises(RegionError):
            list(RegionList([0], [5]).chunks_of(0))


class TestByteSlice:
    def test_whole_stream(self):
        r = RegionList([0, 100], [10, 10])
        assert r.byte_slice(0, 20) == r

    def test_inside_one_region(self):
        r = RegionList([100], [50])
        assert list(r.byte_slice(10, 5)) == [(110, 5)]

    def test_across_regions(self):
        r = RegionList([0, 100, 200], [10, 10, 10])
        assert list(r.byte_slice(5, 15)) == [(5, 5), (100, 10)]

    def test_exact_region_boundaries(self):
        r = RegionList([0, 100], [10, 10])
        assert list(r.byte_slice(10, 10)) == [(100, 10)]

    def test_zero_take(self):
        r = RegionList([0], [10])
        assert r.byte_slice(3, 0).count == 0

    def test_out_of_range(self):
        r = RegionList([0], [10])
        with pytest.raises(RegionError):
            r.byte_slice(5, 6)
        with pytest.raises(RegionError):
            r.byte_slice(-1, 2)

    def test_matches_flat_indices(self):
        rng = np.random.default_rng(3)
        r = RegionList(np.arange(20) * 50, rng.integers(1, 30, 20))
        flat = build_flat_indices(r.offsets, r.lengths)
        for skip, take in [(0, 5), (17, 100), (100, 0), (3, int(r.total_bytes) - 3)]:
            s = r.byte_slice(skip, take)
            np.testing.assert_array_equal(
                build_flat_indices(s.offsets, s.lengths), flat[skip : skip + take]
            )


class TestSplitByBytes:
    def test_simple(self):
        r = RegionList([0, 100], [10, 10])
        parts = r.split_by_bytes([5, 15])
        assert list(parts[0]) == [(0, 5)]
        assert list(parts[1]) == [(5, 5), (100, 10)]

    def test_cut_inside_region(self):
        r = RegionList([0], [10])
        parts = r.split_by_bytes([3, 3, 4])
        assert [p.total_bytes for p in parts] == [3, 3, 4]
        assert list(parts[2]) == [(6, 4)]

    def test_sum_mismatch(self):
        with pytest.raises(RegionError):
            RegionList([0], [10]).split_by_bytes([3, 3])

    def test_zero_count_piece(self):
        r = RegionList([0], [4])
        parts = r.split_by_bytes([0, 4])
        assert parts[0].total_bytes == 0
        assert parts[1].total_bytes == 4


class TestPairPieces:
    def test_identical_lists(self):
        a = RegionList([0, 10], [5, 5])
        ao, bo, ln = pair_pieces(a, a)
        assert ln.sum() == 10
        np.testing.assert_array_equal(ao, bo)

    def test_contig_memory_noncontig_file(self):
        mem = RegionList.single(0, 6)
        fil = RegionList([10, 20, 30], [2, 2, 2])
        ao, bo, ln = pair_pieces(mem, fil)
        assert list(ao) == [0, 2, 4]
        assert list(bo) == [10, 20, 30]
        assert list(ln) == [2, 2, 2]

    def test_misaligned_boundaries(self):
        a = RegionList([0, 100], [3, 3])
        b = RegionList([50, 60, 70], [2, 2, 2])
        ao, bo, ln = pair_pieces(a, b)
        assert ln.sum() == 6
        # piece boundaries at union of {3,6} and {2,4,6} -> {2,3,4,6}
        assert list(ln) == [2, 1, 1, 2]
        assert list(ao) == [0, 2, 100, 101]
        assert list(bo) == [50, 60, 61, 70]

    def test_volume_mismatch(self):
        with pytest.raises(RegionError):
            pair_pieces(RegionList([0], [5]), RegionList([0], [6]))

    def test_empty(self):
        ao, bo, ln = pair_pieces(RegionList.empty(), RegionList.empty())
        assert len(ln) == 0

    def test_roundtrip_copy_semantics(self):
        rng = np.random.default_rng(7)
        # random equal-volume lists
        la = rng.integers(1, 9, 20)
        lb_parts = []
        rem = int(la.sum())
        while rem > 0:
            t = int(rng.integers(1, min(9, rem) + 1))
            lb_parts.append(t)
            rem -= t
        lb = np.array(lb_parts)
        a = RegionList(np.arange(20) * 10, la)
        b = RegionList(np.arange(len(lb)) * 12, lb)
        ao, bo, ln = pair_pieces(a, b)
        src = rng.integers(0, 256, 1000).astype(np.uint8)
        via_pieces = np.zeros(1000, np.uint8)
        for x, y, n in zip(ao, bo, ln):
            via_pieces[y : y + n] = src[x : x + n]
        # reference: flatten both byte streams
        ia = build_flat_indices(a.offsets, a.lengths)
        ib = build_flat_indices(b.offsets, b.lengths)
        ref = np.zeros(1000, np.uint8)
        ref[ib] = src[ia]
        np.testing.assert_array_equal(via_pieces, ref)


class TestBuildFlatIndices:
    def test_basic(self):
        idx = build_flat_indices(np.array([5, 20]), np.array([3, 2]))
        assert list(idx) == [5, 6, 7, 20, 21]

    def test_skips_empty(self):
        idx = build_flat_indices(np.array([5, 9, 20]), np.array([2, 0, 1]))
        assert list(idx) == [5, 6, 20]

    def test_all_empty(self):
        assert build_flat_indices(np.array([1]), np.array([0])).size == 0

    def test_gather_scatter_roundtrip(self):
        buf = np.arange(100, dtype=np.uint8)
        idx = build_flat_indices(np.array([10, 50]), np.array([4, 4]))
        gathered = buf[idx]
        out = np.zeros(100, np.uint8)
        out[idx] = gathered
        np.testing.assert_array_equal(out[10:14], buf[10:14])
        np.testing.assert_array_equal(out[50:54], buf[50:54])
        assert out[:10].sum() == 0


class TestDunder:
    def test_eq_and_hash(self):
        a = RegionList([0, 5], [2, 2])
        b = RegionList([0, 5], [2, 2])
        c = RegionList([0, 5], [2, 3])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "nope"

    def test_len_iter(self):
        r = RegionList([0, 5], [2, 2])
        assert len(r) == 2
        assert list(iter(r)) == [(0, 2), (5, 2)]

    def test_repr_small_and_large(self):
        small = repr(RegionList([0], [4]))
        assert "1 regions" in small
        big = repr(RegionList.contiguous(0, 100, 1))
        assert "..." in big
