"""Tests for repro.config."""

import pytest

from repro.config import (
    DEFAULT_LIST_IO_MAX_REGIONS,
    DEFAULT_SIEVE_BUFFER_SIZE,
    CacheConfig,
    ClusterConfig,
    CostModel,
    DiskConfig,
    NetworkConfig,
    StripeParams,
)
from repro.errors import ConfigError
from repro.units import MiB


class TestNetworkConfig:
    def test_defaults_model_fast_ethernet(self):
        net = NetworkConfig()
        assert net.bandwidth == 12.5e6  # 100 Mbit/s in bytes/s
        assert net.mtu == 1500
        assert net.mtu_payload == 1460

    def test_frames_for(self):
        net = NetworkConfig()
        assert net.frames_for(0) == 1  # bare header still needs a frame
        assert net.frames_for(1) == 1
        assert net.frames_for(1460) == 1
        assert net.frames_for(1461) == 2
        assert net.frames_for(14600) == 10

    def test_wire_bytes_includes_per_frame_overhead(self):
        net = NetworkConfig()
        one = net.wire_bytes(100)
        assert one == 100 + 38 + 40
        two = net.wire_bytes(2000)
        assert two == 2000 + 2 * 78

    def test_transmit_time_monotone_in_payload(self):
        net = NetworkConfig()
        assert net.transmit_time(100) < net.transmit_time(1000) < net.transmit_time(100000)

    def test_single_frame_request_matches_paper_design_point(self):
        # Paper 3.3: header + 64 (offset, length) pairs fits one Ethernet packet.
        net = NetworkConfig()
        trailing = 64 * 16
        assert trailing + 40 <= net.mtu  # with TCP/IP headers

    def test_validation(self):
        with pytest.raises(ConfigError):
            NetworkConfig(bandwidth=0)
        with pytest.raises(ConfigError):
            NetworkConfig(latency=-1)
        with pytest.raises(ConfigError):
            NetworkConfig(mtu=20, ip_tcp_overhead=40)


class TestDiskConfig:
    def test_positioning_time(self):
        d = DiskConfig()
        assert d.positioning_time == pytest.approx(d.seek_time + d.rotational_latency)

    def test_validation(self):
        with pytest.raises(ConfigError):
            DiskConfig(transfer_rate=0)
        with pytest.raises(ConfigError):
            DiskConfig(seek_time=-0.1)


class TestCacheConfig:
    def test_n_blocks(self):
        c = CacheConfig(capacity=16 * 4096, block_size=4096)
        assert c.n_blocks == 16

    def test_validation(self):
        with pytest.raises(ConfigError):
            CacheConfig(block_size=0)


class TestCostModel:
    def test_defaults_positive(self):
        c = CostModel()
        assert c.iod_request_cost > 0
        assert c.iod_region_cost > 0
        assert c.iod_request_cost > c.iod_region_cost  # per-request dominates

    def test_validation(self):
        with pytest.raises(ConfigError):
            CostModel(iod_request_cost=-1.0)
        with pytest.raises(ConfigError):
            CostModel(memcpy_rate=0.0)


class TestStripeParams:
    def test_paper_default_stripe_size(self):
        assert StripeParams().stripe_size == 16384

    def test_resolve_pcount_defaults_to_all(self):
        assert StripeParams().resolve_pcount(8) == 8
        assert StripeParams(pcount=4).resolve_pcount(8) == 4

    def test_resolve_pcount_rejects_overcommit(self):
        with pytest.raises(ConfigError):
            StripeParams(pcount=9).resolve_pcount(8)
        with pytest.raises(ConfigError):
            StripeParams(base=8).resolve_pcount(8)

    def test_validation(self):
        with pytest.raises(ConfigError):
            StripeParams(stripe_size=0)
        with pytest.raises(ConfigError):
            StripeParams(pcount=0)


class TestClusterConfig:
    def test_chiba_city_defaults(self):
        cfg = ClusterConfig.chiba_city()
        assert cfg.n_iods == 8
        assert cfg.stripe.stripe_size == 16384
        assert cfg.list_io_max_regions == DEFAULT_LIST_IO_MAX_REGIONS == 64
        assert cfg.sieve_buffer_size == DEFAULT_SIEVE_BUFFER_SIZE == 32 * MiB
        assert cfg.manager_on_iod0 is True

    def test_with_override(self):
        cfg = ClusterConfig().with_(n_clients=16)
        assert cfg.n_clients == 16
        assert cfg.n_iods == 8  # untouched

    def test_validation(self):
        with pytest.raises(ConfigError):
            ClusterConfig(n_clients=0)
        with pytest.raises(ConfigError):
            ClusterConfig(n_iods=0)
        with pytest.raises(ConfigError):
            ClusterConfig(list_io_max_regions=0)
        with pytest.raises(ConfigError):
            ClusterConfig(stripe=StripeParams(pcount=16), n_iods=8)
