"""Tests for the result-comparison tool (repro.experiments.compare)."""

import pytest

from repro.experiments import SMOKE, figure9, points_to_csv
from repro.experiments.compare import (
    CompareError,
    compare_csv,
    format_comparison,
    main,
)


@pytest.fixture(scope="module")
def csv_pair(tmp_path_factory):
    d = tmp_path_factory.mktemp("cmp")
    res = figure9(scale=SMOKE, mode="model")
    before = d / "before.csv"
    before.write_text(points_to_csv(res.points))
    # "after": same points with elapsed doubled for one series
    doubled = []
    for p in res.points:
        q = type(p)(**{**p.__dict__})
        if q.series == "multiple":
            q.elapsed *= 2
        doubled.append(q)
    after = d / "after.csv"
    after.write_text(points_to_csv(doubled))
    return str(before), str(after)


class TestCompare:
    def test_identical_files(self, csv_pair):
        before, _ = csv_pair
        cmp = compare_csv(before, before)
        assert cmp.min_ratio == cmp.max_ratio == 1.0
        assert not cmp.only_before and not cmp.only_after

    def test_detects_doubling(self, csv_pair):
        cmp = compare_csv(*csv_pair)
        assert cmp.max_ratio == pytest.approx(2.0)
        assert cmp.min_ratio == pytest.approx(1.0)
        worst = cmp.worst(1)[0]
        assert worst.key[1] == "multiple"
        assert worst.ratio == pytest.approx(2.0)

    def test_per_figure_stats(self, csv_pair):
        cmp = compare_csv(*csv_pair)
        stats = cmp.per_figure()["fig09"]
        assert stats["max"] == pytest.approx(2.0)
        assert stats["min"] == pytest.approx(1.0)

    def test_unmatched_points_reported(self, csv_pair, tmp_path):
        before, after = csv_pair
        # truncate the after file to fewer rows
        lines = open(after).read().splitlines()
        short = tmp_path / "short.csv"
        short.write_text("\n".join(lines[:-2]) + "\n")
        cmp = compare_csv(before, str(short))
        assert len(cmp.only_before) == 2

    def test_malformed_rejected(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("a,b\n1,2\n")
        with pytest.raises(CompareError):
            compare_csv(str(bad), str(bad))

    def test_format_and_main(self, csv_pair, capsys):
        out = format_comparison(compare_csv(*csv_pair))
        assert "ratio range" in out
        assert "largest changes" in out
        rc = main(list(csv_pair))
        assert rc == 0
        assert "fig09" in capsys.readouterr().out

    def test_main_usage(self, capsys):
        assert main([]) == 2
