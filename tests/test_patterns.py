"""Tests for the benchmark access patterns."""

import pytest

from repro.errors import PatternError
from repro.patterns import (
    FlashConfig,
    TiledConfig,
    block_block,
    flash_io,
    one_dim_cyclic,
    tiled_visualization,
)
from repro.patterns.base import Pattern, RankAccess
from repro.regions import RegionList
from repro.units import MiB


class TestBase:
    def test_rank_access_volume_check(self):
        with pytest.raises(PatternError):
            RankAccess(0, RegionList.single(0, 10), RegionList.single(0, 20))

    def test_pattern_rank_ordering_check(self):
        a0 = RankAccess(0, RegionList.single(0, 4), RegionList.single(0, 4))
        with pytest.raises(PatternError):
            Pattern("x", (a0, a0), file_size=8)  # duplicate rank 0

    def test_pattern_needs_ranks(self):
        with pytest.raises(PatternError):
            Pattern("x", (), file_size=0)


class TestCyclic:
    def test_block_size_derivation(self):
        p = one_dim_cyclic(total_bytes=1024, n_clients=4, accesses_per_client=8)
        a = p.rank(0)
        assert a.n_file_regions == 8
        assert a.nbytes == 256
        assert a.file_regions.lengths[0] == 32  # 1024 / (4*8)

    def test_interleaving(self):
        p = one_dim_cyclic(total_bytes=64, n_clients=4, accesses_per_client=2)
        # block = 8; rank 1 gets offsets 8, 40
        assert list(p.rank(1).file_regions.offsets) == [8, 40]

    def test_covers_file_disjointly(self):
        p = one_dim_cyclic(total_bytes=4096, n_clients=8, accesses_per_client=16)
        assert p.verify_disjoint_across_ranks()
        assert p.verify_covers_file()

    def test_more_accesses_same_bytes(self):
        p1 = one_dim_cyclic(1 * MiB, 8, 64)
        p2 = one_dim_cyclic(1 * MiB, 8, 512)
        assert p1.total_bytes == p2.total_bytes
        assert p2.total_file_regions == 8 * p1.total_file_regions

    def test_paper_access_size_formula(self):
        # Paper: (1 GiB)/(clients)/(accesses) bytes per access.
        p = one_dim_cyclic(2**30, 16, 4096)
        assert p.rank(0).file_regions.lengths[0] == 2**30 // 16 // 4096

    def test_indivisible_rounds_down(self):
        # 100 B over 3 clients x 7 accesses -> 4 B blocks, 84 B aggregate.
        p = one_dim_cyclic(total_bytes=100, n_clients=3, accesses_per_client=7)
        assert p.file_size == 84
        assert p.rank(0).file_regions.lengths[0] == 4
        assert p.verify_covers_file()

    def test_bad_params(self):
        with pytest.raises(PatternError):
            one_dim_cyclic(0, 4, 4)
        with pytest.raises(PatternError):
            one_dim_cyclic(64, 0, 4)
        with pytest.raises(PatternError):
            one_dim_cyclic(10, 4, 4)  # under 1 byte per access


class TestBlockBlock:
    def test_grid_partition(self):
        # 4 clients on a 16x16-byte array: 8x8 blocks.
        p = block_block(total_bytes=256, n_clients=4, accesses_per_client=8)
        a = p.rank(0)  # top-left block
        assert a.nbytes == 64
        assert list(a.file_regions.offsets[:2]) == [0, 16]
        b = p.rank(1)  # top-right block starts at column 8
        assert b.file_regions.offsets[0] == 8

    def test_covers_file_disjointly(self):
        p = block_block(total_bytes=4096, n_clients=16, accesses_per_client=16)
        assert p.verify_disjoint_across_ranks()
        assert p.verify_covers_file()

    def test_access_subdivision(self):
        base = block_block(total_bytes=4096, n_clients=4, accesses_per_client=32)
        fine = block_block(total_bytes=4096, n_clients=4, accesses_per_client=128)
        assert fine.total_bytes == base.total_bytes
        assert fine.rank(0).n_file_regions == 4 * base.rank(0).n_file_regions
        # finer accesses are quarters of rows
        assert fine.rank(0).file_regions.lengths[0] * 4 == base.rank(0).file_regions.lengths[0]

    def test_non_square_clients_rejected(self):
        with pytest.raises(PatternError):
            block_block(4096, 8, 64)

    def test_non_square_bytes_round_down(self):
        # isqrt(1000)=31 -> side rounds to 30 -> 900 B array.
        p = block_block(1000, 4, 15)
        assert p.file_size == 900
        assert p.verify_covers_file()

    def test_access_granularity_rounds(self):
        # 33 accesses over 32 rows -> 1 piece/row -> 32 actual accesses.
        p = block_block(total_bytes=4096, n_clients=4, accesses_per_client=33)
        assert p.rank(0).n_file_regions == 32

    def test_too_small_rejected(self):
        with pytest.raises(PatternError):
            block_block(total_bytes=1, n_clients=4, accesses_per_client=1)

    def test_each_client_touches_few_servers(self):
        """The paper's Figure 11 explanation: block-block clients hit only a
        fraction of the I/O servers."""
        from repro.config import StripeParams
        from repro.pvfs.striping import map_regions

        # Paper scale: 1 GiB array (32768x32768), 16 clients, stripe 16 KiB,
        # 8 servers.  A row is 2 stripe units, so a client's rows step
        # through servers 2 at a time -> only 4 of 8 servers per client.
        p = block_block(total_bytes=2**30, n_clients=16, accesses_per_client=8192)
        sp = StripeParams(stripe_size=16384)
        servers_used = [
            map_regions(p.rank(r).file_regions, sp, 8).n_servers for r in (0, 5)
        ]
        assert max(servers_used) <= 4  # far fewer than 8

        # By contrast the cyclic pattern spreads every client over all 8.
        pc = one_dim_cyclic(2**30, 16, 2**17)
        cyc = [map_regions(pc.rank(r).file_regions, sp, 8).n_servers for r in (0, 5)]
        assert min(cyc) == 8


class TestFlash:
    def test_paper_counts(self):
        cfg = FlashConfig()
        assert cfg.mem_regions_per_proc == 983_040  # paper's multiple I/O count
        assert cfg.file_regions_per_proc == 1920
        assert cfg.checkpoint_bytes_per_proc == 7_864_320  # 7.5 MiB
        assert cfg.chunk_bytes == 4096

    def test_pattern_structure(self):
        cfg = FlashConfig(n_blocks=2, nxb=2, nyb=2, nzb=2, n_vars=3, n_guard=1)
        p = flash_io(2, cfg)
        a = p.rank(0)
        assert a.n_file_regions == 2 * 3
        assert a.mem_regions.count == 2 * 8 * 3
        assert (a.mem_regions.lengths == 8).all()
        assert a.nbytes == cfg.checkpoint_bytes_per_proc
        assert p.file_size == 2 * cfg.checkpoint_bytes_per_proc

    def test_memory_regions_respect_guard_cells(self):
        cfg = FlashConfig(n_blocks=1, nxb=2, nyb=2, nzb=2, n_vars=1, n_guard=1)
        p = flash_io(1, cfg)
        offs = p.rank(0).mem_regions.offsets
        # padded block is 4x4x4; inner elements are at (1..2)^3
        expected_first = (1 * 16 + 1 * 4 + 1) * 8  # element (z=1,y=1,x=1)
        assert offs[0] == expected_first

    def test_variable_interleaving_in_memory(self):
        cfg = FlashConfig(n_blocks=1, nxb=1, nyb=1, nzb=1, n_vars=4, n_guard=0)
        p = flash_io(1, cfg)
        # one element, 4 vars -> memory regions at 8-byte steps
        assert list(p.rank(0).mem_regions.offsets) == [0, 8, 16, 24]

    def test_file_layout_variable_major(self):
        cfg = FlashConfig(n_blocks=2, nxb=1, nyb=1, nzb=1, n_vars=2, n_guard=0)
        p = flash_io(2, cfg)
        # chunk = 8 B; offset(v, b, p) = ((v*2 + b)*2 + p) * 8
        assert list(p.rank(0).file_regions.offsets) == [0, 16, 32, 48]
        assert list(p.rank(1).file_regions.offsets) == [8, 24, 40, 56]

    def test_disjoint_and_covering(self):
        cfg = FlashConfig(n_blocks=2, nxb=2, nyb=2, nzb=2, n_vars=2, n_guard=1)
        p = flash_io(3, cfg)
        assert p.verify_disjoint_across_ranks()
        assert p.verify_covers_file()

    def test_scaled_config_shrinks(self):
        s = FlashConfig.scaled(4)
        assert s.n_blocks < FlashConfig.n_blocks
        assert s.checkpoint_bytes_per_proc < FlashConfig().checkpoint_bytes_per_proc
        assert s.n_vars == 24  # structure preserved

    def test_memory_regions_are_disjoint(self):
        cfg = FlashConfig(n_blocks=2, nxb=2, nyb=2, nzb=2, n_vars=3, n_guard=1)
        p = flash_io(1, cfg)
        assert p.rank(0).mem_regions.is_disjoint()

    def test_validation(self):
        with pytest.raises(PatternError):
            FlashConfig(n_blocks=0)
        with pytest.raises(PatternError):
            flash_io(0)


class TestTiled:
    def test_paper_geometry(self):
        cfg = TiledConfig()
        assert cfg.frame_width == 3 * 1024 - 2 * 270 == 2532
        assert cfg.frame_height == 2 * 768 - 128 == 1408
        assert cfg.file_size == 2532 * 1408 * 3  # ~10.2 MB
        assert 10.0e6 < cfg.file_size < 10.8e6
        assert cfg.regions_per_tile == 768  # paper: 768 -> 12 list requests

    def test_six_ranks(self):
        p = tiled_visualization()
        assert p.n_ranks == 6
        for r in range(6):
            assert p.rank(r).n_file_regions == 768
            assert p.rank(r).nbytes == 1024 * 768 * 3

    def test_tile_origins(self):
        cfg = TiledConfig()
        p = tiled_visualization(cfg)
        row = cfg.frame_width * 3
        # rank 1 = second tile in top row: x0 = 1024-270 = 754
        assert p.rank(1).file_regions.offsets[0] == 754 * 3
        # rank 3 = first tile of bottom row: y0 = 768-128 = 640
        assert p.rank(3).file_regions.offsets[0] == 640 * row

    def test_overlap_makes_ranks_share_bytes(self):
        p = tiled_visualization()
        combined = p.rank(0).file_regions.concat(p.rank(1).file_regions)
        assert not combined.is_disjoint()  # overlap pixels are read twice

    def test_regions_stay_in_file(self):
        cfg = TiledConfig()
        p = tiled_visualization(cfg)
        for r in range(p.n_ranks):
            assert p.rank(r).file_regions.extent[1] <= cfg.file_size

    def test_validation(self):
        with pytest.raises(PatternError):
            TiledConfig(overlap_x=1024)
        with pytest.raises(PatternError):
            TiledConfig(tiles_x=0)
