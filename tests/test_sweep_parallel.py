"""Parallel sweep correctness: bit-identical results at any job count.

The acceptance scenario from the sweep-engine issue: a figure sweep with
``--jobs N`` (N >= 2) must return bit-identical per-point results to the
serial run (every point owns its seeded RNG, so process placement cannot
matter), results must come back in spec order regardless of completion
order, and an immediate cached re-run must be 100% cache hits with
measurably lower wall-clock.

Reuses the determinism style of ``tests/test_faults.py`` (its RETRY
policy and straggler plans) so the faults layer is exercised *through*
the worker-process path, not just the serial one.
"""


from repro.config import ClusterConfig
from repro.faults import FaultConfig, FaultPlan, Straggler
from repro.obs import ObsSession
from repro.sweep import ChaosSpec, PointSpec, ResultCache, run_sweep
from repro.units import MiB

from .test_faults import RETRY


def _specs():
    """A small mixed sweep: two methods x two access counts, plus one
    fault-injected straggler point riding the RETRY policy."""
    specs = []
    cfg = ClusterConfig.chiba_city(n_clients=2)
    for acc in (4, 8):
        for method in ("list", "multiple"):
            specs.append(
                PointSpec(
                    figure="figP",
                    pattern="one_dim_cyclic",
                    pattern_args=(1 * MiB, 2, acc),
                    method=method,
                    kind="read",
                    mode="des",
                    cfg=cfg,
                    x=acc,
                )
            )
    faulty = cfg.with_(
        faults=FaultConfig(
            plan=FaultPlan((Straggler(iod=0, scale=8.0),)), retry=RETRY
        )
    )
    specs.append(
        PointSpec(
            figure="figP",
            pattern="one_dim_cyclic",
            pattern_args=(1 * MiB, 2, 8),
            method="list",
            kind="write",
            mode="des",
            cfg=faulty,
            x=8,
        )
    )
    return specs


class TestParallelDeterminism:
    def test_jobs4_bit_identical_to_jobs1(self):
        specs = _specs()
        serial, s_stats = run_sweep(specs, jobs=1)
        parallel, p_stats = run_sweep(specs, jobs=4)
        # dataclass equality: every field of every point, exact floats
        assert parallel == serial
        assert s_stats.executed == p_stats.executed == len(specs)
        assert len(p_stats.per_worker) > 1  # genuinely fanned out

    def test_results_come_back_in_spec_order(self):
        specs = _specs()
        results, _ = run_sweep(specs, jobs=2)
        for spec, point in zip(specs, results):
            assert point.series == (spec.series or spec.method)
            assert point.x == spec.x
            assert point.kind == spec.kind

    def test_driver_level_jobs2_matches_serial(self):
        from repro.experiments.presets import SMOKE
        from repro.experiments.tiledvis import figure17

        serial = figure17(scale=SMOKE, mode="des", jobs=1)
        parallel = figure17(scale=SMOKE, mode="des", jobs=2)
        assert parallel.points == serial.points
        assert [c.passed for c in parallel.checks] == [
            c.passed for c in serial.checks
        ]

    def test_chaos_scenarios_parallel_equal_serial(self):
        from repro.experiments.presets import SMOKE

        specs = [
            ChaosSpec(scenario=s, benchmark="artificial", scale=SMOKE)
            for s in ("disk-stall", "straggler")
        ]
        serial, _ = run_sweep(specs, jobs=1)
        parallel, _ = run_sweep(specs, jobs=2)
        assert parallel == serial


class TestCachedRerun:
    def test_second_run_is_all_hits_and_faster(self, tmp_path):
        specs = _specs()
        cache = ResultCache(str(tmp_path))
        first, stats1 = run_sweep(specs, jobs=1, cache=cache)
        assert stats1.cache_hits == 0
        assert stats1.executed == len(specs)
        second, stats2 = run_sweep(specs, jobs=1, cache=cache)
        assert second == first  # cached points are bit-identical
        assert stats2.cache_hits == len(specs)  # 100% hits
        assert stats2.executed == 0
        # measurably lower wall-clock: reading JSON beats re-simulating
        assert stats2.wall_s < stats1.wall_s / 2

    def test_parallel_run_populates_cache_for_serial_rerun(self, tmp_path):
        specs = _specs()
        cache = ResultCache(str(tmp_path))
        first, stats1 = run_sweep(specs, jobs=4, cache=cache)
        second, stats2 = run_sweep(specs, jobs=1, cache=cache)
        assert second == first
        assert stats2.cache_hits == len(specs)


class TestObservabilityAcrossWorkers:
    def test_jobs2_still_captures_the_dominating_run(self):
        specs = _specs()
        obs = ObsSession()
        results, stats = run_sweep(specs, jobs=2, obs=obs)
        assert obs.runs, "parallel sweep must still capture a run for obs"
        best_i = max(range(len(results)), key=lambda i: results[i].elapsed)
        best_spec, best_point = specs[best_i], results[best_i]
        # the recapture re-ran the dominating spec (labels come from des_point)
        label = (
            f"{best_spec.figure}/{best_spec.method} {best_spec.kind} "
            f"x={best_spec.x:g} clients={best_point.n_clients}"
        )
        assert [r.label for r in obs.runs] == [label]
        assert obs.sweeps and obs.sweeps[0] is stats

    def test_fully_cached_sweep_recaptures_for_trace_export(self, tmp_path):
        specs = _specs()[:2]
        cache = ResultCache(str(tmp_path))
        run_sweep(specs, jobs=1, cache=cache)
        obs = ObsSession()
        results, stats = run_sweep(specs, jobs=1, cache=cache, obs=obs)
        assert stats.cache_hits == len(specs)
        assert obs.runs  # --trace-out keeps working on a 100%-hit re-run
        assert obs.best_run().elapsed == max(p.elapsed for p in results)
