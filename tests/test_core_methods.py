"""Tests for the access methods (repro.core): correctness and accounting."""

import numpy as np
import pytest

from repro.config import ClusterConfig, StripeParams
from repro.core import (
    DataSievingIO,
    HybridIO,
    ListIO,
    MultipleIO,
    VectorIO,
    pvfs_read_list,
    pvfs_write_list,
)
from repro.errors import RegionError
from repro.mpi import Communicator
from repro.pvfs import Cluster
from repro.regions import RegionList, build_flat_indices


def make_cluster(**kw) -> Cluster:
    kw.setdefault("n_clients", 2)
    kw.setdefault("n_iods", 4)
    kw.setdefault("stripe", StripeParams(stripe_size=128))
    return Cluster.build(ClusterConfig(**kw))


def run_write_then_read(method_w, method_r, mem_regions, file_regions, seed=3):
    """Write a pattern with one method instance, read back with another;
    returns (written buffer, read-back buffer)."""
    cluster = make_cluster()
    rng = np.random.default_rng(seed)
    buf_size = mem_regions.extent[1] + 8
    src = rng.integers(0, 256, buf_size).astype(np.uint8)
    dst = np.zeros(buf_size, np.uint8)

    def writer(client):
        f = yield from client.open("/x", create=True)
        yield from method_w.write(f, src, mem_regions, file_regions)
        yield from f.close()

    cluster.run_workload(writer, clients=[0])

    def reader(client):
        f = yield from client.open("/x")
        yield from method_r.read(f, dst, mem_regions, file_regions)
        yield from f.close()

    cluster.run_workload(reader, clients=[1])
    return src, dst


def random_pattern(seed=11, n=25):
    """A random disjoint, sorted file pattern with a noncontiguous memory
    side of equal volume."""
    rng = np.random.default_rng(seed)
    lengths = rng.integers(1, 60, n)
    gaps = rng.integers(0, 80, n)
    file_off = np.cumsum(gaps + np.concatenate(([0], lengths[:-1]))).astype(np.int64)
    file_regions = RegionList(file_off, lengths)
    # memory: same lengths, strided layout
    mem_off = np.arange(n, dtype=np.int64) * 70
    mem_regions = RegionList(mem_off, lengths)
    assert mem_regions.total_bytes == file_regions.total_bytes
    return mem_regions, file_regions


ALL_METHODS = [MultipleIO(), DataSievingIO(), ListIO(), HybridIO(), VectorIO(fallback=True)]


class TestCrossMethodEquivalence:
    """Every method must realize the exact same transfer semantics."""

    @pytest.mark.parametrize("writer", ALL_METHODS, ids=lambda m: m.name)
    @pytest.mark.parametrize("reader", ALL_METHODS, ids=lambda m: m.name)
    def test_write_with_one_read_with_another(self, writer, reader):
        mem, fil = random_pattern()
        src, dst = run_write_then_read(writer, reader, mem, fil)
        idx = build_flat_indices(mem.offsets, mem.lengths)
        np.testing.assert_array_equal(dst[idx], src[idx])

    @pytest.mark.parametrize("method", ALL_METHODS, ids=lambda m: m.name)
    def test_strided_vector_pattern(self, method):
        mem = RegionList.single(0, 40 * 16)
        fil = RegionList.strided(start=64, count=40, length=16, stride=200)
        src, dst = run_write_then_read(method, method, mem, fil)
        np.testing.assert_array_equal(dst[: 40 * 16], src[: 40 * 16])


class TestVolumeValidation:
    @pytest.mark.parametrize("method", ALL_METHODS, ids=lambda m: m.name)
    def test_mismatched_volumes_rejected(self, method):
        cluster = make_cluster()

        def wl(client):
            f = yield from client.open("/v", create=True)
            try:
                yield from method.read(
                    f, np.zeros(100, np.uint8), RegionList.single(0, 10), RegionList.single(0, 20)
                )
            except RegionError:
                return "rejected"

        res = cluster.run_workload(wl, clients=[0])
        assert res.client_returns == ["rejected"]

    def test_memory_overrun_rejected(self):
        cluster = make_cluster()

        def wl(client):
            f = yield from client.open("/o", create=True)
            try:
                yield from ListIO().read(
                    f, np.zeros(5, np.uint8), RegionList.single(0, 10), RegionList.single(0, 10)
                )
            except RegionError:
                return "rejected"

        res = cluster.run_workload(wl, clients=[0])
        assert res.client_returns == ["rejected"]


class TestRequestAccounting:
    def count_requests(self, method, mem, fil, kind="read"):
        cluster = make_cluster()

        def wl(client):
            f = yield from client.open("/r", create=True)
            if kind == "read":
                yield from method.read(f, None, mem, fil)
            else:
                yield from method.write(
                    f, np.zeros(mem.extent[1] + 1, np.uint8), mem, fil
                )
            yield from f.close()

        res = cluster.run_workload(wl, clients=[0])
        return int(res.counters["client.0.logical_requests"])

    def test_multiple_is_one_request_per_piece(self):
        mem = RegionList.single(0, 100 * 4)
        fil = RegionList.strided(0, 100, 4, 50)
        assert self.count_requests(MultipleIO(), mem, fil) == 100
        assert MultipleIO.request_count(mem, fil) == 100

    def test_list_is_ceil_over_cap(self):
        mem = RegionList.single(0, 100 * 4)
        fil = RegionList.strided(0, 100, 4, 50)
        assert self.count_requests(ListIO(), mem, fil) == 2  # ceil(100/64)
        assert ListIO.request_count(fil) == 2

    def test_vector_is_single_request(self):
        mem = RegionList.single(0, 100 * 4)
        fil = RegionList.strided(0, 100, 4, 50)
        assert self.count_requests(VectorIO(), mem, fil) == 1

    def test_sieving_requests_depend_on_extent_not_count(self):
        mem_a = RegionList.single(0, 10 * 4)
        fil_a = RegionList.strided(0, 10, 4, 100)
        mem_b = RegionList.single(0, 100 * 4)
        fil_b = RegionList.strided(0, 100, 4, 10)
        # Similar extents (~1000 B) -> same request count despite 10x regions.
        assert self.count_requests(DataSievingIO(), mem_a, fil_a) == self.count_requests(
            DataSievingIO(), mem_b, fil_b
        )

    def test_sieving_splits_by_buffer_size(self):
        mem = RegionList.single(0, 64)
        fil = RegionList.strided(0, 8, 8, 1000)  # extent 7008 B
        n_big = self.count_requests(DataSievingIO(buffer_size=8192), mem, fil)
        n_small = self.count_requests(DataSievingIO(buffer_size=1024), mem, fil)
        assert n_big == 1
        assert n_small == 7

    def test_multiple_counts_max_fragmentation_of_both_sides(self):
        # 2 file regions x mismatched memory cuts -> pieces = union of cuts.
        mem = RegionList([0, 100, 200], [30, 30, 20])
        fil = RegionList([0, 500], [40, 40])
        assert MultipleIO.request_count(mem, fil) == 4

    def test_paper_request_count_formulas(self):
        # FLASH (Section 4.3.1): 1920 file regions -> 30 list requests.
        flash_regions = RegionList.contiguous(0, 1920 * 4096, 4096)
        assert ListIO.request_count(flash_regions, 64) == 30
        # Tiled visualization (Section 4.4.1): 768 regions -> 12 requests.
        tiled = RegionList.contiguous(0, 768 * 1024, 1024)
        assert ListIO.request_count(tiled, 64) == 12


class TestDataSieving:
    def test_requires_sorted_file_regions(self):
        cluster = make_cluster()

        def wl(client):
            f = yield from client.open("/s", create=True)
            try:
                yield from DataSievingIO().read(
                    f, np.zeros(20, np.uint8), RegionList.single(0, 20), RegionList([100, 0], [10, 10])
                )
            except RegionError:
                return "sorted required"

        res = cluster.run_workload(wl, clients=[0])
        assert res.client_returns == ["sorted required"]

    def test_write_requires_disjoint(self):
        cluster = make_cluster()

        def wl(client):
            f = yield from client.open("/d", create=True)
            try:
                yield from DataSievingIO().write(
                    f, np.zeros(20, np.uint8), RegionList.single(0, 20), RegionList([0, 5], [10, 10])
                )
            except RegionError:
                return "disjoint required"

        res = cluster.run_workload(wl, clients=[0])
        assert res.client_returns == ["disjoint required"]

    def test_wasted_bytes_accounted(self):
        cluster = make_cluster()
        fil = RegionList.strided(0, 4, 10, 100)  # 40 useful of 310 extent
        mem = RegionList.single(0, 40)

        def wl(client):
            f = yield from client.open("/w", create=True)
            yield from DataSievingIO().read(f, None, mem, fil)
            yield from f.close()

        res = cluster.run_workload(wl, clients=[0])
        assert res.counters["client.0.sieve_fetched_bytes"] == 310
        assert res.counters["client.0.sieve_wasted_bytes"] == 270

    def test_rmw_write_preserves_gap_bytes(self):
        cluster = make_cluster()
        marker = np.full(400, 5, np.uint8)

        def prefill(client):
            f = yield from client.open("/rmw", create=True)
            yield from f.write(0, marker)
            yield from f.close()

        cluster.run_workload(prefill, clients=[0])
        fil = RegionList.strided(0, 4, 10, 100)
        mem = RegionList.single(0, 40)

        def sieve_write(client):
            f = yield from client.open("/rmw")
            yield from DataSievingIO().write(f, np.full(40, 9, np.uint8), mem, fil)
            yield from f.close()

        cluster.run_workload(sieve_write, clients=[1])

        def check(client):
            f = yield from client.open("/rmw")
            data = yield from f.read(0, 400)
            yield from f.close()
            return data

        data = cluster.run_workload(check, clients=[0]).client_returns[0]
        for i in range(4):
            assert (data[i * 100 : i * 100 + 10] == 9).all()
            assert (data[i * 100 + 10 : (i + 1) * 100] == 5).all()

    def test_serialized_write_many_clients(self):
        cluster = make_cluster(n_clients=3)
        comm = Communicator(cluster.sim, 3)
        # interleaved disjoint patterns, one per rank
        patterns = [RegionList.strided(r * 20, 5, 20, 60) for r in range(3)]

        def wl(client):
            rank = client.index
            f = yield from client.open("/par", create=True)
            fill = np.full(100, rank + 1, np.uint8)
            yield from DataSievingIO().serialized_write(
                comm, rank, f, fill, RegionList.single(0, 100), patterns[rank]
            )
            yield from f.close()

        cluster.run_workload(wl)

        def check(client):
            f = yield from client.open("/par")
            data = yield from f.read(0, 60 * 5)
            yield from f.close()
            return data

        data = cluster.run_workload(check, clients=[0]).client_returns[0]
        for r in range(3):
            idx = build_flat_indices(patterns[r].offsets, patterns[r].lengths)
            assert (data[idx] == r + 1).all()


class TestHybrid:
    def test_cluster_extents(self):
        from repro.core import cluster_extents

        r = RegionList([0, 15, 100], [10, 10, 10])
        assert list(cluster_extents(r, 5)) == [(0, 25), (100, 10)]
        assert list(cluster_extents(r, 0)) == [(0, 10), (15, 10), (100, 10)]
        assert list(cluster_extents(r, 1000)) == [(0, 110)]

    def test_zero_threshold_behaves_like_list(self):
        mem, fil = random_pattern(seed=5)
        src, dst = run_write_then_read(HybridIO(gap_threshold=0), ListIO(), mem, fil)
        idx = build_flat_indices(mem.offsets, mem.lengths)
        np.testing.assert_array_equal(dst[idx], src[idx])

    def test_dense_pattern_issues_fewer_requests(self):
        fil = RegionList.strided(0, 200, 4, 8)  # tiny gaps
        mem = RegionList.single(0, 800)
        cluster = make_cluster()

        def wl_list(client):
            f = yield from client.open("/h1", create=True)
            yield from ListIO().read(f, None, mem, fil)

        n_list = int(
            cluster.run_workload(wl_list, clients=[0]).counters["client.0.logical_requests"]
        )
        cluster2 = make_cluster()

        def wl_hybrid(client):
            f = yield from client.open("/h2", create=True)
            yield from HybridIO(gap_threshold=16).read(f, None, mem, fil)

        n_hybrid = int(
            cluster2.run_workload(wl_hybrid, clients=[0]).counters["client.0.logical_requests"]
        )
        assert n_list == 4  # ceil(200/64)
        assert n_hybrid == 1  # everything clusters into one extent

    def test_hybrid_wasted_accounting(self):
        fil = RegionList([0, 8], [4, 4])  # 4-byte gap clusters at threshold 8
        mem = RegionList.single(0, 8)
        cluster = make_cluster()

        def wl(client):
            f = yield from client.open("/hw", create=True)
            yield from HybridIO(gap_threshold=8).read(f, None, mem, fil)

        res = cluster.run_workload(wl, clients=[0])
        assert res.counters["client.0.hybrid_fetched_bytes"] == 12
        assert res.counters["client.0.hybrid_wasted_bytes"] == 4

    def test_bad_threshold(self):
        with pytest.raises(RegionError):
            HybridIO(gap_threshold=-1)


class TestVectorIO:
    def test_rejects_irregular_without_fallback(self):
        cluster = make_cluster()
        fil = RegionList([0, 10, 35], [5, 5, 5])
        mem = RegionList.single(0, 15)

        def wl(client):
            f = yield from client.open("/vec", create=True)
            try:
                yield from VectorIO().read(f, None, mem, fil)
            except RegionError:
                return "irregular"

        res = cluster.run_workload(wl, clients=[0])
        assert res.client_returns == ["irregular"]

    def test_as_vector_recognition(self):
        from repro.core import as_vector

        assert as_vector(RegionList.strided(7, 5, 3, 10)) == (7, 5, 3, 10)
        assert as_vector(RegionList.single(7, 3)) == (7, 1, 3, 3)
        assert as_vector(RegionList([0, 10], [5, 6])) is None  # ragged lengths
        assert as_vector(RegionList([0, 10, 30], [5, 5, 5])) is None  # ragged stride
        assert as_vector(RegionList.empty()) is None

    def test_vector_wire_cost_below_list(self):
        """A vector request must put fewer bytes on the wire than the
        equivalent list requests (that is its whole point)."""
        fil = RegionList.strided(0, 256, 8, 64)
        mem = RegionList.single(0, 256 * 8)

        def run(method):
            cluster = make_cluster()

            def wl(client):
                f = yield from client.open("/w", create=True)
                yield from method.read(f, None, mem, fil)

            res = cluster.run_workload(wl, clients=[0])
            return res.counters["net.payload_bytes"]

        assert run(VectorIO()) < run(ListIO())


class TestPaperAPI:
    def test_pvfs_read_write_list_roundtrip(self):
        cluster = make_cluster()
        src = np.arange(100, dtype=np.uint8)
        dst = np.zeros(100, np.uint8)

        def wl(client):
            f = yield from client.open("/api", create=True)
            yield from pvfs_write_list(
                f, src, [0, 50], [20, 20], [100, 300], [20, 20]
            )
            yield from pvfs_read_list(
                f, dst, [0, 50], [20, 20], [100, 300], [20, 20]
            )
            yield from f.close()

        cluster.run_workload(wl, clients=[0])
        np.testing.assert_array_equal(dst[0:20], src[0:20])
        np.testing.assert_array_equal(dst[50:70], src[50:70])
        assert dst[20:50].sum() == 0
