"""Tests for the Perfetto trace-event exporter (repro.obs.perfetto)."""

import json
from collections import defaultdict

import numpy as np
import pytest

from repro.config import ClusterConfig, StripeParams
from repro.obs import ObsSession, build_trace, write_trace
from repro.pvfs import Cluster
from repro.regions import RegionList


def captured_run():
    obs = ObsSession()
    cluster = Cluster.build(
        ClusterConfig(n_clients=2, n_iods=2, stripe=StripeParams(stripe_size=128)),
        trace=True,
    )
    obs.attach(cluster)

    def wl(client):
        f = yield from client.open("/p", create=True)
        yield from f.write_list(
            RegionList.strided(client.index * 64, 8, 16, 256),
            np.zeros(128, np.uint8),
        )
        yield from f.read(0, 512)
        yield from f.close()

    cluster.run_workload(wl)
    return obs, obs.capture(cluster, label="perfetto-test")


class TestTraceEventSchema:
    def test_required_keys_on_complete_events(self):
        _, run = captured_run()
        doc = build_trace(run)
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert spans, "no span events exported"
        for e in spans:
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid"} <= set(e)
            assert isinstance(e["pid"], int) and e["pid"] >= 1
            assert isinstance(e["tid"], int) and e["tid"] >= 1
            assert e["ts"] >= 0.0
            assert e["dur"] >= 0.0

    def test_timestamps_are_microseconds(self):
        _, run = captured_run()
        doc = build_trace(run)
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        # Spans carry seconds; events must carry the same times in us.
        span_starts = sorted(s.start * 1e6 for s in run.spans)
        event_starts = sorted(e["ts"] for e in spans)
        # net.xfer events are mirrored onto the RX lane, so compare sets.
        assert set(round(t, 6) for t in event_starts) <= set(
            round(t, 6) for t in span_starts
        )
        # The run window in us bounds every event.
        for e in spans:
            assert e["ts"] + e["dur"] <= run.t1 * 1e6 + 1e-6

    def test_monotonic_timestamps_per_lane(self):
        _, run = captured_run()
        doc = build_trace(run)
        lanes = defaultdict(list)
        for e in doc["traceEvents"]:
            if e["ph"] == "X":
                lanes[(e["pid"], e["tid"])].append(e["ts"])
        assert lanes
        for lane, ts in lanes.items():
            assert ts == sorted(ts), f"lane {lane} not monotonic"

    def test_counter_events_for_queue_depth(self):
        _, run = captured_run()
        doc = build_trace(run)
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert counters
        for e in counters:
            assert {"name", "ph", "ts", "pid", "args"} <= set(e)
            assert "depth" in e["args"]

    def test_process_and_thread_metadata(self):
        _, run = captured_run()
        doc = build_trace(run)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        proc_names = {
            e["args"]["name"] for e in meta if e["name"] == "process_name"
        }
        thread_names = {
            e["args"]["name"] for e in meta if e["name"] == "thread_name"
        }
        assert {"client0", "client1", "iod0", "iod1"} <= proc_names
        assert {"requests", "service", "disk", "nic.tx", "nic.rx"} <= thread_names

    def test_lane_placement(self):
        _, run = captured_run()
        doc = build_trace(run)
        evs = doc["traceEvents"]
        pid_of = {
            e["args"]["name"]: e["pid"]
            for e in evs
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        # Every iod.service span sits on the pid of its own daemon.
        for e in evs:
            if e.get("cat") == "iod.service":
                iod = e["args"]["iod"]
                assert e["pid"] == pid_of[f"iod{iod}"]
            if e.get("cat") == "client.request":
                cl = e["args"]["client"]
                assert e["pid"] == pid_of[f"client{cl}"]

    def test_other_data_self_describing(self):
        _, run = captured_run()
        doc = build_trace(run)
        other = doc["otherData"]
        assert other["label"] == "perfetto-test"
        assert other["window_s"] == pytest.approx(run.elapsed)
        assert "bottleneck" in other and other["bottleneck"]["verdict"]
        assert "span_summary" in other


class TestRoundTrip:
    def test_write_and_reload(self, tmp_path):
        _, run = captured_run()
        path = tmp_path / "trace.json"
        doc = write_trace(run, str(path))
        loaded = json.loads(path.read_text())
        assert loaded == doc
        assert loaded["traceEvents"]

    def test_session_export_picks_best_run(self, tmp_path):
        obs, _ = captured_run()
        path = tmp_path / "best.json"
        obs.export_trace(str(path))
        loaded = json.loads(path.read_text())
        assert loaded["otherData"]["label"] == "perfetto-test"

    def test_export_without_runs_raises(self, tmp_path):
        obs = ObsSession()
        with pytest.raises(ValueError):
            obs.export_trace(str(tmp_path / "x.json"))


class TestTracingIsFree:
    def test_identical_completion_times_with_and_without_obs(self):
        def run(observe):
            cluster = Cluster.build(
                ClusterConfig(n_clients=4, n_iods=4), trace=observe
            )
            obs = ObsSession() if observe else None
            if obs:
                obs.attach(cluster)

            def wl(client):
                f = yield from client.open("/same", create=True)
                yield from f.write_list(
                    RegionList.strided(client.index * 512, 32, 64, 1024),
                    np.zeros(2048, np.uint8),
                )
                yield from f.read(client.index * 128, 4096)
                yield from f.close()

            result = cluster.run_workload(wl)
            return result.elapsed, tuple(result.client_times)

        on = run(True)
        off = run(False)
        assert on == off  # bit-identical, not approx
