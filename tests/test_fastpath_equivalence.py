"""Property tests: the analytic NIC fast path is bit-identical to the
frame-level slow path (see ``src/repro/simulate/fastpath.py``).

The fast path collapses an uncontended, fault-free transfer's
request/grant event chain into one precomputed timeout; with
``PVFS_SIM_NO_FASTPATH=1`` every transfer walks the exact legacy chain.
These tests drive both modes over generated payloads/MTUs and assert the
completion times are *exactly* equal (``==``, not approx) and match the
closed-form :class:`~repro.network.EthernetModel` predictions — and that
active loss / link-down windows force the slow path outright.

Gated on hypothesis availability per the repo's no-new-deps rule.
"""

import os
from contextlib import contextmanager

import numpy as np
import pytest

from repro.config import NetworkConfig
from repro.network import EthernetModel, Network
from repro.simulate import NO_FASTPATH_ENV, Simulator

pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


@contextmanager
def _fastpath(enabled):
    """Force the kernel fast-path switch for simulators built inside."""
    old = os.environ.get(NO_FASTPATH_ENV)
    if enabled:
        os.environ.pop(NO_FASTPATH_ENV, None)
    else:
        os.environ[NO_FASTPATH_ENV] = "1"
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(NO_FASTPATH_ENV, None)
        else:
            os.environ[NO_FASTPATH_ENV] = old


def _fresh_net(cfg, fastpath, n_nodes=2):
    with _fastpath(fastpath):
        sim = Simulator()
    assert sim.fastpath is fastpath
    net = Network(sim, cfg)
    nodes = [net.add_node(f"n{i}") for i in range(n_nodes)]
    return sim, net, nodes


payloads = st.integers(min_value=0, max_value=2_000_000)
mtus = st.integers(min_value=576, max_value=9000)


@given(payload=payloads, mtu=mtus)
@settings(max_examples=60, deadline=None)
def test_single_message_matches_analytic_time(payload, mtu):
    cfg = NetworkConfig(mtu=mtu)
    expected = EthernetModel(cfg).message_time(payload)
    times = {}
    for mode in (True, False):
        sim, net, (a, b) = _fresh_net(cfg, mode)

        def go(sim, net=net, a=a, b=b):
            yield from net.transfer(a, b, payload)

        sim.process(go(sim))
        sim.run()
        times[mode] = sim.now
        assert net.counters["net.fastpath_messages"] == (1.0 if mode else 0.0)
        assert net.counters["net.messages"] == 1.0
        assert a.bytes_sent == payload
        assert b.bytes_received == payload
    assert times[True] == times[False] == expected


@given(request=payloads, response=payloads, mtu=mtus)
@settings(max_examples=40, deadline=None)
def test_roundtrip_matches_analytic_time(request, response, mtu):
    cfg = NetworkConfig(mtu=mtu)
    expected = EthernetModel(cfg).roundtrip_time(request, response)
    times = {}
    for mode in (True, False):
        sim, net, (a, b) = _fresh_net(cfg, mode)

        def go(sim, net=net, a=a, b=b):
            yield from net.transfer(a, b, request)
            yield from net.transfer(b, a, response)

        sim.process(go(sim))
        sim.run()
        times[mode] = sim.now
        assert net.counters["net.fastpath_messages"] == (2.0 if mode else 0.0)
    assert times[True] == times[False] == expected


@given(
    payloads_=st.lists(st.integers(0, 200_000), min_size=2, max_size=6),
    mtu=mtus,
)
@settings(max_examples=30, deadline=None)
def test_contended_many_to_one_identical(payloads_, mtu):
    """Many-to-one traffic (RX contention) completes identically in both
    modes: the fast path never overtakes a queued waiter."""
    cfg = NetworkConfig(mtu=mtu)
    done = {}
    for mode in (True, False):
        sim, net, nodes = _fresh_net(cfg, mode, n_nodes=len(payloads_) + 1)
        server, clients = nodes[0], nodes[1:]
        finished = []

        def go(sim, c, p, net=net, server=server, finished=finished):
            yield from net.transfer(c, server, p)
            finished.append((c.name, sim.now))

        for c, p in zip(clients, payloads_):
            sim.process(go(sim, c, p))
        sim.run()
        done[mode] = (finished, sim.now)
    assert done[True] == done[False]


@given(
    payload=st.integers(1, 500_000),
    rate=st.floats(0.05, 0.5),
    seed=st.integers(0, 2**32 - 1),
)
@settings(max_examples=30, deadline=None)
def test_frame_loss_forces_slow_path(payload, rate, seed):
    cfg = NetworkConfig()
    times = {}
    for mode in (True, False):
        sim, net, (a, b) = _fresh_net(cfg, mode)
        net.set_frame_loss("n1", rate, np.random.default_rng(seed))

        def go(sim, net=net, a=a, b=b):
            yield from net.transfer(a, b, payload)

        sim.process(go(sim))
        sim.run()
        times[mode] = sim.now
        # An active loss window bypasses the analytic path entirely.
        assert net.counters["net.fastpath_messages"] == 0.0
    assert times[True] == times[False]
    assert times[True] >= EthernetModel(cfg).message_time(payload)


@given(until=st.floats(0.01, 2.0), payload=st.integers(0, 100_000))
@settings(max_examples=30, deadline=None)
def test_link_down_forces_slow_path_then_reengages(until, payload):
    """A transfer overlapping a link-down window takes the exact slow
    path; once the window expires the fast path re-engages."""
    cfg = NetworkConfig()
    results = {}
    for mode in (True, False):
        sim, net, (a, b) = _fresh_net(cfg, mode)
        net.set_link_down("n1", until)
        marks = []

        def go(sim, net=net, a=a, b=b, marks=marks):
            yield from net.transfer(a, b, payload)
            marks.append(sim.now)  # stalled transfer done
            yield from net.transfer(a, b, payload)
            marks.append(sim.now)

        sim.process(go(sim))
        sim.run()
        results[mode] = (marks, sim.now)
        # First transfer hit the window -> slow path; second ran after the
        # window was pruned -> fast path (when enabled).
        assert net.counters["net.fastpath_messages"] == (1.0 if mode else 0.0)
        assert net.counters["net.link_stalls"] == 1.0
    assert results[True] == results[False]
    one = EthernetModel(cfg).message_time(payload)
    assert results[True][0][0] == until + cfg.retransmit_timeout + one


def test_loopback_unaffected_by_mode():
    cfg = NetworkConfig()
    times = {}
    for mode in (True, False):
        sim, net, (a, _b) = _fresh_net(cfg, mode)

        def go(sim, net=net, a=a):
            yield from net.transfer(a, a, 4096)

        sim.process(go(sim))
        sim.run()
        times[mode] = sim.now
        assert net.counters["net.loopback_messages"] == 1.0
        assert net.counters["net.fastpath_messages"] == 0.0
    assert times[True] == times[False]
