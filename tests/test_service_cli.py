"""Service CLI: thin-client verbs against a live daemon, plus the
top-level help/dispatch sync the docs overhaul pinned down.

``pvfs-sim --help`` historically drifted out of sync with the manual
subcommand dispatch in ``repro.experiments.cli.main`` (bench/profile/
chaos were missing).  The SUBCOMMANDS table now feeds the epilog, and
these tests keep dispatcher, help text, and table aligned.
"""

import io
import json

import pytest

from repro.experiments.cli import SUBCOMMANDS
from repro.experiments.cli import main as pvfs_main
from repro.service import ServiceDaemon
from repro.service.cli import main as service_main
from repro.sweep import ResultCache


@pytest.fixture
def daemon(tmp_path):
    d = ServiceDaemon(
        "127.0.0.1",
        0,
        workers=1,
        cache=ResultCache(str(tmp_path / "cache")),
        log_stream=io.StringIO(),
    )
    d.start()
    yield d
    d.stop()


class TestClientVerbs:
    def test_submit_wait_status_fetch_jobs(self, daemon, tmp_path, capsys):
        url = daemon.url
        rc = service_main(
            ["submit", "bench", "micro_disk_runs", "--scale", "smoke",
             "--url", url, "--wait", "--timeout", "120"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "submitted job-1" in out
        assert "disk-runs" in out  # the points table rendered

        assert service_main(["status", "job-1", "--url", url]) == 0
        assert "done" in capsys.readouterr().out

        assert service_main(["wait", "job-1", "--url", url]) == 0
        capsys.readouterr()

        out_file = tmp_path / "points.json"
        assert service_main(["fetch", "job-1", "--url", url, "--out", str(out_file)]) == 0
        capsys.readouterr()
        body = json.loads(out_file.read_text())
        assert body["job"]["state"] == "done"
        assert len(body["points"]) == 1

        assert service_main(["jobs", "--url", url]) == 0
        assert "job-1" in capsys.readouterr().out

    def test_duplicate_submit_prints_dedup(self, daemon, capsys):
        url = daemon.url
        args = ["submit", "bench", "micro_kernel_churn", "--scale", "smoke", "--url", url]
        assert service_main(args + ["--wait", "--timeout", "120"]) == 0
        capsys.readouterr()
        assert service_main(args) == 0
        assert "deduped" in capsys.readouterr().out

    def test_submit_file_round_trip(self, daemon, tmp_path, capsys):
        from repro.bench.micro import NetStreamSpec
        from repro.service.wire import encode_spec

        spec_file = tmp_path / "specs.json"
        spec_file.write_text(
            json.dumps(
                {"label": "net", "specs": [encode_spec(NetStreamSpec(n_senders=2, messages=2))]}
            )
        )
        rc = service_main(
            ["submit", "file", str(spec_file), "--url", daemon.url,
             "--wait", "--timeout", "120", "--json"]
        )
        assert rc == 0
        body = json.loads(capsys.readouterr().out.split("\n", 1)[1])
        assert body["job"]["label"] == "net"
        assert body["points"][0]["series"] == "net-stream"

    def test_status_json_flag(self, daemon, capsys):
        service_main(
            ["submit", "bench", "micro_disk_runs", "--scale", "smoke",
             "--url", daemon.url, "--wait", "--timeout", "120"]
        )
        capsys.readouterr()
        assert service_main(["status", "job-1", "--url", daemon.url, "--json"]) == 0
        job = json.loads(capsys.readouterr().out)
        assert job["id"] == "job-1"

    def test_connection_error_exits_2(self, capsys):
        rc = service_main(["jobs", "--url", "http://127.0.0.1:1"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_empty_jobs_listing(self, daemon, capsys):
        assert service_main(["jobs", "--url", daemon.url]) == 0
        assert "no jobs" in capsys.readouterr().out


class TestDispatchAndHelp:
    def test_top_level_help_lists_every_subcommand(self, capsys):
        with pytest.raises(SystemExit) as exc:
            pvfs_main(["--help"])
        assert exc.value.code == 0
        help_text = capsys.readouterr().out
        for name in SUBCOMMANDS:
            assert name in help_text, f"{name!r} missing from pvfs-sim --help"

    def test_subcommands_table_matches_dispatcher(self):
        # Every name the table advertises must actually dispatch (and
        # print its own --help rather than fall through to argparse's
        # --figure/--all requirement).
        assert set(SUBCOMMANDS) == {
            "obs", "chaos", "bench", "profile",
            "serve", "submit", "status", "wait", "fetch", "jobs",
        }

    @pytest.mark.parametrize("name", ["serve", "submit", "status", "wait", "fetch", "jobs"])
    def test_service_subcommands_dispatch(self, name, capsys):
        with pytest.raises(SystemExit) as exc:
            pvfs_main([name, "--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert f"pvfs-sim {name}" in out

    def test_readme_lists_every_subcommand(self):
        readme = open("README.md").read()
        for name in SUBCOMMANDS:
            assert f"pvfs-sim {name}" in readme, f"{name!r} missing from README"
