"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig, StripeParams
from repro.regions import (
    RegionList,
    build_flat_indices,
    pair_pieces,
    split_with_parents,
)
from repro.pvfs.striping import map_regions
from repro.simulate import Resource, Simulator
from repro.storage import BlockCache


# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------
@st.composite
def region_lists(draw, max_regions=30, max_offset=5000, max_len=200, min_regions=0):
    n = draw(st.integers(min_regions, max_regions))
    offsets = draw(
        st.lists(st.integers(0, max_offset), min_size=n, max_size=n)
    )
    lengths = draw(st.lists(st.integers(0, max_len), min_size=n, max_size=n))
    return RegionList(offsets, lengths)


@st.composite
def disjoint_sorted_lists(draw, max_regions=25, max_gap=300, max_len=200):
    n = draw(st.integers(1, max_regions))
    lengths = draw(st.lists(st.integers(1, max_len), min_size=n, max_size=n))
    gaps = draw(st.lists(st.integers(0, max_gap), min_size=n, max_size=n))
    offs = []
    pos = gaps[0]
    for ln, g in zip(lengths, gaps):
        offs.append(pos)
        pos += ln + g
    return RegionList(offs, lengths)


def byte_set(r: RegionList):
    return set(build_flat_indices(r.offsets, r.lengths).tolist())


# ---------------------------------------------------------------------------
# RegionList algebra
# ---------------------------------------------------------------------------
class TestRegionProperties:
    @given(region_lists())
    def test_coalesce_idempotent(self, r):
        once = r.coalesced()
        assert once.coalesced() == once

    @given(region_lists())
    def test_coalesce_preserves_byte_set(self, r):
        assert byte_set(r.coalesced()) == byte_set(r)

    @given(region_lists())
    def test_coalesced_is_sorted_disjoint_nonadjacent(self, r):
        c = r.coalesced()
        assert c.is_sorted()
        assert c.is_disjoint()
        if c.count > 1:
            assert (c.offsets[1:] > c.ends[:-1]).all()

    @given(region_lists(), st.integers(1, 64))
    def test_split_preserves_stream(self, r, boundary):
        s = r.split_at_boundaries(boundary)
        assert s.total_bytes == r.drop_empty().total_bytes
        # identical byte streams, not just equal volume
        np.testing.assert_array_equal(
            build_flat_indices(s.offsets, s.lengths),
            build_flat_indices(r.offsets, r.lengths),
        )
        if s.count:
            assert ((s.offsets // boundary) == ((s.ends - 1) // boundary)).all()

    @given(region_lists(), st.integers(1, 64))
    def test_split_with_parents_consistent(self, r, boundary):
        pieces, parents = split_with_parents(r, boundary)
        assert pieces.count == len(parents)
        base = r.drop_empty()
        if pieces.count:
            assert (parents[1:] >= parents[:-1]).all()  # monotone
            # every piece lies inside its parent region
            assert (pieces.offsets >= base.offsets[parents]).all()
            assert (pieces.ends <= base.ends[parents]).all()

    @given(region_lists(), st.integers(1, 100))
    def test_subdivide_preserves_stream(self, r, piece):
        s = r.subdivide(piece)
        np.testing.assert_array_equal(
            build_flat_indices(s.offsets, s.lengths),
            build_flat_indices(r.offsets, r.lengths),
        )
        if s.count:
            assert (s.lengths <= piece).all()

    @given(region_lists(), st.integers(1, 20))
    def test_chunks_concatenate_to_whole(self, r, cap):
        parts = list(r.chunks_of(cap))
        assert sum(p.count for p in parts) == r.count
        if parts:
            combined = parts[0]
            for p in parts[1:]:
                combined = combined.concat(p)
            assert combined == r

    @given(region_lists(), st.integers(0, 3000), st.integers(0, 3000))
    def test_clip_is_intersection(self, r, a, b):
        lo, hi = min(a, b), max(a, b)
        clipped = r.clip(lo, hi)
        expect = {x for x in byte_set(r) if lo <= x < hi}
        assert byte_set(clipped) == expect

    @given(disjoint_sorted_lists())
    def test_gaps_tile_extent(self, r):
        g = r.gaps()
        combined = byte_set(r) | byte_set(g)
        lo, hi = r.extent
        assert combined == set(range(lo, hi))

    @given(disjoint_sorted_lists())
    def test_gaps_disjoint_from_regions(self, r):
        assert not (byte_set(r) & byte_set(r.gaps()))


class TestPairPiecesProperties:
    @given(region_lists(min_regions=1), st.data())
    def test_pairing_matches_flat_indices(self, a, data):
        total = a.total_bytes
        assume(total > 0)
        # build an equal-volume second list
        n = data.draw(st.integers(1, min(total, 20)))
        cuts = sorted(
            data.draw(
                st.lists(
                    st.integers(1, total - 1), max_size=n, unique=True
                )
            )
        ) if total > 1 else []
        lens = np.diff([0] + cuts + [total])
        offs = np.arange(len(lens)) * (int(lens.max()) + 5)
        b = RegionList(offs, lens)
        ao, bo, ln = pair_pieces(a, b)
        assert int(ln.sum()) == total
        # piecewise mapping equals the flattened mapping
        ia = build_flat_indices(a.offsets, a.lengths)
        ib = build_flat_indices(b.offsets, b.lengths)
        pos = 0
        for x, y, k in zip(ao, bo, ln):
            np.testing.assert_array_equal(ia[pos : pos + k], np.arange(x, x + k))
            np.testing.assert_array_equal(ib[pos : pos + k], np.arange(y, y + k))
            pos += k


# ---------------------------------------------------------------------------
# Striping
# ---------------------------------------------------------------------------
class TestStripingProperties:
    @given(
        region_lists(max_regions=20, max_offset=3000, max_len=150),
        st.integers(1, 200),
        st.integers(1, 8),
    )
    def test_map_partitions_stream(self, regions, stripe_size, n_iods):
        sp = StripeParams(stripe_size=stripe_size)
        smap = map_regions(regions, sp, n_iods)
        assert smap.total_bytes == regions.drop_empty().total_bytes
        covered = np.concatenate(
            [sl.gather_stream_indices() for sl in smap]
        ) if smap.n_servers else np.empty(0, np.int64)
        covered.sort()
        np.testing.assert_array_equal(covered, np.arange(smap.total_bytes))

    @given(
        region_lists(max_regions=15, max_offset=2000, max_len=100),
        st.integers(1, 100),
        st.integers(1, 8),
    )
    def test_no_piece_crosses_stripe_unit(self, regions, stripe_size, n_iods):
        sp = StripeParams(stripe_size=stripe_size)
        smap = map_regions(regions, sp, n_iods)
        for sl in smap:
            # physical pieces must stay within one stripe unit each
            unit = sl.physical.offsets // stripe_size
            end_unit = (sl.physical.ends - 1) // stripe_size
            assert (unit == end_unit).all()


# ---------------------------------------------------------------------------
# Simulator resources
# ---------------------------------------------------------------------------
class TestResourceProperties:
    @given(
        st.integers(1, 4),
        st.lists(
            st.tuples(st.floats(0, 5), st.floats(0.01, 2)), min_size=1, max_size=15
        ),
    )
    @settings(deadline=None, max_examples=50)
    def test_capacity_never_exceeded(self, capacity, jobs):
        sim = Simulator()
        res = Resource(sim, capacity=capacity)
        peak = [0]

        def job(sim, arrive, hold_for):
            yield sim.timeout(arrive)
            with res.request() as req:
                yield req
                peak[0] = max(peak[0], res.in_use)
                yield sim.timeout(hold_for)

        for arrive, hold_for in jobs:
            sim.process(job(sim, arrive, hold_for))
        sim.run()
        assert peak[0] <= capacity
        assert res.in_use == 0
        assert res.queue_length == 0

    @given(
        st.lists(st.floats(0, 3), min_size=1, max_size=12),
    )
    @settings(deadline=None, max_examples=50)
    def test_runs_are_deterministic(self, delays):
        def build():
            sim = Simulator()
            log = []

            def p(sim, i, d):
                yield sim.timeout(d)
                log.append((i, sim.now))

            for i, d in enumerate(delays):
                sim.process(p(sim, i, d))
            sim.run()
            return log

        assert build() == build()


# ---------------------------------------------------------------------------
# Block cache
# ---------------------------------------------------------------------------
class TestCacheProperties:
    @given(
        st.integers(1, 16),
        st.lists(
            st.tuples(st.integers(0, 40), st.booleans()), min_size=1, max_size=60
        ),
    )
    def test_cache_never_exceeds_capacity(self, capacity_blocks, ops):
        cache = BlockCache(
            CacheConfig(capacity=capacity_blocks * 4096, block_size=4096)
        )
        for block, dirty in ops:
            cache.insert("f", np.array([block]), dirty=dirty)
            assert len(cache) <= capacity_blocks

    @given(
        st.lists(st.integers(0, 20), min_size=1, max_size=40),
    )
    def test_most_recent_block_always_resident(self, blocks):
        cache = BlockCache(CacheConfig(capacity=4 * 4096, block_size=4096))
        for b in blocks:
            cache.insert("f", np.array([b]))
            assert cache.contains("f", b)


# ---------------------------------------------------------------------------
# Analytic-model plan invariants
# ---------------------------------------------------------------------------
class TestPlanProperties:
    @given(
        disjoint_sorted_lists(max_regions=20, max_gap=200, max_len=100),
        st.sampled_from(["multiple", "list", "datasieve", "hybrid", "vector"]),
        st.sampled_from(["read", "write"]),
    )
    @settings(deadline=None, max_examples=60)
    def test_plan_preserves_useful_bytes(self, file_regions, method, kind):
        from repro.config import ClusterConfig
        from repro.model import compile_rank_plan

        cfg = ClusterConfig.chiba_city(n_clients=2)
        mem = RegionList.single(0, file_regions.total_bytes)
        plan = compile_rank_plan(method, kind, mem, file_regions, cfg)
        assert plan.useful_bytes == file_regions.total_bytes
        assert plan.moved_bytes >= plan.useful_bytes
        if method in ("multiple", "list", "vector"):
            assert plan.wasted_bytes == 0
        assert plan.n_requests >= 1
        # request ids are dense and monotone
        chunks = plan.chunk_of_region
        assert (np.diff(chunks) >= 0).all()
        assert chunks[0] == 0

    @given(
        disjoint_sorted_lists(max_regions=15, max_gap=100, max_len=60),
        st.sampled_from(["multiple", "list", "datasieve"]),
    )
    @settings(deadline=None, max_examples=30)
    def test_prediction_positive_and_ordered(self, file_regions, method):
        from repro.config import ClusterConfig
        from repro.model import compile_rank_plan, predict_plans

        cfg = ClusterConfig.chiba_city(n_clients=1)
        mem = RegionList.single(0, file_regions.total_bytes)
        plan_r = compile_rank_plan(method, "read", mem, file_regions, cfg)
        plan_w = compile_rank_plan(method, "write", mem, file_regions, cfg)
        pr = predict_plans([plan_r], cfg)
        pw = predict_plans([plan_w], cfg)
        assert pr.elapsed > 0
        # writes carry the turnaround penalty: never cheaper than reads
        assert pw.elapsed >= pr.elapsed * 0.5


# ---------------------------------------------------------------------------
# End-to-end equivalence with generated patterns
# ---------------------------------------------------------------------------
class TestMethodEquivalenceProperty:
    @given(disjoint_sorted_lists(max_regions=10, max_gap=100, max_len=60), st.integers(0, 4))
    @settings(deadline=None, max_examples=15)
    def test_all_methods_realize_the_same_write(self, file_regions, seed):
        from repro.config import ClusterConfig
        from repro.core import DataSievingIO, ListIO, MultipleIO
        from repro.pvfs import Cluster

        total = file_regions.total_bytes
        mem_regions = RegionList.single(0, total)
        rng = np.random.default_rng(seed)
        payload = rng.integers(0, 256, total).astype(np.uint8)
        images = {}
        for method in (MultipleIO(), DataSievingIO(), ListIO()):
            cluster = Cluster.build(
                ClusterConfig(
                    n_clients=1, n_iods=3, stripe=StripeParams(stripe_size=64)
                )
            )

            def wl(client):
                f = yield from client.open("/p", create=True)
                yield from method.write(f, payload, mem_regions, file_regions)
                got = yield from f.read(0, file_regions.extent[1])
                yield from f.close()
                return got

            images[method.name] = cluster.run_workload(wl, clients=[0]).client_returns[0]
        ref = images.pop("multiple")
        for name, img in images.items():
            np.testing.assert_array_equal(img, ref, err_msg=name)


class TestRetryBackoffProperty:
    """The retry backoff sequence must be deterministic for a fixed seed
    and strictly bounded by the configured cap (plus jitter headroom)."""

    @given(
        seed=st.integers(0, 2**32 - 1),
        base=st.floats(1e-4, 1.0, allow_nan=False, allow_infinity=False),
        factor=st.floats(1.0, 4.0, allow_nan=False, allow_infinity=False),
        cap_mult=st.floats(1.0, 10.0, allow_nan=False, allow_infinity=False),
        jitter=st.floats(0.0, 0.9, allow_nan=False, allow_infinity=False),
    )
    @settings(deadline=None, max_examples=60)
    def test_backoff_deterministic_and_bounded(
        self, seed, base, factor, cap_mult, jitter
    ):
        from repro.faults import RetryPolicy

        policy = RetryPolicy(
            request_timeout=1.0,
            max_retries=12,
            backoff_base=base,
            backoff_factor=factor,
            backoff_cap=base * cap_mult,
            jitter=jitter,
        )
        rng_a = np.random.default_rng(seed)
        rng_b = np.random.default_rng(seed)
        seq_a = [policy.backoff(k, rng_a) for k in range(12)]
        seq_b = [policy.backoff(k, rng_b) for k in range(12)]
        assert seq_a == seq_b  # bit-identical replay for a fixed seed
        bound = policy.backoff_cap * (1.0 + policy.jitter) + 1e-12
        assert all(0.0 <= d <= bound for d in seq_a)

    @given(
        base=st.floats(1e-4, 1.0, allow_nan=False, allow_infinity=False),
        factor=st.floats(1.0, 4.0, allow_nan=False, allow_infinity=False),
        cap_mult=st.floats(1.0, 10.0, allow_nan=False, allow_infinity=False),
    )
    @settings(deadline=None, max_examples=40)
    def test_backoff_without_jitter_is_exact_and_monotone(
        self, base, factor, cap_mult
    ):
        from repro.faults import RetryPolicy

        policy = RetryPolicy(
            request_timeout=1.0,
            backoff_base=base,
            backoff_factor=factor,
            backoff_cap=base * cap_mult,
        )
        seq = [policy.backoff(k) for k in range(12)]
        for k, d in enumerate(seq):
            assert d == min(policy.backoff_cap, base * factor**k)
        assert all(b >= a for a, b in zip(seq, seq[1:]))
