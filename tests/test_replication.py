"""Striped replication: chain placement, fencing, failover, resync.

Covers the replication extension end to end: ``replica_chain`` placement
properties (hypothesis), read failover with byte-identity against the
no-fault oracle, the ``replicas=1`` regression (the paper's layout still
hangs when a daemon dies), zombie fencing via epoch tokens, the dirty-range
resync protocol, quorum acks, and ``--jobs`` bit-identity of the chaos
failover scenario.
"""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import ClusterConfig, StripeParams
from repro.errors import ConfigError, RetryExhausted, ServerFenced
from repro.faults import FaultConfig, FaultPlan, IodCrash, RetryPolicy
from repro.pvfs import Cluster, replica_chain
from repro.pvfs.protocol import IORequest
from repro.regions import RegionList
from repro.simulate import Event


def _policy() -> RetryPolicy:
    return RetryPolicy(
        request_timeout=1.0,
        max_retries=2,
        backoff_base=0.01,
        backoff_factor=2.0,
        backoff_cap=0.05,
        jitter=0.0,
    )


def _cluster(replicas=2, ack="primary", n_clients=1, plan=None, move=True):
    cfg = ClusterConfig.chiba_city(n_clients=n_clients)
    cfg = cfg.with_(
        stripe=replace(cfg.stripe, replicas=replicas),
        ack_policy=ack,
        faults=FaultConfig(
            plan=plan if plan is not None else FaultPlan(), retry=_policy()
        ),
    )
    return Cluster.build(cfg, move_bytes=move)


def _wait_until(sim, t):
    if t > sim.now:
        yield sim.timeout(t - sim.now)


def _bytes(n, mult=131, add=17):
    return ((np.arange(n, dtype=np.int64) * mult + add) % 256).astype(np.uint8)


# ---------------------------------------------------------------------------
# Placement
# ---------------------------------------------------------------------------
class TestReplicaChain:
    @given(
        primary=st.integers(0, 63),
        replicas=st.integers(1, 16),
        n_iods=st.integers(1, 64),
    )
    def test_chain_never_colocates_copies(self, primary, replicas, n_iods):
        if replicas > n_iods or primary >= n_iods:
            return
        chain = replica_chain(primary, replicas, n_iods)
        assert len(chain) == replicas
        assert len(set(chain)) == replicas  # all copies on distinct daemons
        assert chain[0] == primary
        assert all(0 <= m < n_iods for m in chain)

    def test_rejects_impossible_chains(self):
        with pytest.raises(ConfigError):
            replica_chain(0, 9, 8)
        with pytest.raises(ConfigError):
            replica_chain(0, 0, 8)

    def test_config_validates_replicas(self):
        with pytest.raises(ConfigError):
            ClusterConfig.chiba_city().with_(
                stripe=StripeParams(replicas=9), n_iods=8
            )
        with pytest.raises(ConfigError):
            StripeParams(replicas=0)
        with pytest.raises(ConfigError):
            ClusterConfig.chiba_city().with_(ack_policy="nope")


# ---------------------------------------------------------------------------
# Read failover
# ---------------------------------------------------------------------------
class TestReadFailover:
    N = 1 << 20

    def _workload(self, data):
        def wl(client):
            f = yield from client.open("/t", create=True)
            if client.index == 0:
                yield from f.write(0, data)
            yield from _wait_until(client.sim, 0.5)
            out = yield from f.read(0, data.size)
            yield from f.close()
            return out

        return wl

    def test_reads_survive_crash_byte_identical(self):
        data = _bytes(self.N)
        plan = FaultPlan((IodCrash(iod=1, at=0.05, restart_after=5.0),))
        cluster = _cluster(replicas=2, n_clients=2, plan=plan)
        res = cluster.run_workload(self._workload(data))
        # Oracle: the exact same run without the fault.
        oracle = _cluster(replicas=2, n_clients=2)
        ores = oracle.run_workload(self._workload(data))
        for out, expect in zip(res.client_returns, ores.client_returns):
            assert np.array_equal(out, data)
            assert np.array_equal(out, expect)
        counters = cluster.counters
        assert counters.get("faults.fences", 0) == 1
        assert counters.get("faults.rejoins", 0) == 1
        failovers = sum(
            v for k, v in counters.items() if k.endswith(".failovers")
        )
        exhausted = sum(
            v for k, v in counters.items() if k.endswith(".retries_exhausted")
        )
        assert failovers > 0
        assert exhausted > 0
        assert oracle.counters.get("faults.fences", 0) == 0

    def test_replicas_one_still_dies(self):
        # The guarded regression: the paper's unreplicated layout cannot
        # survive a daemon crash — the read exhausts its retry budget.
        data = _bytes(self.N)
        plan = FaultPlan((IodCrash(iod=1, at=0.05, restart_after=60.0),))
        cluster = _cluster(replicas=1, n_clients=2, plan=plan)
        with pytest.raises(RetryExhausted):
            cluster.run_workload(self._workload(data))

    def test_replicated_layout_untouched_without_faults(self):
        # replicas=2 with no faults reads back exactly what was written.
        data = _bytes(self.N, mult=137, add=5)
        cluster = _cluster(replicas=2, n_clients=2)
        res = cluster.run_workload(self._workload(data))
        for out in res.client_returns:
            assert np.array_equal(out, data)
        assert cluster.counters.get("faults.fences", 0) == 0


# ---------------------------------------------------------------------------
# Fencing
# ---------------------------------------------------------------------------
class TestFencing:
    def test_fencing_kills_alive_zombie(self):
        cluster = _cluster(replicas=2)
        iod = cluster.iods[1]
        assert iod.alive
        iod.fence(epoch=5)
        # STONITH: an alive daemon the manager declared dead is killed so
        # it can never produce acks the new epoch would have to distrust.
        assert not iod.alive
        assert iod.fenced and iod.fence_epoch == 5

    def test_fenced_daemon_refuses_with_epoch(self):
        cluster = _cluster(replicas=2)
        iod = cluster.iods[1]
        iod.fence(epoch=3)
        iod.restart()  # zombie reboot: restarts *fenced*, refusing service
        assert iod.alive and iod.fenced
        req = IORequest(
            kind="read",
            file_id=1,
            regions=RegionList.single(0, 16),
            client_node=cluster.clients[0].node,
            response=Event(cluster.sim),
        )
        iod.deliver(req)
        assert req.response.triggered and not req.response.ok
        exc = req.response.value
        assert isinstance(exc, ServerFenced)
        assert exc.epoch == 3

    def test_fence_epochs_are_monotonic(self):
        cluster = _cluster(replicas=2)
        state = cluster.replication
        assert state.fence(1, now=0.1) == 1
        assert state.fence(1, now=0.2) is None  # first report wins
        assert state.fence(2, now=0.3) == 2
        assert state.fenced_servers() == (1, 2)
        state.unfence(1, now=0.4)
        assert state.fenced_servers() == (2,)
        assert state.fence(1, now=0.5) == 3  # re-fence gets a fresh epoch


# ---------------------------------------------------------------------------
# Resync
# ---------------------------------------------------------------------------
class TestResync:
    def test_restarted_daemon_resyncs_dirty_writes(self):
        # iod1 misses a rewrite while down, resyncs it from live chain
        # members on restart, and later serves it when iod0 (the primary
        # of stripe 0) dies — proving the copied bytes are the new ones.
        n_iods = 8
        stripe = 64 * 1024
        N = n_iods * stripe
        v1 = _bytes(N)
        v2 = _bytes(N, mult=151, add=29)
        plan = FaultPlan(
            (
                IodCrash(iod=1, at=0.3, restart_after=1.0),
                IodCrash(iod=0, at=3.0, restart_after=60.0),
            )
        )
        cluster = _cluster(replicas=2, plan=plan)
        sim = cluster.sim

        def wl(client):
            f = yield from client.open("/t", create=True)
            yield from f.write(0, v1)  # healthy, fully replicated
            yield from _wait_until(sim, 0.5)  # iod1 died at 0.3
            yield from f.write(0, v2)  # iod1's copies go dirty
            yield from _wait_until(sim, 2.5)  # iod1 restarted + resynced
            yield from _wait_until(sim, 3.5)  # iod0 died at 3.0
            out = yield from f.read(0, N)  # stripe 0 must come from iod1
            yield from f.close()
            return out

        res = cluster.run_workload(wl)
        assert np.array_equal(res.client_returns[0], v2)
        counters = cluster.counters
        assert counters.get("iod.1.resyncs", 0) == 1
        assert counters.get("iod.1.resync_bytes", 0) > 0
        # iod1 rejoins after its resync; iod0's delayed restart fires in
        # the end-of-run queue drain and rejoins as well.
        assert counters.get("faults.rejoins", 0) == 2
        assert counters.get("faults.fences", 0) == 2  # iod1, then iod0
        assert cluster.replication.dirty_bytes(1) == 0

    def test_write_racing_resync_is_copied_before_rejoin(self):
        # The rejoin race: a write that lands while the resync is already
        # running appends to the live dirty list — the daemon must copy it
        # too (and the manager must refuse a rejoin while anything is
        # dirty) before it is unfenced, or later failover reads would
        # serve stale bytes.
        n_iods = 8
        stripe = 64 * 1024
        N = n_iods * stripe
        v1 = _bytes(N)
        v2 = _bytes(N, mult=151, add=29)
        v3 = _bytes(4096, mult=157, add=41)  # racing write, stripe 0 only
        plan = FaultPlan(
            (
                IodCrash(iod=1, at=0.3, restart_after=1.0),
                IodCrash(iod=0, at=6.0, restart_after=60.0),
            )
        )
        cluster = _cluster(replicas=2, plan=plan)
        sim = cluster.sim
        state = cluster.replication
        fenced_at_race = []

        def wl(client):
            f = yield from client.open("/t", create=True)
            yield from f.write(0, v1)  # healthy, fully replicated
            yield from _wait_until(sim, 0.5)  # iod1 died at 0.3
            yield from f.write(0, v2)  # iod1's copies go dirty
            yield from _wait_until(sim, 1.3001)  # iod1 restarted; resync live
            fenced_at_race.append(state.is_fenced(1))
            t_race = sim.now
            yield from f.write(0, v3)  # races the in-flight resync
            yield from _wait_until(sim, 6.5)  # iod0 died at 6.0
            out = yield from f.read(0, N)  # stripe 0 must come from iod1
            yield from f.close()
            return out, t_race

        res = cluster.run_workload(wl)
        out, t_race = res.client_returns[0]
        # The race actually happened: iod1 was still fenced (mid-resync)
        # when the v3 write was issued.
        assert fenced_at_race == [True]
        expect = v2.copy()
        expect[: v3.size] = v3
        assert np.array_equal(out, expect)
        assert state.dirty_bytes(1) == 0
        # iod1 only rejoined after the racing write was issued.
        t_unfence = [t for (t, iod, _e) in state.unfences if iod == 1]
        assert t_unfence and t_unfence[0] >= t_race

    def test_manager_refuses_rejoin_while_dirty(self):
        # Defense in depth: even a buggy/racing rejoin request must not
        # readmit a replica that still has recorded dirty ranges.
        cluster = _cluster(replicas=2)
        state = cluster.replication
        epoch = state.fence(1, now=0.0)
        cluster.iods[1].fence(epoch)
        state.mark_dirty(1, 7, 0, (0, 1), RegionList.single(0, 64))
        view = cluster.manager._rejoin(1)
        assert 1 in view.fenced
        assert state.is_fenced(1)
        assert cluster.iods[1].fenced
        assert cluster.counters.get("faults.rejoins_refused", 0) == 1
        assert cluster.counters.get("faults.rejoins", 0) == 0
        # Once the dirty list drains, the same request is accepted.
        state.dirty_for(1).clear()
        view = cluster.manager._rejoin(1)
        assert 1 not in view.fenced
        assert not state.is_fenced(1)
        assert cluster.counters.get("faults.rejoins", 0) == 1

    def test_quorum_ack_tolerates_minority_loss(self):
        plan = FaultPlan((IodCrash(iod=1, at=0.05, restart_after=60.0),))
        cluster = _cluster(replicas=3, ack="quorum", plan=plan)
        N = 1 << 18
        data = _bytes(N, mult=149, add=3)

        def wl(client):
            f = yield from client.open("/t", create=True)
            yield from _wait_until(client.sim, 0.1)  # iod1 already dead
            yield from f.write(0, data)  # chains touching iod1 lose 1 of 3
            out = yield from f.read(0, N)
            yield from f.close()
            return out

        res = cluster.run_workload(wl)
        assert np.array_equal(res.client_returns[0], data)
        assert cluster.counters.get("faults.fences", 0) == 1


# ---------------------------------------------------------------------------
# Ack policies
# ---------------------------------------------------------------------------
class TestAckPolicies:
    def test_quorum_requires_chain_majority(self):
        # Quorum is a strict majority of the *chain*, not of whoever is
        # live: with 2 of 3 members gone a single ack must not satisfy it.
        plan = FaultPlan(
            (
                IodCrash(iod=1, at=0.05, restart_after=60.0),
                IodCrash(iod=2, at=0.05, restart_after=60.0),
            )
        )
        cluster = _cluster(replicas=3, ack="quorum", plan=plan)
        data = _bytes(4096)
        errors = []

        def wl(client):
            f = yield from client.open("/t", create=True)
            yield from _wait_until(client.sim, 0.1)  # iod1, iod2 dead
            # First write discovers the losses (members fail + get fenced):
            # 1 ack of a needed 2 -> no quorum.
            try:
                yield from f.write(0, data)
            except RetryExhausted as exc:
                errors.append(exc)
            # Second write sees both members already fenced and must fail
            # up front instead of degrading to a 1-ack "quorum".
            try:
                yield from f.write(0, data)
            except RetryExhausted as exc:
                errors.append(exc)

        cluster.run_workload(wl)
        assert len(errors) == 2
        assert cluster.counters.get("faults.fences", 0) == 2

    def test_primary_ack_counts_completion_order(self):
        # A slow-failing first chain member (straggler burning the full
        # retry/timeout budget) must not delay the ack a healthy replica
        # produced immediately: acks race in completion order.
        cluster = _cluster(replicas=2)
        sim = cluster.sim
        durations = []

        def wl(client):
            # iod0 accepts requests but never finishes serving them, so
            # writes to it fail only after the full timeout budget (~3 s).
            client.cluster.iods[0].service_scale = 1e9
            f = yield from client.open("/t", create=True)
            t0 = sim.now
            yield from f.write(0, _bytes(4096))  # chain (0, 1)
            durations.append(sim.now - t0)
            yield from f.close()

        cluster.run_workload(wl)
        # Old chain-order join: > 3 s (iod0's budget). Completion-order
        # race: the ack arrives as soon as iod1 commits.
        assert durations and durations[0] < 1.0
        assert cluster.counters.get("faults.fences", 0) == 1


# ---------------------------------------------------------------------------
# Chaos scenario + determinism
# ---------------------------------------------------------------------------
class TestFailoverScenario:
    def test_scenario_completes_with_zero_data_errors(self):
        from repro.experiments.chaos import run_scenario
        from repro.experiments.presets import SMOKE

        row = run_scenario("failover-read", scale=SMOKE, replicas=2)
        assert row.data_errors == 0
        assert row.failovers > 0
        assert row.retries_exhausted > 0
        assert row.crashes == 1
        assert row.failover_s is not None and row.failover_s > 0
        assert row.degraded_s is not None and row.degraded_s > 0
        assert row.degraded_goodput_mb_s is not None
        assert row.degraded_goodput_mb_s > 0
        assert row.resyncs == 1

    def test_scenario_replicas_one_raises(self):
        from repro.experiments.chaos import run_scenario
        from repro.experiments.presets import SMOKE

        with pytest.raises(RetryExhausted):
            run_scenario("failover-read", scale=SMOKE, replicas=1)

    def test_jobs_bit_identity(self):
        from repro.experiments.presets import SMOKE
        from repro.sweep import ChaosSpec, run_sweep

        specs = [
            ChaosSpec(
                scenario="failover-read",
                benchmark="artificial",
                scale=SMOKE,
                restart_after=2.0,
                replicas=2,
                ack="primary",
            )
        ]
        serial, _ = run_sweep(specs, jobs=1, cache=None, label="repl-serial")
        parallel, _ = run_sweep(specs, jobs=4, cache=None, label="repl-par")
        a, b = serial[0], parallel[0]
        for field in (
            "baseline_s",
            "faulty_s",
            "data_errors",
            "failovers",
            "retries_exhausted",
            "failover_s",
            "degraded_s",
            "degraded_goodput_mb_s",
            "resyncs",
            "resync_bytes",
            "moved_bytes",
            "logical_requests",
            "server_messages",
            "sim_events",
        ):
            assert getattr(a, field) == getattr(b, field), field
