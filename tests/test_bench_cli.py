"""End-to-end ``pvfs-sim bench`` CLI: determinism, gating, dispatch.

Runs use the cheap scenarios (micro substrates plus the 2-point
collective figure) so the whole module stays fast while still covering
the PointSpec-free and cluster-backed paths.
"""

import json

import pytest

from repro.bench import SUITE, build_specs, load, scenario_names
from repro.bench.cli import main as bench_main
from repro.experiments.cli import main as cli_main
from repro.experiments.presets import SMOKE

_FAST = ("micro_kernel_churn", "micro_net_stream", "micro_disk_runs")


def _run(out, scenarios=_FAST, extra=()):
    argv = ["run", "--scale", "smoke", "--repeats", "1", "--out", str(out), "--quiet"]
    for name in scenarios:
        argv += ["--scenario", name]
    return bench_main(argv + list(extra))


def test_run_twice_sim_metrics_bit_identical(tmp_path):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    assert _run(a) == 0
    assert _run(b) == 0
    ra, rb = load(str(a)), load(str(b))
    assert [sc.sim for sc in ra.scenarios] == [sc.sim for sc in rb.scenarios]
    assert [sc.name for sc in ra.scenarios] == list(_FAST)


def test_compare_cli_identical_exits_zero(tmp_path, capsys):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    _run(a)
    _run(b)
    # Wall clock jitters between the runs; 'none' is the cross-machine policy.
    code = bench_main(["compare", str(a), str(b), "--wall-tolerance", "none"])
    assert code == 0
    assert "PASS" in capsys.readouterr().out


def test_compare_cli_detects_injected_sim_drift(tmp_path, capsys):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    _run(a)
    data = json.loads(a.read_text())
    data["scenarios"][0]["sim"]["elapsed_s"] += 1e-9
    b.write_text(json.dumps(data))
    code = bench_main(["compare", str(a), str(b), "--wall-tolerance", "none"])
    assert code == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_compare_cli_writes_table_artifact(tmp_path):
    a = tmp_path / "a.json"
    table = tmp_path / "table.md"
    _run(a)
    code = bench_main(
        ["compare", str(a), str(a), "--wall-tolerance", "50", "--table", str(table)]
    )
    assert code == 0
    assert "bench compare" in table.read_text()


def test_compare_cli_schema_mismatch_exits_two(tmp_path, capsys):
    a, old = tmp_path / "a.json", tmp_path / "old.json"
    _run(a)
    data = json.loads(a.read_text())
    data["schema_version"] = 99
    old.write_text(json.dumps(data))
    assert bench_main(["compare", str(a), str(old)]) == 2
    assert "schema version" in capsys.readouterr().err


def test_compare_cli_bad_tolerance_exits_two(tmp_path, capsys):
    a = tmp_path / "a.json"
    _run(a)
    assert bench_main(["compare", str(a), str(a), "--wall-tolerance", "lots"]) == 2
    capsys.readouterr()


def test_run_rejects_unknown_scenario(tmp_path, capsys):
    code = _run(tmp_path / "x.json", scenarios=("no_such_scenario",))
    assert code == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_run_with_cluster_scenario_and_trace(tmp_path):
    out, trace = tmp_path / "bench.json", tmp_path / "trace.json"
    code = _run(
        out,
        scenarios=("fig18_collective_write", "micro_kernel_churn"),
        extra=["--trace-out", str(trace)],
    )
    assert code == 0
    events = json.loads(trace.read_text())["traceEvents"]
    assert events  # the slowest cluster scenario was re-run and exported
    result = load(str(out))
    assert result.scenario("fig18_collective_write").sim.n_points == 2


def test_trace_out_with_only_micro_scenarios_warns(tmp_path, capsys):
    out, trace = tmp_path / "bench.json", tmp_path / "trace.json"
    code = _run(out, scenarios=("micro_kernel_churn",), extra=["--trace-out", str(trace)])
    assert code == 0
    assert not trace.exists()
    assert "skipping trace export" in capsys.readouterr().err


def test_dispatch_through_pvfs_sim_entry_point(capsys):
    assert cli_main(["bench", "list"]) == 0
    out = capsys.readouterr().out
    for name in scenario_names():
        assert name in out


def test_suite_covers_every_figure_family_and_substrate():
    families = {sc.family for sc in SUITE}
    assert families == {"artificial", "flash", "tiled", "collective", "micro", "robust"}
    # every scenario builds at least one spec at smoke scale
    for name in scenario_names():
        assert build_specs(name, SMOKE)


def test_run_validates_flags(tmp_path, capsys):
    out = str(tmp_path / "x.json")
    assert bench_main(["run", "--repeats", "0", "--out", out]) == 2
    assert bench_main(["run", "--jobs", "0", "--out", out]) == 2
    capsys.readouterr()


def test_run_with_cache_dir_records_cache_flag(tmp_path):
    out = tmp_path / "cached.json"
    code = _run(
        out,
        scenarios=("micro_net_stream",),
        extra=["--cache-dir", str(tmp_path / "cache")],
    )
    assert code == 0
    assert load(str(out)).cache_enabled

    # A second run served from the cache must reproduce identical sim metrics.
    out2 = tmp_path / "cached2.json"
    _run(
        out2,
        scenarios=("micro_net_stream",),
        extra=["--cache-dir", str(tmp_path / "cache")],
    )
    assert load(str(out)).scenarios[0].sim == load(str(out2)).scenarios[0].sim


def test_help_smoke(capsys):
    with pytest.raises(SystemExit) as exc:
        bench_main(["--help"])
    assert exc.value.code == 0
    capsys.readouterr()
