"""Tests for repro.obs: monitors, utilization windows, bottleneck attribution."""

import numpy as np
import pytest

from repro.config import ClusterConfig, StripeParams
from repro.obs import (
    BottleneckReport,
    ClusterMonitor,
    ObsSession,
    ResourceMonitor,
    attribute,
    merge_intervals,
)
from repro.pvfs import Cluster
from repro.regions import RegionList
from repro.simulate import Resource, Simulator, Store


def small_cluster(trace=False):
    return Cluster.build(
        ClusterConfig(n_clients=2, n_iods=2, stripe=StripeParams(stripe_size=128)),
        trace=trace,
    )


def workload(client):
    f = yield from client.open("/obs", create=True)
    yield from f.write_list(
        RegionList.strided(client.index * 64, 12, 16, 256),
        np.zeros(192, np.uint8),
    )
    yield from f.read(0, 256)
    yield from f.close()


class TestMergeIntervals:
    def test_empty(self):
        assert merge_intervals([]) == []

    def test_disjoint_sorted(self):
        assert merge_intervals([(3, 4), (0, 1)]) == [(0, 1), (3, 4)]

    def test_overlap_coalesced(self):
        assert merge_intervals([(0, 2), (1, 3), (5, 6)]) == [(0, 3), (5, 6)]

    def test_touching_coalesced(self):
        assert merge_intervals([(0, 1), (1, 2)]) == [(0, 2)]


class TestResourceMonitor:
    def test_busy_interval_recording(self):
        m = ResourceMonitor("r", "cpu")
        m.on_busy(1.0)
        m.on_idle(3.0)
        m.on_busy(5.0)
        m.on_idle(6.0)
        assert m.intervals == [(1.0, 3.0), (5.0, 6.0)]
        assert m.busy_within(0.0, 10.0) == pytest.approx(3.0)
        assert m.utilization(0.0, 10.0) == pytest.approx(0.3)

    def test_sub_window_utilization(self):
        m = ResourceMonitor("r", "disk")
        m.on_busy(0.0)
        m.on_idle(4.0)
        # Window clips the interval.
        assert m.busy_within(2.0, 6.0) == pytest.approx(2.0)
        assert m.utilization(2.0, 6.0) == pytest.approx(0.5)
        assert m.utilization(5.0, 6.0) == 0.0

    def test_nested_busy_depth(self):
        m = ResourceMonitor("r", "client")
        m.on_busy(0.0)
        m.on_busy(1.0)  # nested
        m.on_idle(2.0)
        m.on_idle(5.0)
        assert m.intervals == [(0.0, 5.0)]

    def test_spurious_idle_ignored(self):
        m = ResourceMonitor("r", "cpu")
        m.on_idle(1.0)
        assert m.intervals == []

    def test_close_dangling(self):
        m = ResourceMonitor("r", "nic")
        m.on_busy(2.0)
        m.close(7.0)
        assert m.intervals == [(2.0, 7.0)]
        m.close(9.0)  # no-op: nothing open
        assert m.intervals == [(2.0, 7.0)]

    def test_queue_percentile_time_weighted(self):
        m = ResourceMonitor("q", "queue")
        m.on_queue(0.0, 0)
        m.on_queue(1.0, 10)  # depth 10 for 9s of a 10s window
        assert m.queue_percentile(0.0, 10.0, 0.95) == 10
        assert m.queue_percentile(0.0, 10.0, 0.05) == 0
        assert m.queue_mean(0.0, 10.0) == pytest.approx(9.0)

    def test_queue_percentile_empty(self):
        m = ResourceMonitor("q", "queue")
        assert m.queue_percentile(0.0, 1.0, 0.95) == 0.0


class TestResourceHooks:
    def test_resource_reports_busy_and_queue(self):
        sim = Simulator()
        res = Resource(sim, capacity=1, name="link")
        mon = ResourceMonitor("link", "nic")
        res.monitor = mon

        def user(hold):
            with res.request() as req:
                yield req
                yield sim.timeout(hold)

        sim.process(user(2.0))
        sim.process(user(1.0))
        sim.run()
        # One continuous busy window 0..3 (second user queued behind first).
        assert mon.merged() == [(0.0, 3.0)]
        assert mon.queue_depth.max_value() >= 1

    def test_store_samples_depth(self):
        sim = Simulator()
        store = Store(sim, name="inbox")
        mon = ResourceMonitor("inbox", "queue")
        store.monitor = mon
        store.put("a")
        store.put("b")
        store.get()
        assert list(mon.queue_depth.values) == [1, 2, 1]


class TestClusterMonitor:
    def test_attaches_all_resources(self):
        cluster = small_cluster(trace=True)
        mon = ClusterMonitor(cluster)
        names = set(mon.monitors)
        assert "iod0.cpu" in names
        assert "iod1.disk" in names
        assert "iod0.inbox" in names
        assert "client0.app" in names
        assert "client1.nic.tx" in names
        assert "iod0.nic.rx" in names

    def test_detach_restores_zero_cost(self):
        cluster = small_cluster(trace=True)
        mon = ClusterMonitor(cluster)
        mon.detach()
        assert cluster.iods[0].monitor is None
        assert cluster.iods[0].disk.monitor is None
        assert cluster.clients[0].monitor is None
        assert cluster.net.nodes()[0].tx.monitor is None

    def test_utilizations_in_range(self):
        obs = ObsSession()
        cluster = small_cluster(trace=True)
        obs.attach(cluster)
        cluster.run_workload(workload)
        run = obs.capture(cluster, label="u")
        for m in run.monitors.values():
            if m.kind == "queue":
                continue
            u = m.utilization(run.t0, run.t1)
            assert 0.0 <= u <= 1.0 + 1e-9, m.name
        # Something must have been busy.
        assert any(
            m.utilization(run.t0, run.t1) > 0
            for m in run.monitors.values()
            if m.kind != "queue"
        )


class TestBottleneckAttribution:
    def test_shares_plus_idle_sum_to_one(self):
        obs = ObsSession()
        cluster = small_cluster(trace=True)
        obs.attach(cluster)
        cluster.run_workload(workload)
        report = obs.capture(cluster, label="sum").report()
        total = report.idle_share + sum(
            r.critical_path_share
            for r in report.resources
            if r.kind in ("cpu", "disk", "nic")
        )
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_report_ranked_and_verdict(self):
        obs = ObsSession()
        cluster = small_cluster(trace=True)
        obs.attach(cluster)
        cluster.run_workload(workload)
        report = obs.capture(cluster, label="rank").report()
        assert isinstance(report, BottleneckReport)
        shares = [r.critical_path_share for r in report.resources]
        assert shares == sorted(shares, reverse=True)
        assert report.verdict
        md = report.to_markdown()
        assert "verdict" in md
        assert "| resource |" in md
        js = report.to_json()
        assert js["verdict"] == report.verdict
        assert js["resources"]

    def test_synthetic_disk_bound(self):
        # One resource busy the whole window -> named in the verdict.
        disk = ResourceMonitor("iod0.disk", "disk")
        disk.on_busy(0.0)
        disk.on_idle(10.0)
        nic = ResourceMonitor("iod0.nic.tx", "nic")
        nic.on_busy(0.0)
        nic.on_idle(1.0)
        report = attribute(
            {"iod0.disk": disk, "iod0.nic.tx": nic}, 0.0, 10.0, label="synth"
        )
        assert "disk-bound" in report.verdict
        assert "iod0.disk" in report.verdict
        top = report.resources[0]
        assert top.name == "iod0.disk"
        assert top.utilization == pytest.approx(1.0)

    def test_empty_window_idle(self):
        report = attribute({}, 0.0, 0.0, label="empty")
        assert report.idle_share == 1.0
        assert "idle-bound" in report.verdict


class TestDeterminism:
    def test_observed_run_is_bit_identical(self):
        def run(observe):
            cluster = small_cluster(trace=observe)
            obs = ObsSession()
            if observe:
                obs.attach(cluster)
            result = cluster.run_workload(workload)
            if observe:
                obs.capture(cluster)
            return result.elapsed, tuple(result.client_times)

        assert run(True) == run(False)
