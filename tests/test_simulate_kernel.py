"""Tests for the discrete-event kernel (repro.simulate)."""

import pytest

from repro.errors import SimulationError
from repro.simulate import AllOf, Interrupt, Simulator


class TestEvent:
    def test_succeed_carries_value(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(42)
        sim.run()
        assert ev.processed
        assert ev.value == 42

    def test_value_before_trigger_raises(self):
        sim = Simulator()
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_double_trigger_raises(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.event().fail("not an exception")

    def test_delayed_succeed(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed("late", delay=5.0)
        sim.run()
        assert sim.now == 5.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.event().succeed(delay=-1.0)


class TestTimeout:
    def test_advances_clock(self):
        sim = Simulator()

        def p(sim):
            yield sim.timeout(3.5)
            return sim.now

        proc = sim.process(p(sim))
        sim.run()
        assert proc.value == 3.5
        assert sim.now == 3.5

    def test_negative_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-0.1)

    def test_zero_timeout_runs_same_time(self):
        sim = Simulator()
        order = []

        def p(sim, tag):
            yield sim.timeout(0)
            order.append(tag)

        sim.process(p(sim, "a"))
        sim.process(p(sim, "b"))
        sim.run()
        assert order == ["a", "b"]  # deterministic FIFO at equal times


class TestProcess:
    def test_return_value(self):
        sim = Simulator()

        def p(sim):
            yield sim.timeout(1)
            return "done"

        proc = sim.process(p(sim))
        sim.run()
        assert proc.value == "done"

    def test_wait_on_process(self):
        sim = Simulator()

        def child(sim):
            yield sim.timeout(2)
            return 7

        def parent(sim):
            v = yield sim.process(child(sim))
            return v + 1

        proc = sim.process(parent(sim))
        sim.run()
        assert proc.value == 8

    def test_sequential_timeouts_accumulate(self):
        sim = Simulator()

        def p(sim):
            yield sim.timeout(1)
            yield sim.timeout(2)
            yield sim.timeout(3)

        sim.process(p(sim))
        sim.run()
        assert sim.now == 6

    def test_unhandled_exception_escalates(self):
        sim = Simulator()

        def p(sim):
            yield sim.timeout(1)
            raise ValueError("boom")

        sim.process(p(sim))
        with pytest.raises(ValueError, match="boom"):
            sim.run()

    def test_watched_exception_is_thrown_into_waiter(self):
        sim = Simulator()

        def bad(sim):
            yield sim.timeout(1)
            raise ValueError("boom")

        def waiter(sim):
            try:
                yield sim.process(bad(sim))
            except ValueError as e:
                return f"caught {e}"

        proc = sim.process(waiter(sim))
        sim.run()
        assert proc.value == "caught boom"

    def test_yield_non_event_raises_inside_process(self):
        sim = Simulator()

        def p(sim):
            try:
                yield "bogus"
            except SimulationError:
                return "rejected"

        proc = sim.process(p(sim))
        sim.run()
        assert proc.value == "rejected"

    def test_yield_none_is_cooperative(self):
        sim = Simulator()

        def p(sim):
            yield None
            return sim.now

        proc = sim.process(p(sim))
        sim.run()
        assert proc.value == 0.0

    def test_non_generator_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.process(lambda: None)

    def test_yield_already_processed_event(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed("early")

        def late(sim):
            yield sim.timeout(5)
            got = yield ev
            return got

        proc = sim.process(late(sim))
        sim.run()
        assert proc.value == "early"

    def test_active_process(self):
        sim = Simulator()
        seen = []

        def p(sim):
            seen.append(sim.active_process)
            yield sim.timeout(0)

        proc = sim.process(p(sim))
        sim.run()
        assert seen == [proc]
        assert sim.active_process is None

    def test_interrupt(self):
        sim = Simulator()

        def sleeper(sim):
            try:
                yield sim.timeout(100)
            except Interrupt as i:
                return ("interrupted", i.cause, sim.now)

        def killer(sim, victim):
            yield sim.timeout(3)
            victim.interrupt("enough")

        victim = sim.process(sleeper(sim))
        sim.process(killer(sim, victim))
        sim.run()
        assert victim.value == ("interrupted", "enough", 3)

    def test_interrupt_finished_raises(self):
        sim = Simulator()

        def quick(sim):
            yield sim.timeout(0)

        p = sim.process(quick(sim))
        sim.run()
        with pytest.raises(SimulationError):
            p.interrupt()


class TestConditions:
    def test_all_of_collects_values(self):
        sim = Simulator()

        def p(sim, d):
            yield sim.timeout(d)
            return d

        cond = sim.all_of([sim.process(p(sim, d)) for d in (3, 1, 2)])

        def waiter(sim):
            vals = yield cond
            return vals

        proc = sim.process(waiter(sim))
        sim.run()
        assert sorted(proc.value) == [1, 2, 3]
        assert sim.now == 3

    def test_any_of_fires_at_first(self):
        sim = Simulator()

        def p(sim, d):
            yield sim.timeout(d)
            return d

        def waiter(sim):
            yield sim.any_of([sim.process(p(sim, d)) for d in (5, 1, 3)])
            return sim.now

        proc = sim.process(waiter(sim))
        sim.run(until=10)
        assert proc.value == 1

    def test_all_of_empty_fires_immediately(self):
        sim = Simulator()

        def waiter(sim):
            yield sim.all_of([])
            return sim.now

        proc = sim.process(waiter(sim))
        sim.run()
        assert proc.value == 0.0

    def test_all_of_propagates_failure(self):
        sim = Simulator()

        def bad(sim):
            yield sim.timeout(1)
            raise RuntimeError("x")

        def ok(sim):
            yield sim.timeout(5)

        def waiter(sim):
            try:
                yield sim.all_of([sim.process(bad(sim)), sim.process(ok(sim))])
            except RuntimeError:
                return "failed fast"

        proc = sim.process(waiter(sim))
        sim.run()
        assert proc.value == "failed fast"

    def test_cross_simulator_rejected(self):
        s1, s2 = Simulator(), Simulator()
        e1, e2 = s1.event(), s2.event()
        with pytest.raises(SimulationError):
            AllOf(s1, [e1, e2])


class TestRun:
    def test_run_until_stops_clock(self):
        sim = Simulator()

        def p(sim):
            yield sim.timeout(100)

        sim.process(p(sim))
        sim.run(until=10)
        assert sim.now == 10

    def test_run_until_past_raises(self):
        sim = Simulator()
        sim.event().succeed(delay=5)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=1)

    def test_run_empty_returns_now(self):
        sim = Simulator()
        assert sim.run() == 0.0

    def test_step_on_empty_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.step()

    def test_peek(self):
        sim = Simulator()
        assert sim.peek() == float("inf")
        sim.event().succeed(delay=4)
        assert sim.peek() == 4

    def test_determinism_across_runs(self):
        def build():
            sim = Simulator()
            log = []

            def p(sim, tag, d):
                yield sim.timeout(d)
                log.append((tag, sim.now))
                yield sim.timeout(d)
                log.append((tag, sim.now))

            for i, d in enumerate([2, 1, 2, 1]):
                sim.process(p(sim, i, d))
            sim.run()
            return log

        assert build() == build()

    def test_repr(self):
        sim = Simulator()
        assert "Simulator" in repr(sim)
