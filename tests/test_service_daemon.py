"""Client/daemon round-trip contract (docs/service.md).

The acceptance criteria of the service layer, asserted end-to-end
against a real in-process daemon on an ephemeral port:

* submit -> wait -> fetch equals a direct ``run_sweep`` of the same
  specs **byte-for-byte** (the serialized points compare as strings);
* a duplicate submission is answered from the first job's record —
  dedup counter > 0, no second execution, same job id;
* a malformed spec gets a typed HTTP 400, unknown jobs a 404, and a
  result fetched before completion a 409.
"""

import io
import json

import pytest

from repro.errors import ServiceError
from repro.service import RequestFailed, ServiceClient, ServiceDaemon
from repro.service.wire import encode_spec
from repro.sweep import ResultCache, run_sweep
from repro.sweep.engine import SweepStats  # noqa: F401 - re-exported shape under test

BENCH_PAYLOAD = {"kind": "bench", "scenario": "micro_disk_runs", "scale": "smoke"}


@pytest.fixture
def daemon(tmp_path):
    log = io.StringIO()
    d = ServiceDaemon(
        "127.0.0.1",
        0,  # ephemeral port
        workers=2,
        cache=ResultCache(str(tmp_path / "cache")),
        log_stream=log,
    )
    d.start()
    d.log = log
    yield d
    d.stop()


@pytest.fixture
def client(daemon):
    return ServiceClient(daemon.url, timeout=30.0)


def _direct_points_json(payload):
    """What the direct CLI path would produce for the same job."""
    from repro.service.builders import build_job

    _kind, specs, label = build_job(payload)
    results, _stats = run_sweep(specs, jobs=1, label=label)
    return [spec.result_to_json(r) for spec, r in zip(specs, results)]


class TestRoundTrip:
    def test_submit_wait_fetch_bit_identical_to_direct_run(self, client):
        reply = client.submit(BENCH_PAYLOAD)
        assert reply["deduped"] is False
        job = client.wait(reply["job"]["id"], timeout=120)
        assert job["state"] == "done"
        assert job["completed"] == job["total"] == 1
        fetched = client.result(job["id"])["points"]
        direct = _direct_points_json(BENCH_PAYLOAD)
        assert json.dumps(fetched, sort_keys=True) == json.dumps(direct, sort_keys=True)

    def test_sweep_job_from_raw_specs(self, client):
        from repro.bench.micro import KernelChurnSpec

        spec = KernelChurnSpec(n_procs=4, events_per_proc=8)
        payload = {"kind": "sweep", "specs": [encode_spec(spec)], "label": "t"}
        result = client.run(payload, timeout=120)
        direct = spec.run()
        assert result["points"] == [spec.result_to_json(direct)]

    def test_health_reports_fingerprint(self, client, daemon):
        health = client.health()
        assert health["ok"] is True
        assert health["fingerprint"] == daemon.fingerprint
        assert health["cache"] is True


class TestDedup:
    def test_duplicate_submit_served_without_reexecution(self, client, daemon):
        first = client.submit(BENCH_PAYLOAD)
        client.wait(first["job"]["id"], timeout=120)
        executed_before = daemon.metrics.counter("service.points.executed").value

        second = client.submit(BENCH_PAYLOAD)
        assert second["deduped"] is True
        assert second["job"]["id"] == first["job"]["id"]

        metrics = client.metrics()
        assert metrics["counters"]["service.jobs.deduped"] > 0
        # No worker execution for the duplicate: the executed-points
        # counter is untouched and the job list holds a single job.
        assert daemon.metrics.counter("service.points.executed").value == executed_before
        assert len(client.jobs()) == 1

    def test_different_payloads_do_not_dedup(self, client):
        a = client.submit(BENCH_PAYLOAD)
        b = client.submit({"kind": "bench", "scenario": "micro_kernel_churn", "scale": "smoke"})
        assert b["deduped"] is False
        assert b["job"]["id"] != a["job"]["id"]

    def test_dedup_counter_zero_before_any_duplicate(self, client):
        metrics = client.metrics()
        assert metrics["counters"].get("service.jobs.deduped", 0) == 0


class TestErrors:
    def test_malformed_spec_is_typed_400(self, client):
        with pytest.raises(RequestFailed) as err:
            client.submit({"kind": "sweep", "specs": [{"__type__": "EvilSpec"}]})
        assert err.value.status == 400
        assert err.value.error_type == "SpecPayloadError"
        assert isinstance(err.value, ServiceError)

    def test_unknown_kind_is_400(self, client):
        with pytest.raises(RequestFailed) as err:
            client.submit({"kind": "nope"})
        assert err.value.status == 400
        assert err.value.error_type == "SpecPayloadError"

    def test_invalid_field_value_is_400(self, client):
        spec = {"kind": "figure", "figure": "99", "scale": "smoke"}
        with pytest.raises(RequestFailed) as err:
            client.submit(spec)
        assert err.value.status == 400

    def test_unknown_job_is_404(self, client):
        with pytest.raises(RequestFailed) as err:
            client.job("job-999")
        assert err.value.status == 404
        assert err.value.error_type == "UnknownJob"
        with pytest.raises(RequestFailed) as err:
            client.result("job-999")
        assert err.value.status == 404

    def test_result_before_done_is_409(self, client, daemon):
        # A job that cannot have finished yet: stall the queue by
        # submitting against a stopped worker pool is racy, so instead
        # fabricate the state directly through the store.
        job, _ = daemon.store.submit("bench", [], "t", "k-stall")
        with pytest.raises(RequestFailed) as err:
            client.result(job.id)
        assert err.value.status == 409
        assert err.value.error_type == "JobNotDone"

    def test_unknown_route_is_404(self, client):
        with pytest.raises(RequestFailed) as err:
            client._request("GET", "/v2/everything")
        assert err.value.status == 404
        assert err.value.error_type == "UnknownRoute"

    def test_unreachable_daemon_raises_without_status(self):
        client = ServiceClient("http://127.0.0.1:1", timeout=0.5)
        with pytest.raises(RequestFailed) as err:
            client.health()
        assert err.value.status is None


class TestObservability:
    def test_request_log_is_structured_jsonl(self, client, daemon):
        client.health()
        lines = [json.loads(L) for L in daemon.log.getvalue().splitlines() if L]
        events = {rec["event"] for rec in lines}
        assert "start" in events
        request = next(rec for rec in lines if rec["event"] == "request")
        assert request["method"] == "GET"
        assert request["path"] == "/v1/health"
        assert request["status"] == 200
        assert request["dur_ms"] >= 0

    def test_metrics_counters_and_gauge(self, client):
        client.run(BENCH_PAYLOAD, timeout=120)
        client.submit(BENCH_PAYLOAD)  # the duplicate
        metrics = client.metrics()
        counters = metrics["counters"]
        assert counters["service.jobs.accepted"] == 1
        assert counters["service.jobs.deduped"] == 1
        assert counters["service.jobs.completed"] == 1
        assert counters.get("service.jobs.failed", 0) == 0
        assert counters["service.http.requests"] >= 4
        assert "service.queue.depth" in metrics["gauges"]
        # run_sweep's registry was merged in: the sweep fold is present.
        assert any(name.startswith("sweep.") for name in counters)

    def test_failed_job_reports_error_and_counter(self, client, daemon):
        # A chaos spec that validates but whose scenario dies at run
        # time is hard to fabricate; instead push a job whose spec
        # raises, through the store + queue directly.
        class Boom:
            def cache_token(self):
                return {"kind": "boom"}

            def run(self, obs=None):
                raise RuntimeError("exploded")

        job, _ = daemon.store.submit("sweep", [Boom()], "boom", "k-boom")
        daemon._queue.put(job.id)
        final = client.wait(job.id, timeout=30)
        assert final["state"] == "failed"
        assert "exploded" in final["error"]
        assert client.metrics()["counters"]["service.jobs.failed"] == 1
        # A failed job never dedups: the same key submits fresh.
        job2, deduped = daemon.store.submit("sweep", [Boom()], "boom", "k-boom")
        assert deduped is False
        assert job2.id != job.id
