"""Fault-injection subsystem: crash/recovery, retries, determinism.

The acceptance scenario from the robustness issue: I/O daemon 0 crashes
mid-benchmark and restarts 2 simulated seconds later; the workload must
complete with byte-for-byte correct data, the retries must be visible in
the trace, and the run must report a recovery time.  With retries disabled
the same scenario must raise RetryExhausted instead of hanging.
"""

import numpy as np
import pytest

from repro.config import ClusterConfig
from repro.errors import ConfigError, RetryExhausted, ServerCrashed
from repro.faults import (
    DiskStall,
    FaultConfig,
    FaultPlan,
    IodCrash,
    LinkDown,
    PacketLoss,
    RetryPolicy,
    Straggler,
    parse_straggler_spec,
)
from repro.pvfs import Cluster
from repro.regions import RegionList
from repro.simulate import Event

CFG = ClusterConfig.chiba_city(n_clients=2, n_iods=4)

#: A survival policy generous enough to ride out a 2 s restart.
RETRY = RetryPolicy(
    request_timeout=1.0,
    max_retries=10,
    backoff_base=0.05,
    backoff_factor=2.0,
    backoff_cap=1.0,
    jitter=0.1,
)

N_BYTES = 128 * 1024


def _roundtrip(faults=FaultConfig(), trace=False, move_bytes=True, cfg=CFG):
    """Write a distinct payload per client, read it back, return it all."""
    cluster = Cluster.build(cfg.with_(faults=faults), move_bytes=move_bytes, trace=trace)
    payloads = {
        i: (np.arange(N_BYTES, dtype=np.uint8) + 7 * i) for i in range(cfg.n_clients)
    }

    def workload(client):
        f = yield from client.open(f"/f{client.index}", create=True)
        yield from f.write(0, payloads[client.index])
        back = yield from f.read(0, N_BYTES)
        yield from f.close()
        return back

    result = cluster.run_workload(workload)
    return cluster, result, payloads


def _crash_config(baseline_elapsed, restart_after=2.0, retry=RETRY):
    return FaultConfig(
        plan=FaultPlan(
            (IodCrash(iod=0, at=baseline_elapsed / 3, restart_after=restart_after),)
        ),
        retry=retry,
    )


@pytest.fixture(scope="module")
def baseline():
    cluster, result, payloads = _roundtrip()
    return result


class TestPlanValidation:
    def test_fault_records_validate(self):
        with pytest.raises(ConfigError):
            IodCrash(iod=-1, at=0.0)
        with pytest.raises(ConfigError):
            IodCrash(iod=0, at=-1.0)
        with pytest.raises(ConfigError):
            IodCrash(iod=0, at=0.0, restart_after=0.0)
        with pytest.raises(ConfigError):
            DiskStall(iod=0, at=0.0, duration=0.0)
        with pytest.raises(ConfigError):
            DiskStall(iod=0, at=0.0, duration=1.0, factor=0.5)
        with pytest.raises(ConfigError):
            LinkDown(node="", at=0.0, duration=1.0)
        with pytest.raises(ConfigError):
            PacketLoss(node="iod0", at=0.0, duration=1.0, rate=1.5)
        with pytest.raises(ConfigError):
            Straggler(iod=0, scale=0.0)

    def test_retry_policy_validates(self):
        with pytest.raises(ConfigError):
            RetryPolicy(request_timeout=0.0)
        with pytest.raises(ConfigError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_base=1.0, backoff_cap=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=1.0)
        assert not RetryPolicy().active
        assert RetryPolicy(request_timeout=1.0).active

    def test_plan_targets_checked_at_build(self):
        bad_iod = FaultConfig(plan=FaultPlan((IodCrash(iod=99, at=0.1),)))
        with pytest.raises(ConfigError):
            Cluster.build(CFG.with_(faults=bad_iod))
        bad_node = FaultConfig(plan=FaultPlan((LinkDown(node="nope", at=0.1, duration=1.0),)))
        with pytest.raises(ConfigError):
            Cluster.build(CFG.with_(faults=bad_node))
        bad_straggler = FaultConfig(plan=FaultPlan((Straggler(iod=99, scale=2.0),)))
        with pytest.raises(ConfigError):
            Cluster.build(CFG.with_(faults=bad_straggler))

    def test_parse_straggler_spec(self):
        s = parse_straggler_spec("2:8.5")
        assert s.iod == 2 and s.scale == 8.5
        for bad in ("", "2", "a:b", "1:", "1:0"):
            with pytest.raises(ConfigError):
                parse_straggler_spec(bad)

    def test_plan_helpers(self):
        plan = FaultPlan.empty()
        assert plan.is_empty and len(plan) == 0
        plan = plan.with_faults(Straggler(0, 2.0), IodCrash(1, at=1.0))
        assert len(plan) == 2
        assert plan.stragglers() == (Straggler(0, 2.0),)
        assert plan.scheduled() == (IodCrash(1, at=1.0),)
        assert FaultConfig().is_inert
        assert not FaultConfig(retry=RetryPolicy(request_timeout=1.0)).is_inert


class TestCrashRecovery:
    def test_crash_restart_completes_with_correct_bytes(self, baseline):
        cluster, result, payloads = _roundtrip(
            _crash_config(baseline.elapsed), trace=True
        )
        # Byte-for-byte correct despite the mid-benchmark crash.
        for i, back in enumerate(result.client_returns):
            assert np.array_equal(back, payloads[i]), f"client {i} data corrupt"
        # The crash actually happened and clients actually retried.
        counters = cluster.counters
        assert counters.get("iod.0.crashes", 0) == 1
        retries = sum(
            v for k, v in counters.items() if k.endswith(".retries")
        )
        assert retries > 0
        # The run took the restart delay on the chin.
        assert result.elapsed > baseline.elapsed + 1.0

    def test_recovery_time_reported(self, baseline):
        cluster, result, _ = _roundtrip(_crash_config(baseline.elapsed))
        iod = cluster.iods[0]
        assert iod.crashes == 1
        assert iod.restarted_at is not None
        rec = cluster.fault_injector.recovery_times()
        assert rec[0] is not None
        # Recovery >= the restart delay, and within the run.
        assert 2.0 <= rec[0] <= result.elapsed
        assert cluster.fault_injector.events[0][1] == "iod0 crashed"
        assert "restarted" in cluster.fault_injector.format_events()

    def test_retry_spans_recorded(self, baseline):
        cluster, _, _ = _roundtrip(_crash_config(baseline.elapsed), trace=True)
        cats = {s.category for s in cluster.tracer.spans}
        assert "fault.crash" in cats
        assert "client.retry_backoff" in cats

    def test_retries_disabled_raises_not_hangs(self, baseline):
        no_retry = RetryPolicy(request_timeout=0.5, max_retries=0)
        with pytest.raises(RetryExhausted) as exc_info:
            _roundtrip(_crash_config(baseline.elapsed, retry=no_retry))
        err = exc_info.value
        assert err.attempts == 1
        assert isinstance(err.last_error, ServerCrashed)

    def test_crash_without_restart_exhausts_budget(self, baseline):
        faults = FaultConfig(
            plan=FaultPlan((IodCrash(iod=0, at=baseline.elapsed / 3),)),
            retry=RetryPolicy(request_timeout=0.5, max_retries=3, backoff_base=0.01),
        )
        with pytest.raises(RetryExhausted) as exc_info:
            _roundtrip(faults)
        assert exc_info.value.attempts == 4

    def test_deliver_to_dead_daemon_refused(self):
        cluster = Cluster.build(CFG)
        iod = cluster.iods[0]
        iod.crash()
        assert not iod.alive
        req_event = Event(cluster.sim)
        from repro.pvfs.protocol import IORequest

        req = IORequest(
            kind="read",
            file_id=1,
            regions=RegionList.single(0, 64),
            client_node=cluster.clients[0].node,
            response=req_event,
        )
        iod.deliver(req)
        assert req_event.triggered and not req_event.ok
        assert isinstance(req_event.value, ServerCrashed)
        # crash/restart are idempotent.
        iod.crash()
        assert iod.crashes == 1
        iod.restart()
        iod.restart()
        assert iod.alive and iod.crashes == 1

    def test_restart_boots_cold_cache(self, baseline):
        cluster, _, _ = _roundtrip(_crash_config(baseline.elapsed))
        iod = cluster.iods[0]
        # The daemon came back, served requests, and kept cumulative stats.
        assert iod.alive
        assert iod.first_service_after_restart is not None
        assert iod.requests_served > 0


class TestDeterminism:
    def test_same_plan_and_seed_bit_identical(self, baseline):
        fc = _crash_config(baseline.elapsed)
        c1, r1, _ = _roundtrip(fc, trace=True)
        c2, r2, _ = _roundtrip(fc, trace=True)
        assert r1.elapsed == r2.elapsed
        assert r1.client_times == r2.client_times
        assert dict(c1.counters.items()) == dict(c2.counters.items())
        for a, b in zip(r1.client_returns, r2.client_returns):
            assert np.array_equal(a, b)
        assert len(c1.tracer.spans) == len(c2.tracer.spans)

    def test_inert_fault_config_identical_to_seed_baseline(self):
        c_plain, r_plain, _ = _roundtrip()  # default (inert) FaultConfig
        cluster = Cluster.build(CFG)  # config untouched by this PR's knobs
        assert cluster.fault_injector is None
        c_inert, r_inert, _ = _roundtrip(FaultConfig())
        assert r_inert.elapsed == r_plain.elapsed
        assert dict(c_inert.counters.items()) == dict(c_plain.counters.items())


class TestNetworkFaults:
    def test_link_down_stalls_and_counts(self, baseline):
        faults = FaultConfig(
            plan=FaultPlan(
                (LinkDown(node="iod1", at=baseline.elapsed / 4, duration=0.05),)
            ),
            retry=RETRY,
        )
        cluster, result, payloads = _roundtrip(faults)
        assert result.elapsed > baseline.elapsed
        assert cluster.counters.get("net.link_stalls", 0) >= 1
        for i, back in enumerate(result.client_returns):
            assert np.array_equal(back, payloads[i])

    def test_packet_loss_slows_deterministically(self, baseline):
        faults = FaultConfig(
            plan=FaultPlan(
                (
                    PacketLoss(
                        node="iod0",
                        at=0.0,
                        duration=max(baseline.elapsed, 0.1),
                        rate=0.2,
                    ),
                )
            ),
            retry=RETRY,
        )
        c1, r1, _ = _roundtrip(faults)
        c2, r2, _ = _roundtrip(faults)
        assert r1.elapsed == r2.elapsed  # seeded binomial draws replay
        assert r1.elapsed > baseline.elapsed
        assert c1.counters.get("net.frames_lost", 0) > 0


class TestDiskStall:
    def test_stall_window_slows_run_and_heals(self, baseline):
        faults = FaultConfig(
            plan=FaultPlan(
                (
                    DiskStall(
                        iod=0,
                        at=0.0,
                        duration=max(baseline.elapsed * 2, 0.5),
                        factor=50.0,
                    ),
                )
            ),
        )
        cluster, result, _ = _roundtrip(faults)
        assert result.elapsed > baseline.elapsed
        assert cluster.counters.get("faults.disk_stalls", 0) == 1
        # The window closed by end of simulation (run drains the heap).
        assert cluster.iods[0].disk.fault_scale == pytest.approx(1.0)


class TestStragglerConfig:
    def test_config_straggler_matches_direct_poke(self):
        faults = FaultConfig(plan=FaultPlan((Straggler(iod=1, scale=8.0),)))
        _, r_config, _ = _roundtrip(faults)

        # The pre-existing path: poke service_scale on a built cluster.
        cluster = Cluster.build(CFG, move_bytes=True)
        cluster.iods[1].service_scale = 8.0
        payloads = {
            i: (np.arange(N_BYTES, dtype=np.uint8) + 7 * i)
            for i in range(CFG.n_clients)
        }

        def workload(client):
            f = yield from client.open(f"/f{client.index}", create=True)
            yield from f.write(0, payloads[client.index])
            back = yield from f.read(0, N_BYTES)
            yield from f.close()
            return back

        r_poke = cluster.run_workload(workload)
        assert r_config.elapsed == r_poke.elapsed
        # A straggler-only plan needs no injector process.
        assert cluster.fault_injector is None

    def test_straggler_slows_run(self, baseline):
        faults = FaultConfig(plan=FaultPlan((Straggler(iod=0, scale=8.0),)))
        _, result, _ = _roundtrip(faults)
        assert result.elapsed > baseline.elapsed


class TestObsIntegration:
    def test_trace_and_report_show_fault_activity(self, baseline):
        from repro.obs import ObsSession

        obs = ObsSession()
        cfg = CFG.with_(faults=_crash_config(baseline.elapsed))
        cluster = Cluster.build(cfg, move_bytes=True, trace=True)
        obs.attach(cluster)
        payloads = {
            i: (np.arange(N_BYTES, dtype=np.uint8) + 7 * i)
            for i in range(cfg.n_clients)
        }

        def workload(client):
            f = yield from client.open(f"/f{client.index}", create=True)
            yield from f.write(0, payloads[client.index])
            back = yield from f.read(0, N_BYTES)
            yield from f.close()
            return back

        cluster.run_workload(workload)
        run = obs.capture(cluster, label="chaos/crash")
        doc = obs.build_trace(run)
        cats = {ev.get("cat") for ev in doc["traceEvents"]}
        assert "fault.crash" in cats
        assert "client.retry_backoff" in cats
        report = run.report()
        assert "fault.crash" in report.faults
        assert "client.retry_backoff" in report.faults
        md = report.to_markdown()
        assert "fault / retry activity" in md
        assert report.to_json()["faults"]
