"""Schema round-trip and version gating for ``repro.bench.schema``."""

import json

import pytest

from repro.bench.schema import (
    SCHEMA_VERSION,
    BenchResult,
    ScenarioResult,
    SimMetrics,
    WallMetrics,
    load,
    save,
)
from repro.errors import BenchError, SchemaMismatchError


def _result(**overrides) -> BenchResult:
    sim = SimMetrics(
        elapsed_s=1.2345678901234567,
        moved_bytes=1024,
        useful_bytes=512,
        logical_requests=10,
        server_messages=12,
        n_points=3,
    )
    wall = WallMetrics.from_samples([0.30000000000000004, 0.1, 0.2])
    kwargs = dict(
        scale="smoke",
        scenarios=[ScenarioResult(name="s1", family="artificial", sim=sim, wall=wall)],
        created="2026-08-06T00:00:00Z",
        host={"python": "3.11.7"},
        code_fingerprint="abc123",
        repeats=3,
        jobs=2,
        cache_enabled=False,
    )
    kwargs.update(overrides)
    return BenchResult(**kwargs)


def test_round_trip_is_bit_identical(tmp_path):
    path = str(tmp_path / "BENCH_test.json")
    original = _result()
    save(original, path)
    reloaded = load(path)
    # Dataclass equality covers every field, floats included: json's
    # repr shortest-roundtrip encoding preserves them exactly.
    assert reloaded == original


def test_wall_metrics_statistics():
    wall = WallMetrics.from_samples([0.4, 0.1, 0.2, 0.3])
    assert wall.median_s == pytest.approx(0.25)
    assert wall.min_s == 0.1
    assert wall.max_s == 0.4
    assert wall.repeats == 4
    odd = WallMetrics.from_samples([3.0, 1.0, 2.0])
    assert odd.median_s == 2.0


def test_wall_metrics_ssr_derivation():
    wall = WallMetrics.from_samples([0.5], events=1000, sim_s=2.0)
    assert wall.events == 1000
    assert wall.sim_s == 2.0
    assert wall.ssr == pytest.approx(4.0)
    # Degenerate median: SSR reported as zero rather than dividing by it.
    zero = WallMetrics.from_samples([0.0], sim_s=1.0)
    assert zero.ssr == 0.0


def test_version1_files_still_load(tmp_path):
    """A committed v1 baseline (no events/sim_s/ssr) upgrades in memory."""
    path = str(tmp_path / "BENCH_v1.json")
    save(_result(), path)
    with open(path) as fh:
        data = json.load(fh)
    data["schema_version"] = 1
    for sc in data["scenarios"]:
        for key in ("events", "sim_s", "ssr"):
            del sc["wall"][key]
    with open(path, "w") as fh:
        json.dump(data, fh)
    upgraded = load(path)
    assert upgraded.schema_version == SCHEMA_VERSION
    wall = upgraded.scenario("s1").wall
    assert (wall.events, wall.sim_s, wall.ssr) == (0, 0.0, 0.0)
    assert wall.median_s == _result().scenario("s1").wall.median_s


def test_wall_metrics_reject_empty():
    with pytest.raises(BenchError):
        WallMetrics.from_samples([])


def test_schema_version_mismatch_rejected(tmp_path):
    path = str(tmp_path / "BENCH_old.json")
    save(_result(), path)
    with open(path) as fh:
        data = json.load(fh)
    data["schema_version"] = SCHEMA_VERSION + 1
    with open(path, "w") as fh:
        json.dump(data, fh)
    with pytest.raises(SchemaMismatchError):
        load(path)


def test_missing_schema_version_rejected(tmp_path):
    path = tmp_path / "BENCH_bad.json"
    path.write_text('{"scale": "smoke", "scenarios": []}')
    with pytest.raises(SchemaMismatchError):
        load(str(path))


def test_malformed_file_rejected(tmp_path):
    path = tmp_path / "BENCH_broken.json"
    path.write_text("not json at all")
    with pytest.raises(BenchError):
        load(str(path))
    missing = tmp_path / "nope.json"
    with pytest.raises(BenchError):
        load(str(missing))


def test_scenario_lookup():
    result = _result()
    assert result.scenario("s1").family == "artificial"
    with pytest.raises(KeyError):
        result.scenario("absent")
