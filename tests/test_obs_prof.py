"""Tests for repro.obs.prof: passivity, SSR accounting, flamegraph export.

The headline guarantee mirrors PR 1's tracing contract: arming the
kernel profiler must not change a single simulated bit.  Everything else
is accounting sanity (events counted once per dispatch, SSR > 0 for a
real run) and file-format checks for the collapsed-stack / pstats /
profile-JSON outputs the CLIs write.
"""

import json

import pytest

from repro.config import ClusterConfig
from repro.experiments.harness import des_point
from repro.obs.prof import (
    KernelProfiler,
    capture_cprofile,
    collapsed_stacks,
    event_kind,
    profiled,
    save_profile_json,
    top_functions_markdown,
    write_collapsed,
    write_pstats,
)
from repro.patterns import one_dim_cyclic
from repro.simulate import Simulator
from repro.units import MiB


def _point(seed=7, obs=None):
    pattern = one_dim_cyclic(1 * MiB, 2, 8)
    cfg = ClusterConfig.chiba_city(n_clients=2).with_(seed=seed)
    return des_point(pattern, "list", "read", cfg, obs=obs)


class TestPassivity:
    @pytest.mark.parametrize("seed", [7, 1234])
    def test_profiled_run_is_bit_identical(self, seed):
        baseline = _point(seed=seed)
        with profiled() as prof:
            observed = _point(seed=seed)
        assert observed == baseline
        assert prof.events > 0

    def test_profiler_restored_after_block(self):
        from repro.simulate import kernel

        assert kernel._ACTIVE_PROFILER is None
        with profiled():
            assert kernel._ACTIVE_PROFILER is not None
            with pytest.raises(RuntimeError):
                raise RuntimeError("boom")  # noqa: TRY301 — unwind check
        assert kernel._ACTIVE_PROFILER is None


class TestKernelAccounting:
    def test_events_and_ssr(self):
        with profiled() as prof:
            point = _point()
        profile = prof.profile()
        assert profile.events == point.sim_events
        assert profile.simulators == 1
        assert profile.sim_s == pytest.approx(point.elapsed)
        assert profile.wall_s > 0
        assert profile.ssr > 0
        assert profile.events_per_s > 0
        assert profile.heap_pushes == profile.events
        assert profile.heap_max >= 1
        assert sum(count for _, count, _ in profile.handlers) == profile.events
        # Hottest-first ordering.
        walls = [w for _, _, w in profile.handlers]
        assert walls == sorted(walls, reverse=True)

    def test_multiple_simulators_accumulate(self):
        with profiled() as prof:
            _point(seed=1)
            _point(seed=2)
        profile = prof.profile()
        assert profile.simulators == 2

    def test_event_kind_grouping(self):
        sim = Simulator()

        def gen(sim):
            yield sim.timeout(1.0)

        proc = sim.process(gen(sim), name="client3.respond")
        assert event_kind(proc) == "process:client*.respond"
        assert event_kind(sim.timeout(0.5)) == "timeout"

    def test_markdown_and_headline(self):
        with profiled() as prof:
            _point()
        profile = prof.profile()
        assert "SSR" in profile.headline()
        table = profile.to_markdown(top=3)
        assert "| handler |" in table
        assert "heap:" in table

    def test_profile_json_round_trip(self, tmp_path):
        with profiled() as prof:
            _point()
        path = tmp_path / "p.json"
        save_profile_json(prof.profile(), str(path), scale="smoke")
        doc = json.loads(path.read_text())
        assert doc["tool"] == "pvfs-sim-profile"
        assert doc["schema_version"] == 1
        assert doc["scale"] == "smoke"
        assert doc["profile"]["events"] > 0
        assert doc["profile"]["ssr"] > 0


class TestHostProfiling:
    def test_capture_and_collapsed_stacks(self, tmp_path):
        result, cprof = capture_cprofile(_point)
        assert result.elapsed > 0
        lines = collapsed_stacks(cprof)
        assert lines, "expected at least one collapsed stack"
        for line in lines:
            frames, weight = line.rsplit(" ", 1)
            assert int(weight) >= 1
            assert 1 <= len(frames.split(";")) <= 2
        assert lines == sorted(lines)

    def test_write_outputs(self, tmp_path):
        _, cprof = capture_cprofile(_point)
        collapsed = tmp_path / "p.collapsed"
        n = write_collapsed(cprof, str(collapsed))
        assert n == len(collapsed.read_text().splitlines())
        pstats_path = tmp_path / "p.pstats"
        write_pstats(cprof, str(pstats_path))
        import pstats

        stats = pstats.Stats(str(pstats_path))
        assert stats.total_calls > 0
        table = top_functions_markdown(cprof, n=5)
        assert "| function |" in table


class TestCli:
    def test_profile_subcommand_smoke(self, tmp_path, capsys):
        from repro.experiments.cli import main

        prefix = str(tmp_path / "prof")
        rc = main(
            [
                "profile",
                "--scenario",
                "micro_kernel_churn",
                "--out",
                prefix,
                "--top",
                "5",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "SSR" in out
        assert "| handler |" in out
        assert (tmp_path / "prof.json").exists()
        assert (tmp_path / "prof.collapsed").exists()
        assert (tmp_path / "prof.pstats").exists()

    def test_profile_subcommand_no_cprofile(self, tmp_path, capsys):
        from repro.obs.profcli import main

        prefix = str(tmp_path / "k")
        rc = main(["--scenario", "micro_net_stream", "--out", prefix, "--no-cprofile"])
        assert rc == 0
        assert (tmp_path / "k.json").exists()
        assert not (tmp_path / "k.collapsed").exists()

    def test_profile_list_and_bad_scenario(self, capsys):
        from repro.obs.profcli import main

        assert main(["--list"]) == 0
        assert "micro_kernel_churn" in capsys.readouterr().out
        assert main(["--scenario", "nope"]) == 2

    def test_bench_run_profile_flag(self, tmp_path, capsys):
        from repro.bench.cli import main

        prefix = str(tmp_path / "bp")
        rc = main(
            [
                "run",
                "--scale",
                "smoke",
                "--repeats",
                "1",
                "--scenario",
                "micro_kernel_churn",
                "--out",
                str(tmp_path / "B.json"),
                "--profile",
                prefix,
                "--metrics-out",
                str(tmp_path / "m.jsonl"),
                "--quiet",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "SSR" in out
        assert "| SSR |" in out  # summary table carries the new columns
        assert (tmp_path / "bp.json").exists()
        assert (tmp_path / "bp.collapsed").exists()
        assert (tmp_path / "m.jsonl").exists()
