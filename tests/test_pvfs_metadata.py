"""Direct unit tests for the manager's namespace (repro.pvfs.metadata)."""

import pytest

from repro.config import StripeParams
from repro.errors import FileExistsError_, NoSuchFileError
from repro.pvfs.metadata import FileMetadata, Namespace


@pytest.fixture
def ns():
    return Namespace(StripeParams(stripe_size=1024))


class TestCreate:
    def test_create_assigns_unique_ids(self, ns):
        a = ns.create("/a")
        b = ns.create("/b")
        assert a.file_id != b.file_id
        assert len(ns) == 2

    def test_create_existing_returns_same(self, ns):
        a = ns.create("/a")
        again = ns.create("/a")
        assert again is a

    def test_exclusive_create_rejects_existing(self, ns):
        ns.create("/a")
        with pytest.raises(FileExistsError_):
            ns.create("/a", exclusive=True)

    def test_create_with_custom_stripe(self, ns):
        sp = StripeParams(stripe_size=64, pcount=2)
        meta = ns.create("/striped", stripe=sp)
        assert meta.stripe.stripe_size == 64
        assert meta.stripe.pcount == 2

    def test_create_uses_default_stripe(self, ns):
        meta = ns.create("/plain")
        assert meta.stripe.stripe_size == 1024


class TestLookup:
    def test_lookup_and_contains(self, ns):
        created = ns.create("/x")
        assert "/x" in ns
        assert ns.lookup("/x") is created
        assert "/y" not in ns

    def test_lookup_missing(self, ns):
        with pytest.raises(NoSuchFileError):
            ns.lookup("/ghost")

    def test_by_id(self, ns):
        meta = ns.create("/x")
        assert ns.by_id(meta.file_id) is meta
        with pytest.raises(NoSuchFileError):
            ns.by_id(999_999)


class TestUnlink:
    def test_unlink_removes_both_indexes(self, ns):
        meta = ns.create("/x")
        ns.unlink("/x")
        assert "/x" not in ns
        with pytest.raises(NoSuchFileError):
            ns.by_id(meta.file_id)

    def test_unlink_missing(self, ns):
        with pytest.raises(NoSuchFileError):
            ns.unlink("/ghost")


class TestFileMetadata:
    def test_grow_to_monotone(self):
        meta = FileMetadata(path="/m", stripe=StripeParams())
        meta.grow_to(100)
        assert meta.size == 100
        meta.grow_to(50)  # shrinking is ignored
        assert meta.size == 100
        meta.grow_to(200)
        assert meta.size == 200

    def test_open_count_default(self):
        meta = FileMetadata(path="/m", stripe=StripeParams())
        assert meta.open_count == 0
