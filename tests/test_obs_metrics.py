"""Tests for repro.obs.metrics: instruments, merges, JSONL, sweep folding.

The load-bearing guarantees:

* the per-worker sweep fold is deterministic — ``run_sweep`` with
  ``jobs=1`` and ``jobs=4`` produce registries with identical snapshots;
* fixed-bucket histograms merge bucketwise in any order;
* the JSONL export round-trips through :func:`repro.obs.metrics.load_jsonl`
  and is summarized by ``pvfs-sim obs``;
* :func:`from_capture` derives epoch series from a real traced run
  without perturbing the simulation.
"""

import pytest

from repro.config import ClusterConfig, StripeParams
from repro.errors import ConfigError
from repro.obs import ObsSession
from repro.obs.metrics import (
    DEFAULT_BYTE_BUCKETS,
    METRICS_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Series,
    from_capture,
    load_jsonl,
)
from repro.sweep import PointSpec, run_sweep
from repro.units import MiB


def _specs(n_accesses=(4, 8)):
    cfg = ClusterConfig.chiba_city(n_clients=2)
    return [
        PointSpec(
            figure="figM",
            pattern="one_dim_cyclic",
            pattern_args=(1 * MiB, 2, acc),
            method=method,
            kind="read",
            mode="des",
            cfg=cfg,
            x=acc,
        )
        for acc in n_accesses
        for method in ("list", "multiple")
    ]


class TestInstruments:
    def test_counter(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        other = Counter("x")
        other.inc(1.5)
        c.merge(other)
        assert c.value == 5.0
        assert c.to_json() == {"kind": "counter", "name": "x", "value": 5.0}

    def test_gauge_merge_takes_max(self):
        g = Gauge("depth")
        g.set(3.0)
        g.set_max(2.0)  # lower: ignored
        assert g.value == 3.0
        other = Gauge("depth")
        other.set(7.0)
        g.merge(other)
        assert g.value == 7.0

    def test_histogram_quantiles_within_observed_range(self):
        h = Histogram("t", bounds=(1.0, 2.0, 5.0, 10.0))
        for v in (0.5, 1.5, 1.6, 3.0, 4.0):
            h.observe(v)
        assert h.count == 5
        assert h.mean == pytest.approx(2.12)
        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert h.min <= h.quantile(q) <= h.max

    def test_histogram_overflow_bucket(self):
        h = Histogram("t", bounds=(1.0,))
        h.observe(100.0)
        assert h.counts[-1] == 1
        assert h.quantile(0.99) <= 100.0

    def test_histogram_merge_is_order_independent(self):
        a, b = Histogram("t"), Histogram("t")
        for i, v in enumerate((1e-6, 3e-4, 0.02, 1.5, 9.0)):
            (a if i % 2 else b).observe(v)
        ab = Histogram("t")
        ab.merge(a)
        ab.merge(b)
        ba = Histogram("t")
        ba.merge(b)
        ba.merge(a)
        assert ab.to_json() == ba.to_json()

    def test_histogram_merge_rejects_different_bounds(self):
        a = Histogram("t")
        b = Histogram("t", bounds=DEFAULT_BYTE_BUCKETS)
        with pytest.raises(ConfigError):
            a.merge(b)

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ConfigError):
            Histogram("t", bounds=(5.0, 1.0))

    def test_series(self):
        s = Series("util", unit="ratio")
        s.record(1.0, 0.5)
        s.record(0.5, 0.2)
        other = Series("util")
        other.record(0.75, 0.9)
        s.merge(other)
        assert [t for t, _ in s.samples] == [0.5, 0.75, 1.0]


class TestRegistry:
    def test_get_or_create(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.gauge("g") is r.gauge("g")
        assert r.histogram("h") is r.histogram("h")
        assert r.series("s") is r.series("s")

    def test_top_counters(self):
        r = MetricsRegistry()
        r.counter("small").inc(1)
        r.counter("big").inc(100)
        r.counter("mid").inc(10)
        assert [c.name for c in r.top_counters(2)] == ["big", "mid"]

    def test_merge_and_snapshot_equality(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for r in (a, b):
            r.counter("n").inc(2)
            r.histogram("h").observe(0.5)
        a.merge(b)
        expect = MetricsRegistry()
        expect.counter("n").inc(4)
        expect.histogram("h").observe(0.5)
        expect.histogram("h").observe(0.5)
        assert a.snapshot() == expect.snapshot()

    def test_jsonl_round_trip(self, tmp_path):
        r = MetricsRegistry(label="unit")
        r.counter("c").inc(3)
        r.gauge("g").set(2.5)
        r.histogram("h").observe(0.01)
        r.series("s", unit="B").record(0.5, 42.0)
        path = tmp_path / "m.jsonl"
        r.write_jsonl(str(path))
        doc = load_jsonl(str(path))
        assert doc["header"]["schema_version"] == METRICS_SCHEMA_VERSION
        assert doc["header"]["label"] == "unit"
        assert doc["counters"] == {"c": 3.0}
        assert doc["gauges"] == {"g": 2.5}
        assert doc["histograms"][0]["name"] == "h"
        assert doc["series"][0]["samples"] == [[0.5, 42.0]]

    def test_load_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "header", "tool": "other"}\n')
        with pytest.raises(ValueError):
            load_jsonl(str(path))
        path.write_text("")
        with pytest.raises(ValueError):
            load_jsonl(str(path))


class TestSweepFold:
    def test_jobs1_vs_jobs4_snapshots_identical(self):
        specs = _specs()
        serial, parallel = MetricsRegistry(), MetricsRegistry()
        run_sweep(specs, jobs=1, metrics=serial, label="m")
        run_sweep(specs, jobs=4, metrics=parallel, label="m")
        assert serial.snapshot() == parallel.snapshot()

    def test_sweep_counters_match_points(self):
        specs = _specs(n_accesses=(4,))
        reg = MetricsRegistry()
        points, _ = run_sweep(specs, jobs=1, metrics=reg, label="m")
        by_name = {c.name: c.value for c in reg.counters}
        assert by_name["sweep.m.points"] == len(points)
        assert by_name["sweep.m.moved_bytes"] == sum(p.moved_bytes for p in points)
        assert by_name["sweep.m.events"] == sum(p.sim_events for p in points)
        assert all(p.sim_events > 0 for p in points)


class TestFromCapture:
    def test_epoch_series_from_traced_run(self):
        from repro.experiments.harness import des_point
        from repro.patterns import one_dim_cyclic

        obs = ObsSession()
        pattern = one_dim_cyclic(1 * MiB, 2, 8)
        cfg = ClusterConfig(n_clients=2, n_iods=2, stripe=StripeParams(stripe_size=4096))
        baseline = des_point(pattern, "list", "read", cfg)
        observed = des_point(pattern, "list", "read", cfg, obs=obs)
        # Metering is passive: the simulated outcome is bit-identical.
        assert observed.elapsed == baseline.elapsed
        assert observed.moved_bytes == baseline.moved_bytes

        reg = from_capture(obs.best_run())
        names = {s.name for s in reg.all_series}
        assert any(n.startswith("util.") for n in names)
        assert any(n.startswith("queue.") for n in names)
        assert "net.bytes_per_epoch" in names
        counters = {c.name: c.value for c in reg.counters}
        assert counters["sim.net.payload_bytes"] == baseline.moved_bytes
        hists = {h.name for h in reg.histograms}
        assert any(h.startswith("span.") for h in hists)
        # Utilization series stay within [0, 1].
        for s in reg.all_series:
            if s.name.startswith("util."):
                assert all(0.0 <= v <= 1.0 for _, v in s.samples)

    def test_obs_cli_summarizes_metrics_file(self, tmp_path, capsys):
        from repro.obs.cli import main as obs_main

        r = MetricsRegistry(label="cli")
        r.counter("hot").inc(99)
        r.histogram("lat").observe(0.25)
        path = tmp_path / "m.jsonl"
        r.write_jsonl(str(path))
        assert obs_main([str(path), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "metrics summary" in out
        assert "hot" in out and "99" in out
        assert "lat" in out

    def test_obs_cli_still_rejects_garbage(self, tmp_path, capsys):
        from repro.obs.cli import main as obs_main

        path = tmp_path / "junk.json"
        path.write_text('{"nope": 1}')
        assert obs_main([str(path)]) == 2
