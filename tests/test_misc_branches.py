"""Tests for less-traveled branches: write-through mode, report gaps,
chart edge values, network byte conservation."""

import numpy as np

from repro.config import CacheConfig, ClusterConfig, StripeParams
from repro.pvfs import Cluster
from repro.regions import RegionList


class TestWriteThroughMode:
    """The write_through cache mode models synchronous small writes with
    read-modify-write page penalties (CostModel.small_write_penalty)."""

    def _cluster(self, write_through):
        return Cluster.build(
            ClusterConfig(
                n_clients=1,
                n_iods=2,
                stripe=StripeParams(stripe_size=4096),
                cache=CacheConfig(write_through=write_through),
            ),
            move_bytes=False,
        )

    def _write_small_pieces(self, cluster):
        regions = RegionList.strided(0, 64, 100, 8192)  # 100 B pieces

        def wl(client):
            f = yield from client.open("/wt", create=True)
            yield from f.write_list(regions, None)
            yield from f.close()

        return cluster.run_workload(wl, clients=[0]).elapsed

    def test_write_through_slower_than_write_back(self):
        wb = self._write_small_pieces(self._cluster(False))
        wt = self._write_small_pieces(self._cluster(True))
        assert wt > wb

    def test_write_through_charges_media(self):
        cluster = self._cluster(True)
        self._write_small_pieces(cluster)
        assert sum(iod.disk.media_write_bytes for iod in cluster.iods) > 0
        # and nothing remains dirty
        assert all(iod.disk.cache.dirty_blocks == 0 for iod in cluster.iods)


class TestReportGaps:
    def test_series_table_renders_dash_for_missing(self):
        from repro.experiments import DataPoint
        from repro.experiments.report import series_table

        pts = [
            DataPoint(
                figure="f", series="a", x=1, elapsed=1.0, mode="des",
                kind="read", n_clients=1,
            ),
            DataPoint(
                figure="f", series="b", x=2, elapsed=2.0, mode="des",
                kind="read", n_clients=1,
            ),
        ]
        table = series_table(pts, ["a", "b"])
        assert "| - |" in table  # a has no x=2; b has no x=1


class TestChartEdges:
    def test_zero_values_on_log_scale(self):
        from repro.experiments.plot import ascii_chart

        out = ascii_chart({"a": [(0, 0.0), (1, 10.0)]}, log_y=True)
        assert "o" in out  # did not crash on log(0)

    def test_identical_y_values(self):
        from repro.experiments.plot import ascii_chart

        out = ascii_chart({"a": [(0, 5.0), (1, 5.0)]})
        assert "o" in out


class TestNetworkConservation:
    def test_bytes_sent_equal_bytes_received(self):
        """Across any workload, total payload sent must equal total
        payload received (no bytes invented or lost by the fabric)."""
        cluster = Cluster.build(
            ClusterConfig(n_clients=3, n_iods=3, stripe=StripeParams(stripe_size=256))
        )

        def wl(client):
            regions = RegionList.strided(client.index * 64, 20, 32, 1024)
            f = yield from client.open("/cons", create=True)
            yield from f.write_list(regions, np.zeros(640, np.uint8))
            yield from f.read_list(regions)
            yield from f.close()

        cluster.run_workload(wl)
        nodes = [cluster.manager.node] + [i.node for i in cluster.iods] + [
            c.node for c in cluster.clients
        ]
        sent = sum({id(n): n for n in nodes}[k].bytes_sent for k in {id(n) for n in nodes})
        received = sum(
            {id(n): n for n in nodes}[k].bytes_received for k in {id(n) for n in nodes}
        )
        assert sent == received
        assert sent > 0

    def test_request_response_message_pairing(self):
        """Every I/O server message produces exactly one response: the
        fabric's message count is even (requests+responses) plus manager
        traffic."""
        cluster = Cluster.build(
            ClusterConfig(n_clients=2, n_iods=2, stripe=StripeParams(stripe_size=128)),
            move_bytes=False,
        )

        def wl(client):
            f = yield from client.open("/pair", create=True)
            yield from f.write(0, None, length=1000)
            yield from f.close()

        res = cluster.run_workload(wl)
        server_msgs = res.total_server_messages
        mgr_ops = cluster.manager.ops_served
        # each server message and each manager op is one request + one response
        expected = 2 * server_msgs + 2 * mgr_ops
        assert cluster.counters["net.messages"] + cluster.counters.get(
            "net.loopback_messages", 0
        ) == expected
