"""Smoke tests: the example scripts must run end-to-end.

Only the quick ones execute here (the full set runs via ``make examples``);
the rest are import-checked so a syntax/API break fails the suite.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES.glob("*.py"))


def test_expected_examples_present():
    assert {
        "quickstart.py",
        "flash_checkpoint.py",
        "tiled_visualization.py",
        "crossover_explorer.py",
        "datatype_requests.py",
        "mpiio_collective.py",
        "bottleneck_analysis.py",
    } <= set(ALL_EXAMPLES)


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_compiles(name):
    path = EXAMPLES / name
    source = path.read_text()
    compile(source, str(path), "exec")
    assert '"""' in source  # every example carries a docstring header
    assert "__main__" in source


@pytest.mark.parametrize("name", ["quickstart.py", "flash_checkpoint.py"])
def test_fast_examples_run(name):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "method" in proc.stdout  # the comparison table printed
