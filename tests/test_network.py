"""Tests for the network fabric (repro.network)."""

import pytest

from repro.config import NetworkConfig
from repro.errors import NetworkError
from repro.network import EthernetModel, Network
from repro.simulate import Simulator


def make_net(sim=None, **kw):
    sim = sim or Simulator()
    return sim, Network(sim, NetworkConfig(**kw))


class TestEthernetModel:
    def setup_method(self):
        self.eth = EthernetModel(NetworkConfig())

    def test_message_time_includes_latency(self):
        cfg = self.eth.cfg
        assert self.eth.message_time(0) == pytest.approx(cfg.latency + cfg.transmit_time(0))

    def test_roundtrip(self):
        assert self.eth.roundtrip_time(100, 200) == pytest.approx(
            self.eth.message_time(100) + self.eth.message_time(200)
        )

    def test_fits_one_frame(self):
        assert self.eth.fits_one_frame(1460)
        assert not self.eth.fits_one_frame(1461)

    def test_max_regions_per_frame_matches_paper_cap(self):
        # 16 bytes per (offset, length) pair, ~64-byte request header:
        # the paper's cap of 64 regions must fit in one frame.
        assert self.eth.max_regions_per_frame(header_bytes=64, bytes_per_region=16) >= 64

    def test_max_regions_never_negative(self):
        assert self.eth.max_regions_per_frame(header_bytes=10_000, bytes_per_region=16) == 0

    def test_transmit_time_large_payload_near_line_rate(self):
        # 1 MB at 100 Mbit/s should take ~0.084 s plus framing overhead.
        t = self.eth.transmit_time(1_000_000)
        assert 0.08 < t < 0.095


class TestNodeRegistry:
    def test_add_and_get(self):
        sim, net = make_net()
        a = net.add_node("a")
        assert net.node("a") is a
        assert net.n_nodes == 1

    def test_duplicate_rejected(self):
        _, net = make_net()
        net.add_node("a")
        with pytest.raises(NetworkError):
            net.add_node("a")

    def test_unknown_rejected(self):
        _, net = make_net()
        with pytest.raises(NetworkError):
            net.node("ghost")


class TestTransfer:
    def test_single_transfer_time(self):
        sim, net = make_net()
        a, b = net.add_node("a"), net.add_node("b")

        def go(sim):
            yield from net.transfer(a, b, 1000)

        sim.process(go(sim))
        sim.run()
        cfg = net.cfg
        assert sim.now == pytest.approx(cfg.latency + cfg.transmit_time(1000))
        assert a.bytes_sent == 1000
        assert b.bytes_received == 1000
        assert net.counters["net.messages"] == 1

    def test_negative_payload_rejected(self):
        sim, net = make_net()
        a, b = net.add_node("a"), net.add_node("b")

        def go(sim):
            yield from net.transfer(a, b, -1)

        sim.process(go(sim))
        with pytest.raises(NetworkError):
            sim.run()

    def test_many_to_one_serializes_at_receiver(self):
        sim, net = make_net()
        server = net.add_node("server")
        clients = [net.add_node(f"c{i}") for i in range(4)]
        done = []

        def go(sim, c):
            yield from net.transfer(c, server, 14600)  # 10 frames
            done.append(sim.now)

        for c in clients:
            sim.process(go(sim, c))
        sim.run()
        one = net.cfg.latency + net.cfg.transmit_time(14600)
        # The receiver's RX link is the bottleneck: completions are spaced.
        assert done == sorted(done)
        assert done[-1] >= 4 * net.cfg.transmit_time(14600)
        assert done[0] == pytest.approx(one)

    def test_opposite_directions_full_duplex(self):
        sim, net = make_net()
        a, b = net.add_node("a"), net.add_node("b")
        done = {}

        def go(sim, src, dst, tag):
            yield from net.transfer(src, dst, 146000)
            done[tag] = sim.now

        sim.process(go(sim, a, b, "ab"))
        sim.process(go(sim, b, a, "ba"))
        sim.run()
        one = net.cfg.latency + net.cfg.transmit_time(146000)
        # Full duplex: both directions complete in one transfer time.
        assert done["ab"] == pytest.approx(one)
        assert done["ba"] == pytest.approx(one)

    def test_sender_serializes_its_own_sends(self):
        sim, net = make_net()
        a = net.add_node("a")
        dsts = [net.add_node(f"d{i}") for i in range(3)]
        done = []

        def go(sim, dst):
            yield from net.transfer(a, dst, 14600)
            done.append(sim.now)

        for d in dsts:
            sim.process(go(sim, d))
        sim.run()
        # TX link is shared: last completion is ~3x one serialization.
        assert done[-1] >= 3 * net.cfg.transmit_time(14600)

    def test_loopback_bypasses_nics(self):
        sim, net = make_net()
        a = net.add_node("a")

        def go(sim):
            yield from net.transfer(a, a, 10_000)

        sim.process(go(sim))
        sim.run()
        # Loopback is far faster than the wire and holds no NIC resources.
        assert sim.now < net.cfg.transmit_time(10_000)
        assert a.bytes_sent == 0
        assert net.counters["net.loopback_messages"] == 1

    def test_wire_bytes_accounting(self):
        sim, net = make_net()
        a, b = net.add_node("a"), net.add_node("b")

        def go(sim):
            got = yield from net.transfer(a, b, 2000)
            return got

        p = sim.process(go(sim))
        sim.run()
        assert p.value == net.cfg.wire_bytes(2000)
        assert net.counters["net.wire_bytes"] == net.cfg.wire_bytes(2000)

    def test_zero_byte_message_still_costs_a_frame(self):
        sim, net = make_net()
        a, b = net.add_node("a"), net.add_node("b")

        def go(sim):
            yield from net.transfer(a, b, 0)

        sim.process(go(sim))
        sim.run()
        assert sim.now > net.cfg.latency  # one header frame serialized
