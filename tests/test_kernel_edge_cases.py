"""Edge-case tests for the kernel: interrupts vs resources, condition
timing, run(until) boundaries."""

import pytest

from repro.simulate import AnyOf, Interrupt, Resource, Simulator, Store


class TestInterruptResourceInteraction:
    def test_interrupt_releases_held_resource(self):
        """A process interrupted while holding a resource must release it
        (context-manager unwind through the generator)."""
        sim = Simulator()
        res = Resource(sim, capacity=1)

        def holder(sim):
            try:
                with res.request() as req:
                    yield req
                    yield sim.timeout(100)
            except Interrupt:
                return "interrupted"

        def killer(sim, victim):
            yield sim.timeout(5)
            victim.interrupt()

        def waiter(sim):
            yield sim.timeout(6)
            with res.request() as req:
                yield req
                return sim.now

        v = sim.process(holder(sim))
        sim.process(killer(sim, v))
        w = sim.process(waiter(sim))
        sim.run()
        assert v.value == "interrupted"
        assert w.value == 6  # resource was free again
        assert res.in_use == 0

    def test_interrupt_while_queued_cancels_request(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)

        def holder(sim):
            with res.request() as req:
                yield req
                yield sim.timeout(10)

        def queued(sim):
            try:
                with res.request() as req:
                    yield req
            except Interrupt:
                return "gave up"

        def killer(sim, victim):
            yield sim.timeout(2)
            victim.interrupt()

        sim.process(holder(sim))
        q = sim.process(queued(sim))
        sim.process(killer(sim, q))
        sim.run()
        assert q.value == "gave up"
        assert res.queue_length == 0


class TestConditionTiming:
    def test_any_of_with_already_processed_event(self):
        sim = Simulator()
        done = sim.event()
        done.succeed("early")
        sim.run()  # process it

        def waiter(sim):
            got = yield AnyOf(sim, [done, sim.timeout(100)])
            return (sim.now, got)

        p = sim.process(waiter(sim))
        sim.run(until=1)
        assert p.value[0] == 0.0
        assert p.value[1] == ["early"]

    def test_all_of_mixed_processed_and_pending(self):
        sim = Simulator()
        early = sim.event()
        early.succeed(1)
        sim.run()

        def waiter(sim):
            vals = yield sim.all_of([early, sim.timeout(3, value=2)])
            return (sim.now, sorted(vals))

        p = sim.process(waiter(sim))
        sim.run()
        assert p.value == (3.0, [1, 2])

    def test_any_of_ignores_later_failure(self):
        """Once AnyOf fired, a subsequent child failure must not escalate."""
        sim = Simulator()

        def fast(sim):
            yield sim.timeout(1)
            return "fast"

        def slow_bad(sim):
            yield sim.timeout(5)
            raise RuntimeError("late failure")

        def waiter(sim):
            got = yield sim.any_of([sim.process(fast(sim)), sim.process(slow_bad(sim))])
            return got

        p = sim.process(waiter(sim))
        # the late failure is unobserved -> escalates from run(); the AnyOf
        # result itself must already be delivered
        with pytest.raises(RuntimeError):
            sim.run()
        assert p.value == ["fast"]


class TestRunBoundaries:
    def test_until_exactly_at_event_time_runs_event(self):
        sim = Simulator()
        fired = []

        def p(sim):
            yield sim.timeout(5)
            fired.append(sim.now)

        sim.process(p(sim))
        sim.run(until=5)
        assert fired == [5]

    def test_until_just_before_event_does_not_run_it(self):
        sim = Simulator()
        fired = []

        def p(sim):
            yield sim.timeout(5)
            fired.append(sim.now)

        sim.process(p(sim))
        sim.run(until=4.999)
        assert fired == []
        assert sim.now == 4.999
        sim.run()  # finish
        assert fired == [5]

    def test_resume_after_until(self):
        sim = Simulator()

        def p(sim):
            yield sim.timeout(10)
            return "done"

        proc = sim.process(p(sim))
        sim.run(until=3)
        assert not proc.triggered
        sim.run()
        assert proc.value == "done"


class TestStoreEdgeCases:
    def test_cancelled_getter_skipped(self):
        sim = Simulator()
        store = Store(sim)

        def impatient(sim):
            get = store.get()
            try:
                yield sim.any_of([get, sim.timeout(1)])
                if not get.triggered:
                    get.succeed(None)  # neutralize: mark as cancelled
                    return "timed out"
                return get.value
            except Exception:  # pragma: no cover
                raise

        def patient(sim):
            item = yield store.get()
            return item

        a = sim.process(impatient(sim))
        b = sim.process(patient(sim))

        def producer(sim):
            yield sim.timeout(2)
            store.put("thing")

        sim.process(producer(sim))
        sim.run()
        assert a.value == "timed out"
        assert b.value == "thing"


class TestInterruptSameTimestampResume:
    """Regression tests: interrupting a process at the exact timestamp its
    awaited event fires must neither double-resume it nor lose the
    interrupt.  (The iod crash path interrupts daemons from a callback of
    an event they may simultaneously be resumed by.)"""

    def test_interrupt_after_victim_already_resumed_is_dropped(self):
        """The victim's resume callback runs first in the same extraction
        batch and the victim *finishes*; the queued interrupt must then be
        discarded instead of resuming a finished generator."""
        sim = Simulator()
        trigger = sim.timeout(1.0, value="payload")
        results = []

        def interrupter(sim):
            yield trigger  # registered first -> resumed first
            if victim.is_alive:
                victim.interrupt("race")
            return "meddled"

        def victim_fn(sim):
            val = yield trigger
            results.append((val, sim.now))
            return val

        meddler = sim.process(interrupter(sim))
        victim = sim.process(victim_fn(sim))
        sim.run()
        assert results == [("payload", 1.0)]
        assert victim.value == "payload"
        assert meddler.value == "meddled"

    def test_interrupt_still_lands_when_victim_moved_on(self):
        """Same race, but the victim yields a *new* event after the shared
        trigger; the interrupt must still be delivered to it."""
        sim = Simulator()
        trigger = sim.timeout(1.0, value="go")
        results = []

        def interrupter(sim):
            yield trigger
            victim.interrupt("late hit")

        def victim_fn(sim):
            yield trigger
            try:
                yield sim.timeout(50.0)
            except Interrupt as exc:
                results.append((exc.cause, sim.now))
                return "interrupted"

        sim.process(interrupter(sim))
        victim = sim.process(victim_fn(sim))
        sim.run()
        assert results == [("late hit", 1.0)]
        assert victim.value == "interrupted"
