"""Tests for the analytic model: plan compilation and prediction."""

import numpy as np
import pytest

from repro.config import ClusterConfig
from repro.errors import ModelError
from repro.model import compile_rank_plan, predict_pattern, predict_plans
from repro.model.plan import RankPlan
from repro.patterns import flash_io, one_dim_cyclic, tiled_visualization, FlashConfig
from repro.regions import RegionList
from repro.units import MiB


CFG = ClusterConfig.chiba_city(n_clients=4)


def simple_transfer(n=100, length=8, stride=64):
    fil = RegionList.strided(0, n, length, stride)
    mem = RegionList.single(0, n * length)
    return mem, fil


class TestPlanCompilation:
    def test_multiple_one_chunk_per_piece(self):
        mem, fil = simple_transfer(100)
        plan = compile_rank_plan("multiple", "read", mem, fil, CFG)
        assert plan.n_requests == 100
        assert plan.moved_bytes == fil.total_bytes
        assert plan.wasted_bytes == 0

    def test_list_caps_at_64(self):
        mem, fil = simple_transfer(100)
        plan = compile_rank_plan("list", "read", mem, fil, CFG)
        assert plan.n_requests == 2

    def test_list_memory_split(self):
        # noncontiguous memory finer than file: pieces bound the requests
        fil = RegionList.single(0, 128 * 8)
        mem = RegionList.strided(0, 128, 8, 24)
        plan = compile_rank_plan("list", "write", mem, fil, CFG)
        assert plan.n_requests == 2  # 128 pieces / 64
        plan2 = compile_rank_plan(
            "list", "write", mem, fil, CFG, split_memory_regions=False
        )
        assert plan2.n_requests == 1  # file-side accounting: one region

    def test_vector_single_request(self):
        mem, fil = simple_transfer(1000)
        plan = compile_rank_plan("vector", "read", mem, fil, CFG)
        assert plan.n_requests == 1
        assert plan.wire_mode == "descriptor"

    def test_sieve_read_windows(self):
        mem, fil = simple_transfer(100, length=8, stride=64)  # extent 6344 B
        plan = compile_rank_plan("datasieve", "read", mem, fil, CFG, sieve_buffer=1024)
        assert plan.n_requests == 7  # ceil(6344/1024)
        assert plan.moved_bytes > plan.useful_bytes  # waste counted
        assert not plan.serialized

    def test_sieve_write_is_serialized_rmw(self):
        mem, fil = simple_transfer(100)
        plan = compile_rank_plan("datasieve", "write", mem, fil, CFG, sieve_buffer=1024)
        assert plan.serialized
        assert plan.pre_read is not None
        assert len(plan.phases()) == 2

    def test_sieve_write_dense_needs_no_preread(self):
        fil = RegionList.single(0, 4096)
        mem = RegionList.single(0, 4096)
        plan = compile_rank_plan("datasieve", "write", mem, fil, CFG)
        assert plan.pre_read is None

    def test_hybrid_clusters(self):
        fil = RegionList.strided(0, 100, 8, 16)  # 8-byte gaps
        mem = RegionList.single(0, 800)
        plan = compile_rank_plan("hybrid", "read", mem, fil, CFG, gap_threshold=16)
        assert plan.n_requests == 1  # one extent
        assert plan.moved_bytes > plan.useful_bytes

    def test_unknown_method_rejected(self):
        mem, fil = simple_transfer()
        with pytest.raises(ModelError):
            compile_rank_plan("teleport", "read", mem, fil, CFG)
        with pytest.raises(ModelError):
            compile_rank_plan("list", "erase", mem, fil, CFG)

    def test_plan_validation(self):
        with pytest.raises(ModelError):
            RankPlan(
                method="list",
                kind="read",
                regions=RegionList.single(0, 8),
                chunk_of_region=np.array([0, 0]),
                useful_bytes=8,
            )


class TestPredictions:
    def test_empty_plans_rejected(self):
        with pytest.raises(ModelError):
            predict_plans([], CFG)

    def test_paper_request_counts_flash(self):
        cfg = FlashConfig(n_blocks=4, nxb=2, nyb=2, nzb=2, n_vars=4, n_guard=1)
        pattern = flash_io(2, cfg)
        c = ClusterConfig.chiba_city(n_clients=2)
        pred_multiple = predict_pattern(pattern, "multiple", "write", c)
        assert (
            pred_multiple.n_logical_requests
            == 2 * cfg.mem_regions_per_proc
        )
        pred_sieve = predict_pattern(pattern, "datasieve", "write", c)
        assert pred_sieve.serialized

    def test_ordering_multiple_worst_on_fragmented_reads(self):
        pattern = one_dim_cyclic(4 * MiB, 4, 2048)
        c = ClusterConfig.chiba_city(n_clients=4)
        t = {
            m: predict_pattern(pattern, m, "read", c).elapsed
            for m in ("multiple", "datasieve", "list")
        }
        assert t["list"] < t["datasieve"] < t["multiple"]

    def test_write_turnaround_dominates_multiple(self):
        pattern = one_dim_cyclic(4 * MiB, 4, 2048)
        c = ClusterConfig.chiba_city(n_clients=4)
        read = predict_pattern(pattern, "multiple", "read", c).elapsed
        write = predict_pattern(pattern, "multiple", "write", c).elapsed
        assert write > 10 * read

    def test_two_orders_write_gap(self):
        pattern = one_dim_cyclic(16 * MiB, 8, 8192)
        c = ClusterConfig.chiba_city(n_clients=8)
        multiple = predict_pattern(pattern, "multiple", "write", c).elapsed
        listio = predict_pattern(pattern, "list", "write", c).elapsed
        assert multiple / listio > 20

    def test_sieve_constant_in_accesses(self):
        c = ClusterConfig.chiba_city(n_clients=8)
        t = [
            predict_pattern(one_dim_cyclic(16 * MiB, 8, a), "datasieve", "read", c).elapsed
            for a in (1024, 4096, 16384)
        ]
        assert max(t) / min(t) < 1.3

    def test_sieve_doubles_with_clients(self):
        t8 = predict_pattern(
            one_dim_cyclic(16 * MiB, 8, 2048),
            "datasieve",
            "read",
            ClusterConfig.chiba_city(n_clients=8),
        ).elapsed
        t16 = predict_pattern(
            one_dim_cyclic(16 * MiB, 16, 2048),
            "datasieve",
            "read",
            ClusterConfig.chiba_city(n_clients=16),
        ).elapsed
        assert 1.4 < t16 / t8 < 3.0

    def test_wasted_bytes_property(self):
        pattern = tiled_visualization()
        c = ClusterConfig.chiba_city(n_clients=6)
        pred = predict_pattern(pattern, "datasieve", "read", c)
        assert pred.wasted_bytes > 0
        pred_list = predict_pattern(pattern, "list", "read", c)
        assert pred_list.wasted_bytes == 0

    def test_vector_beats_list_on_many_regions(self):
        pattern = one_dim_cyclic(16 * MiB, 8, 8192)
        c = ClusterConfig.chiba_city(n_clients=8)
        v = predict_pattern(pattern, "vector", "read", c)
        l = predict_pattern(pattern, "list", "read", c)
        assert v.n_logical_requests < l.n_logical_requests
        assert v.elapsed < l.elapsed

    def test_components_exposed(self):
        pattern = one_dim_cyclic(1 * MiB, 4, 256)
        pred = predict_pattern(pattern, "list", "read", CFG)
        assert len(pred.per_server_work) == CFG.n_iods
        assert len(pred.per_client_path) == 4
        assert pred.elapsed >= max(
            pred.server_bound, pred.network_bound
        ) - 1e-12
        assert "Prediction" in repr(pred)


class TestModelMatchesDES:
    """Cross-validation: the model must land near the simulator."""

    @pytest.mark.parametrize(
        "method,kind,lo,hi",
        [
            ("multiple", "read", 0.4, 1.6),
            ("multiple", "write", 0.6, 1.5),
            ("list", "read", 0.5, 1.8),
            ("list", "write", 0.6, 1.5),
            ("datasieve", "read", 0.4, 1.6),
        ],
    )
    def test_cyclic_agreement(self, method, kind, lo, hi):
        from repro.core import METHODS
        from repro.pvfs import Cluster

        pattern = one_dim_cyclic(2 * MiB, 4, 512)
        cfg = ClusterConfig.chiba_city(n_clients=4)
        cluster = Cluster.build(cfg, move_bytes=False)
        m = METHODS[method]()

        def wl(client):
            a = pattern.rank(client.index)
            f = yield from client.open("/x", create=True)
            if kind == "read":
                yield from m.read(f, None, a.mem_regions, a.file_regions)
            else:
                yield from m.write(f, None, a.mem_regions, a.file_regions)
            yield from f.close()

        des = cluster.run_workload(wl).elapsed
        pred = predict_pattern(pattern, method, kind, cfg).elapsed
        assert lo <= pred / des <= hi, f"model/DES ratio {pred / des:.2f}"
