"""Tolerance policy and regression detection for ``repro.bench.compare``."""

import dataclasses

import pytest

from repro.bench.compare import compare_results
from repro.bench.schema import BenchResult, ScenarioResult, SimMetrics, WallMetrics
from repro.errors import BenchError


def _scenario(name="s1", *, elapsed=1.5, wall=0.2) -> ScenarioResult:
    return ScenarioResult(
        name=name,
        family="artificial",
        sim=SimMetrics(
            elapsed_s=elapsed,
            moved_bytes=4096,
            useful_bytes=2048,
            logical_requests=8,
            server_messages=9,
            n_points=2,
        ),
        wall=WallMetrics.from_samples([wall, wall * 1.1, wall * 0.9]),
    )


def _result(*scenarios, scale="smoke") -> BenchResult:
    return BenchResult(scale=scale, scenarios=list(scenarios))


def test_identical_results_pass():
    base = _result(_scenario())
    report = compare_results(base, _result(_scenario()))
    assert report.ok
    assert report.regressions == []
    assert "PASS" in report.to_markdown()


def test_sim_drift_is_zero_tolerance():
    base = _result(_scenario(elapsed=1.5))
    # Even a last-ulp drift in a simulated metric must trip the gate.
    cand = _result(_scenario(elapsed=1.5 + 1e-12))
    report = compare_results(base, cand)
    assert not report.ok
    assert any(r.metric == "sim.elapsed_s" for r in report.regressions)
    assert "FAIL" in report.to_markdown()


def test_sim_improvement_also_fails():
    # Faster simulated time still means simulated behaviour shifted;
    # the baseline must be refreshed deliberately, not silently.
    base = _result(_scenario(elapsed=1.5))
    report = compare_results(base, _result(_scenario(elapsed=1.0)))
    assert not report.ok


def test_wall_jitter_within_tolerance_passes():
    base = _result(_scenario(wall=0.2))
    cand = _result(_scenario(wall=0.28))  # +40% < default 50% band
    report = compare_results(base, cand)
    assert report.ok


def test_wall_beyond_tolerance_fails():
    base = _result(_scenario(wall=0.2))
    cand = _result(_scenario(wall=0.5))
    report = compare_results(base, cand, wall_tolerance=0.5)
    assert not report.ok
    assert any(r.metric == "wall.median_s" for r in report.regressions)


def test_wall_speedup_never_fails():
    base = _result(_scenario(wall=0.5))
    report = compare_results(base, _result(_scenario(wall=0.05)), wall_tolerance=0.0)
    assert report.ok


def test_wall_tolerance_none_reports_without_gating():
    base = _result(_scenario(wall=0.1))
    cand = _result(_scenario(wall=10.0))  # 100x slower
    report = compare_results(base, cand, wall_tolerance=None)
    assert report.ok
    rows = [r for r in report.rows if r.metric == "wall.median_s"]
    assert rows and all(r.status == "info" for r in rows)


def test_missing_scenario_is_regression():
    base = _result(_scenario("s1"), _scenario("s2"))
    report = compare_results(base, _result(_scenario("s1")))
    assert not report.ok
    assert any(r.scenario == "s2" and r.metric == "(scenario)" for r in report.regressions)


def test_new_scenario_is_informational():
    base = _result(_scenario("s1"))
    report = compare_results(base, _result(_scenario("s1"), _scenario("s3")))
    assert report.ok
    assert any(r.scenario == "s3" and r.status == "info" for r in report.rows)


def test_scale_mismatch_raises():
    base = _result(_scenario(), scale="smoke")
    cand = _result(_scenario(), scale="scaled")
    with pytest.raises(BenchError):
        compare_results(base, cand)


def test_negative_tolerance_rejected():
    base = _result(_scenario())
    with pytest.raises(BenchError):
        compare_results(base, base, wall_tolerance=-0.1)


def test_every_sim_metric_is_gated():
    base = _result(_scenario())
    for f in dataclasses.fields(SimMetrics):
        sc = _scenario()
        bumped = dataclasses.replace(
            sc, sim=dataclasses.replace(sc.sim, **{f.name: getattr(sc.sim, f.name) + 1})
        )
        report = compare_results(base, _result(bumped))
        assert any(r.metric == f"sim.{f.name}" for r in report.regressions), f.name
