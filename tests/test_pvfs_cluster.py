"""End-to-end tests of the simulated PVFS deployment."""

import numpy as np
import pytest

from repro.config import ClusterConfig, StripeParams
from repro.errors import ConfigError, NoSuchFileError
from repro.pvfs import Cluster
from repro.regions import RegionList


def small_cluster(**kw) -> Cluster:
    kw.setdefault("n_clients", 2)
    kw.setdefault("n_iods", 4)
    kw.setdefault("stripe", StripeParams(stripe_size=100))
    return Cluster.build(ClusterConfig(**kw))


class TestOpenClose:
    def test_open_create_and_close(self):
        cluster = small_cluster()

        def wl(client):
            f = yield from client.open("/a", create=True)
            assert f.file_id > 0
            yield from f.close()
            return f.path

        res = cluster.run_workload(wl, clients=[0])
        assert res.client_returns == ["/a"]
        assert res.elapsed > 0
        assert cluster.counters["manager.op.open"] == 1
        assert cluster.counters["manager.op.close"] == 1

    def test_open_missing_raises_in_client(self):
        cluster = small_cluster()

        def wl(client):
            try:
                yield from client.open("/missing")
            except NoSuchFileError:
                return "no file"

        res = cluster.run_workload(wl, clients=[0])
        assert res.client_returns == ["no file"]

    def test_two_clients_share_a_file(self):
        cluster = small_cluster()

        def writer(client):
            f = yield from client.open("/shared", create=True)
            yield from f.write(0, np.arange(50, dtype=np.uint8))
            yield from f.close()

        cluster.run_workload(writer, clients=[0])

        def reader(client):
            f = yield from client.open("/shared")
            data = yield from f.read(0, 50)
            yield from f.close()
            return data

        res = cluster.run_workload(reader, clients=[1])
        np.testing.assert_array_equal(res.client_returns[0], np.arange(50, dtype=np.uint8))

    def test_unlink(self):
        cluster = small_cluster()

        def wl(client):
            f = yield from client.open("/gone", create=True)
            yield from f.close()
            yield from client.unlink("/gone")
            try:
                yield from client.open("/gone")
            except NoSuchFileError:
                return True

        res = cluster.run_workload(wl, clients=[0])
        assert res.client_returns == [True]


class TestStripeOverrideAndFsync:
    def test_per_file_stripe_params(self):
        cluster = small_cluster()

        def wl(client):
            f = yield from client.open(
                "/fat", create=True, stripe=StripeParams(stripe_size=50, pcount=2)
            )
            yield from f.write(0, np.ones(200, np.uint8))
            yield from f.close()

        cluster.run_workload(wl, clients=[0])
        # 200 bytes at stripe 50 over pcount=2 -> servers 0 and 1 get 100 each
        assert cluster.iods[0].store.bytes_written == 100
        assert cluster.iods[1].store.bytes_written == 100
        assert cluster.iods[2].store.bytes_written == 0

    def test_stripe_override_validated_against_cluster(self):
        cluster = small_cluster()  # 4 iods

        def wl(client):
            try:
                yield from client.open(
                    "/bad", create=True, stripe=StripeParams(pcount=16)
                )
            except Exception as e:
                return type(e).__name__

        res = cluster.run_workload(wl, clients=[0])
        assert res.client_returns == ["ConfigError"]

    def test_fsync_flushes_dirty_server_pages(self):
        cluster = small_cluster()

        def wl(client):
            f = yield from client.open("/sync", create=True)
            yield from f.write(0, np.ones(100_000, np.uint8))
            t0 = client.sim.now
            yield from f.fsync()
            cost = client.sim.now - t0
            yield from f.close()
            return cost

        res = cluster.run_workload(wl, clients=[0])
        assert res.client_returns[0] > 0
        for iod in cluster.iods:
            assert iod.disk.cache.dirty_blocks == 0

    def test_fsync_on_clean_file_is_cheap(self):
        cluster = small_cluster()

        def wl(client):
            f = yield from client.open("/clean", create=True)
            yield from f.fsync()
            t0 = client.sim.now
            yield from f.fsync()  # second sync: nothing dirty
            cost = client.sim.now - t0
            yield from f.close()
            return cost

        res = cluster.run_workload(wl, clients=[0])
        assert res.client_returns[0] < 0.01  # just request round-trips


class TestContiguousIO:
    def test_write_read_roundtrip_across_stripes(self):
        cluster = small_cluster()
        payload = (np.arange(1000) % 251).astype(np.uint8)

        def wl(client):
            f = yield from client.open("/f", create=True)
            yield from f.write(37, payload)
            got = yield from f.read(37, 1000)
            yield from f.close()
            return got

        res = cluster.run_workload(wl, clients=[0])
        np.testing.assert_array_equal(res.client_returns[0], payload)

    def test_data_actually_striped_across_iods(self):
        cluster = small_cluster()
        payload = np.full(400, 7, np.uint8)

        def wl(client):
            f = yield from client.open("/s", create=True)
            yield from f.write(0, payload)
            yield from f.close()

        cluster.run_workload(wl, clients=[0])
        # 400 bytes over 4 servers at stripe 100 -> 100 bytes on each store.
        for iod in cluster.iods:
            assert iod.store.bytes_written == 100

    def test_file_size_tracked(self):
        cluster = small_cluster()

        def wl(client):
            f = yield from client.open("/sz", create=True)
            yield from f.write(500, np.ones(10, np.uint8))
            assert f.size == 510
            yield from f.close()

        cluster.run_workload(wl, clients=[0])
        assert cluster.namespace.lookup("/sz").size == 510

    def test_closed_handle_rejected(self):
        cluster = small_cluster()

        def wl(client):
            f = yield from client.open("/c", create=True)
            yield from f.close()
            try:
                yield from f.read(0, 10)
            except Exception as e:
                return type(e).__name__

        res = cluster.run_workload(wl, clients=[0])
        assert res.client_returns == ["FileNotOpenError"]


class TestListIO:
    def test_noncontiguous_roundtrip(self):
        cluster = small_cluster()
        regions = RegionList.strided(start=10, count=20, length=5, stride=37)
        stream = (np.arange(regions.total_bytes) % 200).astype(np.uint8)

        def wl(client):
            f = yield from client.open("/l", create=True)
            yield from f.write_list(regions, stream)
            got = yield from f.read_list(regions)
            yield from f.close()
            return got

        res = cluster.run_workload(wl, clients=[0])
        np.testing.assert_array_equal(res.client_returns[0], stream)

    def test_request_splitting_at_cap(self):
        cluster = small_cluster(list_io_max_regions=8)
        regions = RegionList.strided(start=0, count=20, length=2, stride=10)

        def wl(client):
            f = yield from client.open("/cap", create=True)
            yield from f.read_list(regions)
            yield from f.close()

        cluster.run_workload(wl, clients=[0])
        # 20 regions / cap 8 -> 3 logical requests.
        assert cluster.counters["client.0.logical_requests"] == 3

    def test_list_write_then_contiguous_read_sees_gaps_as_zeros(self):
        cluster = small_cluster()
        regions = RegionList([0, 20], [5, 5])
        stream = np.full(10, 9, np.uint8)

        def wl(client):
            f = yield from client.open("/g", create=True)
            yield from f.write_list(regions, stream)
            got = yield from f.read(0, 25)
            yield from f.close()
            return got

        res = cluster.run_workload(wl, clients=[0])
        got = res.client_returns[0]
        assert (got[0:5] == 9).all()
        assert (got[5:20] == 0).all()
        assert (got[20:25] == 9).all()

    def test_write_list_size_mismatch_rejected(self):
        cluster = small_cluster()

        def wl(client):
            f = yield from client.open("/m", create=True)
            try:
                yield from f.write_list(RegionList.single(0, 10), np.zeros(5, np.uint8))
            except Exception as e:
                return type(e).__name__

        res = cluster.run_workload(wl, clients=[0])
        assert res.client_returns == ["PVFSError"]

    def test_empty_region_list_is_noop(self):
        cluster = small_cluster()

        def wl(client):
            f = yield from client.open("/e", create=True)
            got = yield from f.read_list(RegionList.empty())
            yield from f.close()
            return got

        res = cluster.run_workload(wl, clients=[0])
        assert res.client_returns[0].size == 0
        assert cluster.counters["client.0.logical_requests"] == 0


class TestNonblockingAPI:
    def test_iread_iwrite_overlap(self):
        """Two nonblocking writes to different servers overlap in time."""

        def serial(client):
            f = yield from client.open("/nb1", create=True)
            yield from f.write(0, np.zeros(100_000, np.uint8))
            yield from f.write(400_000, np.zeros(100_000, np.uint8))
            yield from f.close()

        def overlapped(client):
            f = yield from client.open("/nb2", create=True)
            a = f.iwrite(0, np.zeros(100_000, np.uint8))
            b = f.iwrite(400_000, np.zeros(100_000, np.uint8))
            yield client.sim.all_of([a, b])
            yield from f.close()

        t_serial = small_cluster().run_workload(serial, clients=[0]).elapsed
        t_overlap = small_cluster().run_workload(overlapped, clients=[0]).elapsed
        assert t_overlap < t_serial

    def test_iread_returns_data(self):
        cluster = small_cluster()

        def wl(client):
            f = yield from client.open("/nb3", create=True)
            yield from f.write(0, np.arange(64, dtype=np.uint8))
            req = f.iread(0, 64)
            data = yield req
            yield from f.close()
            return data

        res = cluster.run_workload(wl, clients=[0])
        np.testing.assert_array_equal(res.client_returns[0], np.arange(64, dtype=np.uint8))

    def test_iread_list_matches_blocking(self):
        cluster = small_cluster()
        regions = RegionList.strided(0, 16, 8, 40)
        payload = (np.arange(128) % 100).astype(np.uint8)

        def wl(client):
            f = yield from client.open("/nb4", create=True)
            yield f.iwrite_list(regions, payload)
            blocking = yield from f.read_list(regions)
            nonblocking = yield f.iread_list(regions)
            yield from f.close()
            return blocking, nonblocking

        b, nb = cluster.run_workload(wl, clients=[0]).client_returns[0]
        np.testing.assert_array_equal(b, nb)
        np.testing.assert_array_equal(b, payload)


class TestTimingShape:
    def test_multiple_small_requests_slower_than_one_list_request(self):
        """The paper's core claim at micro scale: N contiguous requests cost
        far more than one list request describing the same N regions."""
        regions = RegionList.strided(start=0, count=64, length=100, stride=400)
        stream = np.zeros(regions.total_bytes, np.uint8)

        def one_at_a_time(client):
            f = yield from client.open("/t", create=True)
            for off, ln in regions:
                yield from f.write(off, stream[:ln])
            yield from f.close()

        def as_list(client):
            f = yield from client.open("/t", create=True)
            yield from f.write_list(regions, stream)
            yield from f.close()

        t_multi = small_cluster().run_workload(one_at_a_time, clients=[0]).elapsed
        t_list = small_cluster().run_workload(as_list, clients=[0]).elapsed
        assert t_multi > 10 * t_list

    def test_more_clients_increase_server_contention(self):
        def wl(client):
            f = yield from client.open(f"/f{client.index}", create=True)
            yield from f.write(0, np.zeros(100_000, np.uint8))
            yield from f.close()

        t1 = small_cluster(n_clients=1).run_workload(wl).elapsed
        t4 = small_cluster(n_clients=4).run_workload(wl).elapsed
        assert t4 > t1  # shared iods and links must show contention

    def test_move_bytes_false_preserves_timing(self):
        regions = RegionList.strided(start=0, count=32, length=50, stride=200)

        def wl_real(client):
            f = yield from client.open("/x", create=True)
            yield from f.write_list(regions, np.zeros(regions.total_bytes, np.uint8))
            yield from f.close()

        def wl_ghost(client):
            f = yield from client.open("/x", create=True)
            yield from f.write_list(regions, None)
            yield from f.close()

        real = Cluster.build(
            ClusterConfig(n_clients=1, n_iods=4, stripe=StripeParams(stripe_size=100))
        ).run_workload(wl_real)
        ghost = Cluster.build(
            ClusterConfig(n_clients=1, n_iods=4, stripe=StripeParams(stripe_size=100)),
            move_bytes=False,
        ).run_workload(wl_ghost)
        assert ghost.elapsed == pytest.approx(real.elapsed)


class TestWorkloadRunner:
    def test_elapsed_is_slowest_client(self):
        cluster = small_cluster(n_clients=2)

        def wl(client):
            f = yield from client.open(f"/w{client.index}", create=True)
            size = 1000 if client.index == 0 else 100_000
            yield from f.write(0, np.zeros(size, np.uint8))
            yield from f.close()
            return client.index

        res = cluster.run_workload(wl)
        assert res.elapsed == max(res.client_times)
        assert res.client_returns == [0, 1]
        assert res.client_times[0] < res.client_times[1]

    def test_subset_of_clients(self):
        cluster = small_cluster(n_clients=2)

        def wl(client):
            f = yield from client.open("/only", create=True)
            yield from f.close()
            return client.index

        res = cluster.run_workload(wl, clients=[1])
        assert res.client_returns == [1]

    def test_empty_selection_rejected(self):
        with pytest.raises(ConfigError):
            small_cluster().run_workload(lambda c: iter(()), clients=[])

    def test_request_accounting_properties(self):
        cluster = small_cluster()
        regions = RegionList.strided(start=0, count=100, length=2, stride=10)

        def wl(client):
            f = yield from client.open("/acc", create=True)
            yield from f.read_list(regions)
            yield from f.close()

        res = cluster.run_workload(wl, clients=[0])
        assert res.total_logical_requests == 2  # 100 regions / cap 64
        assert res.total_server_messages >= res.total_logical_requests
