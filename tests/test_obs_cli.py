"""CLI integration: --trace-out / --report flags and the obs subcommand."""

import json

import pytest

from repro.experiments.cli import main as cli_main
from repro.obs.cli import main as obs_main


@pytest.fixture(scope="module")
def traced_figure(tmp_path_factory):
    """One smoke fig09 DES run with tracing, shared across the module."""
    path = tmp_path_factory.mktemp("obs") / "t.json"
    import io
    from contextlib import redirect_stdout

    buf = io.StringIO()
    with redirect_stdout(buf):
        rc = cli_main(
            [
                "--figure",
                "9",
                "--scale",
                "smoke",
                "--mode",
                "des",
                "--trace-out",
                str(path),
                "--report",
            ]
        )
    return rc, path, buf.getvalue()


class TestTraceOutAndReport:
    def test_exit_code_ok(self, traced_figure):
        rc, _, _ = traced_figure
        assert rc == 0

    def test_trace_file_is_valid_json(self, traced_figure):
        _, path, _ = traced_figure
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        assert doc["otherData"]["bottleneck"]["verdict"]

    def test_report_printed_with_verdict(self, traced_figure):
        _, _, out = traced_figure
        assert "bottleneck report" in out
        assert "verdict" in out
        assert "per-run verdicts" in out
        # The verdict names a resource with a utilization percentage.
        assert "% busy" in out or "idle-bound" in out

    def test_unwritable_trace_path_fails_fast(self, tmp_path, capsys):
        rc = cli_main(
            [
                "--figure",
                "9",
                "--scale",
                "smoke",
                "--mode",
                "des",
                "--trace-out",
                str(tmp_path / "no" / "such" / "dir" / "t.json"),
            ]
        )
        assert rc == 2
        assert "cannot write" in capsys.readouterr().err

    def test_trace_out_rejected_in_model_mode(self, capsys):
        rc = cli_main(
            ["--figure", "9", "--scale", "paper", "--mode", "model", "--report"]
        )
        assert rc == 2
        assert "des" in capsys.readouterr().err


class TestObsSubcommand:
    def test_summarize_saved_trace(self, traced_figure, capsys):
        _, path, _ = traced_figure
        rc = cli_main(["obs", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "trace summary" in out
        assert "verdict" in out
        assert "| category |" in out

    def test_json_report(self, traced_figure, capsys):
        _, path, _ = traced_figure
        rc = obs_main([str(path), "--json"])
        out = capsys.readouterr().out
        assert rc == 0
        report = json.loads(out)
        assert "verdict" in report
        assert report["resources"]

    def test_missing_file_errors(self, tmp_path, capsys):
        rc = obs_main([str(tmp_path / "nope.json")])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_non_trace_json_errors(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"hello": 1}')
        rc = obs_main([str(bad)])
        assert rc == 2
        assert "traceEvents" in capsys.readouterr().err


class TestHarnessTraceOption:
    def test_des_point_trace_summary(self):
        from repro.experiments.harness import des_point
        from repro.experiments.presets import SMOKE
        from repro.patterns import one_dim_cyclic

        pattern = one_dim_cyclic(SMOKE.artificial_total, 2, 16)
        point = des_point(pattern, "list", "read", trace=True)
        assert point.trace_summary is not None
        assert "iod.service" in point.trace_summary
        assert "p99" in point.trace_summary["iod.service"]

    def test_des_point_obs_capture(self):
        from repro.experiments.harness import des_point
        from repro.experiments.presets import SMOKE
        from repro.obs import ObsSession
        from repro.patterns import one_dim_cyclic

        obs = ObsSession()
        pattern = one_dim_cyclic(SMOKE.artificial_total, 2, 16)
        point = des_point(pattern, "list", "read", figure="fig09", x=16, obs=obs)
        assert len(obs.runs) == 1
        run = obs.runs[0]
        assert "fig09/list" in run.label
        assert run.elapsed == pytest.approx(point.elapsed)

    def test_des_point_untraced_matches_traced(self):
        from repro.experiments.harness import des_point
        from repro.experiments.presets import SMOKE
        from repro.obs import ObsSession
        from repro.patterns import one_dim_cyclic

        pattern = one_dim_cyclic(SMOKE.artificial_total, 2, 16)
        plain = des_point(pattern, "multiple", "read")
        traced = des_point(pattern, "multiple", "read", obs=ObsSession())
        assert plain.elapsed == traced.elapsed  # bit-identical
