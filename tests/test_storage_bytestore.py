"""Tests for ByteStore / NullByteStore."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.regions import RegionList
from repro.storage import ByteStore, NullByteStore


class TestByteStore:
    def test_roundtrip_single_region(self):
        store = ByteStore()
        data = np.arange(100, dtype=np.uint8)
        store.write("f", RegionList.single(1000, 100), data)
        out = store.read("f", RegionList.single(1000, 100))
        np.testing.assert_array_equal(out, data)

    def test_holes_read_as_zero(self):
        store = ByteStore()
        store.write("f", RegionList.single(10, 4), np.full(4, 7, np.uint8))
        out = store.read("f", RegionList.single(0, 20))
        assert out[:10].sum() == 0
        assert (out[10:14] == 7).all()
        assert out[14:].sum() == 0

    def test_unknown_file_reads_zeros(self):
        store = ByteStore()
        out = store.read("ghost", RegionList.single(0, 8))
        assert (out == 0).all()

    def test_write_crossing_chunk_boundary(self):
        store = ByteStore(chunk_size=16)
        data = np.arange(40, dtype=np.uint8)
        store.write("f", RegionList.single(10, 40), data)
        out = store.read("f", RegionList.single(10, 40))
        np.testing.assert_array_equal(out, data)

    def test_multi_region_order_is_stream_order(self):
        store = ByteStore(chunk_size=16)
        regions = RegionList([30, 0], [2, 2])  # intentionally unsorted
        store.write("f", regions, np.array([1, 2, 3, 4], np.uint8))
        assert list(store.read("f", RegionList.single(30, 2))) == [1, 2]
        assert list(store.read("f", RegionList.single(0, 2))) == [3, 4]

    def test_read_multi_region_concatenates(self):
        store = ByteStore()
        store.write("f", RegionList.single(0, 6), np.arange(6, dtype=np.uint8))
        out = store.read("f", RegionList([4, 0], [2, 2]))
        assert list(out) == [4, 5, 0, 1]

    def test_size_mismatch_rejected(self):
        store = ByteStore()
        with pytest.raises(StorageError):
            store.write("f", RegionList.single(0, 4), np.zeros(3, np.uint8))

    def test_overwrite(self):
        store = ByteStore()
        store.write("f", RegionList.single(0, 4), np.full(4, 1, np.uint8))
        store.write("f", RegionList.single(2, 4), np.full(4, 9, np.uint8))
        assert list(store.read("f", RegionList.single(0, 6))) == [1, 1, 9, 9, 9, 9]

    def test_zero_length_regions_ignored(self):
        store = ByteStore()
        store.write("f", RegionList([0, 5], [0, 2]), np.array([3, 4], np.uint8))
        assert list(store.read("f", RegionList.single(5, 2))) == [3, 4]

    def test_delete(self):
        store = ByteStore()
        store.write("f", RegionList.single(0, 4), np.ones(4, np.uint8))
        store.delete("f")
        assert (store.read("f", RegionList.single(0, 4)) == 0).all()
        assert store.allocated_bytes("f") == 0

    def test_counters(self):
        store = ByteStore()
        store.write("f", RegionList.single(0, 4), np.ones(4, np.uint8))
        store.read("f", RegionList.single(0, 2))
        assert store.bytes_written == 4
        assert store.bytes_read == 2

    def test_sparse_allocation(self):
        store = ByteStore(chunk_size=1024)
        store.write("f", RegionList.single(10 * 1024 * 1024, 8), np.ones(8, np.uint8))
        assert store.allocated_bytes("f") == 1024  # one chunk, not 10 MB

    def test_bad_chunk_size(self):
        with pytest.raises(StorageError):
            ByteStore(chunk_size=0)


class TestNullByteStore:
    def test_reads_zeros_and_counts(self):
        store = NullByteStore()
        store.write("f", RegionList.single(0, 4), np.full(4, 9, np.uint8))
        out = store.read("f", RegionList.single(0, 4))
        assert (out == 0).all()
        assert store.bytes_written == 4
        assert store.bytes_read == 4

    def test_still_validates_sizes(self):
        store = NullByteStore()
        with pytest.raises(StorageError):
            store.write("f", RegionList.single(0, 4), np.zeros(5, np.uint8))
