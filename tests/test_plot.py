"""Tests for the ASCII chart renderer (repro.experiments.plot)."""


from repro.experiments import SMOKE, figure9, figure17
from repro.experiments.plot import ascii_bars, ascii_chart, render_figure


class TestAsciiChart:
    def test_empty(self):
        assert "(no data)" in ascii_chart({}, title="t")

    def test_markers_and_legend(self):
        out = ascii_chart(
            {"a": [(0, 1), (1, 2)], "b": [(0, 2), (1, 4)]}, title="demo"
        )
        assert "demo" in out
        assert "o=a" in out and "x=b" in out
        assert "o" in out and "x" in out

    def test_log_scale_label(self):
        out = ascii_chart({"a": [(0, 1), (1, 1000)]}, log_y=True)
        assert "(log scale)" in out
        assert "1e" in out

    def test_x_range_footer(self):
        out = ascii_chart({"a": [(10, 1), (90, 2)]})
        assert "x: 10 .. 90" in out

    def test_single_point_series(self):
        out = ascii_chart({"a": [(5, 7)]})
        assert "o" in out

    def test_monotone_series_rises_leftward_up(self):
        """The marker for the max y must appear on a higher row than the
        marker for the min y."""
        out = ascii_chart({"a": [(0, 0), (10, 10)]}, width=20, height=10)
        rows = [l for l in out.splitlines() if "|" in l]
        top_half = "".join(rows[: len(rows) // 2])
        bottom_half = "".join(rows[len(rows) // 2 :])
        assert "o" in top_half and "o" in bottom_half

    def test_overlap_marker(self):
        out = ascii_chart({"a": [(0, 1)], "b": [(0, 1)]}, width=10, height=5)
        assert "&" in out


class TestAsciiBars:
    def test_empty(self):
        assert "(no data)" in ascii_bars({})

    def test_values_rendered(self):
        out = ascii_bars({"multiple": 100.0, "list": 1.0}, title="bars")
        assert "bars" in out
        assert "multiple" in out and "list" in out
        assert out.count("#") > 2

    def test_log_bars_compress_range(self):
        def bar_of(s, name):
            line = [l for l in s.splitlines() if l.strip().startswith(name)][0]
            return line.count("#")

        lin = ascii_bars({"a": 10000.0, "b": 100.0}, width=50)
        log = ascii_bars({"a": 10000.0, "b": 100.0}, width=50, log=True)
        assert bar_of(log, "b") > bar_of(lin, "b")
        assert "(log scale)" in log

    def test_longest_bar_is_max(self):
        out = ascii_bars({"small": 1.0, "big": 50.0}, width=40)
        lines = {l.split("|")[0].strip(): l for l in out.splitlines() if "|" in l}
        assert lines["big"].count("#") > lines["small"].count("#")


class TestRenderFigure:
    def test_sweep_figure_renders_charts(self):
        res = figure9(scale=SMOKE, mode="model")
        out = render_figure(res)
        assert "fig09" in out
        assert "x:" in out  # chart footer present
        assert "multiple" in out

    def test_single_x_figure_renders_bars(self):
        res = figure17(scale=SMOKE, mode="des")
        out = render_figure(res, log_y=False)
        assert "#" in out
        assert "list" in out

    def test_write_figures_default_to_log(self):
        from repro.experiments import figure10

        res = figure10(scale=SMOKE, mode="model")
        assert "(log scale)" in render_figure(res)


class TestCLIPlot:
    def test_plot_flag(self, capsys):
        from repro.experiments.cli import main

        rc = main(["--figure", "17", "--scale", "smoke", "--mode", "des", "--plot"])
        out = capsys.readouterr().out
        assert "#" in out  # bars rendered
        assert rc in (0, 1)
