"""Smoke tests for the ``pvfs-sim chaos`` subcommand."""

import pytest

from repro.experiments import chaos
from repro.experiments.cli import main as cli_main
from repro.experiments.presets import SMOKE


class TestChaosCli:
    def test_crash_scenario_smoke(self, capsys):
        rc = cli_main(
            ["chaos", "--scenario", "crash", "--benchmark", "artificial", "--scale", "smoke"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "chaos sweep" in out
        assert "| crash |" in out
        assert "recovery" in out

    def test_events_flag_prints_log(self, capsys):
        rc = chaos.main(
            ["--scenario", "crash", "--scale", "smoke", "--events"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "crash events" in out
        assert "iod0 crashed" in out
        assert "iod0 restarted" in out

    def test_csv_output(self, tmp_path, capsys):
        path = tmp_path / "chaos.csv"
        rc = chaos.main(
            ["--scenario", "straggler", "--scale", "smoke", "--csv", str(path)]
        )
        capsys.readouterr()
        assert rc == 0
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("scenario,benchmark,")
        assert len(lines) == 2
        assert lines[1].startswith("straggler,artificial,")


class TestRunScenario:
    def test_crash_row_recovers(self):
        row = chaos.run_scenario("crash", scale=SMOKE, restart_after=2.0)
        assert row.crashes == 1
        assert row.retries > 0
        assert row.recovery_s is not None and row.recovery_s >= 2.0
        assert row.faulty_s > row.baseline_s
        assert row.slowdown > 1.0
        assert row.goodput_mb_s > 0.0

    def test_straggler_row_needs_no_retries(self):
        row = chaos.run_scenario("straggler", scale=SMOKE)
        assert row.retries == 0 and row.timeouts == 0 and row.crashes == 0
        assert row.recovery_s is None
        assert row.faulty_s > row.baseline_s

    def test_unknown_scenario_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            chaos.run_scenario("nope", scale=SMOKE)
        with pytest.raises(ConfigError):
            chaos.run_scenario("crash", benchmark="nope", scale=SMOKE)

    def test_deterministic(self):
        a = chaos.run_scenario("disk-stall", scale=SMOKE)
        b = chaos.run_scenario("disk-stall", scale=SMOKE)
        assert a.faulty_s == b.faulty_s
        assert a.retries == b.retries
