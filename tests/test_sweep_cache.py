"""Result-cache behaviour: keying, hits, misses, invalidation, bypass.

The contract under test (docs/performance.md): a cache hit returns a
*bit-identical* result (``==`` on the dataclass, never approx); the key
covers the whole spec — config, seed, fault plan — plus the code
fingerprint; ``--no-cache`` touches the cache directory not at all.
"""

import json

import pytest

from repro.config import ClusterConfig
from repro.faults import FaultConfig, FaultPlan, Straggler
from repro.sweep import (
    ChaosSpec,
    PointSpec,
    ResultCache,
    canonical,
    code_fingerprint,
)
from repro.sweep.engine import run_sweep
from repro.units import MiB


def _spec(n_clients=2, accesses=8, seed=0x5EED, method="list"):
    cfg = ClusterConfig.chiba_city(n_clients=n_clients).with_(seed=seed)
    return PointSpec(
        figure="figT",
        pattern="one_dim_cyclic",
        pattern_args=(1 * MiB, n_clients, accesses),
        method=method,
        kind="read",
        mode="des",
        cfg=cfg,
        x=accesses,
    )


class TestCanonical:
    def test_dataclasses_are_stable_and_typed(self):
        cfg = ClusterConfig.chiba_city(n_clients=2)
        a, b = canonical(cfg), canonical(cfg)
        assert a == b
        assert a["__type__"] == "ClusterConfig"
        # embedded fault plan participates in the canonical form
        assert "faults" in a

    def test_specs_serialize_to_json(self):
        blob = json.dumps(canonical(_spec()), sort_keys=True)
        assert "one_dim_cyclic" in blob

    def test_unserializable_objects_are_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            canonical(object())


class TestFingerprint:
    def test_stable_within_a_process(self):
        assert code_fingerprint() == code_fingerprint()

    def test_tracks_file_contents_and_names(self, tmp_path):
        from repro.sweep import fingerprint as fp_mod

        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text("x = 1\n")
        fp1 = code_fingerprint(str(pkg))
        (pkg / "a.py").write_text("x = 2\n")
        fp_mod._cached.clear()
        fp2 = code_fingerprint(str(pkg))
        assert fp1 != fp2
        (pkg / "a.py").write_text("x = 1\n")
        fp_mod._cached.clear()
        assert code_fingerprint(str(pkg)) == fp1


class TestCacheKeying:
    def test_hit_on_identical_config(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = _spec()
        point = spec.run()
        cache.put(spec, point)
        back = cache.get(_spec())  # a *fresh* but identical spec
        assert back == point  # bit-identical dataclass equality

    def test_miss_on_config_change(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = _spec()
        cache.put(spec, spec.run())
        assert cache.get(_spec(seed=123)) is None
        assert cache.get(_spec(accesses=16)) is None
        assert cache.get(_spec(method="multiple")) is None

    def test_fault_plan_participates_in_the_key(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = _spec()
        cache.put(spec, spec.run())
        faulty = ClusterConfig.chiba_city(n_clients=2).with_(
            faults=FaultConfig(plan=FaultPlan((Straggler(iod=0, scale=4.0),)))
        )
        faulty_spec = PointSpec(
            figure="figT",
            pattern="one_dim_cyclic",
            pattern_args=(1 * MiB, 2, 8),
            method="list",
            kind="read",
            mode="des",
            cfg=faulty,
            x=8,
        )
        assert cache.get(faulty_spec) is None

    def test_code_fingerprint_change_invalidates(self, tmp_path):
        spec = _spec()
        old = ResultCache(str(tmp_path), fingerprint="code-v1")
        old.put(spec, spec.run())
        assert old.get(spec) is not None
        stale = ResultCache(str(tmp_path), fingerprint="code-v2")
        assert stale.get(spec) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = _spec()
        cache.put(spec, spec.run())
        entry = next(tmp_path.glob("*/*.json"))
        entry.write_text("{not json")
        assert cache.get(spec) is None


class TestCacheRoundtrip:
    def test_floats_survive_exactly(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = _spec()
        point = spec.run()
        cache.put(spec, point)
        back = cache.get(spec)
        assert back.elapsed == point.elapsed  # exact, not approx
        assert back.phases == point.phases
        assert back == point

    def test_chaos_rows_roundtrip_with_events(self, tmp_path):
        from repro.experiments.presets import SMOKE

        cache = ResultCache(str(tmp_path))
        spec = ChaosSpec(scenario="straggler", benchmark="artificial", scale=SMOKE)
        row = spec.run()
        cache.put(spec, row)
        back = cache.get(spec)
        assert back == row
        assert back.events == row.events


class TestNoCacheBypass:
    def test_engine_without_cache_recomputes(self, tmp_path):
        specs = [_spec(accesses=a) for a in (4, 8)]
        results1, stats1 = run_sweep(specs, cache=None)
        results2, stats2 = run_sweep(specs, cache=None)
        assert results1 == results2
        assert stats1.executed == stats2.executed == 2
        assert stats1.cache_hits == 0 and not stats1.cache_enabled

    def test_cli_no_cache_leaves_directory_untouched(self, tmp_path, capsys):
        from repro.experiments.cli import main

        cache_dir = tmp_path / "cache"
        rc = main(
            [
                "--figure",
                "17",
                "--scale",
                "smoke",
                "--mode",
                "des",
                "--no-cache",
                "--cache-dir",
                str(cache_dir),
            ]
        )
        assert rc in (0, 1)  # figure checks may fail at smoke scale
        assert not cache_dir.exists()
        assert "cache off" in capsys.readouterr().out

    def test_cli_cache_dir_populates_and_hits(self, tmp_path, capsys):
        from repro.experiments.cli import main

        cache_dir = tmp_path / "cache"
        args = [
            "--figure",
            "17",
            "--scale",
            "smoke",
            "--mode",
            "des",
            "--cache-dir",
            str(cache_dir),
        ]
        main(args)
        first = capsys.readouterr().out
        assert "0/3 cached" in first
        assert len(list(cache_dir.glob("*/*.json"))) == 3
        main(args)
        second = capsys.readouterr().out
        assert "3/3 cached" in second
