"""Datatype (vector) I/O — the paper's second Section 5 extension.

    "Support for I/O requests that use an approach similar to MPI
    datatypes, for example, would describe these patterns with vector
    datatypes.  This would eliminate the linear relationship between the
    number of contiguous regions and the number of I/O requests."

:class:`VectorIO` expresses a *regular* file access (constant region length
and constant stride — an MPI ``Create_vector``) as a single compact
descriptor, so the whole transfer is ONE logical request no matter how many
regions it touches.  The I/O servers still pay their per-region service
cost (they must build the iovec either way); what disappears is the
per-request overhead and the trailing-data volume — exactly the drawback
of list I/O that the paper calls out.

Irregular patterns are rejected by default; with ``fallback=True`` they
degrade to plain list I/O.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import RegionError
from ..regions import RegionList
from ..pvfs.client import PVFSFile
from .base import AccessMethod, validate_transfer
from .listio import ListIO

__all__ = ["VectorIO", "as_vector"]

#: A vector descriptor is (file offset, count, blocklen, stride): two
#: 16-byte trailing-data slots.
VECTOR_DESCRIPTOR_SLOTS = 2


def as_vector(regions: RegionList) -> Optional[Tuple[int, int, int, int]]:
    """Recognize ``regions`` as (start, count, blocklen, stride), or None.

    A single region is the degenerate vector (count=1).  Requires uniform
    lengths and uniform positive stride.
    """
    r = regions.drop_empty()
    if r.count == 0:
        return None
    lengths = np.unique(r.lengths)
    if lengths.size != 1:
        return None
    blocklen = int(lengths[0])
    if r.count == 1:
        return (int(r.offsets[0]), 1, blocklen, blocklen)
    strides = np.unique(np.diff(r.offsets))
    if strides.size != 1 or strides[0] <= 0:
        return None
    return (int(r.offsets[0]), r.count, blocklen, int(strides[0]))


class VectorIO(AccessMethod):
    """One-request noncontiguous access for strided patterns."""

    name = "vector"

    def __init__(self, fallback: bool = False) -> None:
        #: When True, irregular patterns fall back to list I/O instead of
        #: raising.
        self.fallback = fallback
        self._list = ListIO()

    def _vector_or_fallback(self, file_regions: RegionList):
        vec = as_vector(file_regions)
        if vec is None and not self.fallback:
            raise RegionError(
                "VectorIO requires a regular (constant length, constant "
                "stride) file access pattern; use fallback=True to degrade "
                "to list I/O"
            )
        return vec

    def read(self, f: PVFSFile, memory, mem_regions, file_regions):
        validate_transfer(memory, mem_regions, file_regions)
        if self._vector_or_fallback(file_regions) is None:
            yield from self._list.read(f, memory, mem_regions, file_regions)
            return
        stream = yield from f.read_described(
            file_regions, descriptor_slots=VECTOR_DESCRIPTOR_SLOTS
        )
        unpack = self._memcpy_time(f, file_regions.total_bytes)
        if unpack > 0:
            yield f.client.sim.timeout(unpack)
        self._scatter_memory(memory, mem_regions, stream)

    def write(self, f: PVFSFile, memory, mem_regions, file_regions):
        validate_transfer(memory, mem_regions, file_regions)
        if self._vector_or_fallback(file_regions) is None:
            yield from self._list.write(f, memory, mem_regions, file_regions)
            return
        stream = self._gather_memory(memory, mem_regions)
        pack = self._memcpy_time(f, file_regions.total_bytes)
        if pack > 0:
            yield f.client.sim.timeout(pack)
        yield from f.write_described(
            file_regions, stream, descriptor_slots=VECTOR_DESCRIPTOR_SLOTS
        )
