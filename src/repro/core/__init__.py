"""Noncontiguous access methods: the paper's three contenders + extensions.

* :class:`MultipleIO` — one contiguous request per region (Section 3.1).
* :class:`DataSievingIO` — 32 MB buffered windows, RMW writes (Section 3.2).
* :class:`ListIO` — native noncontiguous requests, 64 regions per request
  (Section 3.3, the contribution).
* :class:`HybridIO` — list I/O over gap-clustered extents (Section 5).
* :class:`VectorIO` — datatype-described single-request access (Section 5).
* :class:`TwoPhaseIO` — ROMIO-style two-phase collective I/O (the
  Thakur/Gropp/Lusk algorithm the paper benchmarks against).
"""

from .api import pvfs_read_list, pvfs_write_list
from .base import AccessMethod, validate_transfer
from .datasieve import DataSievingIO
from .datatype import VectorIO, as_vector
from .hybrid import HybridIO, cluster_extents
from .listio import ListIO
from .multiple import MultipleIO
from .twophase import TwoPhaseIO

#: Registry used by the experiment harness and CLI.
METHODS = {
    "multiple": MultipleIO,
    "datasieve": DataSievingIO,
    "list": ListIO,
    "hybrid": HybridIO,
    "vector": VectorIO,
    "twophase": TwoPhaseIO,
}

__all__ = [
    "AccessMethod",
    "MultipleIO",
    "DataSievingIO",
    "ListIO",
    "HybridIO",
    "VectorIO",
    "TwoPhaseIO",
    "METHODS",
    "pvfs_read_list",
    "pvfs_write_list",
    "validate_transfer",
    "cluster_extents",
    "as_vector",
]
