"""The paper's user-facing interface (Section 3.3), verbatim shape:

    pvfs_read_list(int mem_list_count, char *mem_offsets[], char mem_lengths[],
                   int file_list_count, int file_offsets[], int file_lengths[])

Pythonized: counts are implicit in the array lengths, the memory target is
an explicit buffer, and the calls are simulation processes operating on an
open :class:`~repro.pvfs.client.PVFSFile`.  These wrappers always use list
I/O — they are the new PVFS entry points the paper adds; the other methods
exist as :class:`~repro.core.base.AccessMethod` strategies for comparison.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..regions import RegionList
from ..pvfs.client import PVFSFile
from .listio import ListIO

__all__ = ["pvfs_read_list", "pvfs_write_list"]

_method = ListIO()


def pvfs_read_list(
    f: PVFSFile,
    memory: Optional[np.ndarray],
    mem_offsets: Sequence[int],
    mem_lengths: Sequence[int],
    file_offsets: Sequence[int],
    file_lengths: Sequence[int],
):
    """Noncontiguous read through native list I/O (simulation process)."""
    yield from _method.read(
        f,
        memory,
        RegionList(mem_offsets, mem_lengths),
        RegionList(file_offsets, file_lengths),
    )


def pvfs_write_list(
    f: PVFSFile,
    memory: Optional[np.ndarray],
    mem_offsets: Sequence[int],
    mem_lengths: Sequence[int],
    file_offsets: Sequence[int],
    file_lengths: Sequence[int],
):
    """Noncontiguous write through native list I/O (simulation process)."""
    yield from _method.write(
        f,
        memory,
        RegionList(mem_offsets, mem_lengths),
        RegionList(file_offsets, file_lengths),
    )
