"""List I/O — the paper's contribution (Section 3.3).

The whole noncontiguous file side is handed to the PVFS client library as a
region list; the library packs up to 64 (offset, length) pairs of trailing
data per request so each request still fits one Ethernet frame, and the I/O
servers process entire lists per request.  The memory side is packed (for
writes) or unpacked (for reads) between the user's buffer and the request
byte stream with one vectorized gather/scatter, charged at the client's
memory-copy rate.

Memory-side splitting
---------------------
The paper's *text* derives request counts from the file-region cap alone
(FLASH: 1,920 file regions -> 30 requests per processor).  Its *measured*
Figure 15, however, is only consistent with an implementation that also
bounds each request by the number of *memory* regions it touches (983,040
8-byte memory regions -> 15,360 requests per processor): the staging of one
request's data cannot reference more descriptor pairs than a request
carries.  ``ListIO(split_memory_regions=True)`` (the default) reproduces
the measured behaviour by decomposing the transfer into (memory, file)
piece pairs before applying the cap; ``False`` gives the text's file-only
accounting.  EXPERIMENTS.md reports both.
"""

from __future__ import annotations



from ..regions import RegionList, pair_pieces
from ..pvfs.client import PVFSFile
from .base import AccessMethod, validate_transfer

__all__ = ["ListIO"]


class ListIO(AccessMethod):
    """Native noncontiguous requests via ``pvfs_read_list``/``pvfs_write_list``."""

    name = "list"

    def __init__(self, split_memory_regions: bool = True) -> None:
        self.split_memory_regions = split_memory_regions

    def _wire_file_regions(self, mem_regions: RegionList, file_regions: RegionList) -> RegionList:
        """The file-side region list actually described to PVFS."""
        if not self.split_memory_regions:
            return file_regions
        _, file_off, lengths = pair_pieces(mem_regions, file_regions)
        return RegionList(file_off, lengths)

    def read(self, f: PVFSFile, memory, mem_regions, file_regions):
        validate_transfer(memory, mem_regions, file_regions)
        wire_regions = self._wire_file_regions(mem_regions, file_regions)
        stream = yield from f.read_list(wire_regions)
        unpack = self._memcpy_time(f, file_regions.total_bytes)
        if unpack > 0:
            yield f.client.sim.timeout(unpack)
        self._scatter_memory(memory, mem_regions, stream)

    def write(self, f: PVFSFile, memory, mem_regions, file_regions):
        validate_transfer(memory, mem_regions, file_regions)
        wire_regions = self._wire_file_regions(mem_regions, file_regions)
        stream = self._gather_memory(memory, mem_regions)
        pack = self._memcpy_time(f, file_regions.total_bytes)
        if pack > 0:
            yield f.client.sim.timeout(pack)
        yield from f.write_list(wire_regions, stream)

    @staticmethod
    def request_count(file_regions: RegionList, max_regions: int = 64) -> int:
        """Logical requests by the paper's file-side formula:
        ceil(regions / cap) (e.g. FLASH: 1920 regions -> 30 requests)."""
        n = file_regions.drop_empty().count
        return -(-n // max_regions) if n else 0
