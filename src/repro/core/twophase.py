"""Two-phase collective I/O as a first-class access method.

:class:`TwoPhaseIO` adapts the ROMIO-style engine in
:mod:`repro.mpiio.twophase` to the paper's transfer interface (memory
regions + file regions), so the experiment harness, sweep specs, figure
drivers, and bench suite can select ``"twophase"`` exactly like
``"multiple"`` or ``"list"``.

Unlike the independent methods, two-phase is *collective*: a transfer is
only defined across all ranks of a communicator (they exchange metadata
and redistribute data over the fabric before any file access happens).
The harness detects ``TwoPhaseIO.collective`` and drives
:meth:`collective_read` / :meth:`collective_write` with a shared
communicator, mirroring how it serializes data-sieving writes.

Cost accounting mirrors list I/O on the client side (one pack/unpack of
the transfer volume at the memcpy rate); the exchange traffic and the
aggregators' assembly and file phases are charged by the engine itself.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import RegionError
from ..mpi import Communicator
from ..mpiio import twophase as engine
from ..pvfs.client import PVFSFile
from ..regions import RegionList, build_flat_indices
from .base import AccessMethod, validate_transfer

__all__ = ["TwoPhaseIO"]


def wire_order(file_regions: RegionList):
    """Sorted, disjoint wire regions + the sort permutation.

    The engine requires each rank's regions sorted by offset and
    non-overlapping (clip/stream arithmetic); the transfer interface
    promises neither.  Returns ``(regions, order)`` where ``order`` maps
    sorted position -> original region index, or raises
    :class:`~repro.errors.RegionError` on overlapping regions.
    """
    regions = file_regions.drop_empty()
    order = np.argsort(regions.offsets, kind="stable")
    regions = regions.take(order)
    if not regions.is_disjoint():
        raise RegionError("two-phase collective I/O needs disjoint file regions per rank")
    return regions, order


class TwoPhaseIO(AccessMethod):
    """ROMIO-style two-phase collective I/O (aggregators + file domains)."""

    name = "twophase"
    #: Marks this method as collective: the harness must supply a
    #: communicator + shared context and call ``collective_read/write``.
    collective = True

    def __init__(
        self, cb_nodes: Optional[int] = None, cb_buffer: Optional[int] = None
    ) -> None:
        if cb_nodes is not None and cb_nodes < 1:
            raise engine.MPIIOError("cb_nodes must be >= 1")
        if cb_buffer is not None and cb_buffer < 1:
            raise engine.MPIIOError("cb_buffer must be a positive byte count")
        self.cb_nodes = cb_nodes
        self.cb_buffer = cb_buffer

    # -- the independent interface is deliberately unsupported -----------
    def read(self, f, memory, mem_regions, file_regions):
        raise engine.MPIIOError(
            "two-phase I/O is collective; use collective_read with a communicator"
        )

    def write(self, f, memory, mem_regions, file_regions):
        raise engine.MPIIOError(
            "two-phase I/O is collective; use collective_write with a communicator"
        )

    # -- collective interface --------------------------------------------
    def _context(self, f: PVFSFile, comm: Communicator, shared: dict):
        ctx = shared.get("twophase_ctx")
        if ctx is None:
            ctx = engine.CollectiveContext(f.client.sim, comm)
            shared["twophase_ctx"] = ctx
        return ctx

    def collective_write(
        self,
        comm: Communicator,
        rank: int,
        shared: dict,
        f: PVFSFile,
        memory: Optional[np.ndarray],
        mem_regions: RegionList,
        file_regions: RegionList,
    ):
        """Simulation process: memory regions -> file regions, collectively."""
        validate_transfer(memory, mem_regions, file_regions)
        regions, order = wire_order(file_regions)
        stream = self._gather_memory(memory, mem_regions)
        if stream is not None:
            stream = _permute_stream(stream, file_regions.drop_empty(), order)
        pack = self._memcpy_time(f, file_regions.total_bytes)
        if pack > 0:
            yield f.client.sim.timeout(pack)
        yield from engine.collective_write(
            f,
            comm,
            rank,
            self._context(f, comm, shared),
            regions,
            stream,
            cb_nodes=self.cb_nodes,
            cb_buffer=self.cb_buffer,
        )

    def collective_read(
        self,
        comm: Communicator,
        rank: int,
        shared: dict,
        f: PVFSFile,
        memory: Optional[np.ndarray],
        mem_regions: RegionList,
        file_regions: RegionList,
    ):
        """Simulation process: file regions -> memory regions, collectively."""
        validate_transfer(memory, mem_regions, file_regions)
        regions, order = wire_order(file_regions)
        stream = yield from engine.collective_read(
            f,
            comm,
            rank,
            self._context(f, comm, shared),
            regions,
            cb_nodes=self.cb_nodes,
            cb_buffer=self.cb_buffer,
        )
        if stream is not None:
            stream = _unpermute_stream(stream, regions, order)
        self._scatter_memory(memory, mem_regions, stream)

    def __repr__(self) -> str:
        return f"<TwoPhaseIO cb_nodes={self.cb_nodes} cb_buffer={self.cb_buffer}>"


def _starts_of(regions: RegionList) -> np.ndarray:
    if regions.count == 0:
        return np.zeros(0, np.int64)
    return np.concatenate(([0], np.cumsum(regions.lengths)[:-1]))


def _permute_stream(stream, regions: RegionList, order: np.ndarray):
    """Reorder a file-region-order byte stream into sorted-region order."""
    if _is_identity(order):
        return stream
    starts = _starts_of(regions)
    idx = build_flat_indices(starts[order], regions.lengths[order])
    return np.ascontiguousarray(stream[idx])


def _unpermute_stream(stream, sorted_regions: RegionList, order: np.ndarray):
    """Reorder a sorted-region-order byte stream back to file-region order."""
    if _is_identity(order):
        return stream
    starts = _starts_of(sorted_regions)
    inverse = np.empty_like(order)
    inverse[order] = np.arange(order.size, dtype=order.dtype)
    lengths = sorted_regions.lengths[inverse]
    idx = build_flat_indices(starts[inverse], lengths)
    return np.ascontiguousarray(stream[idx])


def _is_identity(order: np.ndarray) -> bool:
    return bool((order == np.arange(order.size, dtype=order.dtype)).all())
