"""The access-method interface shared by multiple / sieving / list I/O.

An :class:`AccessMethod` performs one noncontiguous transfer between a
client memory buffer and an open PVFS file, described exactly as in the
paper's interface (Section 3.3): a list of memory regions and a list of
file regions whose flattened byte streams correspond 1:1.

Methods are simulation processes::

    method = ListIO()
    yield from method.read(f, memory, mem_regions, file_regions)

``memory`` may be ``None`` on timing-only clusters (``move_bytes=False``);
methods then skip real data movement but charge identical simulated time.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from ..errors import RegionError
from ..regions import RegionList, build_flat_indices
from ..pvfs.client import PVFSFile

__all__ = ["AccessMethod", "validate_transfer"]


def validate_transfer(
    memory: Optional[np.ndarray],
    mem_regions: RegionList,
    file_regions: RegionList,
) -> None:
    """Check the paper's interface contract for one transfer."""
    if mem_regions.total_bytes != file_regions.total_bytes:
        raise RegionError(
            f"memory regions describe {mem_regions.total_bytes} B but file "
            f"regions describe {file_regions.total_bytes} B"
        )
    if memory is not None and mem_regions.count:
        end = mem_regions.extent[1]
        if end > memory.size:
            raise RegionError(
                f"memory regions extend to byte {end} but the buffer holds "
                f"only {memory.size}"
            )


class AccessMethod(ABC):
    """Base class: one noncontiguous read/write strategy."""

    #: Short name used in experiment tables ("multiple", "datasieve", ...).
    name: str = "base"

    @abstractmethod
    def read(
        self,
        f: PVFSFile,
        memory: Optional[np.ndarray],
        mem_regions: RegionList,
        file_regions: RegionList,
    ):
        """Simulation process: file regions -> memory regions."""

    @abstractmethod
    def write(
        self,
        f: PVFSFile,
        memory: Optional[np.ndarray],
        mem_regions: RegionList,
        file_regions: RegionList,
    ):
        """Simulation process: memory regions -> file regions."""

    # -- shared helpers --------------------------------------------------
    @staticmethod
    def _memcpy_time(f: PVFSFile, nbytes: int) -> float:
        """Client-side pack/unpack cost for ``nbytes`` of data movement."""
        return nbytes / f.client.costs.memcpy_rate

    @staticmethod
    def _gather_memory(memory: Optional[np.ndarray], mem_regions: RegionList):
        """Memory regions -> contiguous stream (None stays None)."""
        if memory is None:
            return None
        idx = build_flat_indices(mem_regions.offsets, mem_regions.lengths)
        return memory[idx]

    @staticmethod
    def _scatter_memory(
        memory: Optional[np.ndarray], mem_regions: RegionList, stream
    ) -> None:
        """Contiguous stream -> memory regions (no-op when timing-only)."""
        if memory is None or stream is None:
            return
        idx = build_flat_indices(mem_regions.offsets, mem_regions.lengths)
        memory[idx] = stream

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"
