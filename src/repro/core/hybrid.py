"""Hybrid list + data-sieving I/O (the paper's Section 5 future work).

    "A combination of the list I/O and data sieving approaches could
    provide a hybrid solution that would be applicable over a larger range
    of access patterns. ... if two noncontiguous regions are close to each
    other, a data sieving operation may take place for just those
    particular regions."

The hybrid clusters file regions whose gaps are at most ``gap_threshold``
bytes into *extents*, then issues the extents through list I/O:

* dense neighborhoods collapse into one region each (fewer regions per
  request and fewer requests — the sieving advantage, without fetching the
  far-apart junk pure sieving would),
* isolated regions stay exact (the list I/O advantage).

Reads fetch extent streams and drop the gap bytes client-side.  Writes on
extents with interior gaps read-modify-write those extents (and therefore
need external serialization under concurrency, like sieving); with
``gap_threshold=0`` writes never RMW and degrade gracefully to pure list
I/O on coalesced regions.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import RegionError
from ..mpi import Communicator
from ..regions import RegionList, build_flat_indices
from ..pvfs.client import PVFSFile
from .base import AccessMethod, validate_transfer

__all__ = ["HybridIO", "cluster_extents"]


def cluster_extents(file_regions: RegionList, gap_threshold: int) -> RegionList:
    """Merge sorted, disjoint regions whose inter-region gap is at most
    ``gap_threshold`` bytes into covering extents."""
    if gap_threshold < 0:
        raise RegionError("gap_threshold must be non-negative")
    r = file_regions.coalesced()
    if r.count <= 1:
        return r
    gaps = r.offsets[1:] - r.ends[:-1]
    new_cluster = np.empty(r.count, dtype=bool)
    new_cluster[0] = True
    new_cluster[1:] = gaps > gap_threshold
    starts = r.offsets[new_cluster]
    cluster_id = np.cumsum(new_cluster) - 1
    ends = np.zeros(cluster_id[-1] + 1, dtype=np.int64)
    np.maximum.at(ends, cluster_id, r.ends)
    return RegionList(starts, ends - starts)


class HybridIO(AccessMethod):
    """List I/O over sieved extents."""

    name = "hybrid"

    def __init__(self, gap_threshold: int = 4096) -> None:
        if gap_threshold < 0:
            raise RegionError("gap_threshold must be non-negative")
        self.gap_threshold = gap_threshold

    # ------------------------------------------------------------------
    def _plan(self, file_regions: RegionList) -> Tuple[RegionList, np.ndarray]:
        if not file_regions.is_sorted():
            raise RegionError("hybrid I/O requires file regions sorted by offset")
        extents = cluster_extents(file_regions, self.gap_threshold)
        # Positions of every requested byte inside the extents' byte stream.
        ext_stream_base = np.concatenate(([0], np.cumsum(extents.lengths)[:-1]))
        return extents, ext_stream_base

    def _region_positions_in_extents(
        self, file_regions: RegionList, extents: RegionList, base: np.ndarray
    ) -> np.ndarray:
        """Flat indices of the requested bytes within the extent stream."""
        r = file_regions.drop_empty()
        which = np.searchsorted(extents.offsets, r.offsets, side="right") - 1
        start_in_stream = base[which] + (r.offsets - extents.offsets[which])
        return build_flat_indices(start_in_stream, r.lengths)

    # ------------------------------------------------------------------
    def read(self, f: PVFSFile, memory, mem_regions, file_regions):
        validate_transfer(memory, mem_regions, file_regions)
        if not file_regions.is_disjoint():
            raise RegionError("hybrid I/O requires disjoint file regions")
        extents, base = self._plan(file_regions)
        ext_stream = yield from f.read_list(extents)
        useful = file_regions.total_bytes
        unpack = self._memcpy_time(f, useful)
        if unpack > 0:
            yield f.client.sim.timeout(unpack)
        if memory is not None and ext_stream is not None:
            idx = self._region_positions_in_extents(file_regions, extents, base)
            self._scatter_memory(memory, mem_regions, ext_stream[idx])
        f.client.scope.add("hybrid_fetched_bytes", extents.total_bytes)
        f.client.scope.add("hybrid_wasted_bytes", extents.total_bytes - useful)

    def write(self, f: PVFSFile, memory, mem_regions, file_regions):
        """RMW only on extents that contain gaps; needs external
        serialization when several clients write one file concurrently."""
        validate_transfer(memory, mem_regions, file_regions)
        if not file_regions.is_disjoint():
            raise RegionError("hybrid I/O requires disjoint file regions")
        extents, base = self._plan(file_regions)
        has_gaps = extents.total_bytes > file_regions.total_bytes
        move = f.client.move_bytes
        if has_gaps:
            ext_stream = yield from f.read_list(extents)
        else:
            ext_stream = (
                np.empty(extents.total_bytes, dtype=np.uint8) if move else None
            )
        pack = self._memcpy_time(f, file_regions.total_bytes)
        if pack > 0:
            yield f.client.sim.timeout(pack)
        if memory is not None and ext_stream is not None:
            idx = self._region_positions_in_extents(file_regions, extents, base)
            ext_stream[idx] = self._gather_memory(memory, mem_regions)
        yield from f.write_list(extents, ext_stream)
        f.client.scope.add("hybrid_rmw_bytes", extents.total_bytes - file_regions.total_bytes if has_gaps else 0)

    def serialized_write(
        self,
        comm: Communicator,
        rank: int,
        f: PVFSFile,
        memory,
        mem_regions: RegionList,
        file_regions: RegionList,
    ):
        """Barrier-serialized variant for concurrent RMW writers."""
        for turn in range(comm.size):
            if turn == rank:
                yield from self.write(f, memory, mem_regions, file_regions)
            yield comm.barrier()
