"""Multiple I/O: one contiguous PVFS request per contiguous piece.

This is the baseline the paper attacks (Section 3.1): "the number of
contiguous I/O calls increases linearly with the number of contiguous
regions in the noncontiguous request".  The transfer is decomposed into
pieces that are contiguous in *both* memory and file (the pairwise walk of
the two region lists), and each piece becomes an independent blocking
``read``/``write`` call.

``pipeline_depth`` > 1 models an application using nonblocking contiguous
operations with a bounded number outstanding — an obvious "fix" for
multiple I/O the paper does not evaluate.  The ablation benchmarks show it
helps (latency overlaps) but cannot approach list I/O: every request still
pays full server-side processing, so the servers, not the round trips,
become the wall.
"""

from __future__ import annotations



from ..errors import ConfigError
from ..regions import RegionList, pair_pieces
from ..pvfs.client import PVFSFile
from .base import AccessMethod, validate_transfer

__all__ = ["MultipleIO"]


class MultipleIO(AccessMethod):
    """The traditional approach: one I/O request per contiguous region."""

    name = "multiple"

    def __init__(self, pipeline_depth: int = 1) -> None:
        if pipeline_depth < 1:
            raise ConfigError("pipeline_depth must be >= 1")
        self.pipeline_depth = pipeline_depth

    def _transfer(self, f: PVFSFile, memory, mem_regions, file_regions, kind: str):
        mem_off, file_off, lengths = pair_pieces(mem_regions, file_regions)
        pieces = list(zip(mem_off.tolist(), file_off.tolist(), lengths.tolist()))
        sim = f.client.sim

        if self.pipeline_depth == 1:
            for mo, fo, ln in pieces:
                if kind == "read":
                    data = yield from f.read(fo, ln)
                    if memory is not None and data is not None:
                        memory[mo : mo + ln] = data
                else:
                    data = memory[mo : mo + ln] if memory is not None else None
                    yield from f.write(fo, data, length=ln)
            return

        def one(mo, fo, ln):
            if kind == "read":
                data = yield from f.read(fo, ln)
                if memory is not None and data is not None:
                    memory[mo : mo + ln] = data
            else:
                data = memory[mo : mo + ln] if memory is not None else None
                yield from f.write(fo, data, length=ln)

        # Sliding window of outstanding nonblocking operations.
        window = []
        for piece in pieces:
            if len(window) >= self.pipeline_depth:
                oldest = window.pop(0)
                yield oldest
            window.append(sim.process(one(*piece)))
        if window:
            yield sim.all_of(window)

    def read(self, f: PVFSFile, memory, mem_regions, file_regions):
        validate_transfer(memory, mem_regions, file_regions)
        yield from self._transfer(f, memory, mem_regions, file_regions, "read")

    def write(self, f: PVFSFile, memory, mem_regions, file_regions):
        validate_transfer(memory, mem_regions, file_regions)
        yield from self._transfer(f, memory, mem_regions, file_regions, "write")

    @staticmethod
    def request_count(mem_regions: RegionList, file_regions: RegionList) -> int:
        """Requests this method will issue for a transfer (for accounting;
        disk/stripe-level fan-out not included)."""
        _, _, lengths = pair_pieces(mem_regions, file_regions)
        return int(lengths.size)
