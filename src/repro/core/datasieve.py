"""Data sieving I/O (Section 3.2 of the paper, after Thakur et al.).

Reads: move large contiguous windows (the *data sieving buffer*, 32 MB by
default) from file into client memory and extract the wanted regions there,
trading extra bytes on the wire for far fewer I/O requests.

Writes: PVFS has no file locks, so a noncontiguous sieving write must
read-modify-write each window, and concurrent writers must be serialized
externally — the paper does it with an ``MPI_Barrier()`` loop, reproduced
here as :meth:`DataSievingIO.serialized_write`.

The method requires file regions sorted by offset (as ROMIO does for
flattened datatypes); writes additionally require disjoint regions.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import RegionError
from ..mpi import Communicator
from ..regions import RegionList, pair_pieces
from ..pvfs.client import PVFSFile
from .base import AccessMethod, validate_transfer

__all__ = ["DataSievingIO", "sieve_spans"]


def sieve_spans(file_regions: RegionList, buffer_size: int):
    """Plan the contiguous windows a sieving transfer will issue.

    Returns ``(spans, useful)``: the trimmed read/write spans (one per
    non-empty buffer window, in file order) and the useful byte count in
    each.  Shared by :class:`DataSievingIO` and the analytic model so the
    two can never disagree about request counts.
    """
    if buffer_size <= 0:
        raise RegionError("sieve buffer size must be positive")
    r = file_regions.drop_empty()
    if not r.is_sorted():
        raise RegionError("data sieving requires file regions sorted by offset")
    if r.count == 0:
        return RegionList.empty(), np.empty(0, np.int64)
    start, end = r.extent
    span_off, span_len, useful = [], [], []
    w0 = start
    while w0 < end:
        w1 = min(w0 + buffer_size, end)
        clipped = r.clip(w0, w1)
        if clipped.count:
            lo, hi = clipped.extent
            span_off.append(lo)
            span_len.append(hi - lo)
            useful.append(clipped.total_bytes)
        w0 = w1
    return (
        RegionList(np.array(span_off, np.int64), np.array(span_len, np.int64)),
        np.array(useful, np.int64),
    )


class DataSievingIO(AccessMethod):
    """Buffered noncontiguous access through large contiguous requests."""

    name = "datasieve"

    def __init__(self, buffer_size: Optional[int] = None) -> None:
        #: None -> use the cluster's configured sieve buffer (paper: 32 MB).
        self.buffer_size = buffer_size

    def _buffer(self, f: PVFSFile) -> int:
        b = (
            self.buffer_size
            if self.buffer_size is not None
            else f.client.cluster.config.sieve_buffer_size
        )
        if b <= 0:
            raise RegionError("sieve buffer size must be positive")
        return b

    @staticmethod
    def _check_file_regions(file_regions: RegionList, for_write: bool) -> None:
        if not file_regions.is_sorted():
            raise RegionError(
                "data sieving requires file regions sorted by offset"
            )
        if for_write and not file_regions.is_disjoint():
            raise RegionError("data sieving writes require disjoint file regions")

    # ------------------------------------------------------------------
    def _windows(self, f, memory, mem_regions, file_regions):
        """Yield per-window work: (read_lo, read_hi, piece arrays).

        Pieces are contiguous in both memory and the file; each window's
        read span is trimmed to the pieces it actually contains, and pieces
        crossing a window edge are split.
        """
        mem_off, file_off, lengths = pair_pieces(mem_regions, file_regions)
        if lengths.size == 0:
            return
        file_end = file_off + lengths
        bsize = self._buffer(f)
        start, end = int(file_off[0]), int(file_end[-1])
        w0 = start
        while w0 < end:
            w1 = min(w0 + bsize, end)
            # pieces overlapping [w0, w1)
            first = int(np.searchsorted(file_end, w0, side="right"))
            last = int(np.searchsorted(file_off, w1, side="left"))
            if first >= last:
                w0 = w1
                continue
            fo = file_off[first:last].copy()
            fe = file_end[first:last].copy()
            mo = mem_off[first:last].copy()
            # clip boundary-crossing pieces to the window
            head_trim = np.maximum(w0 - fo, 0)
            fo += head_trim
            mo += head_trim
            fe = np.minimum(fe, w1)
            ln = fe - fo
            yield int(fo[0]), int(fe[-1]), mo, fo, ln
            w0 = w1

    # ------------------------------------------------------------------
    def read(self, f: PVFSFile, memory, mem_regions, file_regions):
        validate_transfer(memory, mem_regions, file_regions)
        self._check_file_regions(file_regions, for_write=False)
        sim = f.client.sim
        useful = 0
        fetched = 0
        for lo, hi, mo, fo, ln in self._windows(f, memory, mem_regions, file_regions):
            data = yield from f.read(lo, hi - lo)
            nbytes = int(ln.sum())
            useful += nbytes
            fetched += hi - lo
            extract = self._memcpy_time(f, nbytes)
            if extract > 0:
                yield sim.timeout(extract)
            if memory is not None and data is not None:
                for m, x, n in zip(mo.tolist(), fo.tolist(), ln.tolist()):
                    memory[m : m + n] = data[x - lo : x - lo + n]
        f.client.scope.add("sieve_fetched_bytes", fetched)
        f.client.scope.add("sieve_wasted_bytes", fetched - useful)

    def write(self, f: PVFSFile, memory, mem_regions, file_regions):
        """Read-modify-write.  UNSAFE under concurrency — wrap with
        :meth:`serialized_write` when several clients target one file."""
        validate_transfer(memory, mem_regions, file_regions)
        self._check_file_regions(file_regions, for_write=True)
        sim = f.client.sim
        move = f.client.move_bytes
        for lo, hi, mo, fo, ln in self._windows(f, memory, mem_regions, file_regions):
            span = hi - lo
            covered = int(ln.sum())
            if covered < span:
                # Holes inside the window: fetch existing bytes first.
                data = yield from f.read(lo, span)
            else:
                data = np.empty(span, dtype=np.uint8) if move else None
            overlay = self._memcpy_time(f, covered)
            if overlay > 0:
                yield sim.timeout(overlay)
            if memory is not None and data is not None:
                for m, x, n in zip(mo.tolist(), fo.tolist(), ln.tolist()):
                    data[x - lo : x - lo + n] = memory[m : m + n]
            yield from f.write(lo, data, length=span)
            f.client.scope.add("sieve_rmw_bytes", span - covered)

    def serialized_write(
        self,
        comm: Communicator,
        rank: int,
        f: PVFSFile,
        memory,
        mem_regions: RegionList,
        file_regions: RegionList,
    ):
        """The paper's barrier loop: in each round exactly one rank writes,
        then everybody synchronizes (Section 4.3.1)."""
        for turn in range(comm.size):
            if turn == rank:
                yield from self.write(f, memory, mem_regions, file_regions)
            yield comm.barrier()
