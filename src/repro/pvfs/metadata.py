"""File metadata kept by the PVFS manager daemon.

The manager owns the namespace (path -> metadata) and the striping
parameters of every file; it never touches file data (paper Section 2: "The
manager does not participate in read/write operations").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..config import StripeParams
from ..errors import FileExistsError_, NoSuchFileError

__all__ = ["FileMetadata", "Namespace"]

_file_ids = itertools.count(1)


@dataclass
class FileMetadata:
    """Everything the manager knows about one file."""

    path: str
    stripe: StripeParams
    file_id: int = field(default_factory=lambda: next(_file_ids))
    size: int = 0  # logical EOF (highest byte ever written + 1)
    open_count: int = 0

    def grow_to(self, end: int) -> None:
        if end > self.size:
            self.size = end

    @property
    def replicas(self) -> int:
        """Copies per stripe (chain replication); 1 = the paper's layout."""
        return self.stripe.replicas


class Namespace:
    """The manager's path table."""

    def __init__(self, default_stripe: StripeParams) -> None:
        self.default_stripe = default_stripe
        self._by_path: Dict[str, FileMetadata] = {}
        self._by_id: Dict[int, FileMetadata] = {}

    def __len__(self) -> int:
        return len(self._by_path)

    def __contains__(self, path: str) -> bool:
        return path in self._by_path

    def create(
        self,
        path: str,
        stripe: Optional[StripeParams] = None,
        exclusive: bool = False,
    ) -> FileMetadata:
        if path in self._by_path:
            if exclusive:
                raise FileExistsError_(f"file exists: {path}")
            return self._by_path[path]
        meta = FileMetadata(path=path, stripe=stripe or self.default_stripe)
        self._by_path[path] = meta
        self._by_id[meta.file_id] = meta
        return meta

    def lookup(self, path: str) -> FileMetadata:
        try:
            return self._by_path[path]
        except KeyError:
            raise NoSuchFileError(f"no such file: {path}") from None

    def by_id(self, file_id: int) -> FileMetadata:
        try:
            return self._by_id[file_id]
        except KeyError:
            raise NoSuchFileError(f"no such file id: {file_id}") from None

    def unlink(self, path: str) -> FileMetadata:
        meta = self.lookup(path)
        del self._by_path[path]
        del self._by_id[meta.file_id]
        return meta
