"""Shared replication state: fencing tokens, dirty ranges, failover logs.

The paper's PVFS keeps no redundancy; this module is the coordination
state for the chain-replication extension (``StripeParams.replicas > 1``):

* **Fencing** — when a client's retry budget exhausts against a daemon,
  the manager *fences* it with a monotonically increasing epoch token
  (PVC-style STONITH: an alive-but-unresponsive zombie is forcibly
  killed, and a fenced daemon refuses every request with
  :class:`~repro.errors.ServerFenced` until it rejoins).  The fenced set
  here models the *republished stripe map*: clients consult it before
  routing, so requests to a known-fenced primary re-route to a replica
  without burning a retry budget first.
* **Dirty ranges** — writes a fenced chain member missed, recorded by
  the writing client.  A restarted daemon replays them from a live chain
  member (the resync protocol in :meth:`repro.pvfs.iod.IOD._rejoin`)
  before the manager unfences it.
* **Logs** — fence/unfence events, per-request failover latencies, and a
  goodput log of request completions, recorded only when
  :attr:`record_detail` is set (the chaos runner's degraded-window
  accounting); counters stay on the cluster's :class:`Counters` either
  way.

The state is pure bookkeeping — it owns no simulation processes and is
only consulted from code paths gated on ``replicas > 1``, so unreplicated
clusters remain bit-identical to the seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..regions import RegionList

__all__ = ["DirtyRange", "FenceView", "ReplicationState"]


@dataclass
class DirtyRange:
    """One write a fenced chain member missed (physical runs, one slice)."""

    file_id: int
    #: Primary daemon of the slice — the store key of a replica copy is
    #: ``(file_id, primary)``; the primary's own copy uses the bare id.
    primary: int
    #: Full replica chain of the slice (primary first) — resync sources.
    chain: Tuple[int, ...]
    #: Physical runs within the stripe file (identical on every copy).
    regions: RegionList


@dataclass(frozen=True)
class FenceView:
    """Manager reply to ``report_failure``/``rejoin``: the published map."""

    epoch: int
    fenced: Tuple[int, ...]


class ReplicationState:
    """Cluster-wide replication/fencing bookkeeping (no sim processes)."""

    def __init__(self, replicas: int, ack_policy: str) -> None:
        self.replicas = replicas
        self.ack_policy = ack_policy
        #: Monotonic fencing-token counter; bumped on every fence.
        self.epoch = 0
        self._fenced: Dict[int, int] = {}  # iod -> epoch it was fenced at
        self._dirty: Dict[int, List[DirtyRange]] = {}
        #: (sim time, description) fence/resync transitions (chaos --events).
        self.events: List[Tuple[float, str]] = []
        #: (t, iod, epoch) fence / unfence transitions, structured.
        self.fences: List[Tuple[float, int, int]] = []
        self.unfences: List[Tuple[float, int, int]] = []
        #: Enable the per-request logs below (chaos runner only — unbounded
        #: growth would be rude in long healthy runs).
        self.record_detail = False
        #: (t_detected, t_completed, primary, client) per re-routed request.
        self.failover_log: List[Tuple[float, float, int, int]] = []
        #: (t_completed, bytes) per logical request — degraded-window goodput.
        self.goodput_log: List[Tuple[float, int]] = []

    # -- fencing ---------------------------------------------------------
    def is_fenced(self, iod: int) -> bool:
        return iod in self._fenced

    def fenced_servers(self) -> Tuple[int, ...]:
        return tuple(sorted(self._fenced))

    def fence(self, iod: int, now: float) -> Optional[int]:
        """Fence ``iod`` with a fresh epoch; None when already fenced."""
        if iod in self._fenced:
            return None
        self.epoch += 1
        self._fenced[iod] = self.epoch
        self.events.append((now, f"iod{iod} fenced (epoch {self.epoch})"))
        self.fences.append((now, iod, self.epoch))
        return self.epoch

    def unfence(self, iod: int, now: float) -> None:
        epoch = self._fenced.pop(iod, None)
        if epoch is not None:
            self.events.append((now, f"iod{iod} rejoined (epoch {epoch} lifted)"))
            self.unfences.append((now, iod, epoch))

    def view(self) -> FenceView:
        return FenceView(epoch=self.epoch, fenced=self.fenced_servers())

    # -- dirty-range tracking -------------------------------------------
    def mark_dirty(
        self,
        iod: int,
        file_id: int,
        primary: int,
        chain: Tuple[int, ...],
        regions: RegionList,
    ) -> None:
        """Record a write chain member ``iod`` missed while fenced/dead."""
        self._dirty.setdefault(iod, []).append(
            DirtyRange(file_id=file_id, primary=primary, chain=chain, regions=regions)
        )

    def dirty_for(self, iod: int) -> List[DirtyRange]:
        """The live dirty list for ``iod`` (resync mutates it in place)."""
        return self._dirty.setdefault(iod, [])

    def dirty_bytes(self, iod: int) -> int:
        return sum(e.regions.total_bytes for e in self._dirty.get(iod, []))

    # -- logs ------------------------------------------------------------
    def note(self, now: float, what: str) -> None:
        self.events.append((now, what))

    def note_failover(
        self, t_detected: float, t_completed: float, primary: int, client: int
    ) -> None:
        if self.record_detail:
            self.failover_log.append((t_detected, t_completed, primary, client))

    def note_goodput(self, t_completed: float, nbytes: int) -> None:
        if self.record_detail:
            self.goodput_log.append((t_completed, nbytes))

    def __repr__(self) -> str:
        return (
            f"<ReplicationState R={self.replicas} ack={self.ack_policy} "
            f"epoch={self.epoch} fenced={self.fenced_servers()}>"
        )
