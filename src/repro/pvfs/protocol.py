"""Wire protocol records and byte accounting.

Clients and daemons exchange Python objects through the simulator, but every
message carries an explicit *wire size* so the network model charges the
right serialization time.  The sizes follow the paper's description:

* Every I/O request has a fixed header (file handle, operation, striping
  parameters, one offset/length pair) — :data:`REQUEST_HEADER_BYTES`.
* A *list* request additionally carries trailing data holding the file
  offsets and lengths of each described region
  (:data:`BYTES_PER_REGION` = two 8-byte integers per region).  With the
  64-region cap, header + trailing data fit one 1500-byte Ethernet frame —
  exactly the paper's design point (Section 3.3).
* Write requests carry their data in-band after the trailing data; read
  responses carry data after a small response header.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import ProtocolError
from ..regions import RegionList
from ..simulate import Event

__all__ = [
    "REQUEST_HEADER_BYTES",
    "RESPONSE_HEADER_BYTES",
    "BYTES_PER_REGION",
    "MGMT_REQUEST_BYTES",
    "MGMT_RESPONSE_BYTES",
    "request_wire_bytes",
    "response_wire_bytes",
    "IORequest",
    "ManagerRequest",
]

#: Fixed I/O request header: handle, op code, flags, striping params, and
#: one inline (offset, length) pair for contiguous requests.
REQUEST_HEADER_BYTES = 64
#: Response header: status, error code, byte count.
RESPONSE_HEADER_BYTES = 40
#: Trailing data per described region: int64 offset + int64 length.
BYTES_PER_REGION = 16
#: Metadata operations are small fixed-size messages.
MGMT_REQUEST_BYTES = 256
MGMT_RESPONSE_BYTES = 256

_request_ids = itertools.count()


def request_wire_bytes(n_regions: int, data_bytes: int = 0) -> int:
    """Application payload of an I/O request.

    A contiguous request (``n_regions == 1``) describes its single region in
    the header; list requests add trailing data for every region.
    """
    if n_regions < 1:
        raise ProtocolError("a request must describe at least one region")
    if data_bytes < 0:
        raise ProtocolError("negative data_bytes")
    trailing = BYTES_PER_REGION * n_regions if n_regions > 1 else 0
    return REQUEST_HEADER_BYTES + trailing + data_bytes


def response_wire_bytes(data_bytes: int = 0) -> int:
    if data_bytes < 0:
        raise ProtocolError("negative data_bytes")
    return RESPONSE_HEADER_BYTES + data_bytes


@dataclass
class IORequest:
    """One request as received by an I/O daemon.

    ``regions`` are *physical* runs in the server's stripe file, in request
    stream order.  ``n_described`` is how many regions the trailing data
    describes (for wire sizing — it equals ``regions.count``).  For writes,
    ``data`` is the in-band payload (or ``None`` when the run is
    timing-only).  ``response`` is the event the client waits on; the iod
    succeeds it with the read data / write ack.
    """

    kind: str  # "read" | "write"
    file_id: int
    regions: RegionList
    client_node: object  # network Node of the requesting client
    response: Event
    data: Optional[np.ndarray] = None
    #: When set, the trailing data describes the regions compactly in this
    #: many 16-byte descriptor slots (e.g. a vector datatype uses 2 slots
    #: regardless of region count) — the Section 5 "datatype request"
    #: extension.  ``None`` means one slot per region (plain list I/O).
    wire_regions: Optional[int] = None
    #: Replication: when set, this request targets the *replica copy* of
    #: the stripes whose primary is daemon ``replica_of``, stored on the
    #: receiving daemon under the ``(file_id, replica_of)`` key (see
    #: :attr:`store_key`).  ``None`` = the primary copy — the only case
    #: that exists without replication, keeping the paper path unchanged.
    replica_of: Optional[int] = None
    request_id: int = field(default_factory=lambda: next(_request_ids))
    #: Simulation time the request entered the iod's inbox (set by the
    #: client; lets the tracer separate queue wait from service time).
    enqueued_at: Optional[float] = None

    _KINDS = ("read", "write", "fsync")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ProtocolError(f"unknown request kind {self.kind!r}")
        if self.wire_regions is not None and self.wire_regions < 1:
            raise ProtocolError("wire_regions must be >= 1 when given")
        if self.kind == "write" and self.data is not None:
            if self.data.size != self.regions.total_bytes:
                raise ProtocolError(
                    f"write payload {self.data.size} B != region volume "
                    f"{self.regions.total_bytes} B"
                )

    @property
    def n_described(self) -> int:
        return self.regions.count

    @property
    def store_key(self):
        """Byte-store / disk-model key on the receiving daemon: the bare
        ``file_id`` for primary copies, ``(file_id, primary)`` for replica
        copies — mirrors live at the same physical offsets as the primary
        stripes, so they need their own namespace on the host daemon."""
        if self.replica_of is None:
            return self.file_id
        return (self.file_id, self.replica_of)

    @property
    def data_bytes(self) -> int:
        """In-band data volume (writes carry data; reads carry none)."""
        return self.regions.total_bytes if self.kind == "write" else 0

    @property
    def wire_bytes(self) -> int:
        slots = self.wire_regions if self.wire_regions is not None else self.n_described
        return request_wire_bytes(max(slots, 1), self.data_bytes)

    @property
    def response_bytes(self) -> int:
        data = self.regions.total_bytes if self.kind == "read" else 0
        return response_wire_bytes(data)


@dataclass
class ManagerRequest:
    """A metadata operation (open / create / close / stat / set_size)."""

    op: str
    path: Optional[str] = None
    file_id: Optional[int] = None
    client_node: object = None
    response: Event = None
    create: bool = False
    size_hint: int = 0
    #: User-controlled striping for create (paper Figure 2: "files in PVFS
    #: can be striped according to user parameters").  None = fs default.
    stripe: object = None
    #: Target daemon of a fencing operation (``report_failure`` names the
    #: unresponsive daemon; ``rejoin`` the resynced one asking back in).
    iod: Optional[int] = None

    _OPS = (
        "open",
        "close",
        "stat",
        "create",
        "set_size",
        "unlink",
        "report_failure",
        "rejoin",
    )

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise ProtocolError(f"unknown manager op {self.op!r}")

    @property
    def wire_bytes(self) -> int:
        return MGMT_REQUEST_BYTES

    @property
    def response_bytes(self) -> int:
        return MGMT_RESPONSE_BYTES
