"""Cluster builder: wires the simulator, network, storage, and daemons.

:class:`Cluster` assembles a complete simulated deployment from a
:class:`~repro.config.ClusterConfig` and offers the workload runner the
experiment harness drives::

    cluster = Cluster.build(ClusterConfig.chiba_city(n_clients=8))

    def workload(client):
        f = yield from client.open("/data", create=True)
        yield from f.write(0, payload)
        yield from f.close()

    result = cluster.run_workload(workload)
    print(result.elapsed, result.counters["client.0.logical_requests"])
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..config import ClusterConfig
from ..errors import ConfigError
from ..faults import FaultInjector
from ..network import Network
from ..simulate import Counters, Simulator, Tracer
from ..storage import ByteStore, Disk, NullByteStore
from .client import PVFSClient
from .iod import IOD
from .manager import Manager
from .metadata import Namespace
from .replication import ReplicationState

__all__ = ["Cluster", "WorkloadResult"]


@dataclass
class WorkloadResult:
    """Outcome of :meth:`Cluster.run_workload`."""

    #: Simulated seconds from workload start until the *last* client finished
    #: (parallel I/O completes when the slowest process completes).
    elapsed: float
    #: Per-client completion times (simulated seconds).
    client_times: List[float]
    #: Values returned by each client's workload generator.
    client_returns: list
    #: Shared counters (request counts, byte counts, per-daemon stats).
    counters: Counters

    @property
    def total_logical_requests(self) -> int:
        return int(
            sum(
                v
                for k, v in self.counters.items()
                if k.startswith("client.") and k.endswith(".logical_requests")
            )
        )

    @property
    def total_server_messages(self) -> int:
        return int(
            sum(
                v
                for k, v in self.counters.items()
                if k.startswith("client.") and k.endswith(".server_messages")
            )
        )


class Cluster:
    """A fully wired simulated PVFS deployment."""

    def __init__(
        self, config: ClusterConfig, move_bytes: bool = True, trace: bool = False
    ) -> None:
        self.config = config
        self.move_bytes = move_bytes
        self.sim = Simulator()
        self.counters = Counters()
        self.tracer = Tracer(enabled=trace)
        self.net = Network(self.sim, config.network, self.counters, tracer=self.tracer)
        self.namespace = Namespace(config.stripe)

        # --- nodes -------------------------------------------------------
        iod_nodes = [self.net.add_node(f"iod{i}") for i in range(config.n_iods)]
        client_nodes = [self.net.add_node(f"client{i}") for i in range(config.n_clients)]
        if config.manager_on_iod0:
            # The paper's setup: "One of the I/O nodes doubled as both a
            # manager and an I/O server."
            manager_node = iod_nodes[0]
        else:
            manager_node = self.net.add_node("manager")

        # --- daemons -----------------------------------------------------
        self.manager = Manager(
            self.sim, self.net, manager_node, self.namespace, config.costs, self.counters
        )
        self.iods: List[IOD] = []
        for i, node in enumerate(iod_nodes):
            disk = Disk(config.disk, config.cache)
            store: ByteStore = ByteStore() if move_bytes else NullByteStore()
            self.iods.append(
                IOD(
                    self.sim,
                    self.net,
                    node,
                    i,
                    disk,
                    store,
                    config.costs,
                    self.counters,
                    move_bytes=move_bytes,
                    tracer=self.tracer,
                    seed=config.seed,
                )
            )

        # --- replication -------------------------------------------------
        #: Shared fencing/dirty-range bookkeeping.  Always present (it owns
        #: no simulation processes, so unreplicated clusters stay
        #: bit-identical to the seed); only consulted on replicas>1 paths.
        self.replication = ReplicationState(
            config.stripe.resolve_replicas(config.n_iods), config.ack_policy
        )
        self.manager.replication = self.replication
        self.manager.iods = self.iods
        self.manager.tracer = self.tracer
        for iod in self.iods:
            iod.cluster = self

        # --- clients -----------------------------------------------------
        self.clients: List[PVFSClient] = [
            PVFSClient(self, i, node) for i, node in enumerate(client_nodes)
        ]

        # --- faults ------------------------------------------------------
        plan = config.faults.plan
        plan.validate_against(config.n_iods, [n.name for n in self.net.nodes()])
        for s in plan.stragglers():
            self.iods[s.iod].service_scale = s.scale
        #: The running :class:`~repro.faults.FaultInjector`, or ``None``
        #: when the plan schedules nothing (so fault-free clusters carry no
        #: extra simulation processes and stay bit-identical to the seed).
        self.fault_injector: Optional[FaultInjector] = (
            FaultInjector(self, plan) if plan.scheduled() else None
        )

    # ----------------------------------------------------------------
    @classmethod
    def build(
        cls,
        config: Optional[ClusterConfig] = None,
        move_bytes: bool = True,
        trace: bool = False,
        **config_overrides,
    ) -> "Cluster":
        """Build a cluster from a config (default: the paper's Chiba City
        setup), optionally overriding individual config fields.

        ``trace=True`` enables per-request span collection — read
        ``cluster.tracer.format_summary()`` after a workload.
        """
        cfg = config or ClusterConfig.chiba_city()
        if config_overrides:
            cfg = cfg.with_(**config_overrides)
        return cls(cfg, move_bytes=move_bytes, trace=trace)

    def client(self, index: int) -> PVFSClient:
        return self.clients[index]

    # ----------------------------------------------------------------
    def run_workload(
        self,
        workload: Callable,
        clients: Optional[Sequence[int]] = None,
        until: Optional[float] = None,
    ) -> WorkloadResult:
        """Run ``workload(client)`` as a process on each selected client.

        ``workload`` must be a generator function taking a
        :class:`~repro.pvfs.client.PVFSClient`.  All clients start at the
        current simulation time; the result's ``elapsed`` is the time until
        the slowest one finishes (the paper's reported quantity).
        """
        selected = (
            self.clients if clients is None else [self.clients[i] for i in clients]
        )
        if not selected:
            raise ConfigError("run_workload needs at least one client")
        start = self.sim.now
        finish_times: Dict[int, float] = {}

        def timed(client):
            value = yield from workload(client)
            finish_times[client.index] = self.sim.now
            return value

        procs = [
            self.sim.process(timed(c), name=f"workload.client{c.index}")
            for c in selected
        ]
        done = self.sim.all_of(procs)
        self.sim.run(until=until)
        if not done.triggered:
            raise ConfigError(
                "workload did not complete (simulation drained or hit `until`); "
                f"{sum(p.triggered for p in procs)}/{len(procs)} clients finished"
            )
        returns = [p.value for p in procs]
        times = [finish_times[c.index] - start for c in selected]
        return WorkloadResult(
            elapsed=max(times),
            client_times=times,
            client_returns=returns,
            counters=self.counters,
        )

    # ----------------------------------------------------------------
    def utilization_report(self) -> str:
        """Markdown summary of daemon and link utilization so far.

        Percentages are fractions of the elapsed simulated time the
        resource was busy — useful for spotting the bottleneck a benchmark
        actually exercised (server CPU+disk vs network links).
        """
        now = self.sim.now
        lines = [
            "### cluster utilization",
            "",
            f"simulated time: {now:.3f} s",
            "",
            "| daemon | requests | regions | busy | tx link | rx link |",
            "|---|---|---|---|---|---|",
        ]
        for iod in self.iods:
            busy = iod.busy_time / now if now > 0 else 0.0
            lines.append(
                f"| iod{iod.index} | {iod.requests_served} | {iod.regions_served} "
                f"| {busy:.1%} | {iod.node.tx.utilization(now):.1%} "
                f"| {iod.node.rx.utilization(now):.1%} |"
            )
        lines.append(
            f"| manager | {self.manager.ops_served} | - | - | - | - |"
        )
        lines.append("")
        lines.append("| client | tx link | rx link | requests |")
        lines.append("|---|---|---|---|")
        for c in self.clients:
            reqs = int(self.counters.get(f"client.{c.index}.logical_requests", 0))
            lines.append(
                f"| client{c.index} | {c.node.tx.utilization(now):.1%} "
                f"| {c.node.rx.utilization(now):.1%} | {reqs} |"
            )
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        return (
            f"<Cluster clients={self.config.n_clients} iods={self.config.n_iods} "
            f"stripe={self.config.stripe.stripe_size}>"
        )
