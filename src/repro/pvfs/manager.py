"""The PVFS manager daemon: metadata operations only.

Clients contact the manager to open, create, stat, and close files; the
manager replies with file metadata (handle, striping parameters, size, and
implicitly the I/O daemon locations).  It never participates in data
transfer (paper Section 2), so its only performance role in the benchmarks
is the open/close cost visible in the tiled-visualization figure (Fig. 17).

Under replication the manager additionally arbitrates membership: a
``report_failure`` op from a client whose retry budget exhausted *fences*
the named daemon with a fresh epoch token (forcibly killing an
alive-but-unresponsive zombie, PVC STONITH style) and republishes the
stripe map (the shared :class:`~repro.pvfs.replication.ReplicationState`
clients consult for routing); a ``rejoin`` op from a resynced daemon
lifts the fence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import CostModel, StripeParams
from ..errors import PVFSError
from ..network import Network, Node
from ..simulate import Counters, Simulator, Store
from .metadata import FileMetadata, Namespace
from .protocol import ManagerRequest

__all__ = ["Manager"]


@dataclass(frozen=True)
class _MetaReply:
    """Immutable snapshot sent back to clients on open/stat."""

    file_id: int
    path: str
    stripe: StripeParams
    size: int


class Manager:
    """Single-threaded metadata daemon with a FIFO inbox."""

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        node: Node,
        namespace: Namespace,
        costs: CostModel,
        counters: Optional[Counters] = None,
    ) -> None:
        self.sim = sim
        self.net = net
        self.node = node
        self.namespace = namespace
        self.costs = costs
        self.counters = counters if counters is not None else Counters()
        self.inbox: Store = Store(sim, name="manager.inbox")
        self.ops_served = 0
        #: Replication wiring, set by :class:`~repro.pvfs.cluster.Cluster`:
        #: the shared fencing/dirty-range state, the daemon list (for
        #: STONITH on fence / unfence on rejoin), and the tracer.
        self.replication = None
        self.iods = []
        self.tracer = None
        sim.process(self._run(), name="manager")

    # ------------------------------------------------------------------
    def _run(self):
        while True:
            req: ManagerRequest = yield self.inbox.get()
            yield self.sim.timeout(self.costs.manager_op_cost)
            self.ops_served += 1
            self.counters.add(f"manager.op.{req.op}")
            try:
                result = self._execute(req)
            except PVFSError as exc:
                self.sim.process(self._respond(req, exc, failed=True))
                continue
            self.sim.process(self._respond(req, result, failed=False))

    def _execute(self, req: ManagerRequest):
        ns = self.namespace
        if req.op in ("open", "create"):
            if req.create or req.op == "create":
                meta = ns.create(req.path, stripe=req.stripe)
            else:
                meta = ns.lookup(req.path)
            meta.open_count += 1
            return self._snapshot(meta)
        if req.op == "stat":
            return self._snapshot(ns.lookup(req.path))
        if req.op == "close":
            meta = ns.by_id(req.file_id)
            meta.open_count = max(meta.open_count - 1, 0)
            if req.size_hint:
                meta.grow_to(req.size_hint)
            return True
        if req.op == "set_size":
            ns.by_id(req.file_id).grow_to(req.size_hint)
            return True
        if req.op == "unlink":
            ns.unlink(req.path)
            return True
        if req.op == "report_failure":
            return self._fence(req.iod)
        if req.op == "rejoin":
            return self._rejoin(req.iod)
        raise PVFSError(f"unhandled op {req.op}")  # pragma: no cover

    # -- fencing (replication only) -------------------------------------
    def _fence(self, iod_index: int):
        """Fence an unresponsive daemon and republish the stripe map."""
        state = self.replication
        if state is None:
            raise PVFSError("replication is not enabled on this cluster")
        now = self.sim.now
        epoch = state.fence(iod_index, now)
        if epoch is not None:  # first report wins; later ones are no-ops
            self.iods[iod_index].fence(epoch)
            self.counters.add("faults.fences")
            if self.tracer is not None and self.tracer.enabled:
                self.tracer.record(
                    "fault.fence", f"iod{iod_index}", now, now,
                    iod=iod_index, epoch=epoch,
                )
        return state.view()

    def _rejoin(self, iod_index: int):
        """Lift the fence of a daemon that finished its resync.

        Refused (the daemon stays fenced) while any dirty range is still
        recorded for it — a write can race the rejoin round-trip, and a
        replica readmitted with missed writes would serve stale bytes.
        The daemon sees itself still fenced in the returned view, copies
        the new arrivals, and asks again.
        """
        state = self.replication
        if state is None:
            raise PVFSError("replication is not enabled on this cluster")
        dirty = state.dirty_bytes(iod_index)
        if dirty > 0:
            state.note(
                self.sim.now,
                f"iod{iod_index} rejoin refused ({dirty} B still dirty)",
            )
            self.counters.add("faults.rejoins_refused")
            return state.view()
        state.unfence(iod_index, self.sim.now)
        self.iods[iod_index].unfence()
        self.counters.add("faults.rejoins")
        return state.view()

    @staticmethod
    def _snapshot(meta: FileMetadata) -> _MetaReply:
        return _MetaReply(
            file_id=meta.file_id, path=meta.path, stripe=meta.stripe, size=meta.size
        )

    def _respond(self, req: ManagerRequest, result, failed: bool):
        yield from self.net.transfer(self.node, req.client_node, req.response_bytes)
        if failed:
            req.response.fail(result)
        else:
            req.response.succeed(result)
