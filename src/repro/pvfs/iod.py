"""The PVFS I/O daemon (iod): serves read/write requests for its stripes.

The iod is modeled as the paper describes it behaving: a single service loop
that takes one request at a time from its inbox, pays a *per-request* parse
cost plus a *per-described-region* cost (decoding the trailing data of a
list request), performs the disk work, and hands the response to an
asynchronous sender so the next request can be parsed while data streams
out of the TX link.

This is where the multiple-I/O pathology lives: every contiguous request
pays ``iod_request_cost`` and (for writes) ``iod_write_commit_cost``, so a
noncontiguous access issued as N tiny requests costs N times the fixed
overheads, while a list request amortizes them over up to 64 regions.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import CostModel
from ..errors import ProtocolError
from ..network import Network, Node
from ..simulate import Counters, Simulator, Store
from ..storage import ByteStore, Disk
from .protocol import IORequest

__all__ = ["IOD"]


class IOD:
    """One I/O daemon bound to a node, a disk model, and a byte store."""

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        node: Node,
        index: int,
        disk: Disk,
        store: ByteStore,
        costs: CostModel,
        counters: Optional[Counters] = None,
        move_bytes: bool = True,
        tracer=None,
        seed: int = 0,
    ) -> None:
        self.sim = sim
        self.net = net
        self.node = node
        self.index = index
        self.disk = disk
        self.store = store
        self.costs = costs
        self.counters = counters if counters is not None else Counters()
        self.move_bytes = move_bytes
        self.tracer = tracer
        self._rng = np.random.default_rng(seed * 1009 + index) if costs.jitter else None
        self.inbox: Store = Store(sim, name=f"iod{index}.inbox")
        self.requests_served = 0
        self.regions_served = 0
        self.busy_time = 0.0
        #: Optional observability hook with ``on_busy(t)`` / ``on_idle(t)``
        #: marking request-service intervals (see :mod:`repro.obs.monitor`).
        self.monitor = None
        #: Service-time multiplier for fault/straggler injection: 1.0 is a
        #: healthy daemon; 4.0 models a degraded node (failing disk,
        #: swapping, cpu contention).  May be changed between workloads.
        self.service_scale = 1.0
        sim.process(self._run(), name=f"iod{index}")

    def _scale(self) -> float:
        """Per-request service multiplier: straggler scale x jitter draw."""
        s = self.service_scale
        if self._rng is not None:
            s *= 1.0 + self.costs.jitter * (2.0 * self._rng.random() - 1.0)
        return s

    # ------------------------------------------------------------------
    def _run(self):
        sim = self.sim
        costs = self.costs
        scope = self.counters.scoped(f"iod.{self.index}")
        while True:
            req: IORequest = yield self.inbox.get()
            started = sim.now
            n = req.n_described
            scale = self._scale()
            # Request parsing + trailing-data decode.
            yield sim.timeout(
                (costs.iod_request_cost + costs.iod_region_cost * n) * scale
            )
            if req.kind == "fsync":
                # Flush this disk's dirty pages to media before acking.
                flush_t = self.disk.flush_time() * scale
                if flush_t > 0:
                    t_disk = sim.now
                    yield sim.timeout(flush_t)
                    self._note_disk(t_disk, sim.now, "flush", 0)
                scope.add("fsyncs")
                self.sim.process(
                    self._respond(req, True), name=f"iod{self.index}.respond"
                )
            elif req.kind == "read":
                disk_t = self.disk.read_time(req.file_id, req.regions) * scale
                if disk_t > 0:
                    t_disk = sim.now
                    yield sim.timeout(disk_t)
                    self._note_disk(t_disk, sim.now, "read", req.regions.total_bytes)
                data = self.store.read(req.file_id, req.regions) if self.move_bytes else None
                scope.add("read_requests")
                scope.add("read_bytes", req.regions.total_bytes)
                self.sim.process(
                    self._respond(req, data), name=f"iod{self.index}.respond"
                )
            else:  # write
                disk_t = self.disk.write_time(req.file_id, req.regions)
                disk_t += costs.iod_write_commit_cost
                if self.disk.cache.cfg.write_through:
                    # Synchronous small overwrites pay a read-modify-write of
                    # the enclosing page (see CostModel.small_write_penalty).
                    runs = req.regions.coalesced()
                    n_small = int((runs.lengths < costs.small_write_threshold).sum())
                    disk_t += n_small * costs.small_write_penalty
                t_disk = sim.now
                yield sim.timeout(disk_t * scale)
                self._note_disk(t_disk, sim.now, "write", req.regions.total_bytes)
                if self.move_bytes and req.data is not None:
                    self.store.write(req.file_id, req.regions, req.data)
                scope.add("write_requests")
                scope.add("write_bytes", req.regions.total_bytes)
                self.sim.process(
                    self._respond(req, True), name=f"iod{self.index}.respond"
                )
            self.requests_served += 1
            self.regions_served += n
            self.busy_time += sim.now - started
            if self.monitor is not None:
                self.monitor.on_busy(started)
                self.monitor.on_idle(sim.now)
            scope.add("regions", n)
            if self.tracer is not None and self.tracer.enabled:
                if req.enqueued_at is not None:
                    self.tracer.record(
                        "iod.queue_wait", f"iod{self.index}", req.enqueued_at, started
                    )
                self.tracer.record(
                    "iod.service",
                    req.kind,
                    started,
                    sim.now,
                    iod=self.index,
                    regions=n,
                    nbytes=req.regions.total_bytes,
                )

    def _note_disk(self, start: float, end: float, kind: str, nbytes: int) -> None:
        """Account one disk access window (utilization + optional span)."""
        if end <= start:
            return
        self.disk.note_busy(start, end)
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.record(
                "disk.busy", kind, start, end, iod=self.index, nbytes=nbytes
            )

    def _respond(self, req: IORequest, payload):
        yield from self.net.transfer(self.node, req.client_node, req.response_bytes)
        req.response.succeed(payload)

    def __repr__(self) -> str:
        return f"<IOD {self.index} served={self.requests_served}>"
