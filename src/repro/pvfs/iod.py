"""The PVFS I/O daemon (iod): serves read/write requests for its stripes.

The iod is modeled as the paper describes it behaving: a single service loop
that takes one request at a time from its inbox, pays a *per-request* parse
cost plus a *per-described-region* cost (decoding the trailing data of a
list request), performs the disk work, and hands the response to an
asynchronous sender so the next request can be parsed while data streams
out of the TX link.

This is where the multiple-I/O pathology lives: every contiguous request
pays ``iod_request_cost`` and (for writes) ``iod_write_commit_cost``, so a
noncontiguous access issued as N tiny requests costs N times the fixed
overheads, while a list request amortizes them over up to 64 regions.

Crash/recovery semantics (the robustness extension — the paper's PVFS has
none: "if an I/O server goes down, the file system hangs with it"):

* :meth:`crash` kills the daemon mid-flight: the service loop stops, the
  request currently in service and everything queued in the inbox fail with
  :class:`~repro.errors.ServerCrashed`, and in-flight response
  transmissions are aborted.  Requests delivered while down are refused
  immediately (a connection reset).
* :meth:`restart` brings it back with a **cold page cache**; file contents
  are re-served from the byte store, which holds every acknowledged write
  (the ack is only sent after the store is updated), so durability matches
  a local fs whose write(2) returned.  Unacknowledged writes rely on
  idempotent client replay.

Replication adds *fencing* on top (``StripeParams.replicas > 1``): once
the manager fences the daemon with an epoch token, every request —
including ones an alive zombie might still try to serve — is refused with
:class:`~repro.errors.ServerFenced`, so stale acks are impossible.  A
restarted fenced daemon runs the **resync protocol** (:meth:`_rejoin`):
it copies every dirty range it missed from a live chain member over the
real network/disk paths, then asks the manager to lift the fence.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..config import CostModel
from ..errors import FaultError, ServerCrashed, ServerFenced
from ..network import Network, Node
from ..simulate import Counters, Event, Interrupt, Process, Simulator, Store
from ..storage import ByteStore, Disk
from .protocol import IORequest, ManagerRequest

__all__ = ["IOD"]


class IOD:
    """One I/O daemon bound to a node, a disk model, and a byte store."""

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        node: Node,
        index: int,
        disk: Disk,
        store: ByteStore,
        costs: CostModel,
        counters: Optional[Counters] = None,
        move_bytes: bool = True,
        tracer=None,
        seed: int = 0,
    ) -> None:
        self.sim = sim
        self.net = net
        self.node = node
        self.index = index
        self.disk = disk
        self.store = store
        self.costs = costs
        self.counters = counters if counters is not None else Counters()
        self.move_bytes = move_bytes
        self.tracer = tracer
        self._rng = np.random.default_rng(seed * 1009 + index) if costs.jitter else None
        self.inbox: Store = Store(sim, name=f"iod{index}.inbox")
        self.scope = self.counters.scoped(f"iod.{index}")
        self.requests_served = 0
        self.regions_served = 0
        self.busy_time = 0.0
        #: Optional observability hook with ``on_busy(t)`` / ``on_idle(t)``
        #: marking request-service intervals (see :mod:`repro.obs.monitor`).
        self.monitor = None
        #: Service-time multiplier for fault/straggler injection: 1.0 is a
        #: healthy daemon; 4.0 models a degraded node (failing disk,
        #: swapping, cpu contention).  May be changed between workloads, or
        #: declaratively via :class:`repro.faults.Straggler`.
        self.service_scale = 1.0
        # -- crash/recovery state ---------------------------------------
        self.alive = True
        self.crashes = 0
        self.crashed_at: Optional[float] = None
        self.restarted_at: Optional[float] = None
        #: Completion time of the first request served after the most
        #: recent restart (recovery-time accounting); None until then.
        self.first_service_after_restart: Optional[float] = None
        self._current: Optional[IORequest] = None
        self._inflight_responses: List[Tuple[Process, IORequest]] = []
        # -- replication/fencing state (inert without replicas > 1) ------
        #: Back-reference to the owning cluster, set by Cluster.__init__;
        #: the resync protocol needs the replication state, the manager,
        #: and the peer daemon list.
        self.cluster = None
        self.fenced = False
        self.fence_epoch = 0
        self.resyncs = 0
        self.resync_bytes = 0
        self._rejoin_proc: Optional[Process] = None
        self._proc: Process = sim.process(self._run(), name=f"iod{index}")

    def _scale(self) -> float:
        """Per-request service multiplier: straggler scale x jitter draw."""
        s = self.service_scale
        if self._rng is not None:
            s *= 1.0 + self.costs.jitter * (2.0 * self._rng.random() - 1.0)
        return s

    # ------------------------------------------------------------------
    # Request delivery and crash/recovery
    # ------------------------------------------------------------------
    def deliver(self, req: IORequest) -> None:
        """Hand one request to this daemon (clients call this after the
        request's network transfer).  A dead daemon refuses immediately —
        the connection-reset a 2002 TCP client would see."""
        if not self.alive:
            self._refuse(req)
            return
        if self.fenced:
            # A fenced daemon must never serve (or ack) anything — even a
            # zombie that restarted with stale state.  The refusal carries
            # the epoch so clients fail over instead of retrying.
            self._refuse(req, fenced=True)
            return
        req.enqueued_at = self.sim.now
        self.inbox.put(req)

    def _refuse(self, req: IORequest, fenced: bool = False) -> None:
        """Fail a request's response with ServerCrashed / ServerFenced
        (pre-defused so an abandoned, already-timed-out request cannot
        crash the kernel)."""
        if not req.response.triggered:
            if fenced:
                exc: FaultError = ServerFenced(
                    f"iod{self.index} is fenced at epoch {self.fence_epoch} "
                    f"(request {req.request_id})",
                    epoch=self.fence_epoch,
                )
            else:
                exc = ServerCrashed(
                    f"iod{self.index} is down (request {req.request_id})"
                )
            req.response.fail(exc)
            req.response.defuse()

    def crash(self) -> None:
        """Kill the daemon at the current simulated time (idempotent)."""
        if not self.alive:
            return
        self.alive = False
        self.crashes += 1
        self.crashed_at = self.sim.now
        self.first_service_after_restart = None
        self.scope.add("crashes")
        if self._proc.is_alive:
            self._proc.interrupt("crash")
        current, self._current = self._current, None
        if current is not None:
            self._refuse(current)
        for req in self.inbox.drain():
            self._refuse(req)
        inflight, self._inflight_responses = self._inflight_responses, []
        for proc, req in inflight:
            if proc.is_alive:
                proc.interrupt("crash")
            self._refuse(req)
        if self._rejoin_proc is not None and self._rejoin_proc.is_alive:
            # Crashed again mid-resync: dirty ranges stay recorded and the
            # next restart picks them up.
            self._rejoin_proc.interrupt("crash")
            self._rejoin_proc = None

    def fence(self, epoch: int) -> None:
        """Apply the manager's fencing token (idempotent).

        An alive daemon being fenced is the zombie case — the manager
        declared it dead after client retry budgets exhausted, so it is
        forcibly killed (STONITH); whatever it was serving fails rather
        than producing acks the new epoch would have to distrust.  A
        fenced daemon refuses everything until :meth:`unfence`.
        """
        if self.fenced:
            return
        self.fenced = True
        self.fence_epoch = epoch
        self.scope.add("fences")
        if self.alive:
            self.crash()

    def unfence(self) -> None:
        """Lift the fence (manager only, after a completed resync)."""
        self.fenced = False

    def restart(self) -> None:
        """Boot a fresh daemon process on the same node: cold page cache,
        contents re-served from the (durable) byte store.  A *fenced*
        daemon restarts into the resync protocol instead of service: it
        stays fenced (refusing all requests) until the dirty ranges it
        missed are copied back from live chain members and the manager
        acknowledges its rejoin."""
        if self.alive:
            return
        self.alive = True
        self.restarted_at = self.sim.now
        self.disk.drop_cache()
        # Fresh inbox (a rebooted daemon listens on a fresh socket): the
        # crashed service loop's pending get() would otherwise still be
        # queued as a getter and swallow the first delivered request.
        old = self.inbox
        self.inbox = Store(self.sim, name=old.name)
        self.inbox.monitor = old.monitor
        self.inbox.total_put = old.total_put
        self.scope.add("restarts")
        self._proc = self.sim.process(self._run(), name=f"iod{self.index}")
        if self.fenced and self.cluster is not None:
            self._rejoin_proc = self.sim.process(
                self._rejoin(), name=f"iod{self.index}.rejoin"
            )

    def recovery_time(self) -> Optional[float]:
        """Seconds from the most recent crash until the restarted daemon
        completed its first request; None until that happened."""
        if self.crashed_at is None or self.first_service_after_restart is None:
            return None
        return self.first_service_after_restart - self.crashed_at

    # ------------------------------------------------------------------
    def _run(self):
        try:
            while True:
                req: IORequest = yield self.inbox.get()
                self._current = req
                yield from self._service(req)
                self._current = None
        except Interrupt:
            return  # crashed: the service loop dies; restart() boots a new one

    def _service(self, req: IORequest):
        sim = self.sim
        costs = self.costs
        scope = self.scope
        started = sim.now
        n = req.n_described
        scale = self._scale()
        # Request parsing + trailing-data decode.
        yield sim.timeout(
            (costs.iod_request_cost + costs.iod_region_cost * n) * scale
        )
        if req.kind == "fsync":
            # Flush this disk's dirty pages to media before acking.
            flush_t = self.disk.flush_time() * scale * self.disk.fault_scale
            if flush_t > 0:
                t_disk = sim.now
                yield sim.timeout(flush_t)
                self._note_disk(t_disk, sim.now, "flush", 0)
            scope.add("fsyncs")
            self._spawn_response(req, True)
        elif req.kind == "read":
            disk_t = self.disk.read_time(req.store_key, req.regions) * scale
            disk_t *= self.disk.fault_scale
            if disk_t > 0:
                t_disk = sim.now
                yield sim.timeout(disk_t)
                self._note_disk(t_disk, sim.now, "read", req.regions.total_bytes)
            data = (
                self.store.read(req.store_key, req.regions) if self.move_bytes else None
            )
            scope.add("read_requests")
            scope.add("read_bytes", req.regions.total_bytes)
            self._spawn_response(req, data)
        else:  # write
            disk_t = self.disk.write_time(req.store_key, req.regions)
            disk_t += costs.iod_write_commit_cost
            if self.disk.cache.cfg.write_through:
                # Synchronous small overwrites pay a read-modify-write of
                # the enclosing page (see CostModel.small_write_penalty).
                runs = req.regions.coalesced()
                n_small = int((runs.lengths < costs.small_write_threshold).sum())
                disk_t += n_small * costs.small_write_penalty
            t_disk = sim.now
            yield sim.timeout(disk_t * scale * self.disk.fault_scale)
            self._note_disk(t_disk, sim.now, "write", req.regions.total_bytes)
            if self.move_bytes and req.data is not None:
                self.store.write(req.store_key, req.regions, req.data)
            scope.add("write_requests")
            scope.add("write_bytes", req.regions.total_bytes)
            self._spawn_response(req, True)
        self.requests_served += 1
        self.regions_served += n
        self.busy_time += sim.now - started
        if self.restarted_at is not None and self.first_service_after_restart is None:
            self.first_service_after_restart = sim.now
        if self.monitor is not None:
            self.monitor.on_busy(started)
            self.monitor.on_idle(sim.now)
        scope.add("regions", n)
        if self.tracer is not None and self.tracer.enabled:
            if req.enqueued_at is not None:
                self.tracer.record(
                    "iod.queue_wait", f"iod{self.index}", req.enqueued_at, started
                )
            self.tracer.record(
                "iod.service",
                req.kind,
                started,
                sim.now,
                iod=self.index,
                regions=n,
                nbytes=req.regions.total_bytes,
            )

    # ------------------------------------------------------------------
    # Resync / rejoin (replication only)
    # ------------------------------------------------------------------
    def _resync_source(self, entry):
        """First live, unfenced chain member of a dirty entry (chain order,
        so the primary is preferred); None when no copy is reachable."""
        for member in entry.chain:
            if member == self.index:
                continue
            peer = self.cluster.iods[member]
            if peer.alive and not peer.fenced:
                return peer
        return None

    def _rejoin(self):
        """Resync protocol of a restarted fenced daemon.

        For every dirty range recorded while this daemon was fenced, read
        the bytes back from a live chain member over the real request path
        (network + the source's parse/disk costs), write them to the local
        disk/store, and finally ask the manager to lift the fence.  The
        daemon keeps refusing client requests throughout — only a complete
        resync rejoins; a partial one (no live source, or the source died
        mid-copy) leaves it fenced with its remaining dirty ranges intact
        for the next attempt.

        Writes keep arriving while the resync runs (clients mark the
        ranges this still-fenced daemon misses dirty), so one pass over a
        snapshot is not enough: the copy loop repeats until the live dirty
        list is empty, and if the manager refuses the rejoin because a
        write raced the rejoin round-trip itself, the new arrivals are
        copied and the rejoin retried.  Only an actually-empty dirty list
        ever gets this daemon unfenced.
        """
        sim = self.sim
        state = self.cluster.replication
        t0 = sim.now
        copied = 0
        entries = state.dirty_for(self.index)  # live list; clients append
        try:
            while True:
                incomplete = False
                for entry in list(entries):
                    source = self._resync_source(entry)
                    if source is None:
                        incomplete = True
                        continue
                    req = IORequest(
                        kind="read",
                        file_id=entry.file_id,
                        regions=entry.regions,
                        client_node=self.node,
                        response=Event(sim),
                        replica_of=(
                            entry.primary if source.index != entry.primary else None
                        ),
                    )
                    try:
                        yield from self.net.transfer(
                            self.node, source.node, req.wire_bytes
                        )
                        source.deliver(req)
                        data = yield req.response
                    except FaultError:
                        incomplete = True  # source died mid-copy; keep it dirty
                        continue
                    key = (
                        entry.file_id
                        if entry.primary == self.index
                        else (entry.file_id, entry.primary)
                    )
                    write_t = (
                        self.disk.write_time(key, entry.regions)
                        * self._scale()
                        * self.disk.fault_scale
                    )
                    if write_t > 0:
                        t_disk = sim.now
                        yield sim.timeout(write_t)
                        self._note_disk(
                            t_disk, sim.now, "resync", entry.regions.total_bytes
                        )
                    if self.move_bytes and data is not None:
                        self.store.write(key, entry.regions, data)
                    copied += entry.regions.total_bytes
                    entries.remove(entry)
                if incomplete:
                    state.note(
                        sim.now,
                        f"iod{self.index} resync incomplete "
                        f"({state.dirty_bytes(self.index)} B still dirty); "
                        f"staying fenced",
                    )
                    return
                if entries:
                    continue  # writes raced the copy loop; resync them too
                mgr = self.cluster.manager
                mreq = ManagerRequest(
                    op="rejoin", iod=self.index, client_node=self.node,
                    response=Event(sim),
                )
                yield from self.net.transfer(self.node, mgr.node, mreq.wire_bytes)
                mgr.inbox.put(mreq)
                yield mreq.response
                if state.is_fenced(self.index):
                    continue  # refused: a write raced the rejoin round-trip
                break
        except Interrupt:
            return  # crashed again mid-resync; dirty ranges remain recorded
        self.resyncs += 1
        self.resync_bytes += copied
        self.scope.add("resyncs")
        self.scope.add("resync_bytes", copied)
        state.note(sim.now, f"iod{self.index} resynced {copied} B and rejoined")
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.record(
                "fault.resync", f"iod{self.index}", t0, sim.now,
                iod=self.index, nbytes=copied,
            )

    def _note_disk(self, start: float, end: float, kind: str, nbytes: int) -> None:
        """Account one disk access window (utilization + optional span)."""
        if end <= start:
            return
        self.disk.note_busy(start, end)
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.record(
                "disk.busy", kind, start, end, iod=self.index, nbytes=nbytes
            )

    def _spawn_response(self, req: IORequest, payload) -> None:
        """Hand the response to the async sender, tracked so a crash can
        abort it mid-transmission."""
        proc = self.sim.process(
            self._respond(req, payload), name=f"iod{self.index}.respond"
        )
        entry = (proc, req)
        self._inflight_responses.append(entry)

        def _done(_ev) -> None:
            try:
                self._inflight_responses.remove(entry)
            except ValueError:
                pass  # already cleared by crash()

        proc.callbacks.append(_done)

    def _respond(self, req: IORequest, payload):
        try:
            yield from self.net.transfer(self.node, req.client_node, req.response_bytes)
        except Interrupt:
            return  # crash aborted the transmission; crash() fails the response
        if not req.response.triggered:
            req.response.succeed(payload)

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return f"<IOD {self.index} {state} served={self.requests_served}>"
