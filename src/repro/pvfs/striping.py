"""Vectorized PVFS striping: logical file regions -> per-server physical runs.

PVFS stripes a file round-robin over ``pcount`` I/O servers starting at
``base`` in units of ``stripe_size`` bytes (paper Figure 2).  Logical byte
``o`` lives in stripe unit ``u = o // stripe_size``; that unit is stored on
server ``(base + u % pcount) % n_iods`` at physical offset
``(u // pcount) * stripe_size + o % stripe_size`` within the server's local
stripe file.

:func:`map_regions` performs this mapping for a whole
:class:`~repro.regions.RegionList` at once and returns a :class:`StripeMap`
that remembers, for every piece, where it falls in the *request byte
stream* — which is what lets clients carve a write payload into per-server
slices and reassemble read responses, all with numpy fancy indexing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from ..config import StripeParams
from ..errors import ConfigError
from ..regions import RegionList, build_flat_indices

__all__ = [
    "StripeMap",
    "ServerSlice",
    "map_regions",
    "replica_chain",
    "server_for_offset",
]

#: Shared read-only stream offset for the single-piece fast case below.
_ZERO1 = np.zeros(1, dtype=np.int64)
_ZERO1.setflags(write=False)


def server_for_offset(offset: int, stripe: StripeParams, n_iods: int) -> int:
    """Which server stores logical byte ``offset``."""
    pcount = stripe.resolve_pcount(n_iods)
    unit = offset // stripe.stripe_size
    return (stripe.base + unit % pcount) % n_iods


def replica_chain(primary: int, replicas: int, n_iods: int) -> Tuple[int, ...]:
    """Chain placement of a stripe's copies: copy ``k`` of a stripe whose
    primary is daemon ``primary`` lives on ``(primary + k) % n_iods``.

    The chain starts with the primary itself; successive copies land on the
    following daemons, so all ``replicas`` copies sit on distinct daemons
    whenever ``replicas <= n_iods`` (validated by
    :meth:`~repro.config.StripeParams.resolve_replicas`).  Replica copies
    are stored under a ``(file_id, primary)`` key on their host, so a
    mirror never collides with the host's own primary stripes at the same
    physical offsets.
    """
    if not 1 <= replicas <= n_iods:
        raise ConfigError(
            f"replica chain needs 1 <= replicas <= n_iods, got "
            f"replicas={replicas} n_iods={n_iods}"
        )
    return tuple((primary + k) % n_iods for k in range(replicas))


@dataclass(frozen=True)
class ServerSlice:
    """One server's share of a logical request.

    ``physical`` are the runs in the server's local stripe file, in request
    stream order.  ``stream_offsets`` give, for each physical run, the byte
    position of its data within the overall request stream, so
    ``stream[stream_offsets[i] : stream_offsets[i] + physical.lengths[i]]``
    is exactly the data for run ``i``.
    """

    server: int
    physical: RegionList
    stream_offsets: np.ndarray

    @property
    def nbytes(self) -> int:
        return self.physical.total_bytes

    def gather_stream_indices(self) -> np.ndarray:
        """Flat indices into the request stream for this server's bytes."""
        return build_flat_indices(self.stream_offsets, self.physical.lengths)


@dataclass(frozen=True)
class StripeMap:
    """The full decomposition of one logical request across servers."""

    slices: Tuple[ServerSlice, ...]
    total_bytes: int

    @property
    def n_servers(self) -> int:
        return len(self.slices)

    @property
    def servers(self) -> List[int]:
        return [s.server for s in self.slices]

    def __iter__(self) -> Iterator[ServerSlice]:
        return iter(self.slices)

    def slice_for(self, server: int) -> ServerSlice:
        for s in self.slices:
            if s.server == server:
                return s
        raise KeyError(f"server {server} not involved in this request")


def map_regions(regions: RegionList, stripe: StripeParams, n_iods: int) -> StripeMap:
    """Decompose logical ``regions`` (in request stream order) per server.

    Fully vectorized: split at stripe-unit boundaries, compute each piece's
    server and physical offset, then group pieces by server preserving
    stream order within each group.
    """
    pcount = stripe.resolve_pcount(n_iods)
    ssize = stripe.stripe_size
    if regions.count == 1:
        # ~98% of service-path requests are a single region inside one
        # stripe unit (unit-aligned cyclic and block patterns); map it
        # with pure integer arithmetic instead of the array pipeline.
        # Same formulas, same result — just scalar.
        off = int(regions.offsets[0])
        ln = int(regions.lengths[0])
        if ln > 0 and (off % ssize) + ln <= ssize:
            unit = off // ssize
            sl = ServerSlice(
                server=(stripe.base + unit % pcount) % n_iods,
                physical=RegionList._trusted(
                    np.array([(unit // pcount) * ssize + off % ssize], np.int64),
                    np.array([ln], np.int64),
                    nonempty=True,
                ),
                stream_offsets=_ZERO1,
            )
            return StripeMap(slices=(sl,), total_bytes=ln)
    pieces = regions.drop_empty().split_at_boundaries(ssize)
    if pieces.count == 0:
        return StripeMap(slices=(), total_bytes=0)
    unit = pieces.offsets // ssize
    server = (stripe.base + unit % pcount) % n_iods
    phys_off = (unit // pcount) * ssize + pieces.offsets % ssize
    stream_off = np.concatenate(([0], np.cumsum(pieces.lengths)[:-1]))
    slices = []
    # Group by server, preserving stream order inside each group.  A stable
    # argsort on server achieves both in one vectorized pass.
    order = np.argsort(server, kind="stable")
    sorted_server = server[order]
    group_bounds = np.flatnonzero(np.diff(sorted_server)) + 1
    for grp in np.split(order, group_bounds):
        s = int(server[grp[0]])
        slices.append(
            ServerSlice(
                server=s,
                physical=RegionList._trusted(
                    phys_off[grp], pieces.lengths[grp], nonempty=True
                ),
                stream_offsets=stream_off[grp],
            )
        )
    return StripeMap(slices=tuple(slices), total_bytes=pieces.total_bytes)
