"""The PVFS client library: open/close plus contiguous and list I/O.

Every operation is a *simulation process* — call it with ``yield from``
inside another process (or wrap in ``sim.process``).  The flow of one
logical I/O request mirrors PVFS:

1. the client library pays its per-request (and per-region, for list
   requests) CPU cost,
2. the logical regions are striped into per-server slices
   (:func:`repro.pvfs.striping.map_regions`),
3. one message per involved server goes out — a contiguous request for a
   single region, or a list request whose trailing data describes that
   server's regions — all servers are worked in parallel,
4. the client blocks until every involved server has responded, then
   reassembles the stream (reads) and returns.

Requests describing more regions than ``list_io_max_regions`` are broken
into several logical requests, exactly as the paper's implementation does
(Section 3.3).

Request accounting: ``logical_requests`` counts application-level I/O
requests (what the paper's request-count formulas predict);
``server_messages`` counts the per-server messages those fanned out into.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

import numpy as np

from ..errors import (
    FaultError,
    FileNotOpenError,
    PVFSError,
    RetryExhausted,
    ServerFenced,
    TimeoutError,
)
from ..regions import RegionList
from ..simulate import Event
from .protocol import IORequest, ManagerRequest
from .striping import map_regions, replica_chain

__all__ = ["PVFSClient", "PVFSFile"]


class PVFSFile:
    """An open file handle bound to one client.

    ``size`` is the client-local view of EOF: the size reported by the
    manager at open time, grown by this client's own writes.  (PVFS 1.x
    only refreshed remote size metadata on demand; the benchmarks never
    depend on cross-client size visibility mid-run.)
    """

    def __init__(self, client: "PVFSClient", meta) -> None:
        self.client = client
        self.file_id = meta.file_id
        self.path = meta.path
        self.stripe = meta.stripe
        self.size = meta.size
        #: Copies per stripe (chain replication); 1 = the paper's layout,
        #: which keeps every code path below identical to the seed.
        self.replicas = meta.stripe.resolve_replicas(client.n_iods)
        self._open = True

    def _check_open(self) -> None:
        if not self._open:
            raise FileNotOpenError(f"{self.path} is closed")

    # ------------------------------------------------------------------
    # Contiguous operations
    # ------------------------------------------------------------------
    def read(self, offset: int, length: int):
        """Read one contiguous region (simulation process)."""
        data = yield from self.read_list(RegionList.single(offset, length))
        return data

    def write(self, offset: int, data: Optional[np.ndarray], length: Optional[int] = None):
        """Write one contiguous region (simulation process).

        Pass ``data=None`` with an explicit ``length`` in timing-only runs.
        """
        n = int(length if length is not None else data.size)
        yield from self.write_list(RegionList.single(offset, n), data)

    # ------------------------------------------------------------------
    # List I/O — the paper's contribution (pvfs_read_list / pvfs_write_list)
    # ------------------------------------------------------------------
    def read_list(self, file_regions: RegionList):
        """Noncontiguous read.  Returns the concatenated byte stream of the
        regions (in region order), or ``None`` in timing-only mode."""
        self._check_open()
        regions = file_regions.drop_empty()
        move = self.client.move_bytes
        out = np.zeros(regions.total_bytes, dtype=np.uint8) if move else None
        pos = 0
        for chunk in regions.chunks_of(self.client.list_io_max_regions):
            piece = yield from self._io_request("read", chunk, None)
            if move:
                out[pos : pos + chunk.total_bytes] = piece
            pos += chunk.total_bytes
        return out

    def write_list(self, file_regions: RegionList, data: Optional[np.ndarray]):
        """Noncontiguous write of ``data`` (the stream for the regions in
        order).  ``data=None`` in timing-only mode."""
        self._check_open()
        regions = file_regions.drop_empty()
        move = self.client.move_bytes
        if move:
            if data is None:
                raise PVFSError("write_list needs data when the cluster moves bytes")
            data = np.asarray(data, dtype=np.uint8).ravel()
            if data.size != regions.total_bytes:
                raise PVFSError(
                    f"write_list data is {data.size} B but regions describe "
                    f"{regions.total_bytes} B"
                )
        pos = 0
        for chunk in regions.chunks_of(self.client.list_io_max_regions):
            n = chunk.total_bytes
            stream = data[pos : pos + n] if move else None
            yield from self._io_request("write", chunk, stream)
            pos += n
        end = regions.extent[1]
        if end > self.size:
            self.size = end

    # ------------------------------------------------------------------
    # Datatype-described requests (paper Section 5 future work)
    # ------------------------------------------------------------------
    def read_described(self, file_regions: RegionList, descriptor_slots: int = 2):
        """Noncontiguous read whose regions are conveyed by a compact
        datatype descriptor of ``descriptor_slots`` 16-byte slots instead of
        per-region trailing data — ONE logical request regardless of region
        count (the Section 5 'vector datatype' extension)."""
        self._check_open()
        regions = file_regions.drop_empty()
        if regions.count == 0:
            return np.zeros(0, dtype=np.uint8) if self.client.move_bytes else None
        data = yield from self._io_request(
            "read", regions, None, wire_regions=descriptor_slots
        )
        return data

    def write_described(
        self,
        file_regions: RegionList,
        data: Optional[np.ndarray],
        descriptor_slots: int = 2,
    ):
        """Datatype-described noncontiguous write (one logical request)."""
        self._check_open()
        regions = file_regions.drop_empty()
        if regions.count == 0:
            return
        if self.client.move_bytes:
            if data is None:
                raise PVFSError("write_described needs data when moving bytes")
            data = np.asarray(data, dtype=np.uint8).ravel()
            if data.size != regions.total_bytes:
                raise PVFSError(
                    f"write_described data is {data.size} B but regions "
                    f"describe {regions.total_bytes} B"
                )
        yield from self._io_request("write", regions, data, wire_regions=descriptor_slots)
        end = regions.extent[1]
        if end > self.size:
            self.size = end

    # ------------------------------------------------------------------
    def _io_request(
        self,
        kind: str,
        regions: RegionList,
        stream: Optional[np.ndarray],
        wire_regions: Optional[int] = None,
    ):
        """One logical request: fan out per server, wait for all responses."""
        client = self.client
        sim = client.sim
        costs = client.costs
        t_start = sim.now
        client.scope.add("logical_requests")
        client.scope.add(f"{kind}_bytes", regions.total_bytes)
        yield sim.timeout(
            costs.client_request_cost + costs.client_region_cost * regions.count
        )
        smap = map_regions(regions, self.stripe, client.n_iods)
        if smap.n_servers == 0:
            return np.zeros(0, dtype=np.uint8) if client.move_bytes else None
        replicated = self.replicas > 1
        procs = []
        for sl in smap:
            payload = None
            if kind == "write" and stream is not None:
                payload = stream[sl.gather_stream_indices()]
            if replicated:
                procs.append(
                    sim.process(
                        self._replicated_slice(kind, sl, payload, wire_regions),
                        name=f"client{client.index}.slice",
                    )
                )
                continue
            req = IORequest(
                kind=kind,
                file_id=self.file_id,
                regions=sl.physical,
                client_node=client.node,
                response=Event(sim),
                data=payload,
                wire_regions=wire_regions,
            )
            client.scope.add("server_messages")
            procs.append(sim.process(client._send(req, sl.server)))
        results = yield sim.all_of(procs)
        if kind == "write":
            # Per-exchange turnaround stall (see CostModel.client_write_turnaround).
            yield sim.timeout(costs.client_write_turnaround)
        if client.monitor is not None:
            client.monitor.on_busy(t_start)
            client.monitor.on_idle(sim.now)
        tracer = client.cluster.tracer
        if tracer is not None and tracer.enabled:
            tracer.record(
                "client.request",
                kind,
                t_start,
                sim.now,
                client=client.index,
                regions=regions.count,
                servers=smap.n_servers,
                nbytes=regions.total_bytes,
            )
        if replicated:
            client.cluster.replication.note_goodput(sim.now, regions.total_bytes)
        if kind == "read" and client.move_bytes:
            out = np.zeros(regions.total_bytes, dtype=np.uint8)
            for sl, piece in zip(smap, results):
                out[sl.gather_stream_indices()] = piece
            return out
        return None

    # ------------------------------------------------------------------
    # Replication (replicas > 1): failover reads and fan-out writes.
    # ------------------------------------------------------------------
    def _replicated_slice(self, kind, sl, payload, wire_regions):
        """One server slice of a replicated request (simulation process)."""
        chain = replica_chain(sl.server, self.replicas, self.client.n_iods)
        if kind == "read":
            result = yield from self._failover_read(sl, chain, wire_regions)
        else:
            result = yield from self._replicated_write(sl, chain, payload, wire_regions)
        return result

    def _failover_read(self, sl, chain, wire_regions):
        """Read the slice from the first chain member that answers.

        Known-fenced members are skipped outright — the manager republished
        the stripe map when it fenced them, so routing around them costs no
        messages and no retry budget.  A member that fails mid-read is
        reported to the manager (fencing it for everyone) before the next
        member is tried.  Only when *every* copy is unreachable does the
        request fail.
        """
        client = self.client
        sim = client.sim
        state = client.cluster.replication
        t_detected = None  # first moment this request noticed trouble
        last_error: Optional[BaseException] = None
        attempts = 0
        for target in chain:
            if state.is_fenced(target):
                if t_detected is None:
                    t_detected = sim.now
                continue
            req = IORequest(
                kind="read",
                file_id=self.file_id,
                regions=sl.physical,
                client_node=client.node,
                response=Event(sim),
                wire_regions=wire_regions,
                replica_of=sl.server if target != sl.server else None,
            )
            client.scope.add("server_messages")
            attempts += 1
            try:
                result = yield from client._send(req, target)
            except FaultError as exc:
                last_error = exc
                if t_detected is None:
                    t_detected = sim.now
                if not state.is_fenced(target):
                    yield from client._report_failure(target)
                continue
            if t_detected is not None:
                client.scope.add("failovers")
                state.note_failover(t_detected, sim.now, sl.server, client.index)
                tracer = client.cluster.tracer
                if tracer is not None and tracer.enabled:
                    tracer.record(
                        "client.failover",
                        f"iod{sl.server}->iod{target}",
                        t_detected,
                        sim.now,
                        client=client.index,
                        primary=sl.server,
                        server=target,
                    )
            return result
        raise RetryExhausted(
            f"all {len(chain)} replicas of iod{sl.server} failed for a read "
            f"of file {self.file_id}: {last_error}",
            attempts=attempts,
            last_error=last_error,
        )

    def _replicated_write(self, sl, chain, payload, wire_regions):
        """Write the slice to every live chain member; ack per policy.

        ``primary`` ack returns once the first member acknowledges — acks
        are raced and counted in completion order, so a slow-failing
        member never delays an ack another member already produced — and
        the rest complete in the background, joined by
        :meth:`close`/:meth:`fsync`.  ``quorum`` ack waits for a strict
        majority of the *chain* (not of whoever happens to be live): with
        too many members fenced or lost the write raises
        :class:`~repro.errors.RetryExhausted` rather than silently
        degrading durability below a majority.  A member that is fenced
        (or fails and gets fenced) has its missed range recorded dirty for
        the resync protocol.
        """
        client = self.client
        sim = client.sim
        state = client.cluster.replication
        procs = []
        t_detected = None
        for member in chain:
            if state.is_fenced(member):
                state.mark_dirty(member, self.file_id, sl.server, chain, sl.physical)
                if t_detected is None:
                    t_detected = sim.now
                continue
            req = IORequest(
                kind="write",
                file_id=self.file_id,
                regions=sl.physical,
                client_node=client.node,
                response=Event(sim),
                data=payload,
                wire_regions=wire_regions,
                replica_of=sl.server if member != sl.server else None,
            )
            client.scope.add("server_messages")
            procs.append(
                sim.process(
                    client._member_write(req, member, self.file_id, sl.server, chain),
                    name=f"client{client.index}.replica{member}",
                )
            )
        if not procs:
            raise RetryExhausted(
                f"every chain member of iod{sl.server} is fenced; write of "
                f"file {self.file_id} has no live copy",
                attempts=0,
                last_error=None,
            )
        needed = len(chain) // 2 + 1 if state.ack_policy == "quorum" else 1
        if len(procs) < needed:
            # Quorum with a majority of the chain already fenced: the live
            # writes still land (idempotent; drained by close()/fsync())
            # but the slice must not claim quorum durability.
            client._pending_replica.extend(procs)
            raise RetryExhausted(
                f"quorum write to the chain of iod{sl.server} needs {needed} "
                f"of {len(chain)} members but only {len(procs)} are live",
                attempts=0,
                last_error=None,
            )
        acked = 0
        outstanding = list(procs)
        while outstanding and acked < needed:
            # Race the members: acks count in completion order, so a slow
            # failure on an earlier chain member cannot delay a later ack.
            yield sim.any_of(outstanding)
            remaining = []
            for proc in outstanding:
                if not proc.triggered:
                    remaining.append(proc)
                elif proc.value:  # _member_write: True=ack, False=member lost
                    acked += 1
                elif t_detected is None:
                    t_detected = sim.now
            outstanding = remaining
        # Members past the ack point finish in the background; close() and
        # fsync() join them so acknowledged-then-closed data is fully
        # replicated on every live copy.
        client._pending_replica.extend(outstanding)
        if acked < needed:
            raise RetryExhausted(
                f"write to the chain of iod{sl.server} got {acked} ack(s) "
                f"but the {state.ack_policy} policy needs {needed}",
                attempts=len(procs),
                last_error=None,
            )
        if t_detected is not None:
            client.scope.add("failovers")
            state.note_failover(t_detected, sim.now, sl.server, client.index)
        return True

    # ------------------------------------------------------------------
    # Nonblocking variants (PVFS 1.x exposed pvfs_iread/pvfs_iwrite).
    # Each returns a Process: yield it (or combine with sim.all_of) to
    # complete; its value is the read data.
    # ------------------------------------------------------------------
    def iread(self, offset: int, length: int):
        """Nonblocking contiguous read; returns a waitable process."""
        return self.client.sim.process(self.read(offset, length))

    def iwrite(self, offset: int, data, length: Optional[int] = None):
        """Nonblocking contiguous write; returns a waitable process."""
        return self.client.sim.process(self.write(offset, data, length=length))

    def iread_list(self, file_regions: RegionList):
        """Nonblocking list read; returns a waitable process."""
        return self.client.sim.process(self.read_list(file_regions))

    def iwrite_list(self, file_regions: RegionList, data):
        """Nonblocking list write; returns a waitable process."""
        return self.client.sim.process(self.write_list(file_regions, data))

    # ------------------------------------------------------------------
    def fsync(self):
        """Force every I/O server holding this file to flush its dirty
        pages to media (simulation process).  PVFS 1.x exposed this as
        ``pvfs_fsync``; the benchmarks never call it (matching the paper's
        measurements, which end at the last acknowledged write)."""
        self._check_open()
        client = self.client
        sim = client.sim
        n_iods = client.n_iods
        pcount = self.stripe.resolve_pcount(n_iods)
        if self.replicas > 1:
            # Settle background replica writes first, then flush every live
            # chain member (deduped — neighbouring primaries share replicas).
            yield from client._drain_pending()
            state = client.cluster.replication
            targets = sorted(
                {
                    member
                    for i in range(pcount)
                    for member in replica_chain(
                        (self.stripe.base + i) % n_iods, self.replicas, n_iods
                    )
                    if not state.is_fenced(member)
                }
            )
        else:
            targets = [(self.stripe.base + i) % n_iods for i in range(pcount)]
        procs = []
        for server in targets:
            req = IORequest(
                kind="fsync",
                file_id=self.file_id,
                regions=RegionList.empty(),
                client_node=client.node,
                response=Event(sim),
            )
            client.scope.add("server_messages")
            procs.append(sim.process(client._send(req, server)))
        client.scope.add("fsyncs")
        yield sim.all_of(procs)

    # ------------------------------------------------------------------
    def close(self):
        """Release the handle; reports final size to the manager."""
        self._check_open()
        self._open = False
        if self.replicas > 1:
            # Primary-ack returns before every copy lands; close() joins the
            # background replica writes so a closed file is fully replicated.
            yield from self.client._drain_pending()
        yield from self.client._manager_op(
            "close", file_id=self.file_id, size_hint=self.size
        )

    def __repr__(self) -> str:
        state = "open" if self._open else "closed"
        return f"<PVFSFile {self.path} fid={self.file_id} {state}>"


class PVFSClient:
    """One compute node's PVFS library instance."""

    def __init__(self, cluster, index: int, node) -> None:
        self.cluster = cluster
        self.index = index
        self.node = node
        self.sim = cluster.sim
        self.costs = cluster.config.costs
        self.n_iods = cluster.config.n_iods
        self.list_io_max_regions = cluster.config.list_io_max_regions
        self.move_bytes = cluster.move_bytes
        self.scope = cluster.counters.scoped(f"client.{index}")
        #: Retry policy from ``ClusterConfig.faults`` (inert by default, in
        #: which case ``_send`` takes a fast path identical to the
        #: robustness-free client and runs stay bit-identical to the seed).
        self.retry = cluster.config.faults.retry
        self._retry_rng = (
            np.random.default_rng(cluster.config.seed * 6151 + 7 * index + 3)
            if self.retry.active and self.retry.jitter > 0.0
            else None
        )
        #: Optional observability hook with ``on_busy(t)`` / ``on_idle(t)``
        #: marking the window of each logical request; None = untraced.
        self.monitor = None
        #: Background replica-write processes launched by primary-ack slices
        #: (never failing — a dead member is fenced + marked dirty instead).
        #: ``close``/``fsync`` drain the list before acknowledging.
        self._pending_replica = []

    # ------------------------------------------------------------------
    def open(self, path: str, create: bool = False, stripe=None):
        """Open (optionally create) a file; returns a :class:`PVFSFile`.

        ``stripe`` (a :class:`~repro.config.StripeParams`) sets the new
        file's user-controlled striping on create — base I/O node, node
        count, and stripe size, as in the paper's Figure 2.  Ignored when
        the file already exists.
        """
        if stripe is not None:
            stripe.resolve_pcount(self.n_iods)  # validate against cluster
            stripe.resolve_replicas(self.n_iods)
        meta = yield from self._manager_op(
            "open", path=path, create=create, stripe=stripe
        )
        self.scope.add("opens")
        return PVFSFile(self, meta)

    def stat(self, path: str):
        meta = yield from self._manager_op("stat", path=path)
        return meta

    def unlink(self, path: str):
        yield from self._manager_op("unlink", path=path)

    # ------------------------------------------------------------------
    def _manager_op(self, op: str, **kw):
        mgr = self.cluster.manager
        req = ManagerRequest(op=op, client_node=self.node, response=Event(self.sim), **kw)
        yield from self.cluster.net.transfer(self.node, mgr.node, req.wire_bytes)
        mgr.inbox.put(req)
        result = yield req.response
        return result

    def _send(self, req: IORequest, server: int):
        """Deliver one request to one iod and await its response.

        With an inert :class:`~repro.faults.RetryPolicy` (the default) this
        is a bare send-and-wait.  With an active policy each attempt races a
        per-request deadline; failed or timed-out attempts back off
        exponentially (seeded jitter) and replay with the *same*
        ``request_id`` and payload — idempotent by construction, since a
        write replay rewrites identical bytes to identical regions — until
        the retry budget runs out and :class:`~repro.errors.RetryExhausted`
        surfaces to the application.
        """
        if not self.retry.active:
            iod = self.cluster.iods[server]
            yield from self.cluster.net.transfer(self.node, iod.node, req.wire_bytes)
            iod.deliver(req)
            result = yield req.response
            return result
        result = yield from self._send_with_retries(req, server)
        return result

    def _member_write(self, req: IORequest, target: int, file_id, primary, chain):
        """One chain member's share of a replicated write (simulation
        process).  Never raises: a member that stops answering is reported
        to the manager (fencing it) and its missed range recorded dirty for
        the resync protocol; the ack policy in
        :meth:`PVFSFile._replicated_write` decides whether the slice still
        succeeds.  Returns True on ack, False on loss."""
        state = self.cluster.replication
        try:
            yield from self._send(req, target)
        except FaultError:
            if not state.is_fenced(target):
                yield from self._report_failure(target)
            state.mark_dirty(target, file_id, primary, chain, req.regions)
            return False
        return True

    def _report_failure(self, server: int):
        """Tell the manager a daemon stopped answering; the manager fences
        it (fresh epoch token) and republishes the stripe map."""
        self.scope.add("failure_reports")
        view = yield from self._manager_op("report_failure", iod=server)
        return view

    def _drain_pending(self):
        """Join every outstanding background replica write."""
        pending, self._pending_replica = self._pending_replica, []
        live = [p for p in pending if not p.triggered]
        if live:
            yield self.sim.all_of(live)

    def _attempt(self, req: IORequest, server: int):
        """One delivery attempt (simulation process raced against the
        deadline by :meth:`_send_with_retries`)."""
        iod = self.cluster.iods[server]
        yield from self.cluster.net.transfer(self.node, iod.node, req.wire_bytes)
        iod.deliver(req)
        result = yield req.response
        return result

    def _send_with_retries(self, req: IORequest, server: int):
        sim = self.sim
        policy = self.retry
        tracer = self.cluster.tracer
        last_error: Optional[BaseException] = None
        for attempt in range(policy.max_retries + 1):
            # Replays get a fresh response event but keep request_id, kind,
            # regions, and payload — the daemon-side effect is idempotent.
            attempt_req = (
                req
                if attempt == 0
                else replace(req, response=Event(sim), enqueued_at=None)
            )
            proc = sim.process(
                self._attempt(attempt_req, server),
                name=f"client{self.index}.attempt",
            )
            # An abandoned attempt may fail *after* its deadline fired (same
            # timestamp, later heap sequence) with nothing left waiting on
            # it; self-defuse so the kernel never escalates it.
            proc.callbacks.append(lambda ev: ev.defuse() if not ev.ok else None)
            t0 = sim.now
            try:
                yield sim.any_of([proc, sim.timeout(policy.request_timeout)])
                if proc.triggered and proc.ok:
                    return proc.value
                if proc.triggered:
                    # Failed in the same timestep the deadline fired.
                    exc = proc.value
                    if not isinstance(exc, FaultError):
                        raise exc
                    if isinstance(exc, ServerFenced):
                        # Authoritative refusal: the manager fenced this
                        # daemon, so retrying it cannot succeed — surface
                        # immediately and let the caller fail over.
                        raise exc
                    last_error = exc
                else:
                    # Deadline won the race: abandon the in-flight attempt.
                    proc.interrupt("timeout")
                    last_error = TimeoutError(
                        f"request {req.request_id} to iod{server} timed out "
                        f"after {policy.request_timeout} s "
                        f"(attempt {attempt + 1})"
                    )
                    self.scope.add("timeouts")
                    if tracer is not None and tracer.enabled:
                        tracer.record(
                            "client.timeout",
                            f"iod{server}",
                            t0,
                            sim.now,
                            client=self.index,
                            server=server,
                            attempt=attempt,
                        )
            except FaultError as exc:
                if isinstance(exc, ServerFenced):
                    raise
                last_error = exc
            if attempt >= policy.max_retries:
                break
            delay = policy.backoff(attempt, self._retry_rng)
            self.scope.add("retries")
            t_backoff = sim.now
            if delay > 0:
                yield sim.timeout(delay)
            if tracer is not None and tracer.enabled:
                tracer.record(
                    "client.retry_backoff",
                    f"iod{server}",
                    t_backoff,
                    sim.now,
                    client=self.index,
                    server=server,
                    attempt=attempt,
                )
        self.scope.add("retries_exhausted")
        raise RetryExhausted(
            f"request {req.request_id} to iod{server} failed after "
            f"{policy.budget} attempt(s): {last_error}",
            attempts=policy.budget,
            last_error=last_error,
        )

    def __repr__(self) -> str:
        return f"<PVFSClient {self.index}>"
