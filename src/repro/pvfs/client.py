"""The PVFS client library: open/close plus contiguous and list I/O.

Every operation is a *simulation process* — call it with ``yield from``
inside another process (or wrap in ``sim.process``).  The flow of one
logical I/O request mirrors PVFS:

1. the client library pays its per-request (and per-region, for list
   requests) CPU cost,
2. the logical regions are striped into per-server slices
   (:func:`repro.pvfs.striping.map_regions`),
3. one message per involved server goes out — a contiguous request for a
   single region, or a list request whose trailing data describes that
   server's regions — all servers are worked in parallel,
4. the client blocks until every involved server has responded, then
   reassembles the stream (reads) and returns.

Requests describing more regions than ``list_io_max_regions`` are broken
into several logical requests, exactly as the paper's implementation does
(Section 3.3).

Request accounting: ``logical_requests`` counts application-level I/O
requests (what the paper's request-count formulas predict);
``server_messages`` counts the per-server messages those fanned out into.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

import numpy as np

from ..errors import FaultError, FileNotOpenError, PVFSError, RetryExhausted, TimeoutError
from ..regions import RegionList
from ..simulate import Event
from .protocol import IORequest, ManagerRequest
from .striping import map_regions

__all__ = ["PVFSClient", "PVFSFile"]


class PVFSFile:
    """An open file handle bound to one client.

    ``size`` is the client-local view of EOF: the size reported by the
    manager at open time, grown by this client's own writes.  (PVFS 1.x
    only refreshed remote size metadata on demand; the benchmarks never
    depend on cross-client size visibility mid-run.)
    """

    def __init__(self, client: "PVFSClient", meta) -> None:
        self.client = client
        self.file_id = meta.file_id
        self.path = meta.path
        self.stripe = meta.stripe
        self.size = meta.size
        self._open = True

    def _check_open(self) -> None:
        if not self._open:
            raise FileNotOpenError(f"{self.path} is closed")

    # ------------------------------------------------------------------
    # Contiguous operations
    # ------------------------------------------------------------------
    def read(self, offset: int, length: int):
        """Read one contiguous region (simulation process)."""
        data = yield from self.read_list(RegionList.single(offset, length))
        return data

    def write(self, offset: int, data: Optional[np.ndarray], length: Optional[int] = None):
        """Write one contiguous region (simulation process).

        Pass ``data=None`` with an explicit ``length`` in timing-only runs.
        """
        n = int(length if length is not None else data.size)
        yield from self.write_list(RegionList.single(offset, n), data)

    # ------------------------------------------------------------------
    # List I/O — the paper's contribution (pvfs_read_list / pvfs_write_list)
    # ------------------------------------------------------------------
    def read_list(self, file_regions: RegionList):
        """Noncontiguous read.  Returns the concatenated byte stream of the
        regions (in region order), or ``None`` in timing-only mode."""
        self._check_open()
        regions = file_regions.drop_empty()
        move = self.client.move_bytes
        out = np.zeros(regions.total_bytes, dtype=np.uint8) if move else None
        pos = 0
        for chunk in regions.chunks_of(self.client.list_io_max_regions):
            piece = yield from self._io_request("read", chunk, None)
            if move:
                out[pos : pos + chunk.total_bytes] = piece
            pos += chunk.total_bytes
        return out

    def write_list(self, file_regions: RegionList, data: Optional[np.ndarray]):
        """Noncontiguous write of ``data`` (the stream for the regions in
        order).  ``data=None`` in timing-only mode."""
        self._check_open()
        regions = file_regions.drop_empty()
        move = self.client.move_bytes
        if move:
            if data is None:
                raise PVFSError("write_list needs data when the cluster moves bytes")
            data = np.asarray(data, dtype=np.uint8).ravel()
            if data.size != regions.total_bytes:
                raise PVFSError(
                    f"write_list data is {data.size} B but regions describe "
                    f"{regions.total_bytes} B"
                )
        pos = 0
        for chunk in regions.chunks_of(self.client.list_io_max_regions):
            n = chunk.total_bytes
            stream = data[pos : pos + n] if move else None
            yield from self._io_request("write", chunk, stream)
            pos += n
        end = regions.extent[1]
        if end > self.size:
            self.size = end

    # ------------------------------------------------------------------
    # Datatype-described requests (paper Section 5 future work)
    # ------------------------------------------------------------------
    def read_described(self, file_regions: RegionList, descriptor_slots: int = 2):
        """Noncontiguous read whose regions are conveyed by a compact
        datatype descriptor of ``descriptor_slots`` 16-byte slots instead of
        per-region trailing data — ONE logical request regardless of region
        count (the Section 5 'vector datatype' extension)."""
        self._check_open()
        regions = file_regions.drop_empty()
        if regions.count == 0:
            return np.zeros(0, dtype=np.uint8) if self.client.move_bytes else None
        data = yield from self._io_request(
            "read", regions, None, wire_regions=descriptor_slots
        )
        return data

    def write_described(
        self,
        file_regions: RegionList,
        data: Optional[np.ndarray],
        descriptor_slots: int = 2,
    ):
        """Datatype-described noncontiguous write (one logical request)."""
        self._check_open()
        regions = file_regions.drop_empty()
        if regions.count == 0:
            return
        if self.client.move_bytes:
            if data is None:
                raise PVFSError("write_described needs data when moving bytes")
            data = np.asarray(data, dtype=np.uint8).ravel()
            if data.size != regions.total_bytes:
                raise PVFSError(
                    f"write_described data is {data.size} B but regions "
                    f"describe {regions.total_bytes} B"
                )
        yield from self._io_request("write", regions, data, wire_regions=descriptor_slots)
        end = regions.extent[1]
        if end > self.size:
            self.size = end

    # ------------------------------------------------------------------
    def _io_request(
        self,
        kind: str,
        regions: RegionList,
        stream: Optional[np.ndarray],
        wire_regions: Optional[int] = None,
    ):
        """One logical request: fan out per server, wait for all responses."""
        client = self.client
        sim = client.sim
        costs = client.costs
        t_start = sim.now
        client.scope.add("logical_requests")
        client.scope.add(f"{kind}_bytes", regions.total_bytes)
        yield sim.timeout(
            costs.client_request_cost + costs.client_region_cost * regions.count
        )
        smap = map_regions(regions, self.stripe, client.n_iods)
        if smap.n_servers == 0:
            return np.zeros(0, dtype=np.uint8) if client.move_bytes else None
        procs = []
        for sl in smap:
            payload = None
            if kind == "write" and stream is not None:
                payload = stream[sl.gather_stream_indices()]
            req = IORequest(
                kind=kind,
                file_id=self.file_id,
                regions=sl.physical,
                client_node=client.node,
                response=Event(sim),
                data=payload,
                wire_regions=wire_regions,
            )
            client.scope.add("server_messages")
            procs.append(sim.process(client._send(req, sl.server)))
        results = yield sim.all_of(procs)
        if kind == "write":
            # Per-exchange turnaround stall (see CostModel.client_write_turnaround).
            yield sim.timeout(costs.client_write_turnaround)
        if client.monitor is not None:
            client.monitor.on_busy(t_start)
            client.monitor.on_idle(sim.now)
        tracer = client.cluster.tracer
        if tracer is not None and tracer.enabled:
            tracer.record(
                "client.request",
                kind,
                t_start,
                sim.now,
                client=client.index,
                regions=regions.count,
                servers=smap.n_servers,
                nbytes=regions.total_bytes,
            )
        if kind == "read" and client.move_bytes:
            out = np.zeros(regions.total_bytes, dtype=np.uint8)
            for sl, piece in zip(smap, results):
                out[sl.gather_stream_indices()] = piece
            return out
        return None

    # ------------------------------------------------------------------
    # Nonblocking variants (PVFS 1.x exposed pvfs_iread/pvfs_iwrite).
    # Each returns a Process: yield it (or combine with sim.all_of) to
    # complete; its value is the read data.
    # ------------------------------------------------------------------
    def iread(self, offset: int, length: int):
        """Nonblocking contiguous read; returns a waitable process."""
        return self.client.sim.process(self.read(offset, length))

    def iwrite(self, offset: int, data, length: Optional[int] = None):
        """Nonblocking contiguous write; returns a waitable process."""
        return self.client.sim.process(self.write(offset, data, length=length))

    def iread_list(self, file_regions: RegionList):
        """Nonblocking list read; returns a waitable process."""
        return self.client.sim.process(self.read_list(file_regions))

    def iwrite_list(self, file_regions: RegionList, data):
        """Nonblocking list write; returns a waitable process."""
        return self.client.sim.process(self.write_list(file_regions, data))

    # ------------------------------------------------------------------
    def fsync(self):
        """Force every I/O server holding this file to flush its dirty
        pages to media (simulation process).  PVFS 1.x exposed this as
        ``pvfs_fsync``; the benchmarks never call it (matching the paper's
        measurements, which end at the last acknowledged write)."""
        self._check_open()
        client = self.client
        sim = client.sim
        n_iods = client.n_iods
        pcount = self.stripe.resolve_pcount(n_iods)
        procs = []
        for i in range(pcount):
            server = (self.stripe.base + i) % n_iods
            req = IORequest(
                kind="fsync",
                file_id=self.file_id,
                regions=RegionList.empty(),
                client_node=client.node,
                response=Event(sim),
            )
            client.scope.add("server_messages")
            procs.append(sim.process(client._send(req, server)))
        client.scope.add("fsyncs")
        yield sim.all_of(procs)

    # ------------------------------------------------------------------
    def close(self):
        """Release the handle; reports final size to the manager."""
        self._check_open()
        self._open = False
        yield from self.client._manager_op(
            "close", file_id=self.file_id, size_hint=self.size
        )

    def __repr__(self) -> str:
        state = "open" if self._open else "closed"
        return f"<PVFSFile {self.path} fid={self.file_id} {state}>"


class PVFSClient:
    """One compute node's PVFS library instance."""

    def __init__(self, cluster, index: int, node) -> None:
        self.cluster = cluster
        self.index = index
        self.node = node
        self.sim = cluster.sim
        self.costs = cluster.config.costs
        self.n_iods = cluster.config.n_iods
        self.list_io_max_regions = cluster.config.list_io_max_regions
        self.move_bytes = cluster.move_bytes
        self.scope = cluster.counters.scoped(f"client.{index}")
        #: Retry policy from ``ClusterConfig.faults`` (inert by default, in
        #: which case ``_send`` takes a fast path identical to the
        #: robustness-free client and runs stay bit-identical to the seed).
        self.retry = cluster.config.faults.retry
        self._retry_rng = (
            np.random.default_rng(cluster.config.seed * 6151 + 7 * index + 3)
            if self.retry.active and self.retry.jitter > 0.0
            else None
        )
        #: Optional observability hook with ``on_busy(t)`` / ``on_idle(t)``
        #: marking the window of each logical request; None = untraced.
        self.monitor = None

    # ------------------------------------------------------------------
    def open(self, path: str, create: bool = False, stripe=None):
        """Open (optionally create) a file; returns a :class:`PVFSFile`.

        ``stripe`` (a :class:`~repro.config.StripeParams`) sets the new
        file's user-controlled striping on create — base I/O node, node
        count, and stripe size, as in the paper's Figure 2.  Ignored when
        the file already exists.
        """
        if stripe is not None:
            stripe.resolve_pcount(self.n_iods)  # validate against cluster
        meta = yield from self._manager_op(
            "open", path=path, create=create, stripe=stripe
        )
        self.scope.add("opens")
        return PVFSFile(self, meta)

    def stat(self, path: str):
        meta = yield from self._manager_op("stat", path=path)
        return meta

    def unlink(self, path: str):
        yield from self._manager_op("unlink", path=path)

    # ------------------------------------------------------------------
    def _manager_op(self, op: str, **kw):
        mgr = self.cluster.manager
        req = ManagerRequest(op=op, client_node=self.node, response=Event(self.sim), **kw)
        yield from self.cluster.net.transfer(self.node, mgr.node, req.wire_bytes)
        mgr.inbox.put(req)
        result = yield req.response
        return result

    def _send(self, req: IORequest, server: int):
        """Deliver one request to one iod and await its response.

        With an inert :class:`~repro.faults.RetryPolicy` (the default) this
        is a bare send-and-wait.  With an active policy each attempt races a
        per-request deadline; failed or timed-out attempts back off
        exponentially (seeded jitter) and replay with the *same*
        ``request_id`` and payload — idempotent by construction, since a
        write replay rewrites identical bytes to identical regions — until
        the retry budget runs out and :class:`~repro.errors.RetryExhausted`
        surfaces to the application.
        """
        if not self.retry.active:
            iod = self.cluster.iods[server]
            yield from self.cluster.net.transfer(self.node, iod.node, req.wire_bytes)
            iod.deliver(req)
            result = yield req.response
            return result
        result = yield from self._send_with_retries(req, server)
        return result

    def _attempt(self, req: IORequest, server: int):
        """One delivery attempt (simulation process raced against the
        deadline by :meth:`_send_with_retries`)."""
        iod = self.cluster.iods[server]
        yield from self.cluster.net.transfer(self.node, iod.node, req.wire_bytes)
        iod.deliver(req)
        result = yield req.response
        return result

    def _send_with_retries(self, req: IORequest, server: int):
        sim = self.sim
        policy = self.retry
        tracer = self.cluster.tracer
        last_error: Optional[BaseException] = None
        for attempt in range(policy.max_retries + 1):
            # Replays get a fresh response event but keep request_id, kind,
            # regions, and payload — the daemon-side effect is idempotent.
            attempt_req = (
                req
                if attempt == 0
                else replace(req, response=Event(sim), enqueued_at=None)
            )
            proc = sim.process(
                self._attempt(attempt_req, server),
                name=f"client{self.index}.attempt",
            )
            # An abandoned attempt may fail *after* its deadline fired (same
            # timestamp, later heap sequence) with nothing left waiting on
            # it; self-defuse so the kernel never escalates it.
            proc.callbacks.append(lambda ev: ev.defuse() if not ev.ok else None)
            t0 = sim.now
            try:
                yield sim.any_of([proc, sim.timeout(policy.request_timeout)])
                if proc.triggered and proc.ok:
                    return proc.value
                if proc.triggered:
                    # Failed in the same timestep the deadline fired.
                    exc = proc.value
                    if not isinstance(exc, FaultError):
                        raise exc
                    last_error = exc
                else:
                    # Deadline won the race: abandon the in-flight attempt.
                    proc.interrupt("timeout")
                    last_error = TimeoutError(
                        f"request {req.request_id} to iod{server} timed out "
                        f"after {policy.request_timeout} s "
                        f"(attempt {attempt + 1})"
                    )
                    self.scope.add("timeouts")
                    if tracer is not None and tracer.enabled:
                        tracer.record(
                            "client.timeout",
                            f"iod{server}",
                            t0,
                            sim.now,
                            client=self.index,
                            server=server,
                            attempt=attempt,
                        )
            except FaultError as exc:
                last_error = exc
            if attempt >= policy.max_retries:
                break
            delay = policy.backoff(attempt, self._retry_rng)
            self.scope.add("retries")
            t_backoff = sim.now
            if delay > 0:
                yield sim.timeout(delay)
            if tracer is not None and tracer.enabled:
                tracer.record(
                    "client.retry_backoff",
                    f"iod{server}",
                    t_backoff,
                    sim.now,
                    client=self.index,
                    server=server,
                    attempt=attempt,
                )
        raise RetryExhausted(
            f"request {req.request_id} to iod{server} failed after "
            f"{policy.max_retries + 1} attempt(s): {last_error}",
            attempts=policy.max_retries + 1,
            last_error=last_error,
        )

    def __repr__(self) -> str:
        return f"<PVFSClient {self.index}>"
