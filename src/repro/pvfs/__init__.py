"""Simulated PVFS: manager, I/O daemons, client library, and striping."""

from .client import PVFSClient, PVFSFile
from .cluster import Cluster, WorkloadResult
from .iod import IOD
from .manager import Manager
from .metadata import FileMetadata, Namespace
from .protocol import (
    BYTES_PER_REGION,
    REQUEST_HEADER_BYTES,
    RESPONSE_HEADER_BYTES,
    IORequest,
    ManagerRequest,
    request_wire_bytes,
    response_wire_bytes,
)
from .replication import DirtyRange, FenceView, ReplicationState
from .striping import (
    ServerSlice,
    StripeMap,
    map_regions,
    replica_chain,
    server_for_offset,
)

__all__ = [
    "Cluster",
    "WorkloadResult",
    "PVFSClient",
    "PVFSFile",
    "IOD",
    "Manager",
    "FileMetadata",
    "Namespace",
    "IORequest",
    "ManagerRequest",
    "request_wire_bytes",
    "response_wire_bytes",
    "REQUEST_HEADER_BYTES",
    "RESPONSE_HEADER_BYTES",
    "BYTES_PER_REGION",
    "StripeMap",
    "ServerSlice",
    "map_regions",
    "replica_chain",
    "server_for_offset",
    "ReplicationState",
    "FenceView",
    "DirtyRange",
]
