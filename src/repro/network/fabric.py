"""The switched-Ethernet fabric: nodes, NICs, and the transfer process.

Topology model (matches the paper's testbed): every node hangs off one
non-blocking switch with full-duplex 100 Mbit/s links.  Each node therefore
owns two independent unit-capacity resources — its transmit link and its
receive link.  A message transfer:

1. claims the sender's TX link (a busy NIC serializes its own sends),
2. claims the receiver's RX link (many-to-one traffic queues FCFS at the
   receiver — this is where I/O servers melt under multiple I/O),
3. holds both for ``latency + serialization`` time, then releases.

Because each transfer needs exactly one TX and one RX resource and always
acquires TX first, no acquisition cycle can form and the model is
deadlock-free.

Transfers between co-located endpoints (e.g. the manager daemon sharing
I/O node 0, per the paper's setup) bypass the NICs and pay a memory-copy
cost instead.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from ..config import NetworkConfig
from ..errors import NetworkError
from ..simulate import Counters, Resource, Simulator
from .ethernet import EthernetModel

__all__ = ["Node", "Network"]

#: Latency charged for a loop-back (same node) message.
_LOOPBACK_LATENCY = 5e-6
#: Memory bandwidth used for loop-back message payloads (bytes/s).
_LOOPBACK_RATE = 400.0e6


class Node:
    """A cluster node with one full-duplex NIC."""

    __slots__ = ("name", "tx", "rx", "bytes_sent", "bytes_received", "messages_sent")

    def __init__(self, sim: Simulator, name: str) -> None:
        self.name = name
        self.tx = Resource(sim, capacity=1, name=f"{name}.tx")
        self.rx = Resource(sim, capacity=1, name=f"{name}.rx")
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0

    def __repr__(self) -> str:
        return f"<Node {self.name}>"


class Network:
    """Registry of nodes + the message transfer primitive."""

    def __init__(
        self,
        sim: Simulator,
        cfg: NetworkConfig,
        counters: Optional[Counters] = None,
        tracer=None,
    ) -> None:
        self.sim = sim
        self.cfg = cfg
        self.ethernet = EthernetModel(cfg)
        self.counters = counters if counters is not None else Counters()
        #: Optional :class:`~repro.simulate.Tracer`; when enabled every
        #: transfer records ``net.wait`` (time blocked on NIC links) and
        #: ``net.xfer`` (time occupying the wire) spans.
        self.tracer = tracer
        self._nodes: Dict[str, Node] = {}
        #: Analytic transfer fast path (inherits the kernel-wide switch so
        #: ``--no-fastpath`` reaches every layer from one knob).
        self._fastpath = sim.fastpath
        #: payload -> (wire_bytes, fault-free duration).  Payload sizes are
        #: highly repetitive (request headers, stripe-unit responses), so
        #: the frame math runs once per distinct size.  Values are exactly
        #: what the inline computation yields — same arithmetic, cached.
        self._wire_cache: Dict[int, tuple] = {}
        # -- fault state (driven by repro.faults.FaultInjector) -----------
        #: node name -> simulated time its link comes back up.  Transfers
        #: touching a down node stall until then (TCP riding out a flap),
        #: then pay one ``retransmit_timeout`` reconnect delay.
        self._down_until: Dict[str, float] = {}
        #: node name -> per-frame loss probability during an active window.
        self._frame_loss: Dict[str, float] = {}
        self._loss_rng = None

    # ------------------------------------------------------------------
    def add_node(self, name: str) -> Node:
        if name in self._nodes:
            raise NetworkError(f"duplicate node name {name!r}")
        node = Node(self.sim, name)
        self._nodes[name] = node
        return node

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise NetworkError(f"unknown node {name!r}") from None

    @property
    def n_nodes(self) -> int:
        return len(self._nodes)

    def nodes(self):
        """All registered nodes, in registration order."""
        return list(self._nodes.values())

    # ------------------------------------------------------------------
    # Fault injection hooks (see repro.faults.FaultInjector)
    # ------------------------------------------------------------------
    def set_link_down(self, node_name: str, until: float) -> None:
        """Take ``node_name``'s link down until simulated time ``until``."""
        if node_name not in self._nodes:
            raise NetworkError(f"unknown node {node_name!r}")
        self._down_until[node_name] = max(
            until, self._down_until.get(node_name, 0.0)
        )

    def link_down_until(self, node_name: str) -> float:
        """When the node's link comes back (<= now means it is up)."""
        return self._down_until.get(node_name, 0.0)

    def set_frame_loss(self, node_name: str, rate: float, rng) -> None:
        """Drop each frame touching ``node_name`` with probability ``rate``
        (``rng`` supplies the seeded draws) until :meth:`clear_frame_loss`."""
        if node_name not in self._nodes:
            raise NetworkError(f"unknown node {node_name!r}")
        if not 0.0 <= rate < 1.0:
            raise NetworkError(f"frame loss rate {rate} not in [0, 1)")
        self._frame_loss[node_name] = rate
        self._loss_rng = rng

    def clear_frame_loss(self, node_name: str) -> None:
        self._frame_loss.pop(node_name, None)

    def _await_links(self, src: Node, dst: Node, tracing: bool):
        """Stall while either endpoint's link is down, then pay the
        reconnect delay (simulation process; no-op when both links are up)."""
        sim = self.sim
        t_block = sim.now
        stalled = False
        while True:
            until = max(
                self._down_until.get(src.name, 0.0),
                self._down_until.get(dst.name, 0.0),
            )
            if until <= sim.now:
                break
            stalled = True
            yield sim.timeout(until - sim.now)
        # Prune windows that have fully expired so the analytic fast path
        # (disabled while any window is active) re-engages afterwards.
        expired = [n for n, t in self._down_until.items() if t <= sim.now]
        for n in expired:
            del self._down_until[n]
        if stalled:
            yield sim.timeout(self.cfg.retransmit_timeout)
            self.counters.add("net.link_stalls")
            if tracing:
                self.tracer.record(
                    "net.link_stall",
                    f"{src.name}->{dst.name}",
                    t_block,
                    sim.now,
                    src=src.name,
                    dst=dst.name,
                )

    def _loss_penalty(self, src: Node, dst: Node, payload: int) -> float:
        """Extra wire time for frames lost to an active packet-loss window:
        one retransmission timeout plus one full-frame retransmission per
        lost frame (each frame is lost at most once — TCP's exponential
        backoff makes repeated loss of the same segment negligible at the
        modeled rates)."""
        rate = max(
            self._frame_loss.get(src.name, 0.0),
            self._frame_loss.get(dst.name, 0.0),
        )
        if rate <= 0.0 or self._loss_rng is None:
            return 0.0
        frames = self.cfg.frames_for(payload)
        lost = int(self._loss_rng.binomial(frames, rate))
        if lost == 0:
            return 0.0
        self.counters.add("net.frames_lost", lost)
        frame_wire = self.cfg.mtu + self.cfg.frame_overhead
        return lost * (self.cfg.retransmit_timeout + frame_wire / self.cfg.bandwidth)

    # ------------------------------------------------------------------
    def transfer(self, src: Node, dst: Node, payload: int) -> Generator:
        """Simulation process moving ``payload`` bytes from ``src`` to
        ``dst``.  Use as ``yield from net.transfer(a, b, n)`` inside a
        process, or wrap with ``sim.process`` to run concurrently.

        Returns the number of wire bytes consumed.
        """
        if payload < 0:
            raise NetworkError(f"negative payload: {payload}")
        sim = self.sim
        cdata = self.counters._data
        if src is dst:
            # Same physical node: kernel loopback, no NIC involvement.
            yield sim.timeout(_LOOPBACK_LATENCY + payload / _LOOPBACK_RATE)
            cdata["net.loopback_messages"] += 1.0
            return payload
        cached = self._wire_cache.get(payload)
        if cached is None:
            cached = (
                self.cfg.wire_bytes(payload),
                self.cfg.latency + self.cfg.transmit_time(payload),
            )
            self._wire_cache[payload] = cached
        wire, duration = cached
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        # Latched before the stall: a window active when the transfer
        # starts forces the frame-level path even if it expires mid-stall.
        fault_window = bool(self._down_until) or bool(self._frame_loss)
        if self._down_until:
            yield from self._await_links(src, dst, tracing)
        if self._frame_loss:
            duration = duration + self._loss_penalty(src, dst, payload)
        t_req = sim.now if tracing else 0.0
        # -- analytic fast path -------------------------------------------
        # The legacy chain spends two delay-0 request/grant events per
        # message.  When the heap is quiescent at the current timestamp
        # (empty, or next event strictly later), nothing can dispatch
        # between those delay-0 events, so claiming both links
        # synchronously is order-identical — the whole transfer collapses
        # to the single precomputed duration timeout.  FCFS is preserved:
        # try_acquire never overtakes a waiter, and a busy link falls back
        # to the ordinary queued request.  Any active fault window (link
        # down or frame loss) forces the exact frame-level path outright.
        t_tok = None
        if self._fastpath and not fault_window:
            heap = sim._heap
            if not heap or heap[0][0] > sim.now:
                t_tok = src.tx.try_acquire()
        if t_tok is not None:
            r_tok = dst.rx.try_acquire()
            if r_tok is not None:
                cdata["net.fastpath_messages"] += 1.0
                t_hold = sim.now
                try:
                    yield sim.timeout(duration)
                finally:
                    # Release order matches the legacy nested context
                    # managers: RX (inner) first, then TX.
                    dst.rx.release(r_tok)
                    src.tx.release(t_tok)
            else:
                # RX busy: queue for it the ordinary way, TX already held.
                try:
                    with dst.rx.request() as r:
                        yield r
                        t_hold = sim.now
                        yield sim.timeout(duration)
                finally:
                    src.tx.release(t_tok)
        else:
            with src.tx.request() as t:
                yield t
                with dst.rx.request() as r:
                    yield r
                    t_hold = sim.now
                    yield sim.timeout(duration)
        src.bytes_sent += payload
        src.messages_sent += 1
        dst.bytes_received += payload
        cdata["net.messages"] += 1.0
        cdata["net.payload_bytes"] += payload
        cdata["net.wire_bytes"] += wire
        if tracing:
            if t_hold > t_req:
                tracer.record(
                    "net.wait",
                    f"{src.name}->{dst.name}",
                    t_req,
                    t_hold,
                    src=src.name,
                    dst=dst.name,
                )
            tracer.record(
                "net.xfer",
                f"{src.name}->{dst.name}",
                t_hold,
                sim.now,
                src=src.name,
                dst=dst.name,
                **self.ethernet.describe(payload),
            )
        return wire

    def __repr__(self) -> str:
        return f"<Network nodes={self.n_nodes}>"
