"""The switched-Ethernet fabric: nodes, NICs, and the transfer process.

Topology model (matches the paper's testbed): every node hangs off one
non-blocking switch with full-duplex 100 Mbit/s links.  Each node therefore
owns two independent unit-capacity resources — its transmit link and its
receive link.  A message transfer:

1. claims the sender's TX link (a busy NIC serializes its own sends),
2. claims the receiver's RX link (many-to-one traffic queues FCFS at the
   receiver — this is where I/O servers melt under multiple I/O),
3. holds both for ``latency + serialization`` time, then releases.

Because each transfer needs exactly one TX and one RX resource and always
acquires TX first, no acquisition cycle can form and the model is
deadlock-free.

Transfers between co-located endpoints (e.g. the manager daemon sharing
I/O node 0, per the paper's setup) bypass the NICs and pay a memory-copy
cost instead.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from ..config import NetworkConfig
from ..errors import NetworkError
from ..simulate import Counters, Resource, Simulator
from .ethernet import EthernetModel

__all__ = ["Node", "Network"]

#: Latency charged for a loop-back (same node) message.
_LOOPBACK_LATENCY = 5e-6
#: Memory bandwidth used for loop-back message payloads (bytes/s).
_LOOPBACK_RATE = 400.0e6


class Node:
    """A cluster node with one full-duplex NIC."""

    __slots__ = ("name", "tx", "rx", "bytes_sent", "bytes_received", "messages_sent")

    def __init__(self, sim: Simulator, name: str) -> None:
        self.name = name
        self.tx = Resource(sim, capacity=1, name=f"{name}.tx")
        self.rx = Resource(sim, capacity=1, name=f"{name}.rx")
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0

    def __repr__(self) -> str:
        return f"<Node {self.name}>"


class Network:
    """Registry of nodes + the message transfer primitive."""

    def __init__(
        self,
        sim: Simulator,
        cfg: NetworkConfig,
        counters: Optional[Counters] = None,
        tracer=None,
    ) -> None:
        self.sim = sim
        self.cfg = cfg
        self.ethernet = EthernetModel(cfg)
        self.counters = counters if counters is not None else Counters()
        #: Optional :class:`~repro.simulate.Tracer`; when enabled every
        #: transfer records ``net.wait`` (time blocked on NIC links) and
        #: ``net.xfer`` (time occupying the wire) spans.
        self.tracer = tracer
        self._nodes: Dict[str, Node] = {}

    # ------------------------------------------------------------------
    def add_node(self, name: str) -> Node:
        if name in self._nodes:
            raise NetworkError(f"duplicate node name {name!r}")
        node = Node(self.sim, name)
        self._nodes[name] = node
        return node

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise NetworkError(f"unknown node {name!r}") from None

    @property
    def n_nodes(self) -> int:
        return len(self._nodes)

    def nodes(self):
        """All registered nodes, in registration order."""
        return list(self._nodes.values())

    # ------------------------------------------------------------------
    def transfer(self, src: Node, dst: Node, payload: int) -> Generator:
        """Simulation process moving ``payload`` bytes from ``src`` to
        ``dst``.  Use as ``yield from net.transfer(a, b, n)`` inside a
        process, or wrap with ``sim.process`` to run concurrently.

        Returns the number of wire bytes consumed.
        """
        if payload < 0:
            raise NetworkError(f"negative payload: {payload}")
        sim = self.sim
        if src is dst:
            # Same physical node: kernel loopback, no NIC involvement.
            yield sim.timeout(_LOOPBACK_LATENCY + payload / _LOOPBACK_RATE)
            self.counters.add("net.loopback_messages")
            return payload
        wire = self.cfg.wire_bytes(payload)
        duration = self.cfg.latency + self.cfg.transmit_time(payload)
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        t_req = sim.now if tracing else 0.0
        with src.tx.request() as t:
            yield t
            with dst.rx.request() as r:
                yield r
                if tracing:
                    t_hold = sim.now
                yield sim.timeout(duration)
        src.bytes_sent += payload
        src.messages_sent += 1
        dst.bytes_received += payload
        self.counters.add("net.messages")
        self.counters.add("net.payload_bytes", payload)
        self.counters.add("net.wire_bytes", wire)
        if tracing:
            if t_hold > t_req:
                tracer.record(
                    "net.wait",
                    f"{src.name}->{dst.name}",
                    t_req,
                    t_hold,
                    src=src.name,
                    dst=dst.name,
                )
            tracer.record(
                "net.xfer",
                f"{src.name}->{dst.name}",
                t_hold,
                sim.now,
                src=src.name,
                dst=dst.name,
                **self.ethernet.describe(payload),
            )
        return wire

    def __repr__(self) -> str:
        return f"<Network nodes={self.n_nodes}>"
