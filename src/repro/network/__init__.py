"""Switched Fast-Ethernet network model (see :mod:`repro.network.fabric`)."""

from .ethernet import EthernetModel
from .fabric import Network, Node

__all__ = ["EthernetModel", "Network", "Node"]
