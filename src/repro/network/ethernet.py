"""Frame-level Ethernet math.

The paper's list I/O design point — "up to 64 contiguous file regions ...
chosen to allow the I/O request and trailing data to travel through the
network in a single Ethernet packet (1500 bytes)" (Section 3.3) — makes the
frame model load-bearing, so it gets a dedicated, heavily-tested class.

:class:`EthernetModel` wraps a :class:`~repro.config.NetworkConfig` and
answers "how long does a message of n payload bytes occupy the wire".  The
same math is used by the live simulator and the analytic model so the two
cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import NetworkConfig

__all__ = ["EthernetModel"]


@dataclass(frozen=True)
class EthernetModel:
    """Serialization / latency math over a :class:`NetworkConfig`."""

    cfg: NetworkConfig

    @property
    def mtu_payload(self) -> int:
        return self.cfg.mtu_payload

    def frames_for(self, payload: int) -> int:
        return self.cfg.frames_for(payload)

    def wire_bytes(self, payload: int) -> int:
        return self.cfg.wire_bytes(payload)

    def transmit_time(self, payload: int) -> float:
        """Seconds a ``payload``-byte message occupies a link (no latency)."""
        return self.cfg.transmit_time(payload)

    def message_time(self, payload: int) -> float:
        """End-to-end time for one message on an idle network."""
        return self.cfg.latency + self.transmit_time(payload)

    def roundtrip_time(self, request_payload: int, response_payload: int) -> float:
        """Idle-network request/response exchange time."""
        return self.message_time(request_payload) + self.message_time(response_payload)

    def fits_one_frame(self, payload: int) -> bool:
        """Whether ``payload`` bytes (plus IP/TCP headers) fit one MTU —
        the paper's criterion for the 64-region trailing-data cap."""
        return payload <= self.mtu_payload

    def max_regions_per_frame(self, header_bytes: int, bytes_per_region: int) -> int:
        """Largest region count whose request still fits one frame."""
        room = self.mtu_payload - header_bytes
        return max(room // bytes_per_region, 0)

    def describe(self, payload: int) -> dict:
        """Frame-level breakdown of one message, for trace annotation.

        Returns payload/wire byte counts, the frame count, and the
        latency/serialization split in seconds — the numbers an observer
        needs to tell "many tiny frames" from "few full frames" when
        reading a captured trace.
        """
        return {
            "payload_bytes": payload,
            "wire_bytes": self.wire_bytes(payload),
            "frames": self.frames_for(payload),
            "latency_s": self.cfg.latency,
            "serialization_s": self.transmit_time(payload),
        }
