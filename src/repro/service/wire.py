"""Wire codec: canonical spec JSON <-> frozen spec dataclasses.

The encode side is exactly :func:`repro.sweep.spec.canonical` — nested
dataclasses become ``{"__type__": ClassName, field: ...}`` dicts and
tuples become lists, which is the same deterministic structure the
:class:`~repro.sweep.ResultCache` hashes.  The decode side inverts it
against a closed registry of the frozen dataclasses a spec may contain,
re-tuplifying sequences and performing **no numeric coercion**, so for
every decodable spec::

    canonical(decode_spec(canonical(spec))) == canonical(spec)

— which is what makes a spec submitted over the wire hit the same cache
entry as the identical spec built in-process (the service's whole dedup
story rests on this invariant; ``tests/test_service_wire.py`` pins it).

Anything malformed — unknown ``__type__``, unknown field, a value the
dataclass validator rejects — raises :class:`SpecPayloadError`, which
the daemon maps to a typed HTTP 400.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Tuple, Type

from ..bench.micro import DiskRunsSpec, KernelChurnSpec, NetStreamSpec
from ..config import (
    CacheConfig,
    ClusterConfig,
    CostModel,
    DiskConfig,
    NetworkConfig,
    StripeParams,
)
from ..errors import ConfigError, ServiceError
from ..experiments.presets import Scale
from ..faults.plan import (
    DiskStall,
    FaultConfig,
    FaultPlan,
    IodCrash,
    LinkDown,
    PacketLoss,
    RetryPolicy,
    Straggler,
)
from ..patterns import FlashConfig, TiledConfig
from ..sweep.spec import ChaosSpec, MpiioSpec, PointSpec, canonical

__all__ = [
    "SpecPayloadError",
    "SPEC_TYPES",
    "JOB_SPEC_TYPES",
    "encode_spec",
    "decode_spec",
]


class SpecPayloadError(ServiceError):
    """A job payload could not be decoded into valid sweep specs.

    The daemon maps this to HTTP 400 with ``{"error": {"type":
    "SpecPayloadError", "message": ...}}`` so clients can tell a bad
    request from a server failure.
    """


#: Every frozen dataclass a canonical spec payload may contain, keyed by
#: the ``__type__`` tag :func:`~repro.sweep.spec.canonical` emits.  A
#: closed registry: payloads cannot instantiate arbitrary classes.
SPEC_TYPES: Dict[str, Type] = {
    cls.__name__: cls
    for cls in (
        # Spec roots
        PointSpec,
        MpiioSpec,
        ChaosSpec,
        KernelChurnSpec,
        NetStreamSpec,
        DiskRunsSpec,
        # Cluster configuration
        ClusterConfig,
        NetworkConfig,
        DiskConfig,
        CacheConfig,
        CostModel,
        StripeParams,
        # Fault schedules + retry policy
        FaultConfig,
        FaultPlan,
        RetryPolicy,
        IodCrash,
        DiskStall,
        LinkDown,
        PacketLoss,
        Straggler,
        # Experiment presets and pattern geometries
        Scale,
        FlashConfig,
        TiledConfig,
    )
}

#: The subset allowed as a *top-level* job spec (things with the sweep
#: protocol: ``run`` / ``cache_token`` / ``result_to_json``).
JOB_SPEC_TYPES: Tuple[Type, ...] = (
    PointSpec,
    MpiioSpec,
    ChaosSpec,
    KernelChurnSpec,
    NetStreamSpec,
    DiskRunsSpec,
)


def encode_spec(spec: Any) -> Any:
    """Canonical JSON-able form of ``spec`` (the cache-key structure)."""
    try:
        return canonical(spec)
    except ConfigError as exc:
        raise SpecPayloadError(str(exc)) from None


def _decode(obj: Any) -> Any:
    if isinstance(obj, dict):
        if "__type__" in obj:
            return _decode_dataclass(obj)
        return {k: _decode(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        # Every sequence field in the spec/config dataclasses is a tuple
        # (frozen dataclasses need hashable fields); canonical() turned
        # them into lists for JSON, so decoding re-tuplifies.
        return tuple(_decode(v) for v in obj)
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise SpecPayloadError(f"cannot decode value of type {type(obj).__name__!r}")


def _decode_dataclass(obj: Dict[str, Any]) -> Any:
    tag = obj["__type__"]
    try:
        cls = SPEC_TYPES[tag]
    except KeyError:
        known = ", ".join(sorted(SPEC_TYPES))
        raise SpecPayloadError(
            f"unknown spec type {tag!r} (known: {known})"
        ) from None
    field_names = {f.name for f in dataclasses.fields(cls)}
    kwargs: Dict[str, Any] = {}
    for key, value in obj.items():
        if key == "__type__":
            continue
        if key not in field_names:
            raise SpecPayloadError(f"{tag} has no field {key!r}")
        kwargs[key] = _decode(value)
    try:
        return cls(**kwargs)
    except (ConfigError, TypeError, ValueError) as exc:
        raise SpecPayloadError(f"invalid {tag}: {exc}") from None


def decode_spec(payload: Any) -> Any:
    """Rebuild one top-level sweep spec from its canonical JSON form.

    Raises :class:`SpecPayloadError` unless the result is one of the
    allowed job spec types (:data:`JOB_SPEC_TYPES`).
    """
    if not isinstance(payload, dict) or "__type__" not in payload:
        raise SpecPayloadError(
            "spec payload must be an object with a '__type__' tag "
            "(the canonical form of PointSpec/MpiioSpec/ChaosSpec/...)"
        )
    spec = _decode(payload)
    if not isinstance(spec, JOB_SPEC_TYPES):
        allowed = ", ".join(sorted(c.__name__ for c in JOB_SPEC_TYPES))
        raise SpecPayloadError(
            f"{type(spec).__name__} is not a runnable job spec (allowed: {allowed})"
        )
    return spec


def decode_specs(payload: Any) -> List[Any]:
    """Decode a list of canonical spec payloads (a ``sweep`` job body)."""
    if not isinstance(payload, (list, tuple)) or not payload:
        raise SpecPayloadError("'specs' must be a non-empty list of spec objects")
    return [decode_spec(p) for p in payload]
