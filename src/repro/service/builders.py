"""Job payload -> spec list: the daemon's four job kinds.

Each builder turns one validated JSON payload into the ordered spec
list the worker pool hands to :func:`repro.sweep.run_sweep`:

* ``sweep`` — raw canonical spec payloads (the fully general form the
  thin client's ``submit file`` uses);
* ``figure`` — a paper figure by number; delegates to the figure
  drivers' own ``build_specs`` so the service runs *exactly* the points
  ``pvfs-sim --figure N`` would (single source of truth, bit-identical
  results);
* ``chaos`` — one fault-injection scenario as a
  :class:`~repro.sweep.ChaosSpec`;
* ``bench`` — one named scenario of the regression suite via
  :func:`repro.bench.suite.build_specs`.

Every validation failure raises
:class:`~repro.service.wire.SpecPayloadError` (HTTP 400), never a bare
``KeyError`` — a malformed payload is a client error, not a crash.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..errors import BenchError, ConfigError
from ..experiments.presets import SCALED, SCALES, Scale
from ..sweep.spec import ChaosSpec
from .wire import SpecPayloadError, decode_specs

__all__ = ["JOB_KINDS", "build_job"]

JOB_KINDS = ("sweep", "figure", "chaos", "bench")

_FIGURES = ("9", "10", "11", "12", "15", "17", "18")


def _field(payload: Dict[str, Any], name: str, default: Any = None, required: bool = False):
    value = payload.get(name, default)
    if required and value is None:
        raise SpecPayloadError(f"job payload is missing required field {name!r}")
    return value


def _scale(payload: Dict[str, Any], default: str = "scaled") -> Scale:
    name = _field(payload, "scale", default)
    try:
        return SCALES[name]
    except (KeyError, TypeError):
        known = ", ".join(sorted(SCALES))
        raise SpecPayloadError(f"unknown scale {name!r} (known: {known})") from None


def _build_sweep(payload: Dict[str, Any]) -> Tuple[List[Any], str]:
    specs = decode_specs(_field(payload, "specs", required=True))
    return specs, _field(payload, "label", "sweep") or "sweep"


def _build_figure(payload: Dict[str, Any]) -> Tuple[List[Any], str]:
    figure = str(_field(payload, "figure", required=True))
    if figure not in _FIGURES:
        raise SpecPayloadError(
            f"unknown figure {figure!r} (known: {', '.join(_FIGURES)})"
        )
    scale = _scale(payload)
    mode = _field(payload, "mode") or ("model" if not scale.des_friendly else "des")
    if mode not in ("model", "des"):
        raise SpecPayloadError(f"mode must be 'model' or 'des', got {mode!r}")
    if mode == "des" and not scale.des_friendly and figure != "18":
        raise SpecPayloadError(
            f"scale {scale.name!r} is too large for the simulator; "
            "use mode='model' or a des-friendly scale"
        )
    try:
        if figure in ("9", "10", "11", "12"):
            from ..experiments.artificial import build_specs

            specs: List[Any] = build_specs(figure, scale, mode)
        elif figure == "15":
            from ..experiments.flashio import build_specs as flash_specs

            specs = flash_specs(scale, mode)
        elif figure == "17":
            from ..experiments.tiledvis import build_specs as tiled_specs

            specs = tiled_specs(scale, mode)
        else:  # figure 18 — DES-only; same fallback figure18() applies
            from ..experiments.collective import build_specs as coll_specs

            if not scale.des_friendly:
                scale = SCALED
            cb_buffer = _field(payload, "cb_buffer")
            if cb_buffer is not None:
                try:
                    cb_buffer = int(cb_buffer)
                except (TypeError, ValueError):
                    raise SpecPayloadError(
                        f"cb_buffer must be an integer byte count, got {cb_buffer!r}"
                    ) from None
                if cb_buffer < 1:
                    raise SpecPayloadError("cb_buffer must be a positive byte count")
            specs = coll_specs(scale, cb_buffer=cb_buffer)
    except ConfigError as exc:
        raise SpecPayloadError(str(exc)) from None
    return specs, f"fig{int(figure):02d}"


def _build_chaos(payload: Dict[str, Any]) -> Tuple[List[Any], str]:
    from ..experiments.chaos import BENCHMARKS, SCENARIOS

    scenario = _field(payload, "scenario", required=True)
    benchmark = _field(payload, "benchmark", "artificial")
    if scenario not in SCENARIOS:
        raise SpecPayloadError(
            f"unknown chaos scenario {scenario!r} (known: {', '.join(SCENARIOS)})"
        )
    if benchmark not in BENCHMARKS:
        raise SpecPayloadError(
            f"unknown chaos benchmark {benchmark!r} (known: {', '.join(BENCHMARKS)})"
        )
    scale = _scale(payload, default="smoke")
    if not scale.des_friendly:
        raise SpecPayloadError(
            f"chaos runs need a des-friendly scale, not {scale.name!r}"
        )
    try:
        spec = ChaosSpec(
            scenario=scenario,
            benchmark=benchmark,
            scale=scale,
            restart_after=float(_field(payload, "restart_after", 2.0)),
            replicas=int(_field(payload, "replicas", 1)),
            ack=_field(payload, "ack", "primary"),
        )
    except (ConfigError, TypeError, ValueError) as exc:
        raise SpecPayloadError(f"invalid chaos payload: {exc}") from None
    return [spec], f"chaos/{scenario}"


def _build_bench(payload: Dict[str, Any]) -> Tuple[List[Any], str]:
    from ..bench.suite import build_specs as bench_specs

    scenario = _field(payload, "scenario", required=True)
    scale = _scale(payload, default="smoke")
    try:
        specs = bench_specs(scenario, scale)
    except BenchError as exc:
        raise SpecPayloadError(str(exc)) from None
    return specs, f"bench/{scenario}"


_BUILDERS = {
    "sweep": _build_sweep,
    "figure": _build_figure,
    "chaos": _build_chaos,
    "bench": _build_bench,
}


def build_job(payload: Any) -> Tuple[str, List[Any], str]:
    """Validate one ``POST /v1/jobs`` body -> ``(kind, specs, label)``."""
    if not isinstance(payload, dict):
        raise SpecPayloadError("job payload must be a JSON object")
    kind = payload.get("kind")
    if kind not in _BUILDERS:
        raise SpecPayloadError(
            f"unknown job kind {kind!r} (known: {', '.join(JOB_KINDS)})"
        )
    specs, label = _BUILDERS[kind](payload)
    return kind, specs, label
