"""The thin blocking client behind ``pvfs-sim submit|status|wait|fetch|jobs``.

Stdlib :mod:`urllib.request` only.  Every HTTP failure surfaces as a
:class:`RequestFailed` carrying the status code and the daemon's typed
error object (``{"type": ..., "message": ...}``), so callers can tell a
malformed spec (400 ``SpecPayloadError``) from an unknown job (404)
from a dead daemon (no status at all).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

from ..errors import ServiceError

__all__ = ["ServiceClient", "RequestFailed", "DEFAULT_TIMEOUT"]

DEFAULT_TIMEOUT = 30.0


class RequestFailed(ServiceError):
    """An HTTP exchange with the daemon failed.

    ``status`` is the HTTP status (``None`` if the daemon was
    unreachable), ``error_type`` the daemon's typed error name
    (``"SpecPayloadError"``, ``"UnknownJob"``, ...) when one was sent.
    """

    def __init__(
        self,
        message: str,
        status: Optional[int] = None,
        error_type: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.error_type = error_type


class ServiceClient:
    """Blocking JSON client for one ``pvfs-sim serve`` daemon."""

    def __init__(self, url: str, timeout: float = DEFAULT_TIMEOUT) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- raw exchange ----------------------------------------------------
    def _request(self, method: str, path: str, body: Any = None) -> Any:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self.url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            try:
                err = json.loads(exc.read()).get("error", {})
            except (ValueError, OSError):
                err = {}
            raise RequestFailed(
                err.get("message", f"{method} {path} -> HTTP {exc.code}"),
                status=exc.code,
                error_type=err.get("type"),
            ) from None
        except (urllib.error.URLError, OSError) as exc:
            raise RequestFailed(
                f"cannot reach {self.url}: {getattr(exc, 'reason', exc)}"
            ) from None
        except ValueError as exc:
            raise RequestFailed(f"{method} {path}: daemon sent invalid JSON: {exc}") from None

    # -- endpoints -------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/health")

    def submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Submit a job payload; returns ``{"job": ..., "deduped": ...}``."""
        return self._request("POST", "/v1/jobs", payload)

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")["job"]

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def result(self, job_id: str) -> Dict[str, Any]:
        """Points + job summary of a ``done`` job (409 via RequestFailed
        while it is still queued/running)."""
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/metrics")

    def shutdown(self) -> Dict[str, Any]:
        return self._request("POST", "/v1/shutdown", {})

    # -- waiters ---------------------------------------------------------
    def wait(
        self,
        job_id: str,
        timeout: Optional[float] = None,
        poll: float = 0.2,
    ) -> Dict[str, Any]:
        """Block until the job leaves the queue (``done`` or ``failed``).

        Returns the final job summary; raises :class:`RequestFailed`
        with ``error_type="WaitTimeout"`` if ``timeout`` seconds pass
        first.  Never raises on a *failed* job — inspect ``state``.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in ("done", "failed"):
                return job
            if deadline is not None and time.monotonic() >= deadline:
                raise RequestFailed(
                    f"job {job_id} still {job['state']} after {timeout}s",
                    error_type="WaitTimeout",
                )
            time.sleep(poll)

    def run(self, payload: Dict[str, Any], timeout: Optional[float] = None) -> Dict[str, Any]:
        """Submit, wait, fetch — the one-call convenience path."""
        job = self.submit(payload)["job"]
        final = self.wait(job["id"], timeout=timeout)
        if final["state"] == "failed":
            raise RequestFailed(
                f"job {job['id']} failed: {final.get('error', 'unknown error')}",
                error_type="JobFailed",
            )
        return self.result(job["id"])
