"""``repro.service`` — the simulation-as-a-service layer.

Turns the one-shot ``pvfs-sim`` CLI into a long-lived HTTP/JSON daemon
fronting :func:`repro.sweep.run_sweep`, with the content-addressed
:class:`~repro.sweep.ResultCache` as the dedup layer for repeated
requests (ROADMAP item 1).  Stdlib only — ``http.server`` on the daemon
side, ``urllib.request`` on the client side.

* :mod:`repro.service.wire` — canonical JSON codec for sweep specs
  (exactly the :func:`repro.sweep.spec.canonical` form, decoded back to
  the frozen dataclasses without any numeric coercion, so a spec that
  crosses the wire keeps its cache key);
* :mod:`repro.service.jobs` — the job record, content-addressed job
  keys, and the thread-safe store;
* :mod:`repro.service.builders` — job payload -> spec list (shares the
  figure drivers' ``build_specs`` so a ``figure`` job runs *the same
  points* the CLI would);
* :mod:`repro.service.daemon` — ``pvfs-sim serve``: bounded worker
  pool, job queue, metrics, structured request logging;
* :mod:`repro.service.client` — the thin blocking client behind
  ``pvfs-sim submit|status|wait|fetch|jobs``.

Results fetched through the service are bit-identical to the same spec
run via the direct CLI: the daemon runs the identical engine and
serializes points with the identical ``result_to_json`` the cache uses.
"""

from .client import RequestFailed, ServiceClient
from .daemon import DEFAULT_HOST, DEFAULT_PORT, ServiceDaemon
from .jobs import Job, JobStore, job_key
from .wire import SpecPayloadError, decode_spec, encode_spec

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "Job",
    "JobStore",
    "RequestFailed",
    "ServiceClient",
    "ServiceDaemon",
    "SpecPayloadError",
    "decode_spec",
    "encode_spec",
    "job_key",
]
