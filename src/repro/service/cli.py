"""CLI surface of the service: ``serve`` plus the thin-client verbs.

::

    pvfs-sim serve --port 8642 --workers 2
    pvfs-sim submit figure 9 --scale smoke --mode des --wait
    pvfs-sim submit bench micro_disk_runs --scale smoke
    pvfs-sim submit chaos --scenario crash --benchmark artificial --scale smoke
    pvfs-sim submit file specs.json --wait
    pvfs-sim status job-1
    pvfs-sim wait job-1 --timeout 600
    pvfs-sim fetch job-1 --out points.json
    pvfs-sim jobs

The daemon URL comes from ``--url``, else ``$PVFS_SIM_SERVICE_URL``,
else ``http://127.0.0.1:8642``.  Exit codes: 0 success, 1 job failed,
2 usage/connection error — same convention as the figure driver.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional

from ..errors import ServiceError
from .client import ServiceClient
from .daemon import DEFAULT_HOST, DEFAULT_PORT, ServiceDaemon

__all__ = ["main", "SUBCOMMANDS"]

SUBCOMMANDS = ("serve", "submit", "status", "wait", "fetch", "jobs")


def _default_url() -> str:
    return os.environ.get("PVFS_SIM_SERVICE_URL", f"http://{DEFAULT_HOST}:{DEFAULT_PORT}")


def _add_client_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--url",
        default=_default_url(),
        help="daemon base URL (default: $PVFS_SIM_SERVICE_URL or "
        f"http://{DEFAULT_HOST}:{DEFAULT_PORT})",
    )
    p.add_argument("--json", action="store_true", help="print raw JSON instead of tables")


def _table(rows: List[List[str]], header: List[str]) -> str:
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt.format(*header), fmt.format(*("-" * w for w in widths))]
    lines += [fmt.format(*row) for row in rows]
    return "\n".join(lines)


def _job_rows(jobs: List[Dict[str, Any]]) -> List[List[str]]:
    rows = []
    for j in jobs:
        wall = ""
        if j.get("started") and j.get("finished"):
            wall = f"{j['finished'] - j['started']:.2f}s"
        rows.append(
            [
                j["id"],
                j["kind"],
                j.get("label", ""),
                j["state"],
                f"{j['completed']}/{j['total']}",
                wall,
                j.get("error", "") or "",
            ]
        )
    return rows


def _print_job(job: Dict[str, Any], as_json: bool) -> None:
    if as_json:
        print(json.dumps(job, sort_keys=True, indent=2))
    else:
        print(_table(_job_rows([job]), ["id", "kind", "label", "state", "points", "wall", "error"]))


def _print_points(result: Dict[str, Any], as_json: bool) -> None:
    points = result.get("points", [])
    if as_json or not points:
        print(json.dumps(result, sort_keys=True, indent=2))
        return
    if all("series" in p and "elapsed" in p for p in points):
        rows = [
            [
                str(p.get("figure", "")),
                str(p.get("series", "")),
                f"{p.get('x', 0):g}",
                f"{p.get('n_clients', 0)}",
                f"{p.get('elapsed', 0.0):.6g}",
                f"{p.get('logical_requests', 0)}",
            ]
            for p in points
        ]
        print(_table(rows, ["figure", "series", "x", "clients", "elapsed_s", "requests"]))
    else:  # chaos rows and anything else without the DataPoint shape
        for p in points:
            print(json.dumps(p, sort_keys=True))


# -- serve ---------------------------------------------------------------
def _cmd_serve(args: argparse.Namespace) -> int:
    cache = None
    if not args.no_cache:
        from ..sweep import ResultCache, default_cache_dir

        cache = ResultCache(args.cache_dir or default_cache_dir())
    daemon = ServiceDaemon(
        args.host, args.port, workers=args.workers, cache=cache
    )
    print(
        f"pvfs-sim service on http://{args.host}:{args.port} "
        f"({args.workers} worker(s), cache {'off' if cache is None else 'on'}) "
        "— Ctrl-C to stop",
        file=sys.stderr,
    )
    daemon.serve_forever()
    return 0


# -- submit ---------------------------------------------------------------
def _payload_of(args: argparse.Namespace) -> Dict[str, Any]:
    if args.target == "figure":
        payload: Dict[str, Any] = {"kind": "figure", "figure": args.figure, "scale": args.scale}
        if args.mode:
            payload["mode"] = args.mode
        if getattr(args, "cb_buffer", None) is not None:
            payload["cb_buffer"] = args.cb_buffer
        return payload
    if args.target == "chaos":
        return {
            "kind": "chaos",
            "scenario": args.scenario,
            "benchmark": args.benchmark,
            "scale": args.scale,
            "restart_after": args.restart_after,
            "replicas": args.replicas,
            "ack": args.ack,
        }
    if args.target == "bench":
        return {"kind": "bench", "scenario": args.scenario, "scale": args.scale}
    # file: raw canonical specs, either a bare list or {"specs": [...]}
    with open(args.path) as fh:
        body = json.load(fh)
    specs = body["specs"] if isinstance(body, dict) else body
    payload = {"kind": "sweep", "specs": specs}
    if isinstance(body, dict) and body.get("label"):
        payload["label"] = body["label"]
    return payload


def _cmd_submit(args: argparse.Namespace) -> int:
    client = ServiceClient(args.url)
    reply = client.submit(_payload_of(args))
    job = reply["job"]
    dedup = " (deduped: served from an earlier submission)" if reply["deduped"] else ""
    print(f"submitted {job['id']}: {job['kind']} {job.get('label', '')} "
          f"[{job['state']}]{dedup}")
    if not args.wait:
        return 0
    final = client.wait(job["id"], timeout=args.timeout)
    if final["state"] == "failed":
        print(f"job {job['id']} failed: {final.get('error')}", file=sys.stderr)
        return 1
    _print_points(client.result(job["id"]), args.json)
    return 0


# -- status / wait / fetch / jobs ----------------------------------------
def _cmd_status(args: argparse.Namespace) -> int:
    _print_job(ServiceClient(args.url).job(args.job_id), args.json)
    return 0


def _cmd_wait(args: argparse.Namespace) -> int:
    job = ServiceClient(args.url).wait(args.job_id, timeout=args.timeout)
    _print_job(job, args.json)
    return 1 if job["state"] == "failed" else 0


def _cmd_fetch(args: argparse.Namespace) -> int:
    result = ServiceClient(args.url).result(args.job_id)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(result, fh, sort_keys=True)
        print(f"wrote {len(result.get('points', []))} points to {args.out}")
    else:
        _print_points(result, args.json)
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    jobs = ServiceClient(args.url).jobs()
    if args.json:
        print(json.dumps(jobs, sort_keys=True, indent=2))
    elif jobs:
        print(_table(_job_rows(jobs), ["id", "kind", "label", "state", "points", "wall", "error"]))
    else:
        print("no jobs")
    return 0


# -- parser ---------------------------------------------------------------
def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="pvfs-sim",
        description="pvfs-sim simulation service (daemon + thin client)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the simulation daemon")
    serve.add_argument("--host", default=DEFAULT_HOST)
    serve.add_argument("--port", type=int, default=DEFAULT_PORT)
    serve.add_argument(
        "--workers", type=int, default=2, help="worker threads (default: 2)"
    )
    serve.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="result cache directory (default: $PVFS_SIM_CACHE or ~/.cache/pvfs-sim)",
    )
    serve.add_argument(
        "--no-cache", action="store_true", help="run without the result cache"
    )
    serve.set_defaults(fn=_cmd_serve)

    submit = sub.add_parser("submit", help="submit a job to the daemon")
    tsub = submit.add_subparsers(dest="target", required=True)

    fig = tsub.add_parser("figure", help="a paper figure by number")
    fig.add_argument("figure", choices=("9", "10", "11", "12", "15", "17", "18"))
    fig.add_argument("--scale", default="scaled", help="parameter scale (default: scaled)")
    fig.add_argument("--mode", choices=("model", "des"), default=None)
    fig.add_argument(
        "--cb-buffer",
        type=int,
        default=None,
        metavar="BYTES",
        help="collective buffer size for two-phase I/O (figure 18 only)",
    )

    chaos = tsub.add_parser("chaos", help="a fault-injection scenario")
    chaos.add_argument("--scenario", required=True)
    chaos.add_argument("--benchmark", default="artificial")
    chaos.add_argument("--scale", default="smoke")
    chaos.add_argument("--restart-after", type=float, default=2.0)
    chaos.add_argument("--replicas", type=int, default=1)
    chaos.add_argument("--ack", choices=("primary", "quorum"), default="primary")

    bench = tsub.add_parser("bench", help="a benchmark-suite scenario")
    bench.add_argument("scenario")
    bench.add_argument("--scale", default="smoke")

    file_ = tsub.add_parser("file", help="raw canonical specs from a JSON file")
    file_.add_argument("path")

    for sp in (fig, chaos, bench, file_):
        _add_client_args(sp)
        sp.add_argument(
            "--wait", action="store_true", help="block until done, then print the result"
        )
        sp.add_argument("--timeout", type=float, default=None, help="wait timeout (s)")
        sp.set_defaults(fn=_cmd_submit)

    status = sub.add_parser("status", help="one job's state and progress")
    status.add_argument("job_id")
    _add_client_args(status)
    status.set_defaults(fn=_cmd_status)

    wait = sub.add_parser("wait", help="block until a job finishes")
    wait.add_argument("job_id")
    wait.add_argument("--timeout", type=float, default=None)
    _add_client_args(wait)
    wait.set_defaults(fn=_cmd_wait)

    fetch = sub.add_parser("fetch", help="download a finished job's points")
    fetch.add_argument("job_id")
    fetch.add_argument("--out", metavar="FILE.json", help="write the result body to a file")
    _add_client_args(fetch)
    fetch.set_defaults(fn=_cmd_fetch)

    jobs = sub.add_parser("jobs", help="list jobs on the daemon")
    _add_client_args(jobs)
    jobs.set_defaults(fn=_cmd_jobs)

    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    try:
        return args.fn(args)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
