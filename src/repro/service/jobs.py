"""Job records, content-addressed job keys, and the thread-safe store.

A *job* is an ordered list of sweep specs plus its lifecycle state::

    queued -> running -> done | failed

The job key is a SHA-256 over the job kind, the installed code
fingerprint, and every spec's ``cache_token()`` — the same ingredients
:class:`~repro.sweep.ResultCache` hashes per point — so two submissions
describing the same work collide on the key and the second one is
answered by the first's record (``deduped``) without touching the
worker pool.  Failed jobs never dedup: resubmitting retries the work.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..sweep.fingerprint import code_fingerprint

__all__ = ["Job", "JobStore", "job_key", "JOB_STATES"]

JOB_STATES = ("queued", "running", "done", "failed")


def job_key(kind: str, specs: List[Any], fingerprint: Optional[str] = None) -> str:
    """Content address of one job (kind + code fingerprint + spec tokens)."""
    payload = {
        "kind": kind,
        "code": fingerprint or code_fingerprint(),
        "specs": [spec.cache_token() for spec in specs],
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class Job:
    """One submitted unit of work and everything known about it."""

    id: str
    kind: str
    key: str
    label: str
    specs: List[Any]
    state: str = "queued"
    created: float = field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    #: Points completed so far (cache hits included) — the progress signal.
    completed: int = 0
    error: Optional[str] = None
    #: In spec order once ``state == "done"``.
    results: Optional[List[Any]] = None
    #: The engine's :class:`~repro.sweep.SweepStats` once finished.
    stats: Any = None

    @property
    def total(self) -> int:
        return len(self.specs)

    def summary(self) -> Dict[str, Any]:
        """The wire view of the job (no results — fetch those separately)."""
        out: Dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "key": self.key,
            "label": self.label,
            "state": self.state,
            "total": self.total,
            "completed": self.completed,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.stats is not None:
            out["stats"] = {
                "cache_hits": self.stats.cache_hits,
                "executed": self.stats.executed,
                "wall_s": self.stats.wall_s,
            }
        return out


class JobStore:
    """Thread-safe job registry with key-based dedup.

    ``submit`` is the only mutating entry point the HTTP layer uses; the
    worker pool mutates job fields directly but always under
    :attr:`lock` (the store hands it out so daemon and store share one).
    """

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._by_key: Dict[str, str] = {}
        self._ids = itertools.count(1)

    def submit(self, kind: str, specs: List[Any], label: str, key: str) -> Tuple[Job, bool]:
        """Register a job, or return the existing one for ``key``.

        Returns ``(job, deduped)``.  A previous *failed* job with the
        same key is evicted from the dedup index so the new submission
        actually runs.
        """
        with self.lock:
            existing_id = self._by_key.get(key)
            if existing_id is not None:
                existing = self._jobs[existing_id]
                if existing.state != "failed":
                    return existing, True
                del self._by_key[key]
            job = Job(
                id=f"job-{next(self._ids)}",
                kind=kind,
                key=key,
                label=label,
                specs=specs,
            )
            self._jobs[job.id] = job
            self._by_key[key] = job.id
            return job, False

    def get(self, job_id: str) -> Optional[Job]:
        with self.lock:
            return self._jobs.get(job_id)

    def list(self) -> List[Job]:
        """Jobs in submission order (ids are monotonic)."""
        with self.lock:
            return list(self._jobs.values())

    def queue_depth(self) -> int:
        with self.lock:
            return sum(1 for j in self._jobs.values() if j.state == "queued")
