"""``pvfs-sim serve`` — the HTTP/JSON simulation daemon.

Stdlib :class:`http.server.ThreadingHTTPServer` front, bounded worker
pool back.  Requests never run simulations: ``POST /v1/jobs`` validates
the payload, content-addresses it, and either enqueues a new job or
answers with the existing one (dedup); worker threads drain the queue
through :func:`repro.sweep.run_sweep` with the shared
:class:`~repro.sweep.ResultCache`, so a resubmitted spec is served
without recomputation at *two* levels — job dedup above, per-point
cache below.

Wire protocol (all JSON; see ``docs/service.md`` for examples):

====================================  =======================================
``GET  /v1/health``                   liveness + code fingerprint
``POST /v1/jobs``                     submit a job (``202``; ``200`` deduped)
``GET  /v1/jobs``                     list job summaries
``GET  /v1/jobs/<id>``                one job's state and progress
``GET  /v1/jobs/<id>/result``         points of a ``done`` job (``409`` else)
``GET  /v1/metrics``                  metrics registry snapshot
``POST /v1/shutdown``                 graceful stop
====================================  =======================================

Observability: every request is logged as one JSON line (method, path,
status, duration), and the registry carries
``service.jobs.{accepted,deduped,completed,failed}`` counters, a
``service.queue.depth`` gauge, and a ``service.job.wall_s`` histogram.
"""

from __future__ import annotations

import json
import queue
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ReproError
from ..obs.metrics import MetricsRegistry
from ..sweep.engine import run_sweep
from ..sweep.fingerprint import code_fingerprint
from .builders import build_job
from .jobs import JobStore, job_key
from .wire import SpecPayloadError

__all__ = ["ServiceDaemon", "DEFAULT_HOST", "DEFAULT_PORT"]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8642

#: Body size cap: a figure job is a few hundred bytes; even a raw sweep
#: of thousands of specs stays far below this.
_MAX_BODY = 16 * 1024 * 1024


class ServiceDaemon:
    """The long-lived service: HTTP front, job queue, worker pool.

    ``start()``/``stop()`` give tests an in-process daemon on an
    ephemeral port; ``serve_forever()`` is the CLI entry point.  All
    mutable job state is guarded by the store's lock; the metrics
    registry has its own (the engine itself never touches either).
    """

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        *,
        workers: int = 2,
        cache=None,
        metrics: Optional[MetricsRegistry] = None,
        log_stream=None,
    ) -> None:
        if workers < 1:
            raise ReproError("service needs at least one worker")
        self.host = host
        self.port = port
        self.n_workers = workers
        self.cache = cache
        self.metrics = metrics if metrics is not None else MetricsRegistry(label="service")
        self.store = JobStore()
        self.log_stream = log_stream if log_stream is not None else sys.stderr
        self.fingerprint = code_fingerprint()
        self._queue: "queue.Queue[str]" = queue.Queue()
        self._metrics_lock = threading.Lock()
        self._log_lock = threading.Lock()
        self._stopping = threading.Event()
        self._workers: List[threading.Thread] = []
        self._server: Optional[ThreadingHTTPServer] = None
        self._serve_thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------
    def start(self) -> Tuple[str, int]:
        """Bind, spawn workers, serve in a background thread.

        Returns the bound ``(host, port)`` — pass ``port=0`` for an
        ephemeral port (tests do).
        """
        daemon = self

        class Handler(_Handler):
            service = daemon

        self._server = ThreadingHTTPServer((self.host, self.port), Handler)
        self._server.daemon_threads = True
        self.port = self._server.server_address[1]
        for i in range(self.n_workers):
            t = threading.Thread(
                target=self._worker_loop, name=f"service-worker-{i + 1}", daemon=True
            )
            t.start()
            self._workers.append(t)
        self._serve_thread = threading.Thread(
            target=self._server.serve_forever, name="service-http", daemon=True
        )
        self._serve_thread.start()
        self._log(
            {
                "event": "start",
                "host": self.host,
                "port": self.port,
                "workers": self.n_workers,
                "cache": getattr(self.cache, "root", None) and str(self.cache.root),
            }
        )
        return self.host, self.port

    def stop(self) -> None:
        """Stop accepting requests and wind the workers down."""
        if self._stopping.is_set():
            return
        self._stopping.set()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
        for t in self._workers:
            t.join(timeout=5.0)
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
        self._log({"event": "stop"})

    def serve_forever(self) -> None:
        """Blocking run (the ``pvfs-sim serve`` path); Ctrl-C stops."""
        self.start()
        try:
            while not self._stopping.is_set():
                time.sleep(0.2)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- workers ---------------------------------------------------------
    def _worker_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                job_id = self._queue.get(timeout=0.2)
            except queue.Empty:
                continue
            job = self.store.get(job_id)
            if job is not None:
                self._run_job(job)
            self._queue.task_done()
            self._set_queue_gauge()

    def _run_job(self, job) -> None:
        with self.store.lock:
            job.state = "running"
            job.started = time.time()

        def progress(_msg: str) -> None:
            with self.store.lock:
                job.completed += 1

        job_metrics = MetricsRegistry()
        try:
            results, stats = run_sweep(
                job.specs,
                jobs=1,
                cache=self.cache,
                metrics=job_metrics,
                label=job.label,
                progress=progress,
            )
        except Exception as exc:  # worker must survive any job failure
            with self.store.lock:
                job.state = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
                job.finished = time.time()
            with self._metrics_lock:
                self.metrics.counter("service.jobs.failed").inc()
            self._log({"event": "job_failed", "job": job.id, "error": job.error})
            return
        with self.store.lock:
            job.results = results
            job.stats = stats
            job.state = "done"
            job.finished = time.time()
            wall = job.finished - job.started
        with self._metrics_lock:
            self.metrics.merge(job_metrics)
            self.metrics.counter("service.jobs.completed").inc()
            self.metrics.counter("service.points.completed").inc(len(results))
            self.metrics.counter("service.points.cache_hits").inc(stats.cache_hits)
            self.metrics.counter("service.points.executed").inc(stats.executed)
            self.metrics.histogram("service.job.wall_s").observe(wall)
        self._log(
            {
                "event": "job_done",
                "job": job.id,
                "points": len(results),
                "cache_hits": stats.cache_hits,
                "executed": stats.executed,
                "wall_s": round(wall, 6),
            }
        )

    # -- submission (called from HTTP handler threads) -------------------
    def submit(self, payload: Any) -> Tuple[Dict[str, Any], bool]:
        """Validate, dedup, and (if new) enqueue one job payload."""
        kind, specs, label = build_job(payload)
        key = job_key(kind, specs, self.fingerprint)
        job, deduped = self.store.submit(kind, specs, label, key)
        with self._metrics_lock:
            if deduped:
                self.metrics.counter("service.jobs.deduped").inc()
            else:
                self.metrics.counter("service.jobs.accepted").inc()
        if not deduped:
            self._queue.put(job.id)
            self._set_queue_gauge()
        with self.store.lock:
            summary = job.summary()
        return summary, deduped

    def result_payload(self, job) -> Dict[str, Any]:
        """The ``/result`` body: points serialized with the same
        ``result_to_json`` the cache and the direct CLI use, in spec
        order — byte-for-byte what a direct ``run_sweep`` would yield."""
        with self.store.lock:
            results = list(job.results or [])
            specs = list(job.specs)
            summary = job.summary()
        return {
            "job": summary,
            "points": [
                spec.result_to_json(result) for spec, result in zip(specs, results)
            ],
        }

    # -- bookkeeping -----------------------------------------------------
    def _set_queue_gauge(self) -> None:
        with self._metrics_lock:
            self.metrics.gauge("service.queue.depth").set(self.store.queue_depth())

    def metrics_snapshot(self) -> Dict[str, Any]:
        with self._metrics_lock:
            return self.metrics.snapshot()

    def _log(self, record: Dict[str, Any]) -> None:
        record = {"t": round(time.time(), 3), **record}
        line = json.dumps(record, sort_keys=True)
        with self._log_lock:
            try:
                self.log_stream.write(line + "\n")
                self.log_stream.flush()
            except (OSError, ValueError):
                pass  # a dead log stream must never kill the service


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the daemon; all responses are JSON."""

    service: ServiceDaemon  # overridden per daemon in start()
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------
    def log_message(self, fmt, *args):  # noqa: A003 - stdlib signature
        pass  # the daemon writes its own structured lines

    def _send(self, status: int, body: Dict[str, Any]) -> None:
        blob = json.dumps(body, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)
        self.service._log(
            {
                "event": "request",
                "method": self.command,
                "path": self.path,
                "status": status,
                "dur_ms": round((time.perf_counter() - self._t0) * 1e3, 3),
            }
        )
        with self.service._metrics_lock:
            self.service.metrics.counter("service.http.requests").inc()
            if status >= 400:
                self.service.metrics.counter("service.http.errors").inc()

    def _error(self, status: int, err_type: str, message: str) -> None:
        self._send(status, {"error": {"type": err_type, "message": message}})

    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY:
            raise SpecPayloadError(f"request body exceeds {_MAX_BODY} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise SpecPayloadError("request body must be a JSON object")
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise SpecPayloadError(f"request body is not valid JSON: {exc}") from None

    # -- routes ----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._t0 = time.perf_counter()
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts == ["v1", "health"]:
            self._send(
                200,
                {
                    "ok": True,
                    "service": "pvfs-sim",
                    "fingerprint": self.service.fingerprint,
                    "workers": self.service.n_workers,
                    "cache": self.service.cache is not None,
                },
            )
        elif parts == ["v1", "jobs"]:
            self._send(200, {"jobs": [j.summary() for j in self.service.store.list()]})
        elif parts == ["v1", "metrics"]:
            self._send(200, self.service.metrics_snapshot())
        elif len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            job = self.service.store.get(parts[2])
            if job is None:
                self._error(404, "UnknownJob", f"no such job {parts[2]!r}")
            else:
                self._send(200, {"job": job.summary()})
        elif len(parts) == 4 and parts[:2] == ["v1", "jobs"] and parts[3] == "result":
            job = self.service.store.get(parts[2])
            if job is None:
                self._error(404, "UnknownJob", f"no such job {parts[2]!r}")
            elif job.state == "failed":
                self._error(409, "JobFailed", job.error or "job failed")
            elif job.state != "done":
                self._error(
                    409, "JobNotDone", f"job {job.id} is {job.state}; wait for 'done'"
                )
            else:
                self._send(200, self.service.result_payload(job))
        else:
            self._error(404, "UnknownRoute", f"no route for GET {self.path}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._t0 = time.perf_counter()
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts == ["v1", "jobs"]:
            try:
                payload = self._read_json()
                summary, deduped = self.service.submit(payload)
            except SpecPayloadError as exc:
                self._error(400, "SpecPayloadError", str(exc))
                return
            self._send(200 if deduped else 202, {"job": summary, "deduped": deduped})
        elif parts == ["v1", "shutdown"]:
            self._send(200, {"ok": True, "stopping": True})
            threading.Thread(target=self.service.stop, daemon=True).start()
        else:
            self._error(404, "UnknownRoute", f"no route for POST {self.path}")
