"""MPI-IO on simulated PVFS: file views + two-phase collective I/O."""

from .file import MPIFile, MPIIOError, open_one
from .twophase import (
    CollectiveContext,
    Exchange,
    collective_read,
    collective_write,
    partition_file_domains,
    round_count,
    round_window,
    select_aggregators,
)
from .view import FileView

__all__ = [
    "MPIFile",
    "MPIIOError",
    "open_one",
    "FileView",
    "CollectiveContext",
    "Exchange",
    "collective_read",
    "collective_write",
    "partition_file_domains",
    "round_count",
    "round_window",
    "select_aggregators",
]
