"""MPI-IO on simulated PVFS: file views + two-phase collective I/O."""

from .file import MPIFile, MPIIOError, open_one
from .view import FileView

__all__ = ["MPIFile", "MPIIOError", "open_one", "FileView"]
