"""MPI-IO file views: mapping view-stream positions to file regions.

An MPI-IO view is ``(disp, etype, filetype)``: the visible bytes of the
file are the data bytes of successive ``filetype`` instances tiled from
byte ``disp``; offsets are counted in ``etype`` units of that visible
stream.  ``FileView.regions_for`` turns "``nbytes`` starting at offset
``off`` etypes" into the file :class:`~repro.regions.RegionList` the PVFS
client consumes — ROMIO's flattening + indexing, vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datatypes import BYTE, Datatype, DatatypeError
from ..regions import RegionList

__all__ = ["FileView"]


@dataclass(frozen=True)
class FileView:
    """One rank's window onto a file."""

    disp: int = 0
    etype: Datatype = BYTE
    filetype: Datatype = BYTE

    def __post_init__(self) -> None:
        if self.disp < 0:
            raise DatatypeError("displacement must be non-negative")
        if self.filetype.size == 0:
            raise DatatypeError("filetype must contain data")
        if self.etype.size == 0:
            raise DatatypeError("etype must contain data")
        if self.filetype.size % self.etype.size:
            raise DatatypeError(
                f"filetype size {self.filetype.size} is not a multiple of "
                f"etype size {self.etype.size}"
            )

    def regions_for(self, offset_etypes: int, nbytes: int) -> RegionList:
        """File regions of ``nbytes`` of view stream starting at
        ``offset_etypes`` etype units."""
        if offset_etypes < 0 or nbytes < 0:
            raise DatatypeError("offset and nbytes must be non-negative")
        if nbytes == 0:
            return RegionList.empty()
        if nbytes % self.etype.size:
            raise DatatypeError(f"transfer of {nbytes} B is not a whole number of etypes")
        stream_start = offset_etypes * self.etype.size
        fsize = self.filetype.size
        first_instance = stream_start // fsize
        last_instance = (stream_start + nbytes - 1) // fsize
        count = last_instance - first_instance + 1
        tiled = self.filetype.flatten(
            count, displacement=self.disp + first_instance * self.filetype.extent
        )
        skip = stream_start - first_instance * fsize
        return tiled.byte_slice(skip, nbytes)

    @property
    def is_contiguous(self) -> bool:
        """Whether the view exposes the raw byte stream (default view)."""
        return self.filetype.region_count == 1 and self.filetype.size == self.filetype.extent

    def __repr__(self) -> str:
        return (
            f"<FileView disp={self.disp} etype={self.etype.size}B "
            f"filetype size={self.filetype.size}/extent={self.filetype.extent}>"
        )
