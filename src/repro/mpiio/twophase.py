"""Two-phase collective I/O: aggregators, file domains, fabric exchange.

This module is the engine behind every collective entry point in the
repository — :meth:`repro.mpiio.MPIFile.write_at_all` /
:meth:`~repro.mpiio.MPIFile.read_at_all` and the first-class
:class:`repro.core.TwoPhaseIO` access method — implementing the ROMIO
algorithm of Thakur/Gropp/Lusk ("Optimizing Noncontiguous Accesses in
MPI-IO", see PAPERS.md):

1. **Metadata exchange** — every rank ships its (offset, length) list to
   every other rank (:func:`exchange_meta`), as real messages through the
   simulated fabric.
2. **Aggregator selection + file-domain partitioning** — the first
   ``cb_nodes`` ranks (:func:`select_aggregators`) each own one
   stripe-aligned slice of the aggregate byte range
   (:func:`partition_file_domains`).
3. **Data redistribution** — contributions (writes) or replies (reads)
   move between compute nodes over the network, again as real fabric
   messages, so they show up in Perfetto lanes, resource monitors, and
   the profiler's per-handler tables.
4. **File access** — each aggregator performs one large, (nearly)
   contiguous list-I/O access per *round*.  A round covers at most
   ``cb_buffer`` bytes of each aggregator's domain (ROMIO's collective
   buffer size); ``cb_buffer=None`` means an unbounded buffer, i.e. a
   single round over the whole domain.

All generators here are simulation processes; collectives must be
entered by every rank of the communicator in the same order.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from ..errors import PVFSError
from ..mpi import Communicator
from ..regions import RegionList, build_flat_indices
from ..simulate import Event

__all__ = [
    "META_BYTES_PER_REGION",
    "META_HEADER",
    "DATA_HEADER",
    "MPIIOError",
    "Exchange",
    "CollectiveContext",
    "stream_positions",
    "select_aggregators",
    "partition_file_domains",
    "round_count",
    "round_window",
    "collective_write",
    "collective_read",
]

#: Metadata record shipped per region during the exchange phase (offset +
#: length, as in ROMIO's offset-list exchange).
META_BYTES_PER_REGION = 16
META_HEADER = 64
DATA_HEADER = 64


class MPIIOError(PVFSError):
    """MPI-IO layer misuse (mismatched collectives, bad views, ...)."""


class Exchange:
    """Scratch state shared by all ranks for ONE collective operation.

    Contributions and replies are keyed by arbitrary hashables so one
    exchange can span several collective-buffer rounds (the engine keys
    them by ``(rank, round)``).
    """

    def __init__(self, sim, size: int) -> None:
        self.sim = sim
        self.size = size
        self.meta: Dict[int, RegionList] = {}
        self.meta_event = Event(sim)
        self.contributions: Dict[Hashable, List[Tuple[int, RegionList, Optional[np.ndarray]]]] = (
            defaultdict(list)
        )
        self._arrival_events: Dict[Hashable, Event] = {}
        self._expected: Dict[Hashable, int] = {}
        # read path: (requester key, aggregator) -> (regions, data)
        self.replies: Dict[Tuple[Hashable, int], Tuple[RegionList, Optional[np.ndarray]]] = {}
        self._reply_events: Dict[Hashable, Event] = {}
        self._reply_expected: Dict[Hashable, int] = {}

    # -- metadata ------------------------------------------------------
    def deposit_meta(self, rank: int, regions: RegionList) -> None:
        if rank in self.meta:
            raise MPIIOError(f"rank {rank} entered the collective twice")
        self.meta[rank] = regions
        if len(self.meta) == self.size:
            self.meta_event.succeed(dict(self.meta))

    # -- write-side contributions ---------------------------------------
    def expect_contributions(self, key: Hashable, n: int) -> Event:
        ev = self._arrival_events.setdefault(key, Event(self.sim))
        self._expected[key] = n
        self._maybe_fire(key)
        return ev

    def deposit_contribution(
        self,
        key: Hashable,
        src: int,
        regions: RegionList,
        data: Optional[np.ndarray],
    ) -> None:
        self.contributions[key].append((src, regions, data))
        self._maybe_fire(key)

    def _maybe_fire(self, key: Hashable) -> None:
        ev = self._arrival_events.get(key)
        expected = self._expected.get(key)
        if ev is None or expected is None or ev.triggered:
            return
        if len(self.contributions[key]) >= expected:
            self.contributions[key].sort(key=lambda t: t[0])
            ev.succeed(self.contributions[key])

    # -- read-side replies ----------------------------------------------
    def expect_replies(self, key: Hashable, n: int) -> Event:
        ev = self._reply_events.setdefault(key, Event(self.sim))
        self._reply_expected[key] = n
        self._maybe_reply(key)
        return ev

    def deposit_reply(
        self,
        key: Hashable,
        aggregator: int,
        regions: RegionList,
        data: Optional[np.ndarray],
    ) -> None:
        self.replies[(key, aggregator)] = (regions, data)
        self._maybe_reply(key)

    def _maybe_reply(self, key: Hashable) -> None:
        ev = self._reply_events.get(key)
        expected = self._reply_expected.get(key)
        if ev is None or expected is None or ev.triggered:
            return
        got = [
            (agg, *self.replies[(req, agg)]) for (req, agg) in self.replies if req == key
        ]
        if len(got) >= expected:
            got.sort(key=lambda t: t[0])
            ev.succeed(got)


class CollectiveContext:
    """Per-(file, communicator) registry matching each rank's k-th
    collective call to a shared :class:`Exchange`."""

    def __init__(self, sim, comm: Communicator) -> None:
        self.sim = sim
        self.comm = comm
        self._slots: Dict[Tuple[str, int], Exchange] = {}
        self._calls: Dict[Tuple[str, int], int] = defaultdict(int)

    def slot(self, kind: str, rank: int) -> Exchange:
        gen = self._calls[(kind, rank)]
        self._calls[(kind, rank)] += 1
        key = (kind, gen)
        if key not in self._slots:
            self._slots[key] = Exchange(self.sim, self.comm.size)
        return self._slots[key]


def stream_positions(regions: RegionList, clipped: RegionList) -> np.ndarray:
    """Stream offsets (within ``regions``' byte stream) of each clipped
    piece.  ``regions`` must be sorted & disjoint; ``clipped`` must be a
    sub-list of it (as produced by ``regions.clip``)."""
    if clipped.count == 0:
        return np.empty(0, np.int64)
    starts = np.concatenate(([0], np.cumsum(regions.lengths)[:-1]))
    idx = np.searchsorted(regions.ends, clipped.offsets, side="right")
    return starts[idx] + (clipped.offsets - regions.offsets[idx])


# ----------------------------------------------------------------------
# Aggregator selection and file-domain partitioning
# ----------------------------------------------------------------------
def select_aggregators(comm_size: int, cb_nodes: Optional[int] = None) -> Tuple[int, ...]:
    """The aggregating ranks: the first ``cb_nodes`` of the communicator
    (ROMIO's default ``cb_config_list``).  ``None`` means every rank."""
    n = comm_size if cb_nodes is None else cb_nodes
    if not 1 <= n <= comm_size:
        raise MPIIOError(f"cb_nodes must be in 1..{comm_size}")
    return tuple(range(n))


def partition_file_domains(
    metas: Dict[int, RegionList],
    comm_size: int,
    cb_nodes: int,
    align: int,
) -> List[Tuple[int, int]]:
    """Partition the aggregate byte range into per-rank file domains.

    The aggregate ``[lo, hi)`` extent of all ranks' regions is cut into
    ``cb_nodes`` equal slices, each rounded up to an ``align`` multiple
    (ROMIO aligns domains to the file system's stripe size so one
    aggregator never splits a stripe with its neighbour).  Ranks beyond
    the aggregator set get empty ``(0, 0)`` domains.
    """
    lo, hi = None, None
    for r in metas.values():
        if r.count == 0:
            continue
        a, b = r.extent
        lo = a if lo is None else min(lo, a)
        hi = b if hi is None else max(hi, b)
    if lo is None:
        return [(0, 0)] * comm_size
    align = max(int(align), 1)
    span = hi - lo
    per = -(-span // cb_nodes)
    per = -(-per // align) * align  # round up to stripe multiple
    domains = []
    for d in range(comm_size):
        if d < cb_nodes:
            a = min(lo + d * per, hi)
            b = min(a + per, hi)
        else:
            a = b = 0
        domains.append((a, b))
    return domains


def round_count(domains: List[Tuple[int, int]], cb_buffer: Optional[int]) -> int:
    """Collective-buffer rounds needed to cover the widest domain."""
    if cb_buffer is None:
        return 1
    if cb_buffer < 1:
        raise MPIIOError("cb_buffer must be a positive byte count")
    widest = max((b - a for (a, b) in domains), default=0)
    return max(-(-widest // cb_buffer), 1)


def round_window(domain: Tuple[int, int], rnd: int, cb_buffer: Optional[int]) -> Tuple[int, int]:
    """The slice of ``domain`` that round ``rnd`` covers (empty when the
    domain is already exhausted)."""
    a, b = domain
    if cb_buffer is None:
        return (a, b) if rnd == 0 else (b, b)
    lo = min(a + rnd * cb_buffer, b)
    return (lo, min(lo + cb_buffer, b))


# ----------------------------------------------------------------------
# The exchange/redistribution engine
# ----------------------------------------------------------------------
def _node_of(f, rank: int):
    return f.client.cluster.clients[rank].node


def exchange_meta(f, comm: Communicator, rank: int, regions: RegionList):
    """Phase 0 (process): ship this rank's offset list to every peer."""
    sim = f.client.sim
    net = f.client.cluster.net
    meta_bytes = META_HEADER + META_BYTES_PER_REGION * regions.count
    sends = [
        sim.process(net.transfer(_node_of(f, rank), _node_of(f, d), meta_bytes))
        for d in range(comm.size)
        if d != rank
    ]
    if sends:
        yield sim.all_of(sends)


def _ship_contribution(f, ex: Exchange, key, src: int, aggregator: int, regions, payload):
    nbytes = DATA_HEADER + META_BYTES_PER_REGION * regions.count + regions.total_bytes
    if aggregator != src:
        yield from f.client.cluster.net.transfer(_node_of(f, src), _node_of(f, aggregator), nbytes)
    else:
        yield f.client.sim.timeout(0)
    ex.deposit_contribution(key, src, regions, payload)


def _ship_reply(f, ex: Exchange, key, src: int, requester: int, regions, payload):
    nbytes = DATA_HEADER + regions.total_bytes
    if requester != src:
        yield from f.client.cluster.net.transfer(_node_of(f, src), _node_of(f, requester), nbytes)
    else:
        yield f.client.sim.timeout(0)
    ex.deposit_reply(key, src, regions, payload)


def _assemble(client, contribs):
    """Merge contribution region lists; fill the aggregation buffer."""
    pieces = RegionList.empty()
    for _src, regions, _payload in contribs:
        pieces = pieces.concat(regions)
    merged = pieces.coalesced()
    buffer = None
    if client.move_bytes:
        buffer = np.zeros(merged.total_bytes, np.uint8)
        for _src, regions, payload in contribs:
            if payload is None:
                continue
            pos = stream_positions(merged, regions)
            idx = build_flat_indices(pos, regions.lengths)
            buffer[idx] = payload
    return merged, buffer


def collective_write(
    f,
    comm: Communicator,
    rank: int,
    ctx: CollectiveContext,
    regions: RegionList,
    stream: Optional[np.ndarray],
    *,
    cb_nodes: Optional[int] = None,
    cb_buffer: Optional[int] = None,
):
    """Two-phase collective write (process).

    ``regions`` are this rank's sorted, disjoint file regions and
    ``stream`` the matching packed byte stream (``None`` on timing-only
    clusters).  Every rank of ``comm`` must enter with the same
    ``cb_nodes``/``cb_buffer``.
    """
    client = f.client
    sim = client.sim
    n_aggregators = len(select_aggregators(comm.size, cb_nodes))
    ex = ctx.slot("write", rank)

    # -- phase 0: metadata exchange (offset lists, all-to-all) -------
    ex.deposit_meta(rank, regions)
    yield from exchange_meta(f, comm, rank, regions)
    metas = yield ex.meta_event
    domains = partition_file_domains(metas, comm.size, n_aggregators, f.stripe.stripe_size)

    for rnd in range(round_count(domains, cb_buffer)):
        windows = [round_window(d, rnd, cb_buffer) for d in domains]
        # -- phase 1: redistribute this round's data to aggregators --
        wa, wb = windows[rank]
        expected = sum(1 for r in metas.values() if r.clip(wa, wb).count > 0)
        arrival = ex.expect_contributions((rank, rnd), expected)
        send_procs = []
        for d, (a, b) in enumerate(windows):
            mine = regions.clip(a, b)
            if mine.count == 0:
                continue
            payload = None
            if client.move_bytes and stream is not None:
                pos = stream_positions(regions, mine)
                idx = build_flat_indices(pos, mine.lengths)
                payload = np.ascontiguousarray(stream[idx])
            send_procs.append(
                sim.process(_ship_contribution(f, ex, (d, rnd), rank, d, mine, payload))
            )
        if send_procs:
            yield sim.all_of(send_procs)

        # -- phase 2: aggregate and write my window ------------------
        contribs = yield arrival
        if contribs:
            merged, buffer = _assemble(client, contribs)
            # assembly cost
            yield sim.timeout(merged.total_bytes / client.costs.memcpy_rate)
            yield from f.write_list(merged, buffer)
    yield comm.barrier()


def collective_read(
    f,
    comm: Communicator,
    rank: int,
    ctx: CollectiveContext,
    regions: RegionList,
    *,
    cb_nodes: Optional[int] = None,
    cb_buffer: Optional[int] = None,
):
    """Two-phase collective read (process); returns this rank's packed
    byte stream (``None`` on timing-only clusters)."""
    client = f.client
    sim = client.sim
    n_aggregators = len(select_aggregators(comm.size, cb_nodes))
    ex = ctx.slot("read", rank)

    # -- phase 0: metadata exchange ----------------------------------
    ex.deposit_meta(rank, regions)
    yield from exchange_meta(f, comm, rank, regions)
    metas = yield ex.meta_event
    domains = partition_file_domains(metas, comm.size, n_aggregators, f.stripe.stripe_size)

    out = None
    if client.move_bytes:
        out = np.zeros(regions.total_bytes, np.uint8)
    for rnd in range(round_count(domains, cb_buffer)):
        windows = [round_window(d, rnd, cb_buffer) for d in domains]
        # how many aggregators will send me data this round?
        a_mine = sum(1 for (a, b) in windows if regions.clip(a, b).count > 0)
        reply_ev = ex.expect_replies((rank, rnd), a_mine)

        # -- phase 1: aggregator reads its window --------------------
        wa, wb = windows[rank]
        domain_union = RegionList.empty()
        for r in metas.values():
            domain_union = domain_union.concat(r.clip(wa, wb))
        domain_union = domain_union.coalesced()
        if domain_union.count:
            domain_data = yield from f.read_list(domain_union)
            # -- phase 2: ship each requester its pieces -------------
            ship = []
            for requester, want_all in metas.items():
                want = want_all.clip(wa, wb)
                if want.count == 0:
                    continue
                payload = None
                if client.move_bytes and domain_data is not None:
                    pos = stream_positions(domain_union, want)
                    idx = build_flat_indices(pos, want.lengths)
                    payload = np.ascontiguousarray(domain_data[idx])
                ship.append(
                    sim.process(
                        _ship_reply(f, ex, (requester, rnd), rank, requester, want, payload)
                    )
                )
            if ship:
                yield sim.all_of(ship)

        # -- phase 3: assemble my stream from this round's replies ---
        replies = yield reply_ev
        if out is not None:
            for _agg, got, payload in replies:
                if payload is None:
                    continue
                pos = stream_positions(regions, got)
                idx = build_flat_indices(pos, got.lengths)
                out[idx] = payload
    if regions.count:
        yield sim.timeout(regions.total_bytes / client.costs.memcpy_rate)
    yield comm.barrier()
    return out
