"""MPI-IO on top of simulated PVFS: independent and two-phase collective I/O.

This is the ROMIO layer the paper positions itself under (references [11]
and [12]): applications describe noncontiguous access with MPI datatypes
and file views, and the library turns them into file-system requests.

* **Independent** operations (:meth:`MPIFile.read_at` /
  :meth:`MPIFile.write_at`) flatten the view and go straight through PVFS
  list I/O — what ROMIO gained when PVFS grew the paper's interface.
* **Collective** operations (:meth:`MPIFile.read_at_all` /
  :meth:`MPIFile.write_at_all`) implement *two-phase I/O*: ranks exchange
  access metadata, the aggregate byte range is partitioned into per-rank
  file domains, data is redistributed between compute nodes over the
  simulated network, and each aggregator performs one large, (nearly)
  contiguous file access for its domain.  On checkpoint-style patterns
  (e.g. FLASH) this collapses thousands of tiny interleaved requests per
  rank into one streaming request per aggregator.

All operations are simulation processes; collectives must be entered by
every rank of the communicator in the same order (MPI semantics).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..datatypes import BYTE, Datatype
from ..errors import PVFSError
from ..mpi import Communicator
from ..pvfs.client import PVFSFile
from ..regions import RegionList, build_flat_indices
from ..simulate import Event
from .view import FileView

__all__ = ["MPIIOError", "MPIFile", "open_one"]

#: Metadata record shipped per region during the exchange phase (offset +
#: length, as in ROMIO's offset-list exchange).
_META_BYTES_PER_REGION = 16
_META_HEADER = 64
_DATA_HEADER = 64


class MPIIOError(PVFSError):
    """MPI-IO layer misuse (mismatched collectives, bad views, ...)."""


class _Exchange:
    """Scratch state shared by all ranks for ONE collective operation."""

    def __init__(self, sim, size: int) -> None:
        self.sim = sim
        self.size = size
        self.meta: Dict[int, RegionList] = {}
        self.meta_event = Event(sim)
        self.contributions: Dict[int, List[Tuple[int, RegionList, Optional[np.ndarray]]]] = (
            defaultdict(list)
        )
        self._arrival_events: Dict[int, Event] = {}
        self._expected: Dict[int, int] = {}
        # read path: aggregator -> requester -> (regions, data)
        self.replies: Dict[Tuple[int, int], Tuple[RegionList, Optional[np.ndarray]]] = {}
        self._reply_events: Dict[int, Event] = {}
        self._reply_expected: Dict[int, int] = {}

    # -- metadata ------------------------------------------------------
    def deposit_meta(self, rank: int, regions: RegionList) -> None:
        if rank in self.meta:
            raise MPIIOError(f"rank {rank} entered the collective twice")
        self.meta[rank] = regions
        if len(self.meta) == self.size:
            self.meta_event.succeed(dict(self.meta))

    # -- write-side contributions ---------------------------------------
    def expect_contributions(self, aggregator: int, n: int) -> Event:
        ev = self._arrival_events.setdefault(aggregator, Event(self.sim))
        self._expected[aggregator] = n
        self._maybe_fire(aggregator)
        return ev

    def deposit_contribution(
        self,
        aggregator: int,
        src: int,
        regions: RegionList,
        data: Optional[np.ndarray],
    ) -> None:
        self.contributions[aggregator].append((src, regions, data))
        self._maybe_fire(aggregator)

    def _maybe_fire(self, aggregator: int) -> None:
        ev = self._arrival_events.get(aggregator)
        expected = self._expected.get(aggregator)
        if ev is None or expected is None or ev.triggered:
            return
        if len(self.contributions[aggregator]) >= expected:
            self.contributions[aggregator].sort(key=lambda t: t[0])
            ev.succeed(self.contributions[aggregator])

    # -- read-side replies ----------------------------------------------
    def expect_replies(self, requester: int, n: int) -> Event:
        ev = self._reply_events.setdefault(requester, Event(self.sim))
        self._reply_expected[requester] = n
        self._maybe_reply(requester)
        return ev

    def deposit_reply(
        self,
        requester: int,
        aggregator: int,
        regions: RegionList,
        data: Optional[np.ndarray],
    ) -> None:
        self.replies[(requester, aggregator)] = (regions, data)
        self._maybe_reply(requester)

    def _maybe_reply(self, requester: int) -> None:
        ev = self._reply_events.get(requester)
        expected = self._reply_expected.get(requester)
        if ev is None or expected is None or ev.triggered:
            return
        got = [(agg, *self.replies[(requester, agg)])
               for (req, agg) in self.replies if req == requester]
        if len(got) >= expected:
            got.sort(key=lambda t: t[0])
            ev.succeed(got)


class _CollectiveContext:
    """Per-(file, communicator) registry matching each rank's k-th
    collective call to a shared :class:`_Exchange`."""

    def __init__(self, sim, comm: Communicator) -> None:
        self.sim = sim
        self.comm = comm
        self._slots: Dict[Tuple[str, int], _Exchange] = {}
        self._calls: Dict[Tuple[str, int], int] = defaultdict(int)

    def slot(self, kind: str, rank: int) -> _Exchange:
        gen = self._calls[(kind, rank)]
        self._calls[(kind, rank)] += 1
        key = (kind, gen)
        if key not in self._slots:
            self._slots[key] = _Exchange(self.sim, self.comm.size)
        return self._slots[key]


def _stream_positions(regions: RegionList, clipped: RegionList) -> np.ndarray:
    """Stream offsets (within ``regions``' byte stream) of each clipped
    piece.  ``regions`` must be sorted & disjoint; ``clipped`` must be a
    sub-list of it (as produced by ``regions.clip``)."""
    if clipped.count == 0:
        return np.empty(0, np.int64)
    starts = np.concatenate(([0], np.cumsum(regions.lengths)[:-1]))
    idx = np.searchsorted(regions.ends, clipped.offsets, side="right")
    return starts[idx] + (clipped.offsets - regions.offsets[idx])


class MPIFile:
    """One rank's handle on a shared file, with a view and collectives."""

    def __init__(
        self,
        pvfs_file: PVFSFile,
        comm: Communicator,
        rank: int,
        context: _CollectiveContext,
        cb_nodes: Optional[int] = None,
    ) -> None:
        self.f = pvfs_file
        self.comm = comm
        self.rank = rank
        self._ctx = context
        self.view = FileView()
        #: Number of collective-buffering aggregators (ROMIO's ``cb_nodes``
        #: hint).  Default: every rank aggregates.  Must be identical on
        #: all ranks of the communicator.
        self.cb_nodes = comm.size if cb_nodes is None else cb_nodes
        if not 1 <= self.cb_nodes <= comm.size:
            raise MPIIOError(f"cb_nodes must be in 1..{comm.size}")

    # ------------------------------------------------------------------
    def set_view(
        self, disp: int = 0, etype: Datatype = BYTE, filetype: Optional[Datatype] = None
    ) -> None:
        """Install a view.  Purely local (ROMIO flattens lazily), so this
        is a plain call, not a simulation process."""
        self.view = FileView(disp=disp, etype=etype, filetype=filetype or etype)

    @property
    def _client(self):
        return self.f.client

    @property
    def _move(self) -> bool:
        return self._client.move_bytes

    # ------------------------------------------------------------------
    # Independent operations
    # ------------------------------------------------------------------
    def read_at(
        self,
        offset: int,
        nbytes: Optional[int] = None,
        *,
        memory: Optional[np.ndarray] = None,
        mem_datatype: Optional[Datatype] = None,
        count: int = 1,
    ):
        """Independent read (process).

        Two forms, as in MPI:

        * ``read_at(offset, nbytes)`` — returns the packed view stream;
        * ``read_at(offset, memory=buf, mem_datatype=t, count=k)`` —
          scatters ``k`` instances of the memory datatype into ``buf``
          (noncontiguous in memory AND file, the paper's hardest case).
        """
        if mem_datatype is not None:
            mem_regions = mem_datatype.flatten(count)
            nbytes = mem_regions.total_bytes
        regions = self.view.regions_for(offset, int(nbytes))
        data = yield from self.f.read_list(regions)
        if mem_datatype is None:
            return data
        if memory is not None and data is not None:
            idx = build_flat_indices(mem_regions.offsets, mem_regions.lengths)
            memory[idx] = data
        yield self._client.sim.timeout(nbytes / self._client.costs.memcpy_rate)
        return memory

    def write_at(
        self,
        offset: int,
        data: Optional[np.ndarray],
        nbytes: Optional[int] = None,
        *,
        mem_datatype: Optional[Datatype] = None,
        count: int = 1,
    ):
        """Independent write (process).  With ``mem_datatype``, ``data`` is
        the memory buffer and ``count`` instances are gathered from it;
        otherwise ``data`` is the packed stream (``None`` needs ``nbytes``)."""
        if mem_datatype is not None:
            mem_regions = mem_datatype.flatten(count)
            n = mem_regions.total_bytes
            stream = None
            if data is not None:
                idx = build_flat_indices(mem_regions.offsets, mem_regions.lengths)
                stream = np.ascontiguousarray(data[idx])
            yield self._client.sim.timeout(n / self._client.costs.memcpy_rate)
        else:
            n = int(data.size if data is not None else nbytes)
            stream = data
        regions = self.view.regions_for(offset, n)
        yield from self.f.write_list(regions, stream)

    # ------------------------------------------------------------------
    # Two-phase collective operations
    # ------------------------------------------------------------------
    def _domains(self, metas: Dict[int, RegionList]) -> List[Tuple[int, int]]:
        """Partition the aggregate range into per-aggregator file domains,
        aligned to the file's stripe size (ROMIO's cb alignment).  The
        first ``cb_nodes`` ranks aggregate; the rest get empty domains."""
        lo, hi = None, None
        for r in metas.values():
            if r.count == 0:
                continue
            a, b = r.extent
            lo = a if lo is None else min(lo, a)
            hi = b if hi is None else max(hi, b)
        if lo is None:
            return [(0, 0)] * self.comm.size
        align = self.f.stripe.stripe_size
        span = hi - lo
        per = -(-span // self.cb_nodes)
        per = -(-per // align) * align  # round up to stripe multiple
        domains = []
        for d in range(self.comm.size):
            if d < self.cb_nodes:
                a = min(lo + d * per, hi)
                b = min(a + per, hi)
            else:
                a = b = 0
            domains.append((a, b))
        return domains

    def _net(self):
        return self._client.cluster.net

    def _node_of(self, rank: int):
        return self._client.cluster.clients[rank].node

    def write_at_all(self, offset: int, data: Optional[np.ndarray], nbytes: Optional[int] = None):
        """Collective write via two-phase I/O (process).

        Every rank of the communicator must call this; ranks may write
        disjoint parts (a rank may also contribute zero bytes by passing
        an empty transfer).
        """
        n = int(data.size if data is not None else (nbytes or 0))
        my_regions = self.view.regions_for(offset, n)
        sim = self._client.sim
        net = self._net()
        ex = self._ctx.slot("write", self.rank)

        # -- phase 0: metadata exchange (offset lists, all-to-all) -------
        ex.deposit_meta(self.rank, my_regions)
        meta_bytes = _META_HEADER + _META_BYTES_PER_REGION * my_regions.count
        sends = [
            sim.process(net.transfer(self._node_of(self.rank), self._node_of(d), meta_bytes))
            for d in range(self.comm.size)
            if d != self.rank
        ]
        if sends:
            yield sim.all_of(sends)
        metas = yield ex.meta_event
        domains = self._domains(metas)

        # -- phase 1: redistribute data to aggregators -------------------
        contributors_per_domain = [
            sum(1 for r in metas.values() if r.clip(a, b).count > 0)
            for (a, b) in domains
        ]
        arrival = ex.expect_contributions(
            self.rank, contributors_per_domain[self.rank]
        )
        send_procs = []
        for d, (a, b) in enumerate(domains):
            mine = my_regions.clip(a, b)
            if mine.count == 0:
                continue
            payload = None
            if self._move and data is not None:
                pos = _stream_positions(my_regions, mine)
                idx = build_flat_indices(pos, mine.lengths)
                payload = np.ascontiguousarray(data[idx])
            send_procs.append(
                sim.process(
                    self._ship_contribution(ex, d, mine, payload)
                )
            )
        if send_procs:
            yield sim.all_of(send_procs)

        # -- phase 2: aggregate and write my domain ----------------------
        contribs = yield arrival
        if contribs:
            pieces = RegionList.empty()
            for _src, regions, _payload in contribs:
                pieces = pieces.concat(regions)
            merged = pieces.coalesced()
            buffer = None
            if self._move:
                buffer = np.zeros(merged.total_bytes, np.uint8)
                for _src, regions, payload in contribs:
                    if payload is None:
                        continue
                    pos = _stream_positions(merged, regions)
                    idx = build_flat_indices(pos, regions.lengths)
                    buffer[idx] = payload
            # assembly cost
            yield sim.timeout(merged.total_bytes / self._client.costs.memcpy_rate)
            yield from self.f.write_list(merged, buffer)
        yield self.comm.barrier()

    def _ship_contribution(
        self, ex: _Exchange, aggregator: int, regions: RegionList, payload
    ):
        net = self._net()
        nbytes = (
            _DATA_HEADER
            + _META_BYTES_PER_REGION * regions.count
            + regions.total_bytes
        )
        if aggregator != self.rank:
            yield from net.transfer(
                self._node_of(self.rank), self._node_of(aggregator), nbytes
            )
        else:
            yield self._client.sim.timeout(0)
        ex.deposit_contribution(aggregator, self.rank, regions, payload)

    def read_at_all(self, offset: int, nbytes: int):
        """Collective read via two-phase I/O (process); returns the packed
        view stream for this rank."""
        my_regions = self.view.regions_for(offset, nbytes)
        sim = self._client.sim
        net = self._net()
        ex = self._ctx.slot("read", self.rank)

        # -- phase 0: metadata exchange ----------------------------------
        ex.deposit_meta(self.rank, my_regions)
        meta_bytes = _META_HEADER + _META_BYTES_PER_REGION * my_regions.count
        sends = [
            sim.process(net.transfer(self._node_of(self.rank), self._node_of(d), meta_bytes))
            for d in range(self.comm.size)
            if d != self.rank
        ]
        if sends:
            yield sim.all_of(sends)
        metas = yield ex.meta_event
        domains = self._domains(metas)

        # how many aggregators will send me data?
        a_mine = sum(
            1 for (a, b) in domains if my_regions.clip(a, b).count > 0
        )
        reply_ev = ex.expect_replies(self.rank, a_mine)

        # -- phase 1: aggregator reads its domain -------------------------
        a, b = domains[self.rank]
        domain_union = RegionList.empty()
        for r in metas.values():
            domain_union = domain_union.concat(r.clip(a, b))
        domain_union = domain_union.coalesced()
        domain_data = None
        if domain_union.count:
            domain_data = yield from self.f.read_list(domain_union)
            # -- phase 2: ship each requester its pieces ------------------
            ship = []
            for requester, regions in metas.items():
                want = regions.clip(a, b)
                if want.count == 0:
                    continue
                payload = None
                if self._move and domain_data is not None:
                    pos = _stream_positions(domain_union, want)
                    idx = build_flat_indices(pos, want.lengths)
                    payload = np.ascontiguousarray(domain_data[idx])
                ship.append(
                    sim.process(
                        self._ship_reply(ex, requester, want, payload)
                    )
                )
            if ship:
                yield sim.all_of(ship)

        # -- phase 3: assemble my stream from aggregator replies ----------
        replies = yield reply_ev
        out = None
        if self._move:
            out = np.zeros(my_regions.total_bytes, np.uint8)
            for _agg, regions, payload in replies:
                if payload is None:
                    continue
                pos = _stream_positions(my_regions, regions)
                idx = build_flat_indices(pos, regions.lengths)
                out[idx] = payload
        if my_regions.count:
            yield sim.timeout(
                my_regions.total_bytes / self._client.costs.memcpy_rate
            )
        yield self.comm.barrier()
        return out

    def _ship_reply(self, ex: _Exchange, requester: int, regions: RegionList, payload):
        net = self._net()
        nbytes = _DATA_HEADER + regions.total_bytes
        if requester != self.rank:
            yield from net.transfer(
                self._node_of(self.rank), self._node_of(requester), nbytes
            )
        else:
            yield self._client.sim.timeout(0)
        ex.deposit_reply(requester, self.rank, regions, payload)

    # ------------------------------------------------------------------
    def close(self):
        yield from self.f.close()

    def __repr__(self) -> str:
        return f"<MPIFile rank={self.rank} {self.f.path} view={self.view}>"


def open_one(
    comm: Communicator,
    client,
    path: str,
    shared_context: dict,
    create: bool = True,
    cb_nodes: Optional[int] = None,
):
    """Open ``path`` on one rank and join the communicator's collective
    context (process).  ``shared_context`` is any dict shared by the ranks
    of the workload (e.g. a closure variable).  ``cb_nodes`` sets the
    number of collective-buffering aggregators (must match on all ranks)."""
    f = yield from client.open(path, create=create)
    ctx = shared_context.get("ctx")
    if ctx is None:
        ctx = _CollectiveContext(client.sim, comm)
        shared_context["ctx"] = ctx
    return MPIFile(f, comm, client.index, ctx, cb_nodes=cb_nodes)
