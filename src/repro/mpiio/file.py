"""MPI-IO on top of simulated PVFS: independent and two-phase collective I/O.

This is the ROMIO layer the paper positions itself under (references [11]
and [12]): applications describe noncontiguous access with MPI datatypes
and file views, and the library turns them into file-system requests.

* **Independent** operations (:meth:`MPIFile.read_at` /
  :meth:`MPIFile.write_at`) flatten the view and go straight through PVFS
  list I/O — what ROMIO gained when PVFS grew the paper's interface.
* **Collective** operations (:meth:`MPIFile.read_at_all` /
  :meth:`MPIFile.write_at_all`) implement *two-phase I/O*: ranks exchange
  access metadata, the aggregate byte range is partitioned into per-rank
  file domains, data is redistributed between compute nodes over the
  simulated network, and each aggregator performs one large, (nearly)
  contiguous file access for its domain.  On checkpoint-style patterns
  (e.g. FLASH) this collapses thousands of tiny interleaved requests per
  rank into one streaming request per aggregator.

The aggregator-selection, file-domain, and exchange machinery lives in
:mod:`repro.mpiio.twophase`, which the first-class
:class:`repro.core.TwoPhaseIO` access method shares.

All operations are simulation processes; collectives must be entered by
every rank of the communicator in the same order (MPI semantics).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..datatypes import BYTE, Datatype
from ..mpi import Communicator
from ..pvfs.client import PVFSFile
from ..regions import build_flat_indices
from .twophase import (
    DATA_HEADER,
    META_BYTES_PER_REGION,
    META_HEADER,
    CollectiveContext,
    Exchange,
    MPIIOError,
    collective_read,
    collective_write,
    partition_file_domains,
    select_aggregators,
    stream_positions,
)
from .view import FileView

__all__ = ["MPIIOError", "MPIFile", "open_one"]

# Backwards-compatible aliases: the exchange machinery moved to
# ``repro.mpiio.twophase`` when two-phase became a first-class method.
_Exchange = Exchange
_CollectiveContext = CollectiveContext
_stream_positions = stream_positions
_META_BYTES_PER_REGION = META_BYTES_PER_REGION
_META_HEADER = META_HEADER
_DATA_HEADER = DATA_HEADER


class MPIFile:
    """One rank's handle on a shared file, with a view and collectives."""

    def __init__(
        self,
        pvfs_file: PVFSFile,
        comm: Communicator,
        rank: int,
        context: CollectiveContext,
        cb_nodes: Optional[int] = None,
        cb_buffer: Optional[int] = None,
    ) -> None:
        self.f = pvfs_file
        self.comm = comm
        self.rank = rank
        self._ctx = context
        self.view = FileView()
        #: Number of collective-buffering aggregators (ROMIO's ``cb_nodes``
        #: hint).  Default: every rank aggregates.  Must be identical on
        #: all ranks of the communicator.
        self.cb_nodes = len(select_aggregators(comm.size, cb_nodes))
        #: Collective buffer size in bytes (ROMIO's ``cb_buffer_size``
        #: hint): each aggregator covers its domain in windows of at most
        #: this many bytes per exchange round.  ``None`` = unbounded (one
        #: round).  Must be identical on all ranks.
        if cb_buffer is not None and cb_buffer < 1:
            raise MPIIOError("cb_buffer must be a positive byte count")
        self.cb_buffer = cb_buffer

    # ------------------------------------------------------------------
    def set_view(
        self, disp: int = 0, etype: Datatype = BYTE, filetype: Optional[Datatype] = None
    ) -> None:
        """Install a view.  Purely local (ROMIO flattens lazily), so this
        is a plain call, not a simulation process."""
        self.view = FileView(disp=disp, etype=etype, filetype=filetype or etype)

    @property
    def _client(self):
        return self.f.client

    # ------------------------------------------------------------------
    # Independent operations
    # ------------------------------------------------------------------
    def read_at(
        self,
        offset: int,
        nbytes: Optional[int] = None,
        *,
        memory: Optional[np.ndarray] = None,
        mem_datatype: Optional[Datatype] = None,
        count: int = 1,
    ):
        """Independent read (process).

        Two forms, as in MPI:

        * ``read_at(offset, nbytes)`` — returns the packed view stream;
        * ``read_at(offset, memory=buf, mem_datatype=t, count=k)`` —
          scatters ``k`` instances of the memory datatype into ``buf``
          (noncontiguous in memory AND file, the paper's hardest case).
        """
        if mem_datatype is not None:
            mem_regions = mem_datatype.flatten(count)
            nbytes = mem_regions.total_bytes
        regions = self.view.regions_for(offset, int(nbytes))
        data = yield from self.f.read_list(regions)
        if mem_datatype is None:
            return data
        if memory is not None and data is not None:
            idx = build_flat_indices(mem_regions.offsets, mem_regions.lengths)
            memory[idx] = data
        yield self._client.sim.timeout(nbytes / self._client.costs.memcpy_rate)
        return memory

    def write_at(
        self,
        offset: int,
        data: Optional[np.ndarray],
        nbytes: Optional[int] = None,
        *,
        mem_datatype: Optional[Datatype] = None,
        count: int = 1,
    ):
        """Independent write (process).  With ``mem_datatype``, ``data`` is
        the memory buffer and ``count`` instances are gathered from it;
        otherwise ``data`` is the packed stream (``None`` needs ``nbytes``)."""
        if mem_datatype is not None:
            mem_regions = mem_datatype.flatten(count)
            n = mem_regions.total_bytes
            stream = None
            if data is not None:
                idx = build_flat_indices(mem_regions.offsets, mem_regions.lengths)
                stream = np.ascontiguousarray(data[idx])
            yield self._client.sim.timeout(n / self._client.costs.memcpy_rate)
        else:
            n = int(data.size if data is not None else nbytes)
            stream = data
        regions = self.view.regions_for(offset, n)
        yield from self.f.write_list(regions, stream)

    # ------------------------------------------------------------------
    # Two-phase collective operations (engine: repro.mpiio.twophase)
    # ------------------------------------------------------------------
    def _domains(self, metas):
        """Per-rank file domains for one collective (kept for callers of
        the pre-refactor private API)."""
        return partition_file_domains(
            metas, self.comm.size, self.cb_nodes, self.f.stripe.stripe_size
        )

    def write_at_all(self, offset: int, data: Optional[np.ndarray], nbytes: Optional[int] = None):
        """Collective write via two-phase I/O (process).

        Every rank of the communicator must call this; ranks may write
        disjoint parts (a rank may also contribute zero bytes by passing
        an empty transfer).
        """
        n = int(data.size if data is not None else (nbytes or 0))
        my_regions = self.view.regions_for(offset, n)
        yield from collective_write(
            self.f,
            self.comm,
            self.rank,
            self._ctx,
            my_regions,
            data,
            cb_nodes=self.cb_nodes,
            cb_buffer=self.cb_buffer,
        )

    def read_at_all(self, offset: int, nbytes: int):
        """Collective read via two-phase I/O (process); returns the packed
        view stream for this rank."""
        my_regions = self.view.regions_for(offset, nbytes)
        out = yield from collective_read(
            self.f,
            self.comm,
            self.rank,
            self._ctx,
            my_regions,
            cb_nodes=self.cb_nodes,
            cb_buffer=self.cb_buffer,
        )
        return out

    # ------------------------------------------------------------------
    def close(self):
        yield from self.f.close()

    def __repr__(self) -> str:
        return f"<MPIFile rank={self.rank} {self.f.path} view={self.view}>"


def open_one(
    comm: Communicator,
    client,
    path: str,
    shared_context: dict,
    create: bool = True,
    cb_nodes: Optional[int] = None,
    cb_buffer: Optional[int] = None,
):
    """Open ``path`` on one rank and join the communicator's collective
    context (process).  ``shared_context`` is any dict shared by the ranks
    of the workload (e.g. a closure variable).  ``cb_nodes`` sets the
    number of collective-buffering aggregators and ``cb_buffer`` the
    collective buffer size in bytes (both must match on all ranks)."""
    f = yield from client.open(path, create=create)
    ctx = shared_context.get("ctx")
    if ctx is None:
        ctx = CollectiveContext(client.sim, comm)
        shared_context["ctx"] = ctx
    return MPIFile(f, comm, client.index, ctx, cb_nodes=cb_nodes, cb_buffer=cb_buffer)
