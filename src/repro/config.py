"""Configuration dataclasses for the simulated cluster.

The defaults model the Chiba City configuration used in the paper's
evaluation (Section 4.1):

* 100 Mbit/s full-duplex Fast Ethernet, 1500-byte MTU,
* 9 GB Quantum Atlas IV SCSI disk per I/O node,
* 512 MB of RAM per node (of which a slice acts as buffer cache),
* 8 PVFS I/O daemons, one doubling as the metadata manager,
* default stripe size of 16,384 bytes,
* list I/O trailing data capped at 64 file regions so that a request fits
  in a single Ethernet frame (Section 3.3).

Every knob is overridable; :class:`ClusterConfig.chiba_city` returns the
paper configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .errors import ConfigError
from .faults.plan import FaultConfig
from .units import KiB, MiB, Mbit_per_s, msec, usec

__all__ = [
    "NetworkConfig",
    "DiskConfig",
    "CacheConfig",
    "CostModel",
    "StripeParams",
    "ClusterConfig",
    "FaultConfig",
    "DEFAULT_LIST_IO_MAX_REGIONS",
    "DEFAULT_SIEVE_BUFFER_SIZE",
]

#: Paper, Section 3.3: at most 64 file regions per list I/O request so that
#: the request plus trailing data fits one 1500-byte Ethernet packet.
DEFAULT_LIST_IO_MAX_REGIONS = 64

#: Paper, Section 3.2: "We chose to set the data sieving buffer at 32 MB".
DEFAULT_SIEVE_BUFFER_SIZE = 32 * MiB


def _require(cond: bool, what: str) -> None:
    if not cond:
        raise ConfigError(what)


@dataclass(frozen=True)
class NetworkConfig:
    """Fast-Ethernet style network parameters.

    The wire model is frame-based: a payload of ``n`` bytes is carried in
    ``ceil(n / mtu_payload)`` frames, each adding ``frame_overhead`` bytes on
    the wire (Ethernet preamble + header + FCS + inter-frame gap + IP/TCP
    headers).  ``latency`` is the one-way propagation + stack traversal
    delay charged per message.
    """

    bandwidth: float = Mbit_per_s(100.0)  # bytes/second on the wire
    latency: float = usec(60.0)  # one-way per-message latency, seconds
    mtu: int = 1500  # Ethernet MTU in bytes
    ip_tcp_overhead: int = 40  # IPv4 + TCP headers inside the MTU
    frame_overhead: int = 38  # preamble(8)+eth hdr(14)+FCS(4)+IFG(12)
    #: TCP retransmission timeout charged per lost frame (and as the
    #: reconnect delay after a link-flap window) under fault injection —
    #: the Linux minimum RTO of the paper's era.  Irrelevant without faults.
    retransmit_timeout: float = msec(200.0)

    def __post_init__(self) -> None:
        _require(self.bandwidth > 0, "bandwidth must be positive")
        _require(self.latency >= 0, "latency must be non-negative")
        _require(self.mtu > self.ip_tcp_overhead, "mtu must exceed IP/TCP overhead")
        _require(self.frame_overhead >= 0, "frame_overhead must be non-negative")
        _require(self.retransmit_timeout >= 0, "retransmit_timeout must be non-negative")

    @property
    def mtu_payload(self) -> int:
        """Useful payload bytes per frame (MTU minus IP/TCP headers)."""
        return self.mtu - self.ip_tcp_overhead

    def frames_for(self, payload: int) -> int:
        """Number of frames needed to carry ``payload`` bytes (min 1)."""
        if payload <= 0:
            return 1
        return -(-payload // self.mtu_payload)

    def wire_bytes(self, payload: int) -> int:
        """Total bytes on the wire for ``payload`` bytes of application data."""
        frames = self.frames_for(payload)
        return max(payload, 0) + frames * (self.frame_overhead + self.ip_tcp_overhead)

    def transmit_time(self, payload: int) -> float:
        """Serialization time (seconds) for ``payload`` bytes, excluding latency."""
        return self.wire_bytes(payload) / self.bandwidth


@dataclass(frozen=True)
class DiskConfig:
    """Single-disk performance model (Quantum Atlas IV class).

    A batch of accesses is charged ``seek_time + rotational_latency`` per
    *discontiguous run* plus ``bytes / transfer_rate`` for the data, i.e.
    sequential runs pay the mechanical positioning cost once.
    """

    seek_time: float = msec(6.9)  # average seek
    rotational_latency: float = msec(4.17)  # half revolution at 7200 rpm
    transfer_rate: float = 20.0e6  # sustained media rate, bytes/second
    capacity: int = 9 * 1000 * MiB  # ~9 GB

    def __post_init__(self) -> None:
        _require(self.seek_time >= 0, "seek_time must be non-negative")
        _require(self.rotational_latency >= 0, "rotational_latency must be non-negative")
        _require(self.transfer_rate > 0, "transfer_rate must be positive")
        _require(self.capacity > 0, "capacity must be positive")

    @property
    def positioning_time(self) -> float:
        """Mechanical cost of starting one discontiguous run."""
        return self.seek_time + self.rotational_latency


@dataclass(frozen=True)
class CacheConfig:
    """Server-side buffer cache (models the Linux page cache on I/O nodes)."""

    capacity: int = 256 * MiB  # bytes of cache per I/O node
    block_size: int = 4 * KiB  # page size
    write_through: bool = False  # write-back by default, like Linux
    memory_copy_rate: float = 400.0e6  # bytes/second for cache hits
    #: Sequential readahead window fetched on a read miss (Linux readahead).
    readahead: int = 128 * KiB

    def __post_init__(self) -> None:
        _require(self.capacity >= 0, "cache capacity must be non-negative")
        _require(self.block_size > 0, "block_size must be positive")
        _require(self.memory_copy_rate > 0, "memory_copy_rate must be positive")
        _require(self.readahead >= 0, "readahead must be non-negative")

    @property
    def n_blocks(self) -> int:
        return self.capacity // self.block_size


@dataclass(frozen=True)
class CostModel:
    """CPU / software-path costs charged by the simulated daemons.

    These are the calibration constants described in DESIGN.md Section 8.
    They were chosen so that the paper's qualitative magnitudes hold (e.g.
    multiple I/O at hundreds of seconds for ~10^6-request read workloads,
    writes roughly two orders of magnitude above list I/O).
    """

    #: Server-side cost to parse and set up any I/O request.
    iod_request_cost: float = usec(250.0)
    #: Server-side cost per file region described in a request (list decode,
    #: per-region bookkeeping, iovec setup).
    iod_region_cost: float = usec(12.0)
    #: Client library cost to build and issue one request.
    client_request_cost: float = usec(120.0)
    #: Client-observed turnaround penalty per *write* request exchange.
    #: Models the small-write pathology of 2002 TCP stacks (Nagle +
    #: delayed-ACK interaction) plus synchronous iod acknowledgement —
    #: the mechanism that puts the paper's Figure 10/12 write times two
    #: orders of magnitude above list I/O.  Calibrated so multiple I/O
    #: writes land in the paper's measured decade.
    client_write_turnaround: float = msec(40.0)
    #: Client library cost per region placed in a request description.
    client_region_cost: float = usec(1.5)
    #: Manager metadata operation service time (open/close/create/stat).
    manager_op_cost: float = usec(900.0)
    #: Per-write-request commit cost on the I/O server: the iod issues its
    #: write(2) and the local fs orders a journal/metadata update before the
    #: ack (observed PVFS 1.x behaviour; combined with the client-side
    #: turnaround below, this is what makes small-write request storms
    #: catastrophic in Figures 10/12).
    iod_write_commit_cost: float = msec(3.0)
    #: Extra server-side penalty for a small synchronous write forced to the
    #: local fs journal/media (models PVFS iod write-through of dirty pages
    #: for sub-block writes: read-modify-write of the enclosing page).
    small_write_penalty: float = msec(1.4)
    #: Threshold below which a write run is "small" and pays the penalty.
    small_write_threshold: int = 4 * KiB
    #: In-memory data movement rate for client-side scatter/gather and
    #: data-sieving extraction (bytes/second).
    memcpy_rate: float = 400.0e6
    #: Relative service-time jitter on the I/O daemons (0 = fully
    #: deterministic; 0.1 = ±10% uniform).  Seeded from ClusterConfig.seed,
    #: so runs remain reproducible; the harness uses repeats with distinct
    #: seeds to report mean ± std like the paper's 3-run averages.
    jitter: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "iod_request_cost",
            "iod_region_cost",
            "client_request_cost",
            "client_write_turnaround",
            "client_region_cost",
            "manager_op_cost",
            "iod_write_commit_cost",
            "small_write_penalty",
        ):
            _require(getattr(self, name) >= 0, f"{name} must be non-negative")
        _require(self.memcpy_rate > 0, "memcpy_rate must be positive")
        _require(self.small_write_threshold >= 0, "small_write_threshold must be non-negative")
        _require(0 <= self.jitter < 1, "jitter must be in [0, 1)")


@dataclass(frozen=True)
class StripeParams:
    """User-controlled PVFS striping parameters (paper Figure 2).

    ``base`` is the first I/O node used, ``pcount`` the number of I/O nodes
    the file is striped across (``None`` = all), ``stripe_size`` the size of
    each stripe unit in bytes.

    ``replicas`` extends the paper's layout with chain replication: every
    stripe keeps a primary copy plus ``replicas - 1`` mirrors on the
    following I/O nodes (see :func:`repro.pvfs.striping.replica_chain`).
    The paper's PVFS is ``replicas=1`` — no redundancy, which is the
    default and stays bit-identical to the original code path.
    """

    stripe_size: int = 16384  # paper default, Section 4.1
    base: int = 0
    pcount: Optional[int] = None
    #: Copies of every stripe (1 = no replication, the paper's layout).
    replicas: int = 1

    def __post_init__(self) -> None:
        _require(self.stripe_size > 0, "stripe_size must be positive")
        _require(self.base >= 0, "base must be non-negative")
        if self.pcount is not None:
            _require(self.pcount > 0, "pcount must be positive when given")
        _require(self.replicas >= 1, "replicas must be >= 1")

    def resolve_pcount(self, n_iods: int) -> int:
        """Number of servers actually used given a cluster with ``n_iods``."""
        _require(n_iods > 0, "cluster must have at least one I/O server")
        pc = self.pcount if self.pcount is not None else n_iods
        _require(pc <= n_iods, f"pcount {pc} exceeds available I/O servers {n_iods}")
        _require(self.base < n_iods, f"base {self.base} out of range for {n_iods} servers")
        return pc

    def resolve_replicas(self, n_iods: int) -> int:
        """Copies per stripe given a cluster with ``n_iods`` (validated so
        two copies of a stripe can never co-locate on one daemon)."""
        _require(
            self.replicas <= n_iods,
            f"replicas {self.replicas} exceeds available I/O servers {n_iods}",
        )
        return self.replicas


@dataclass(frozen=True)
class ClusterConfig:
    """Complete description of a simulated PVFS deployment."""

    n_clients: int = 8
    n_iods: int = 8
    network: NetworkConfig = field(default_factory=NetworkConfig)
    disk: DiskConfig = field(default_factory=DiskConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    costs: CostModel = field(default_factory=CostModel)
    stripe: StripeParams = field(default_factory=StripeParams)
    #: Trailing-data cap per list I/O request (paper: 64).
    list_io_max_regions: int = DEFAULT_LIST_IO_MAX_REGIONS
    #: Client data-sieving buffer size (paper: 32 MB).
    sieve_buffer_size: int = DEFAULT_SIEVE_BUFFER_SIZE
    #: Whether the manager daemon shares a node with I/O daemon 0
    #: (the paper's setup: "One of the I/O nodes doubled as both a manager
    #: and an I/O server").
    manager_on_iod0: bool = True
    #: Write-acknowledgement policy under replication (``stripe.replicas``
    #: > 1): ``"primary"`` acks once the first live chain member committed
    #: (remaining copies complete in the background, joined at close/fsync);
    #: ``"quorum"`` waits for a majority of the chain.  Ignored without
    #: replication.
    ack_policy: str = "primary"
    #: RNG seed for any stochastic component (kept deterministic).
    seed: int = 0x5EED
    #: Fault schedule + client retry policy (see :mod:`repro.faults`).  The
    #: default is inert: empty plan, no timeouts, no retries — runs are
    #: bit-identical to a cluster with no fault subsystem at all.
    faults: FaultConfig = field(default_factory=FaultConfig)

    def __post_init__(self) -> None:
        _require(self.n_clients > 0, "n_clients must be positive")
        _require(self.n_iods > 0, "n_iods must be positive")
        _require(self.list_io_max_regions > 0, "list_io_max_regions must be positive")
        _require(self.sieve_buffer_size > 0, "sieve_buffer_size must be positive")
        # Trailing data must fit the design target: each region is described
        # by an (offset, length) pair of 8-byte integers.
        self.stripe.resolve_pcount(self.n_iods)
        self.stripe.resolve_replicas(self.n_iods)
        _require(
            self.ack_policy in ("primary", "quorum"),
            f"ack_policy must be 'primary' or 'quorum', got {self.ack_policy!r}",
        )

    def with_(self, **kwargs) -> "ClusterConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    @classmethod
    def chiba_city(cls, n_clients: int = 8, n_iods: int = 8, **kwargs) -> "ClusterConfig":
        """The paper's evaluation configuration (Section 4.1)."""
        return cls(n_clients=n_clients, n_iods=n_iods, **kwargs)
