"""Unit helpers and constants.

All simulated times are in **seconds** (float), all sizes in **bytes** (int).
These helpers exist so that configuration code reads like the paper
("32 MB sieve buffer", "16,384-byte stripes", "100 Mbit/s Ethernet") instead
of a soup of magic numbers.
"""

from __future__ import annotations

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "KB",
    "MB",
    "GB",
    "usec",
    "msec",
    "Mbit_per_s",
    "fmt_bytes",
    "fmt_time",
]

#: Binary byte units.
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

#: Decimal byte units (disk vendors, network payload math).
KB = 1000
MB = 1000 * KB
GB = 1000 * MB


def usec(x: float) -> float:
    """Microseconds -> seconds."""
    return x * 1e-6


def msec(x: float) -> float:
    """Milliseconds -> seconds."""
    return x * 1e-3


def Mbit_per_s(x: float) -> float:
    """Megabits per second -> bytes per second."""
    return x * 1e6 / 8.0


def fmt_bytes(n: int) -> str:
    """Human-readable byte count (binary units)."""
    n = int(n)
    if abs(n) >= GiB:
        return f"{n / GiB:.2f} GiB"
    if abs(n) >= MiB:
        return f"{n / MiB:.2f} MiB"
    if abs(n) >= KiB:
        return f"{n / KiB:.2f} KiB"
    return f"{n} B"


def fmt_time(t: float) -> str:
    """Human-readable duration in seconds."""
    if t >= 1.0:
        return f"{t:.3f} s"
    if t >= 1e-3:
        return f"{t * 1e3:.3f} ms"
    return f"{t * 1e6:.1f} us"
