"""Request-level tracing for simulation runs.

A :class:`Tracer` collects timing *spans* (category, label, start, end,
metadata) from the daemons — request queue waits, service times, response
transmissions — and summarizes them with latency percentiles.  Tracing is
off by default (it costs real memory on million-request runs); enable it
with ``Cluster.build(config, trace=True)`` and read
``cluster.tracer.format_summary()`` after a workload.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Span", "Tracer"]


@dataclass(frozen=True)
class Span:
    """One timed interval."""

    category: str
    label: str
    start: float
    end: float
    meta: Tuple[Tuple[str, Any], ...] = ()

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __repr__(self) -> str:
        return f"<Span {self.category}/{self.label} {self.duration * 1e3:.3f} ms>"


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(int(math.ceil(q * len(sorted_values))) - 1, len(sorted_values) - 1)
    return sorted_values[max(idx, 0)]


class Tracer:
    """Span collector with per-category statistics."""

    def __init__(self, enabled: bool = True, capacity: Optional[int] = 1_000_000) -> None:
        self.enabled = enabled
        #: Hard cap on retained spans (oldest kept); None = unbounded.
        self.capacity = capacity
        self.spans: List[Span] = []
        self.dropped = 0
        #: Per-category drop counts, so a truncated trace says *which*
        #: category was cut off (a run that drops only ``net.xfer`` spans
        #: still has trustworthy ``iod.service`` statistics).
        self.dropped_by_category: Dict[str, int] = defaultdict(int)

    def record(
        self,
        category: str,
        label: str,
        start: float,
        end: float,
        **meta: Any,
    ) -> None:
        """Record one span (no-op when disabled)."""
        if not self.enabled:
            return
        if end < start:
            raise ValueError(f"span ends before it starts: {start} .. {end}")
        if self.capacity is not None and len(self.spans) >= self.capacity:
            self.dropped += 1
            self.dropped_by_category[category] += 1
            return
        self.spans.append(
            Span(category, label, start, end, tuple(sorted(meta.items())))
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans)

    def categories(self) -> List[str]:
        return sorted({s.category for s in self.spans})

    def spans_for(self, category: str, label: Optional[str] = None) -> List[Span]:
        return [
            s
            for s in self.spans
            if s.category == category and (label is None or s.label == label)
        ]

    def durations(self, category: str) -> List[float]:
        return [s.duration for s in self.spans_for(category)]

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-category stats: count, total, mean, p50, p95, p99, max seconds."""
        grouped: Dict[str, List[float]] = defaultdict(list)
        for s in self.spans:
            grouped[s.category].append(s.duration)
        out: Dict[str, Dict[str, float]] = {}
        for cat, durs in grouped.items():
            durs.sort()
            out[cat] = {
                "count": float(len(durs)),
                "total": float(sum(durs)),
                "mean": float(sum(durs) / len(durs)),
                "p50": _percentile(durs, 0.50),
                "p95": _percentile(durs, 0.95),
                "p99": _percentile(durs, 0.99),
                "max": durs[-1],
            }
        return out

    def format_summary(self) -> str:
        """Markdown table of the summary (times in milliseconds)."""
        stats = self.summary()
        if not stats:
            return "(no spans recorded)\n"
        lines = [
            "| category | count | total (s) | mean (ms) | p50 (ms) | p95 (ms) | p99 (ms) | max (ms) |",
            "|---|---|---|---|---|---|---|---|",
        ]
        for cat in sorted(stats):
            s = stats[cat]
            lines.append(
                f"| {cat} | {int(s['count'])} | {s['total']:.3f} "
                f"| {s['mean'] * 1e3:.3f} | {s['p50'] * 1e3:.3f} "
                f"| {s['p95'] * 1e3:.3f} | {s['p99'] * 1e3:.3f} "
                f"| {s['max'] * 1e3:.3f} |"
            )
        if self.dropped:
            per_cat = ", ".join(
                f"{cat}={n}" for cat, n in sorted(self.dropped_by_category.items())
            )
            lines.append(
                f"\n({self.dropped} spans dropped at capacity: {per_cat})"
            )
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return f"<Tracer {state} spans={len(self.spans)}>"
