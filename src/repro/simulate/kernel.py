"""The discrete-event simulator: clock, heap, and generator processes.

A :class:`Simulator` owns a priority queue of triggered events keyed by
``(time, sequence)`` — the sequence number makes execution order fully
deterministic for simultaneous events (FIFO in trigger order), which the
test suite relies on.

Processes are plain Python generators.  A process may ``yield``:

* an :class:`~repro.simulate.events.Event` (including another process) — it
  resumes with the event's value when the event fires, or has the event's
  exception thrown into it if the event failed;
* ``None`` — it resumes immediately within the same timestep (a cooperative
  yield point).

Example::

    sim = Simulator()

    def worker(sim, wait):
        yield sim.timeout(wait)
        return wait * 2

    def main(sim):
        results = yield AllOf(sim, [sim.process(worker(sim, w)) for w in (1, 2)])
        print(sim.now, results)

    sim.process(main(sim))
    sim.run()
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Generator, Iterable, List, Optional, Tuple

from ..errors import SimulationError
from .events import AllOf, AnyOf, Event, Timeout
from .fastpath import fastpath_enabled

__all__ = ["Simulator", "Process"]

#: Module-level profiler armed by :func:`repro.obs.prof.profiled`; every
#: Simulator constructed while it is set adopts it.  The profiler only
#: *reads* the kernel (event kinds, heap length, host clocks), so profiled
#: runs stay bit-identical to unprofiled ones.
_ACTIVE_PROFILER = None


class Process(Event):
    """A running generator, usable as an event that fires on completion.

    The process's return value (via ``return x`` in the generator) becomes
    the event value.  An uncaught exception inside the generator fails the
    event; if nothing is waiting on the process, the exception escalates out
    of :meth:`Simulator.run`.
    """

    __slots__ = ("_gen", "_waiting_on", "name")

    def __init__(self, sim, gen: Generator, name: Optional[str] = None) -> None:
        if not hasattr(gen, "send") or not hasattr(gen, "throw"):
            raise SimulationError(f"process body must be a generator, got {type(gen).__name__}")
        super().__init__(sim)
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(gen, "__name__", None) or "process"
        # Kick off at the current simulation time.  Fast path: while the
        # dispatcher is running and the heap holds nothing else at the
        # current timestamp, a delay-0 boot event would pop immediately
        # with nothing able to interleave — so run the body to its first
        # suspension right here and skip the boot event entirely.  (Outside
        # run(), or with same-time events pending, the boot event preserves
        # the exact legacy interleaving.)
        heap = sim._heap
        if sim._running and sim.fastpath and (not heap or heap[0][0] > sim.now):
            self._step(None, False)
        else:
            boot = Event(sim)
            boot.callbacks.append(self._resume)
            boot.succeed()

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        self._detach_from_waited_event()
        kick = Event(self.sim)
        kick.callbacks.append(lambda ev: self._deliver_interrupt(cause))
        kick.succeed()

    def _detach_from_waited_event(self) -> None:
        ev = self._waiting_on
        if ev is not None:
            try:
                ev.callbacks.remove(self._resume)
            except ValueError:
                # The event's callback list was already extracted for
                # execution (it fires at this very timestamp): the normal
                # resume may still be delivered before the interrupt —
                # _deliver_interrupt guards against resuming a process that
                # finished in between.
                pass
            else:
                # An interrupted wait on a timeout nothing else observes:
                # cancel it lazily so it stops churning the heap.
                if not ev.callbacks and isinstance(ev, Timeout) and self.sim.fastpath:
                    ev.cancel()
        self._waiting_on = None

    def _deliver_interrupt(self, cause: Any) -> None:
        if self.triggered:
            # The process was resumed by an event scheduled at this same
            # timestamp and already ran to completion — throwing into the
            # exhausted generator would double-resume it.
            return
        self._detach_from_waited_event()
        self._step(Interrupt(cause), throw=True)

    # -- execution ------------------------------------------------------
    def _resume(self, ev: Event) -> None:
        self._waiting_on = None
        if ev._ok:
            self._step(ev._value, throw=False)
        else:
            ev._defused = True
            self._step(ev._value, throw=True)

    def _step(self, value: Any, throw: bool) -> None:
        sim = self.sim
        prev = sim._active_process
        sim._active_process = self
        try:
            while True:
                if throw:
                    target = self._gen.throw(value)
                else:
                    target = self._gen.send(value)
                throw = False
                if target is None:
                    value = None
                    continue  # cooperative yield: resume immediately
                if not isinstance(target, Event):
                    value = SimulationError(
                        f"process {self.name!r} yielded {target!r}, which is not an Event"
                    )
                    throw = True
                    continue
                if target._processed:
                    if target._ok:
                        value = target._value
                    else:
                        target._defused = True
                        value = target._value
                        throw = True
                    continue
                self._waiting_on = target
                target.callbacks.append(self._resume)
                return
        except StopIteration as stop:
            self.succeed(stop.value)
        except BaseException as exc:
            if isinstance(exc, GeneratorExit):
                raise
            self.fail(exc)
        finally:
            sim._active_process = prev

    def __repr__(self) -> str:
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name} {state}>"


class Interrupt(SimulationError):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(f"interrupted: {cause!r}")
        self.cause = cause


class Simulator:
    """Event heap + virtual clock.

    The public surface:

    * :attr:`now` — current simulation time (seconds).
    * :meth:`event`, :meth:`timeout`, :meth:`process` — create primitives.
    * :meth:`all_of`, :meth:`any_of` — composite waits.
    * :meth:`run` — execute until the heap drains or ``until`` is reached.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self._cancelled_events = 0
        self._active_process: Optional[Process] = None
        self._running = False
        #: Kernel fast paths (eager process start, analytic NIC transfers,
        #: lazy cancellation) — bit-identical by construction; disabled by
        #: ``PVFS_SIM_NO_FASTPATH`` / ``--no-fastpath`` to restore the
        #: exact legacy event chains (see :mod:`repro.simulate.fastpath`).
        self.fastpath = fastpath_enabled()
        #: Optional :class:`~repro.obs.prof.KernelProfiler` (read-only
        #: observer of the dispatch loop; ``None`` = zero overhead).
        self.profiler = _ACTIVE_PROFILER
        if self.profiler is not None:
            self.profiler.on_sim(self)

    # -- primitives -----------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: Optional[str] = None) -> Process:
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- scheduling -----------------------------------------------------
    def _enqueue(self, delay: float, event: Event) -> None:
        if delay < 0:
            raise SimulationError("cannot schedule into the past")
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))
        self._seq += 1
        if self.profiler is not None:
            self.profiler.on_push(self, len(self._heap))

    @property
    def events_scheduled(self) -> int:
        """Total *live* events ever enqueued — a deterministic churn
        measure.  Lazily-cancelled events (orphaned timeouts skipped by the
        dispatcher without running) are excluded, so the count reflects
        work the kernel actually dispatches."""
        return self._seq - self._cancelled_events

    @property
    def events_cancelled(self) -> int:
        """Events lazily cancelled so far (never dispatched)."""
        return self._cancelled_events

    def _drop_cancelled(self) -> None:
        """Discard dead entries from the top of the heap."""
        heap = self._heap
        while heap and heap[0][2]._cancelled:
            heapq.heappop(heap)

    def peek(self) -> float:
        """Time of the next live event, or ``inf`` if the heap is empty."""
        self._drop_cancelled()
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one live event."""
        self._drop_cancelled()
        if not self._heap:
            raise SimulationError("step() on an empty event heap")
        t, _seq, event = heapq.heappop(self._heap)
        if t < self.now:  # pragma: no cover - defensive
            raise SimulationError("event heap time went backwards")
        self.now = t
        if self.profiler is None:
            event._run_callbacks()
        else:
            _w0 = perf_counter()
            event._run_callbacks()
            self.profiler.on_event(self, event, perf_counter() - _w0)
        if not event._ok and not event._defused:
            exc = event._value
            raise exc if isinstance(exc, BaseException) else SimulationError(repr(exc))

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap is empty, or the clock reaches ``until``.

        Returns the final simulation time.  Unhandled process failures
        propagate out of this call.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        try:
            if until is not None and until < self.now:
                raise SimulationError(f"until={until} is in the past (now={self.now})")
            # The dispatch loop is the hottest code in the repository, so
            # the heap, pop, and callback walk are inlined here (step()
            # keeps the single-event surface for external callers).
            heap = self._heap
            pop = heapq.heappop
            profiler = self.profiler
            while heap:
                entry = heap[0]
                event = entry[2]
                if event._cancelled:
                    pop(heap)
                    continue
                t = entry[0]
                if until is not None and t > until:
                    self.now = until
                    return until
                pop(heap)
                self.now = t
                if profiler is None:
                    event._processed = True
                    callbacks = event.callbacks
                    event.callbacks = []
                    for cb in callbacks:
                        cb(event)
                else:
                    _w0 = perf_counter()
                    event._run_callbacks()
                    profiler.on_event(self, event, perf_counter() - _w0)
                if not event._ok and not event._defused:
                    exc = event._value
                    raise exc if isinstance(exc, BaseException) else SimulationError(repr(exc))
            if until is not None:
                self.now = until
            return self.now
        finally:
            self._running = False

    def __repr__(self) -> str:
        return f"<Simulator t={self.now:.6f} pending={len(self._heap)}>"
