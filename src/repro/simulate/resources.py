"""Shared-resource primitives built on the event kernel.

* :class:`Resource` — a counted FCFS resource (NIC, disk arm, server CPU).
* :class:`Store` — an unbounded FIFO of items (daemon request queues).
* :class:`Barrier` — a reusable n-party barrier (the simulated
  ``MPI_Barrier`` the paper uses to serialize data-sieving writes).
* :class:`Mutex` — a convenience capacity-1 resource.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional

from ..errors import SimulationError
from .events import Event
from .kernel import Simulator

__all__ = ["Resource", "Request", "Store", "Barrier", "Mutex", "hold"]


class Request(Event):
    """A pending/granted claim on a :class:`Resource`.

    Usable as a context manager so holders release even on error::

        with res.request() as req:
            yield req
            yield sim.timeout(service_time)
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.sim)
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.resource.release(self)


class _FastClaim:
    """Opaque token for a synchronous :meth:`Resource.try_acquire` claim.

    Occupies a ``_users`` slot exactly like a granted :class:`Request`
    (release matches on identity), without carrying an Event.
    """

    __slots__ = ()


class Resource:
    """A counted resource with strict FCFS granting.

    ``capacity`` units exist; each :meth:`request` claims one unit when
    granted.  Grant order equals request order (no barging), which keeps the
    network and disk models deterministic.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._queue: Deque[Request] = deque()
        self._users: List[Request] = []
        # -- instrumentation ------------------------------------------------
        self.total_requests = 0
        self._busy_since: Optional[float] = None
        self.busy_time = 0.0
        #: Optional observability hook (see :mod:`repro.obs.monitor`): an
        #: object with ``on_busy(t)``, ``on_idle(t)``, and
        #: ``on_queue(t, depth)``.  None (the default) costs one attribute
        #: check per transition, so untraced runs are unaffected.
        self.monitor = None

    @property
    def in_use(self) -> int:
        return len(self._users)

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def request(self) -> Request:
        req = Request(self)
        self.total_requests += 1
        self._queue.append(req)
        if self.monitor is not None:
            self.monitor.on_queue(self.sim.now, len(self._queue))
        self._grant()
        return req

    def try_acquire(self) -> Optional["_FastClaim"]:
        """Claim one unit synchronously iff it would be granted immediately.

        Returns an opaque token to pass to :meth:`release`, or ``None`` when
        the resource is busy or anyone is queued (strict FCFS: a fast claim
        must never overtake a waiter).  Accounting — ``total_requests``,
        busy-time windows, and monitor callbacks — follows the exact
        sequence of an immediately-granted :meth:`request`, so observed
        runs see the same samples either way.  This is the NIC fast path's
        primitive: it skips the Request event and its delay-0 grant dispatch.
        """
        if self._queue or len(self._users) >= self.capacity:
            return None
        self.total_requests += 1
        mon = self.monitor
        now = self.sim.now
        if mon is not None:
            mon.on_queue(now, 1)  # request() samples depth 1 pre-grant
        if not self._users and self._busy_since is None:
            self._busy_since = now
            if mon is not None:
                mon.on_busy(now)
        tok = _FastClaim()
        self._users.append(tok)
        if mon is not None:
            mon.on_queue(now, 0)
        return tok

    def release(self, req: Request) -> None:
        if req in self._users:
            self._users.remove(req)
            if not self._users and self._busy_since is not None:
                self.busy_time += self.sim.now - self._busy_since
                self._busy_since = None
                if self.monitor is not None:
                    self.monitor.on_idle(self.sim.now)
            self._grant()
        else:
            # Cancelling an ungranted request is allowed (context-manager
            # exit after a failure while still queued).
            try:
                self._queue.remove(req)
            except ValueError:
                pass

    def _grant(self) -> None:
        granted = False
        while self._queue and len(self._users) < self.capacity:
            req = self._queue.popleft()
            if req.triggered:  # cancelled/failed while queued
                continue
            if not self._users and self._busy_since is None:
                self._busy_since = self.sim.now
                if self.monitor is not None:
                    self.monitor.on_busy(self.sim.now)
            self._users.append(req)
            req.succeed(req)
            granted = True
        if granted and self.monitor is not None:
            self.monitor.on_queue(self.sim.now, len(self._queue))

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of time at least one unit was in use."""
        busy = self.busy_time
        if self._busy_since is not None:
            busy += self.sim.now - self._busy_since
        elapsed = self.sim.now if elapsed is None else elapsed
        return busy / elapsed if elapsed > 0 else 0.0

    def __repr__(self) -> str:
        return (
            f"<Resource {self.name or hex(id(self))} {self.in_use}/{self.capacity}"
            f" q={self.queue_length}>"
        )


class Mutex(Resource):
    """A capacity-1 resource (PVFS has no file locks; this exists for the
    harness-level serialization the paper implements with barriers, and for
    the hybrid extension)."""

    def __init__(self, sim: Simulator, name: str = "") -> None:
        super().__init__(sim, capacity=1, name=name)


def hold(sim: Simulator, resource: Resource, duration: float) -> Generator:
    """Process helper: acquire ``resource``, hold it ``duration``, release.

    Usage: ``yield sim.process(hold(sim, cpu, cost))`` or inline
    ``yield from hold(sim, cpu, cost)`` inside another process.
    """
    with resource.request() as req:
        yield req
        yield sim.timeout(duration)


class Store:
    """Unbounded FIFO of Python objects with blocking :meth:`get`.

    Items are handed to getters in arrival order; getters are served in
    request order.
    """

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self.total_put = 0
        #: Optional observability hook sampling queue depth on every
        #: put/get (``on_queue(t, depth)``); None = untraced, free.
        self.monitor = None

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item (never blocks)."""
        self.total_put += 1
        # Hand off directly if a getter is waiting.
        while self._getters:
            getter = self._getters.popleft()
            if getter.triggered:
                continue
            getter.succeed(item)
            if self.monitor is not None:
                self.monitor.on_queue(self.sim.now, len(self._items))
            return
        self._items.append(item)
        if self.monitor is not None:
            self.monitor.on_queue(self.sim.now, len(self._items))

    def get(self) -> Event:
        """Event that fires with the next item."""
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.popleft())
            if self.monitor is not None:
                self.monitor.on_queue(self.sim.now, len(self._items))
        else:
            self._getters.append(ev)
        return ev

    def drain(self) -> List[Any]:
        """Remove and return every queued item (a crashing daemon dropping
        its inbox).  Waiting getters are left pending — the owner decides
        whether to terminate or keep them."""
        items = list(self._items)
        self._items.clear()
        if items and self.monitor is not None:
            self.monitor.on_queue(self.sim.now, 0)
        return items

    def __repr__(self) -> str:
        return f"<Store {self.name or hex(id(self))} items={len(self._items)} waiters={len(self._getters)}>"


class Barrier:
    """Reusable n-party barrier.

    The k-th generation completes when ``parties`` processes have called
    :meth:`wait` since the previous completion; all of them resume at the
    same simulation time.  This models the ``MPI_Barrier()`` serialization
    loop the paper uses for data-sieving writes (Section 4.3.1).
    """

    def __init__(self, sim: Simulator, parties: int, name: str = "") -> None:
        if parties < 1:
            raise SimulationError("barrier needs at least one party")
        self.sim = sim
        self.parties = parties
        self.name = name
        self.generation = 0
        self._waiting: List[Event] = []

    @property
    def n_waiting(self) -> int:
        return len(self._waiting)

    def wait(self) -> Event:
        """Event that fires (with the generation number) when all parties
        have arrived."""
        ev = Event(self.sim)
        self._waiting.append(ev)
        if len(self._waiting) == self.parties:
            waiting, self._waiting = self._waiting, []
            gen = self.generation
            self.generation += 1
            for w in waiting:
                w.succeed(gen)
        return ev

    def __repr__(self) -> str:
        return f"<Barrier {self.name or hex(id(self))} {self.n_waiting}/{self.parties} gen={self.generation}>"
