"""Event primitives for the discrete-event kernel.

The kernel follows the classic generator-process model (as popularized by
SimPy, reimplemented here from scratch because this reproduction builds all
of its substrates): an :class:`Event` is a one-shot occurrence that carries a
value or an exception; processes are generators that ``yield`` events and are
resumed when those events fire.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List

from ..errors import SimulationError

__all__ = ["Event", "Timeout", "AllOf", "AnyOf"]

_UNSET = object()


class Event:
    """A one-shot occurrence on a simulator's timeline.

    Lifecycle: *pending* -> *triggered* (``succeed``/``fail`` called, queued
    on the heap) -> *processed* (callbacks ran).  Each transition is
    one-way; retriggering raises :class:`SimulationError`.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_processed", "_defused")

    def __init__(self, sim) -> None:
        self.sim = sim
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = _UNSET
        self._ok = True
        self._triggered = False
        self._processed = False
        self._defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _UNSET:
            raise SimulationError("event value read before the event triggered")
        return self._value

    # -- transitions ----------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger successfully with ``value`` after ``delay`` sim-seconds."""
        self._trigger(True, value, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Trigger as failed; waiting processes get ``exc`` thrown into them."""
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exc!r}")
        self._trigger(False, exc, delay)
        return self

    def _trigger(self, ok: bool, value: Any, delay: float) -> None:
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if delay < 0:
            raise SimulationError("cannot trigger an event in the past")
        self._triggered = True
        self._ok = ok
        self._value = value
        self.sim._enqueue(delay, self)

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel does not escalate the
        exception when nothing is waiting on it."""
        self._defused = True

    def _run_callbacks(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)

    def __repr__(self) -> str:
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires ``delay`` sim-seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim, delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._triggered = True
        self._ok = True
        self._value = value
        sim._enqueue(delay, self)


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_n_fired")

    def __init__(self, sim, events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = tuple(events)
        self._n_fired = 0
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("cannot combine events from different simulators")
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            if ev.processed:
                self._on_fire(ev)
            else:
                ev.callbacks.append(self._on_fire)

    def _collect(self) -> list:
        return [ev.value for ev in self.events if ev.processed and ev.ok]

    def _on_fire(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            ev.defuse()
            self.fail(ev.value)
            return
        self._n_fired += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every child event has fired (fails fast on any failure)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_fired == len(self.events)


class AnyOf(_Condition):
    """Fires when the first child event fires."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_fired >= 1
