"""Event primitives for the discrete-event kernel.

The kernel follows the classic generator-process model (as popularized by
SimPy, reimplemented here from scratch because this reproduction builds all
of its substrates): an :class:`Event` is a one-shot occurrence that carries a
value or an exception; processes are generators that ``yield`` events and are
resumed when those events fire.
"""

from __future__ import annotations

from heapq import heappush as _heappush
from typing import Any, Callable, Iterable, List

from ..errors import SimulationError

__all__ = ["Event", "Timeout", "AllOf", "AnyOf"]

_UNSET = object()


class Event:
    """A one-shot occurrence on a simulator's timeline.

    Lifecycle: *pending* -> *triggered* (``succeed``/``fail`` called, queued
    on the heap) -> *processed* (callbacks ran).  Each transition is
    one-way; retriggering raises :class:`SimulationError`.

    A triggered-but-unprocessed event that provably nothing waits on any
    more may be *lazily cancelled* (:meth:`cancel`): it stays in the heap
    but the dispatcher skips it on pop without running callbacks or
    advancing the clock, and it is excluded from
    :attr:`~repro.simulate.kernel.Simulator.events_scheduled`.
    """

    __slots__ = (
        "sim",
        "callbacks",
        "_value",
        "_ok",
        "_triggered",
        "_processed",
        "_defused",
        "_cancelled",
    )

    def __init__(self, sim) -> None:
        self.sim = sim
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = _UNSET
        self._ok = True
        self._triggered = False
        self._processed = False
        self._defused = False
        self._cancelled = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _UNSET:
            raise SimulationError("event value read before the event triggered")
        return self._value

    # -- transitions ----------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger successfully with ``value`` after ``delay`` sim-seconds."""
        self._trigger(True, value, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Trigger as failed; waiting processes get ``exc`` thrown into them."""
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exc!r}")
        self._trigger(False, exc, delay)
        return self

    def _trigger(self, ok: bool, value: Any, delay: float) -> None:
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if delay < 0:
            raise SimulationError("cannot trigger an event in the past")
        self._triggered = True
        self._ok = ok
        self._value = value
        # Inlined Simulator._enqueue (every triggered event passes here).
        sim = self.sim
        _heappush(sim._heap, (sim.now + delay, sim._seq, self))
        sim._seq += 1
        if sim.profiler is not None:
            sim.profiler.on_push(sim, len(sim._heap))

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel does not escalate the
        exception when nothing is waiting on it."""
        self._defused = True

    def cancel(self) -> bool:
        """Lazily cancel a triggered-but-unprocessed event.

        The heap entry stays where it is; the dispatcher discards it on pop
        without running callbacks (and without advancing the clock to its
        timestamp when nothing live shares it).  Only call this when nothing
        can observe the event any more — the kernel does so for timeouts
        orphaned by interrupts and lost ``any_of`` races.  Returns whether
        the event was actually cancelled (pending or already-processed
        events are left alone).
        """
        if self._cancelled or self._processed or not self._triggered:
            return False
        self._cancelled = True
        sim = self.sim
        sim._cancelled_events += 1
        if sim.profiler is not None:
            sim.profiler.on_cancel(sim)
        return True

    def _run_callbacks(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)

    def __repr__(self) -> str:
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires ``delay`` sim-seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim, delay: float, value: Any = None) -> None:
        # Timeouts are the single most-created event kind, so this sets the
        # slots directly and enqueues inline rather than chaining through
        # Event.__init__ + Simulator._enqueue.
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._triggered = True
        self._processed = False
        self._defused = False
        self._cancelled = False
        self.delay = delay
        _heappush(sim._heap, (sim.now + delay, sim._seq, self))
        sim._seq += 1
        if sim.profiler is not None:
            sim.profiler.on_push(sim, len(sim._heap))


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_n_fired")

    def __init__(self, sim, events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = tuple(events)
        self._n_fired = 0
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("cannot combine events from different simulators")
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            if ev.processed:
                self._on_fire(ev)
            else:
                ev.callbacks.append(self._on_fire)

    def _collect(self) -> list:
        return [ev.value for ev in self.events if ev.processed and ev.ok]

    def _on_fire(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev._ok:
            ev.defuse()
            self.fail(ev.value)
            self._release_pending()
            return
        self._n_fired += 1
        if self._satisfied():
            self.succeed(self._collect())
            self._release_pending()

    def _release_pending(self) -> None:
        """Detach from children still pending after this condition resolved.

        An AnyOf whose winner already fired keeps no interest in the losers;
        leaving the ``_on_fire`` callback attached would only make the
        dispatcher run it (as a no-op) when each loser eventually pops.
        Detaching is pure optimization — ``_on_fire`` early-returns once
        triggered — and a detached loser timeout with no other waiters can
        be lazily cancelled outright.  Gated on the kernel fast-path switch
        so ``--no-fastpath`` reproduces the legacy event chains exactly.
        """
        if not self.sim.fastpath:
            return
        for ev in self.events:
            if ev._processed or ev._cancelled:
                continue
            try:
                ev.callbacks.remove(self._on_fire)
            except ValueError:
                continue
            if not ev.callbacks and isinstance(ev, Timeout):
                ev.cancel()

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every child event has fired (fails fast on any failure)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_fired == len(self.events)


class AnyOf(_Condition):
    """Fires when the first child event fires."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_fired >= 1
