"""Lightweight instrumentation for simulation runs.

:class:`Counters` is a nested string->number accumulator every daemon and
client writes into; :class:`Timeline` records (time, value) samples for
post-run inspection.  Both are pure bookkeeping — they never affect
simulated time.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, List, Tuple

__all__ = ["Counters", "Timeline"]


class Counters:
    """A defaultdict-of-floats with namespacing and merge support.

    Keys are dotted strings, e.g. ``"iod.3.requests"`` or
    ``"net.bytes_tx"``.
    """

    def __init__(self) -> None:
        self._data: Dict[str, float] = defaultdict(float)

    def add(self, key: str, amount: float = 1.0) -> None:
        self._data[key] += amount

    def set(self, key: str, value: float) -> None:
        self._data[key] = value

    def get(self, key: str, default: float = 0.0) -> float:
        return self._data.get(key, default)

    def __getitem__(self, key: str) -> float:
        return self._data.get(key, 0.0)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._data))

    def items(self) -> List[Tuple[str, float]]:
        return sorted(self._data.items())

    def merge(self, other: "Counters") -> "Counters":
        for k, v in other._data.items():
            self._data[k] += v
        return self

    def scoped(self, prefix: str) -> "ScopedCounters":
        """A view that prefixes every key with ``prefix + '.'``."""
        return ScopedCounters(self, prefix)

    def total(self, prefix: str) -> float:
        """Sum of every counter whose key starts with ``prefix``."""
        p = prefix if prefix.endswith(".") else prefix + "."
        return sum(v for k, v in self._data.items() if k.startswith(p) or k == prefix)

    def as_dict(self) -> Dict[str, float]:
        return dict(self._data)

    def __repr__(self) -> str:
        return f"Counters({dict(sorted(self._data.items()))!r})"


class ScopedCounters:
    """Prefix view over a :class:`Counters` (shares storage)."""

    __slots__ = ("_base", "_prefix")

    def __init__(self, base: Counters, prefix: str) -> None:
        self._base = base
        self._prefix = prefix.rstrip(".")

    def add(self, key: str, amount: float = 1.0) -> None:
        self._base.add(f"{self._prefix}.{key}", amount)

    def set(self, key: str, value: float) -> None:
        self._base.set(f"{self._prefix}.{key}", value)

    def get(self, key: str, default: float = 0.0) -> float:
        return self._base.get(f"{self._prefix}.{key}", default)

    def __getitem__(self, key: str) -> float:
        return self._base[f"{self._prefix}.{key}"]


class Timeline:
    """Ordered (time, value) samples, e.g. queue depth over time."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError("timeline samples must be recorded in time order")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def last(self) -> Tuple[float, float]:
        if not self.times:
            raise IndexError("empty timeline")
        return self.times[-1], self.values[-1]

    def max_value(self) -> float:
        return max(self.values) if self.values else 0.0

    def time_weighted_mean(self) -> float:
        """Mean of the piecewise-constant signal defined by the samples."""
        if len(self.times) < 2:
            return self.values[0] if self.values else 0.0
        total = 0.0
        for i in range(len(self.times) - 1):
            total += self.values[i] * (self.times[i + 1] - self.times[i])
        span = self.times[-1] - self.times[0]
        return total / span if span > 0 else self.values[-1]
