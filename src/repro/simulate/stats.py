"""Lightweight instrumentation for simulation runs.

:class:`Counters` is a nested string->number accumulator every daemon and
client writes into; :class:`Timeline` records (time, value) samples for
post-run inspection.  Both are pure bookkeeping — they never affect
simulated time.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, List, Tuple

__all__ = ["Counters", "Timeline"]


class Counters:
    """A defaultdict-of-floats with namespacing and merge support.

    Keys are dotted strings, e.g. ``"iod.3.requests"`` or
    ``"net.bytes_tx"``.
    """

    def __init__(self) -> None:
        self._data: Dict[str, float] = defaultdict(float)

    def add(self, key: str, amount: float = 1.0) -> None:
        self._data[key] += amount

    def set(self, key: str, value: float) -> None:
        self._data[key] = value

    def get(self, key: str, default: float = 0.0) -> float:
        return self._data.get(key, default)

    def __getitem__(self, key: str) -> float:
        return self._data.get(key, 0.0)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._data))

    def items(self) -> List[Tuple[str, float]]:
        return sorted(self._data.items())

    def merge(self, other: "Counters") -> "Counters":
        for k, v in other._data.items():
            self._data[k] += v
        return self

    def scoped(self, prefix: str) -> "ScopedCounters":
        """A view that prefixes every key with ``prefix + '.'``."""
        return ScopedCounters(self, prefix)

    def total(self, prefix: str) -> float:
        """Sum of every counter whose key starts with ``prefix``."""
        p = prefix if prefix.endswith(".") else prefix + "."
        return sum(v for k, v in self._data.items() if k.startswith(p) or k == prefix)

    def as_dict(self) -> Dict[str, float]:
        return dict(self._data)

    def __repr__(self) -> str:
        return f"Counters({dict(sorted(self._data.items()))!r})"


class ScopedCounters:
    """Prefix view over a :class:`Counters` (shares storage).

    Scoped adds run on every served request, so the view binds the backing
    dict and the dotted prefix once instead of re-joining and re-dispatching
    through :class:`Counters` per call.
    """

    __slots__ = ("_base", "_prefix", "_data", "_dot")

    def __init__(self, base: Counters, prefix: str) -> None:
        self._base = base
        self._prefix = prefix.rstrip(".")
        self._data = base._data
        self._dot = self._prefix + "."

    def add(self, key: str, amount: float = 1.0) -> None:
        self._data[self._dot + key] += amount

    def set(self, key: str, value: float) -> None:
        self._data[self._dot + key] = value

    def get(self, key: str, default: float = 0.0) -> float:
        return self._data.get(self._dot + key, default)

    def __getitem__(self, key: str) -> float:
        return self._data.get(self._dot + key, 0.0)


class Timeline:
    """Ordered (time, value) samples, e.g. queue depth over time."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError("timeline samples must be recorded in time order")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def last(self) -> Tuple[float, float]:
        if not self.times:
            raise IndexError("empty timeline")
        return self.times[-1], self.values[-1]

    def max_value(self) -> float:
        return max(self.values) if self.values else 0.0

    def time_weighted_mean(self) -> float:
        """Mean of the piecewise-constant signal defined by the samples.

        Guarded edge cases: an empty timeline is 0.0, a single sample is
        that sample's value, and coincident samples (zero total span) yield
        the last value recorded.
        """
        if not self.values:
            return 0.0
        if len(self.times) < 2:
            return self.values[0]
        span = self.times[-1] - self.times[0]
        if span <= 0.0:
            return self.values[-1]
        total = 0.0
        for i in range(len(self.times) - 1):
            total += self.values[i] * (self.times[i + 1] - self.times[i])
        return total / span

    def integrate(self, t0: float, t1: float, initial: float = 0.0) -> float:
        """Integral of the piecewise-constant signal over ``[t0, t1]``.

        Sample i's value holds from ``times[i]`` until the next sample; the
        last value persists beyond ``times[-1]``.  Before the first sample
        the signal is ``initial`` (queue depths start at zero, not at the
        first recorded depth).  Used to compute utilization over arbitrary
        sub-windows of a run.
        """
        if t1 < t0:
            raise ValueError(f"integration window reversed: {t0} .. {t1}")
        if not self.times:
            return initial * (t1 - t0)
        total = 0.0
        # Segment before the first sample.
        if t0 < self.times[0]:
            total += initial * (min(t1, self.times[0]) - t0)
        # Interior segments [times[i], times[i+1]) at values[i].
        for i in range(len(self.times)):
            seg_start = self.times[i]
            seg_end = self.times[i + 1] if i + 1 < len(self.times) else t1
            lo = max(seg_start, t0)
            hi = min(seg_end, t1)
            if hi > lo:
                total += self.values[i] * (hi - lo)
        return total

    def mean_over(self, t0: float, t1: float, initial: float = 0.0) -> float:
        """Mean of the signal over ``[t0, t1]`` (0.0 for an empty window)."""
        if t1 <= t0:
            return 0.0
        return self.integrate(t0, t1, initial=initial) / (t1 - t0)
