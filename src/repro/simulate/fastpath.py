"""The kernel fast-path switch.

The simulator has three performance fast paths that are *bit-identical by
construction* to the plain event-by-event execution (see
``docs/architecture.md``):

1. eager process start — a process created while the heap is quiescent at
   the current timestamp runs to its first suspension synchronously instead
   of through a delay-0 boot event;
2. the analytic NIC transfer path — an uncontended, fault-free transfer
   collapses its request/grant event chain into one precomputed timeout;
3. lazy cancellation — orphaned timeouts (interrupted waits, lost
   ``any_of`` races) are skipped by the dispatcher instead of churning the
   priority queue.

``PVFS_SIM_NO_FASTPATH=1`` (or the ``--no-fastpath`` CLI flag, which sets
it) disables all three, restoring the exact legacy event chains.  That
makes the slow path a *live oracle*: any simulated-metric drift between the
two modes is a bug, and the test suite and the zero-tolerance
``bench compare`` baseline both assert there is none.

The flag is read once per :class:`~repro.simulate.kernel.Simulator`
construction, so it propagates naturally to spawned sweep workers (they
inherit the environment) and can be flipped per-test with ``monkeypatch``.
"""

from __future__ import annotations

import os

__all__ = ["fastpath_enabled", "NO_FASTPATH_ENV"]

#: Environment variable that disables every kernel fast path when set to a
#: truthy value ("1", "true", "yes", "on" — case-insensitive).
NO_FASTPATH_ENV = "PVFS_SIM_NO_FASTPATH"


def fastpath_enabled() -> bool:
    """Whether the kernel fast paths are enabled for new simulators."""
    return os.environ.get(NO_FASTPATH_ENV, "").strip().lower() not in (
        "1",
        "true",
        "yes",
        "on",
    )
