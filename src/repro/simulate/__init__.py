"""Discrete-event simulation kernel (built from scratch for pvfs-sim).

Public surface::

    from repro.simulate import Simulator, Resource, Store, Barrier

    sim = Simulator()
    cpu = Resource(sim, capacity=1, name="cpu")

    def job(sim):
        with cpu.request() as req:
            yield req
            yield sim.timeout(1.5)
        return sim.now

    done = sim.process(job(sim))
    sim.run()
"""

from .events import AllOf, AnyOf, Event, Timeout
from .fastpath import NO_FASTPATH_ENV, fastpath_enabled
from .kernel import Interrupt, Process, Simulator
from .resources import Barrier, Mutex, Request, Resource, Store, hold
from .stats import Counters, ScopedCounters, Timeline
from .trace import Span, Tracer

__all__ = [
    "Simulator",
    "Process",
    "Interrupt",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Resource",
    "Request",
    "Mutex",
    "Store",
    "Barrier",
    "hold",
    "Counters",
    "ScopedCounters",
    "Timeline",
    "Span",
    "Tracer",
    "NO_FASTPATH_ENV",
    "fastpath_enabled",
]
