"""Exception hierarchy for pvfs-sim.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` from bad call signatures, etc.) propagate.
"""

from __future__ import annotations

import builtins

__all__ = [
    "ReproError",
    "RegionError",
    "SimulationError",
    "DeadlockError",
    "NetworkError",
    "StorageError",
    "PVFSError",
    "FileNotOpenError",
    "NoSuchFileError",
    "FileExistsError_",
    "ProtocolError",
    "ConfigError",
    "PatternError",
    "ModelError",
    "BenchError",
    "SchemaMismatchError",
    "FaultError",
    "TimeoutError",
    "ServerCrashed",
    "ServerFenced",
    "RetryExhausted",
    "ServiceError",
]


class ReproError(Exception):
    """Base class for every exception raised by pvfs-sim."""


class RegionError(ReproError):
    """Raised for invalid region lists (negative lengths, overflow, mismatched
    memory/file byte counts, ...)."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event kernel (scheduling in the past,
    triggering an already-triggered event, running a finished simulation)."""


class DeadlockError(SimulationError):
    """Raised when :meth:`repro.simulate.Simulator.run` is asked to run to
    completion but live processes remain with no scheduled events."""


class NetworkError(ReproError):
    """Raised for invalid network operations (unknown node, zero-byte
    transfer to self, malformed message)."""


class StorageError(ReproError):
    """Raised by the disk / cache / byte-store substrate."""


class PVFSError(ReproError):
    """Base class for file-system level failures."""


class FileNotOpenError(PVFSError):
    """An operation was attempted on a closed file handle."""


class NoSuchFileError(PVFSError):
    """The named file does not exist on the manager."""


class FileExistsError_(PVFSError):
    """``create=True, exclusive=True`` open of an existing file."""


class ProtocolError(PVFSError):
    """A malformed request or response crossed the simulated wire."""


class ConfigError(ReproError):
    """Raised for invalid configuration (non-positive bandwidth, zero
    servers, stripe size that is not a positive integer, ...)."""


class PatternError(ReproError):
    """Raised by access-pattern generators for infeasible parameters
    (e.g. a block-block decomposition whose client count is not a square)."""


class ModelError(ReproError):
    """Raised by the analytic performance model."""


class BenchError(ReproError):
    """Raised by the benchmark-regression harness (:mod:`repro.bench`) for
    malformed result files, unknown scenarios, or in-run determinism
    violations."""


class SchemaMismatchError(BenchError):
    """A ``BENCH_*.json`` file was written under a different schema version
    than this code supports; regenerate it with ``pvfs-sim bench run``."""


class FaultError(ReproError):
    """Base class for injected-fault failures a robust client can retry or
    surface (see :mod:`repro.faults`)."""


class TimeoutError(FaultError, builtins.TimeoutError):
    """A request exceeded its per-request timeout budget.

    Also derives from the builtin ``TimeoutError`` so generic handlers work.
    """


class ServerCrashed(FaultError):
    """The I/O daemon holding the request crashed (or refused the
    connection while down) before acknowledging it."""


class ServerFenced(FaultError):
    """The I/O daemon was fenced by the manager (epoch-numbered fencing
    token) and refuses every request until it resyncs and rejoins.

    Unlike :class:`ServerCrashed`, a fenced refusal is *authoritative* —
    retrying the same daemon cannot succeed, so clients skip the backoff
    loop and fail over to a replica immediately.  ``epoch`` carries the
    fencing token so zombie restarts can never serve stale acks.
    """

    def __init__(self, message: str, epoch: int = 0) -> None:
        super().__init__(message)
        self.epoch = epoch


class ServiceError(ReproError):
    """Base class for simulation-service failures (:mod:`repro.service`):
    malformed job payloads on the daemon side, failed HTTP exchanges on
    the client side.  Subclasses carry the wire-level detail."""


class RetryExhausted(FaultError):
    """The retry budget ran out before any attempt succeeded.

    ``last_error`` holds the failure of the final attempt; ``attempts`` the
    number of tries made (first attempt included).
    """

    def __init__(self, message: str, attempts: int = 0, last_error=None) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error
