"""Disk service-time model for one I/O node.

A :class:`Disk` combines the mechanical model (:class:`~repro.config.DiskConfig`)
with a :class:`~repro.storage.cache.BlockCache` and answers "how many seconds
does this batch of byte runs cost".  It is deliberately a *time* model — the
actual bytes live in the byte store — so the expensive part of a simulation
step is O(number of runs + number of blocks touched), never O(bytes).

Model summary:

* **Reads** always pay a memory-copy for the requested bytes.  Missed block
  segments are fetched from media: one positioning delay per discontiguous
  fetch (skipped when the fetch continues where the head left off — a
  sequential scan seeks once) plus media transfer for a readahead-widened
  window, which then becomes resident.
* **Writes** land in the cache (write-back): memory-copy plus media transfer
  for any dirty blocks evicted to make room.  With ``write_through=True``
  every run pays positioning + media transfer immediately.
"""

from __future__ import annotations

from typing import Hashable, Optional, Tuple

from ..config import CacheConfig, DiskConfig
from ..regions import RegionList
from .cache import BlockCache

__all__ = ["Disk"]


class Disk:
    """Stateful per-server disk: head position + buffer cache."""

    def __init__(self, cfg: DiskConfig, cache_cfg: CacheConfig) -> None:
        self.cfg = cfg
        self.cache = BlockCache(cache_cfg)
        #: (file_id, byte offset) the head would be at after the last media
        #: access; None before any access.
        self._head: Optional[Tuple[Hashable, int]] = None
        # -- instrumentation --------------------------------------------
        self.media_reads = 0
        self.media_read_bytes = 0
        self.media_writes = 0
        self.media_write_bytes = 0
        self.positionings = 0
        #: Total simulated seconds this disk was in service (accumulated by
        #: :meth:`note_busy` — the disk is a pure time model, so the daemon
        #: that owns it reports when the computed service time was spent).
        self.busy_time = 0.0
        #: Optional observability hook with ``on_busy(t)`` / ``on_idle(t)``
        #: (see :mod:`repro.obs.monitor`); None = untraced, free.
        self.monitor = None
        #: Fault-injection service-time multiplier (see
        #: :class:`repro.faults.DiskStall`): 1.0 = healthy; the I/O daemon
        #: multiplies every disk access by this while a stall window is open.
        self.fault_scale = 1.0

    # ------------------------------------------------------------------
    def drop_cache(self) -> None:
        """Forget every cached page and the head position — the cold state
        an I/O daemon restarts into after a crash.  Dirty pages are lost
        without write-back (their data either reached the byte store before
        the ack, or the client never got an ack and will replay)."""
        stats = self.cache.stats
        self.cache = BlockCache(self.cache.cfg)
        self.cache.stats = stats  # keep cumulative hit/miss accounting
        self._head = None

    # ------------------------------------------------------------------
    def note_busy(self, start: float, end: float) -> None:
        """Report that this disk serviced an access over ``[start, end]``
        of simulated time.  Feeds utilization accounting and the attached
        monitor's busy/idle timeline; never affects service times."""
        self.busy_time += end - start
        if self.monitor is not None:
            self.monitor.on_busy(start)
            self.monitor.on_idle(end)

    # ------------------------------------------------------------------
    def _position(self, file_id: Hashable, offset: int) -> float:
        """Positioning cost to start a media access at ``offset``; free when
        the access continues sequentially from the previous one."""
        if self._head == (file_id, offset):
            return 0.0
        self.positionings += 1
        return self.cfg.positioning_time

    def _media(self, nbytes: int) -> float:
        return nbytes / self.cfg.transfer_rate

    def _memcpy(self, nbytes: int) -> float:
        return nbytes / self.cache.cfg.memory_copy_rate

    # ------------------------------------------------------------------
    def read_time(self, file_id: Hashable, regions: RegionList) -> float:
        """Service time for reading the given regions of one stripe file."""
        runs = regions.coalesced()
        if runs.total_bytes == 0:
            return 0.0
        cache = self.cache
        bs = cache.cfg.block_size
        ra_blocks = max(cache.cfg.readahead // bs, 1)
        t = self._memcpy(runs.total_bytes)  # cache -> iod buffer copy
        for off, ln in runs:
            # A run's blocks are consecutive, so hit/miss runs over a plain
            # integer range (no per-run array building); the warm-cache
            # all-hit case costs just the lookup walk.
            missed = cache.lookup_range(file_id, off // bs, (off + ln - 1) // bs)
            if not missed:
                continue
            # Group consecutive missed blocks into fetch segments.
            seg_start = prev = missed[0]
            for b in missed[1:] + [None]:
                if b is not None and b == prev + 1:
                    prev = b
                    continue
                seg_len = prev - seg_start + 1
                n_fetch = max(seg_len, ra_blocks)  # readahead widening
                fetch_start = seg_start * bs
                fetch_bytes = n_fetch * bs
                t += self._position(file_id, fetch_start)
                t += self._media(fetch_bytes)
                self.media_reads += 1
                self.media_read_bytes += fetch_bytes
                dirty_evicted = cache.insert_range(file_id, seg_start, n_fetch)
                t += self._media(dirty_evicted * bs)
                self._head = (file_id, fetch_start + fetch_bytes)
                seg_start = prev = b
        return t

    def write_time(self, file_id: Hashable, regions: RegionList) -> float:
        """Service time for writing the given regions of one stripe file."""
        runs = regions.coalesced()
        if runs.total_bytes == 0:
            return 0.0
        cache = self.cache
        bs = cache.cfg.block_size
        write_through = cache.cfg.write_through
        t = self._memcpy(runs.total_bytes)  # iod buffer -> cache copy
        for off, ln in runs:
            first = off // bs
            last = (off + ln - 1) // bs
            dirty_evicted = cache.insert_range(file_id, first, last - first + 1, dirty=True)
            if dirty_evicted:
                # Write-back of evicted dirty pages: one positioning for the
                # batch plus media transfer.
                t += self.cfg.positioning_time + self._media(dirty_evicted * bs)
                self.media_writes += 1
                self.media_write_bytes += dirty_evicted * bs
                self.positionings += 1
            if write_through:
                t += self._position(file_id, off) + self._media(ln)
                self.media_writes += 1
                self.media_write_bytes += ln
                self._head = (file_id, off + ln)
                cache.clean_range(file_id, first, last)
        return t

    def flush_time(self) -> float:
        """Cost of syncing all dirty blocks to media (used at close)."""
        dirty = self.cache.flush_all()
        if dirty == 0:
            return 0.0
        bs = self.cache.cfg.block_size
        self.media_writes += 1
        self.media_write_bytes += dirty * bs
        self.positionings += 1
        self._head = None
        return self.cfg.positioning_time + self._media(dirty * bs)

    def __repr__(self) -> str:
        return f"<Disk media_r={self.media_read_bytes} media_w={self.media_write_bytes}>"
