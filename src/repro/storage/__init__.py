"""Storage substrate: byte stores, buffer cache, and the disk time model."""

from .bytestore import ByteStore, NullByteStore
from .cache import BlockCache, CacheStats
from .disk import Disk

__all__ = ["ByteStore", "NullByteStore", "BlockCache", "CacheStats", "Disk"]
