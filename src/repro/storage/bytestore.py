"""Byte containers backing the I/O servers' local file systems.

Every I/O daemon owns one store holding the *contents* of its stripe files,
so the simulator moves real data and the test suite can verify end-to-end
correctness of every access method.  Storage is sparse (chunked) so a file
with data only at large offsets does not allocate the gap.

:class:`NullByteStore` is a drop-in that discards writes and reads back
zeros; the benchmark harness uses it when only timing matters.
"""

from __future__ import annotations

from typing import Dict, Hashable

import numpy as np

from ..errors import StorageError
from ..regions import RegionList

__all__ = ["ByteStore", "NullByteStore"]

_DEFAULT_CHUNK = 256 * 1024


class ByteStore:
    """Sparse byte storage: ``file_id -> {chunk_index -> uint8[chunk]}``.

    Unallocated bytes read back as zero, matching the semantics of a hole in
    a POSIX file.
    """

    def __init__(self, chunk_size: int = _DEFAULT_CHUNK) -> None:
        if chunk_size <= 0:
            raise StorageError("chunk_size must be positive")
        self.chunk_size = chunk_size
        self._files: Dict[Hashable, Dict[int, np.ndarray]] = {}
        self.bytes_written = 0
        self.bytes_read = 0

    # ------------------------------------------------------------------
    def _chunks(self, file_id: Hashable) -> Dict[int, np.ndarray]:
        return self._files.setdefault(file_id, {})

    def delete(self, file_id: Hashable) -> None:
        self._files.pop(file_id, None)

    def allocated_bytes(self, file_id: Hashable) -> int:
        return len(self._files.get(file_id, {})) * self.chunk_size

    @property
    def file_ids(self):
        return list(self._files)

    # ------------------------------------------------------------------
    def write(self, file_id: Hashable, regions: RegionList, data: np.ndarray) -> None:
        """Scatter ``data`` (uint8, length == regions.total_bytes) into the
        file at the given regions, in region order."""
        data = np.asarray(data, dtype=np.uint8)
        if data.ndim != 1 or data.size != regions.total_bytes:
            raise StorageError(
                f"data size {data.size} does not match region volume {regions.total_bytes}"
            )
        chunks = self._chunks(file_id)
        cs = self.chunk_size
        pos = 0
        for off, ln in regions:
            if ln == 0:
                continue
            end = off + ln
            c0, c1 = off // cs, (end - 1) // cs
            for c in range(c0, c1 + 1):
                chunk = chunks.get(c)
                if chunk is None:
                    chunk = chunks[c] = np.zeros(cs, dtype=np.uint8)
                lo = max(off, c * cs)
                hi = min(end, (c + 1) * cs)
                n = hi - lo
                chunk[lo - c * cs : hi - c * cs] = data[pos : pos + n]
                pos += n
        self.bytes_written += int(regions.total_bytes)

    def read(self, file_id: Hashable, regions: RegionList) -> np.ndarray:
        """Gather the regions' bytes (in region order) into a new array."""
        out = np.zeros(regions.total_bytes, dtype=np.uint8)
        chunks = self._files.get(file_id)
        self.bytes_read += int(regions.total_bytes)
        if not chunks:
            return out
        cs = self.chunk_size
        pos = 0
        for off, ln in regions:
            if ln == 0:
                continue
            end = off + ln
            c0, c1 = off // cs, (end - 1) // cs
            for c in range(c0, c1 + 1):
                lo = max(off, c * cs)
                hi = min(end, (c + 1) * cs)
                n = hi - lo
                chunk = chunks.get(c)
                if chunk is not None:
                    out[pos : pos + n] = chunk[lo - c * cs : hi - c * cs]
                pos += n
        return out

    def __repr__(self) -> str:
        return f"<ByteStore files={len(self._files)} chunk={self.chunk_size}>"


class NullByteStore(ByteStore):
    """Timing-only store: writes vanish, reads return zeros.

    Keeps the byte counters so request accounting still works.
    """

    def write(self, file_id: Hashable, regions: RegionList, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=np.uint8)
        if data.ndim != 1 or data.size != regions.total_bytes:
            raise StorageError(
                f"data size {data.size} does not match region volume {regions.total_bytes}"
            )
        self.bytes_written += int(regions.total_bytes)

    def read(self, file_id: Hashable, regions: RegionList) -> np.ndarray:
        self.bytes_read += int(regions.total_bytes)
        return np.zeros(regions.total_bytes, dtype=np.uint8)

    def __repr__(self) -> str:
        return "<NullByteStore>"
