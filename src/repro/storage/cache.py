"""Server-side buffer cache model (the Linux page cache on an I/O node).

The cache tracks *presence* of fixed-size blocks, not their contents — data
lives in the :class:`~repro.storage.bytestore.ByteStore`.  It answers the
only questions the disk model needs:

* which blocks of an access are resident (hit/miss split),
* how many dirty blocks an insertion evicted (write-back cost).

Replacement is strict LRU via an ordered dict.  The paper's I/O nodes had
512 MB of RAM; the default cache is 256 MB of 4 KiB blocks.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Tuple

import numpy as np

from ..config import CacheConfig

__all__ = ["BlockCache", "CacheStats"]


class CacheStats:
    """Running hit/miss/eviction totals."""

    __slots__ = ("hits", "misses", "insertions", "evictions", "dirty_evictions")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.dirty_evictions = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def __repr__(self) -> str:
        return (
            f"<CacheStats hits={self.hits} misses={self.misses} "
            f"evictions={self.evictions} (dirty {self.dirty_evictions})>"
        )


class BlockCache:
    """LRU block-presence cache."""

    def __init__(self, cfg: CacheConfig) -> None:
        self.cfg = cfg
        self.capacity_blocks = cfg.n_blocks
        #: (file_id, block_no) -> dirty flag; order == recency (oldest first).
        self._lru: "OrderedDict[Tuple[Hashable, int], bool]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._lru)

    @property
    def dirty_blocks(self) -> int:
        return sum(1 for d in self._lru.values() if d)

    # ------------------------------------------------------------------
    def block_span(self, offset: int, length: int) -> np.ndarray:
        """Block numbers covering ``[offset, offset + length)``."""
        if length <= 0:
            return np.empty(0, dtype=np.int64)
        bs = self.cfg.block_size
        return np.arange(offset // bs, (offset + length - 1) // bs + 1, dtype=np.int64)

    def lookup(self, file_id: Hashable, blocks: np.ndarray) -> np.ndarray:
        """Hit mask for the given block numbers.  Hits are touched (LRU
        refresh); misses are NOT inserted — call :meth:`insert` once the
        fetch is decided so readahead can widen the window first."""
        hits = np.zeros(len(blocks), dtype=bool)
        lru = self._lru
        for i, b in enumerate(blocks.tolist()):
            key = (file_id, b)
            if key in lru:
                lru.move_to_end(key)
                hits[i] = True
                self.stats.hits += 1
            else:
                self.stats.misses += 1
        return hits

    def lookup_range(self, file_id: Hashable, first_block: int, last_block: int) -> list:
        """Hit/miss over the contiguous block range ``[first, last]``.

        Same semantics as :meth:`lookup` on ``arange(first, last + 1)`` —
        hits are LRU-touched in ascending block order and counted — but
        returns the *missed* block numbers (ascending) directly, which is
        the only thing the disk model needs.  Skips the array round-trip:
        a run's blocks are always consecutive, so the span is two ints.
        """
        lru = self._lru
        missed = []
        hits = 0
        for b in range(first_block, last_block + 1):
            key = (file_id, b)
            if key in lru:
                lru.move_to_end(key)
                hits += 1
            else:
                missed.append(b)
        self.stats.hits += hits
        self.stats.misses += len(missed)
        return missed

    def contains(self, file_id: Hashable, block: int) -> bool:
        """Non-mutating membership probe (no LRU touch, no stats)."""
        return (file_id, block) in self._lru

    def insert(self, file_id: Hashable, blocks: np.ndarray, dirty: bool = False) -> int:
        """Make the blocks resident (marking them dirty for writes).

        Returns the number of *dirty* blocks evicted to make room — the
        write-back volume the disk model must charge.  Inserting an already
        resident block refreshes it (and can upgrade clean -> dirty).
        """
        if self.capacity_blocks <= 0:
            # A zero-size cache: everything is an immediate dirty writeback.
            return int(len(blocks)) if dirty else 0
        lru = self._lru
        dirty_evicted = 0
        for b in blocks.tolist():
            key = (file_id, b)
            if key in lru:
                was_dirty = lru.pop(key)
                lru[key] = was_dirty or dirty
                continue
            lru[key] = dirty
            self.stats.insertions += 1
            if len(lru) > self.capacity_blocks:
                _old_key, old_dirty = lru.popitem(last=False)
                self.stats.evictions += 1
                if old_dirty:
                    self.stats.dirty_evictions += 1
                    dirty_evicted += 1
        return dirty_evicted

    def insert_range(
        self, file_id: Hashable, first_block: int, n_blocks: int, dirty: bool = False
    ) -> int:
        """:meth:`insert` for a contiguous run of ``n_blocks`` blocks
        starting at ``first_block`` (identical stats/LRU/eviction order)."""
        if self.capacity_blocks <= 0:
            return n_blocks if dirty else 0
        lru = self._lru
        stats = self.stats
        capacity = self.capacity_blocks
        dirty_evicted = 0
        for b in range(first_block, first_block + n_blocks):
            key = (file_id, b)
            if key in lru:
                was_dirty = lru.pop(key)
                lru[key] = was_dirty or dirty
                continue
            lru[key] = dirty
            stats.insertions += 1
            if len(lru) > capacity:
                _old_key, old_dirty = lru.popitem(last=False)
                stats.evictions += 1
                if old_dirty:
                    stats.dirty_evictions += 1
                    dirty_evicted += 1
        return dirty_evicted

    def clean_range(self, file_id: Hashable, first_block: int, last_block: int) -> None:
        """:meth:`clean` over the contiguous block range ``[first, last]``."""
        lru = self._lru
        for b in range(first_block, last_block + 1):
            key = (file_id, b)
            if key in lru:
                lru[key] = False

    def clean(self, file_id: Hashable, blocks: np.ndarray) -> None:
        """Mark blocks clean (they were flushed)."""
        for b in blocks.tolist():
            key = (file_id, b)
            if key in self._lru:
                self._lru[key] = False

    def flush_all(self) -> int:
        """Mark everything clean; returns how many blocks were dirty."""
        n = 0
        for key, d in self._lru.items():
            if d:
                n += 1
                self._lru[key] = False
        return n

    def drop(self, file_id: Hashable) -> None:
        """Invalidate all blocks of one file (close/delete)."""
        doomed = [k for k in self._lru if k[0] == file_id]
        for k in doomed:
            del self._lru[k]

    def __repr__(self) -> str:
        return f"<BlockCache {len(self)}/{self.capacity_blocks} blocks>"
