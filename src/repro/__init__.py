"""pvfs-sim: reproduction of "Noncontiguous I/O through PVFS" (CLUSTER 2002).

The public API is re-exported here; see README.md for a tour.
"""

from .config import (
    CacheConfig,
    ClusterConfig,
    CostModel,
    DiskConfig,
    NetworkConfig,
    StripeParams,
)
from .errors import (
    FaultError,
    ReproError,
    RetryExhausted,
    ServerCrashed,
    TimeoutError,
)
from .faults import (
    DiskStall,
    FaultConfig,
    FaultInjector,
    FaultPlan,
    IodCrash,
    LinkDown,
    PacketLoss,
    RetryPolicy,
    Straggler,
)
from .regions import RegionList

# Higher layers (import order matters: these pull in network/storage/pvfs).
from .core import (
    DataSievingIO,
    HybridIO,
    ListIO,
    MultipleIO,
    VectorIO,
    pvfs_read_list,
    pvfs_write_list,
)
from .mpi import Communicator
from .pvfs import Cluster, WorkloadResult

__version__ = "1.0.0"

__all__ = [
    "ClusterConfig",
    "NetworkConfig",
    "DiskConfig",
    "CacheConfig",
    "CostModel",
    "StripeParams",
    "RegionList",
    "ReproError",
    "FaultError",
    "TimeoutError",
    "ServerCrashed",
    "RetryExhausted",
    "FaultConfig",
    "FaultPlan",
    "FaultInjector",
    "RetryPolicy",
    "IodCrash",
    "DiskStall",
    "LinkDown",
    "PacketLoss",
    "Straggler",
    "Cluster",
    "WorkloadResult",
    "Communicator",
    "MultipleIO",
    "DataSievingIO",
    "ListIO",
    "HybridIO",
    "VectorIO",
    "pvfs_read_list",
    "pvfs_write_list",
    "__version__",
]
