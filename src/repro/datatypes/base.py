"""MPI-style derived datatypes with vectorized flattening.

The paper closes by pointing at MPI datatypes as the way to describe
noncontiguous access compactly (Section 5), and its interface reference
[12] is ROMIO's flattening machinery.  This package implements the core of
that machinery: a datatype is a *typemap* — a recipe of (offset, length)
byte regions within its extent — and flattening a ``count`` of them at a
``displacement`` yields the :class:`~repro.regions.RegionList` the rest of
pvfs-sim consumes.

Supported constructors mirror MPI's:

* predefined types (:data:`BYTE`, :data:`INT`, :data:`DOUBLE`, ...)
* :class:`Contiguous`  — ``MPI_Type_contiguous``
* :class:`Vector` / :class:`HVector` — ``MPI_Type_vector`` (element /
  byte strides)
* :class:`Indexed` / :class:`HIndexed` — ``MPI_Type_indexed``
* :class:`Struct` — ``MPI_Type_create_struct``
* :class:`Subarray` — ``MPI_Type_create_subarray`` (C order)
* :class:`Resized` — ``MPI_Type_create_resized``

Types are immutable and compose arbitrarily; flattening is fully
vectorized (numpy broadcasting over the component typemap) and coalesces
adjacent regions, matching ROMIO's flattened representation.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..errors import ReproError
from ..regions import RegionList

__all__ = [
    "DatatypeError",
    "Datatype",
    "Predefined",
    "BYTE",
    "CHAR",
    "SHORT",
    "INT",
    "FLOAT",
    "DOUBLE",
    "Contiguous",
    "Vector",
    "HVector",
    "Indexed",
    "HIndexed",
    "Struct",
    "Subarray",
    "Resized",
]


class DatatypeError(ReproError):
    """Invalid datatype construction or use."""


class Datatype:
    """Base class: a typemap of byte regions within an extent.

    Subclasses must provide :attr:`size` (bytes of actual data),
    :attr:`extent` (span the type occupies, for repetition), and
    :meth:`_typemap` returning the (offsets, lengths) arrays of one
    instance relative to its start.
    """

    __slots__ = ("_cached_map",)

    #: bytes of real data per instance
    size: int
    #: bytes from one instance's start to the next (repetition stride)
    extent: int

    def _typemap(self) -> Tuple[np.ndarray, np.ndarray]:  # pragma: no cover
        raise NotImplementedError

    # ------------------------------------------------------------------
    def typemap(self) -> Tuple[np.ndarray, np.ndarray]:
        """Coalesced (offsets, lengths) of one instance (cached)."""
        cached = getattr(self, "_cached_map", None)
        if cached is None:
            off, ln = self._typemap()
            r = RegionList(off, ln)
            if not r.is_disjoint():
                raise DatatypeError("typemap regions overlap")
            c = r.coalesced()
            cached = (c.offsets, c.lengths)
            self._cached_map = cached
        return cached

    @property
    def region_count(self) -> int:
        """Contiguous pieces per instance (after coalescing)."""
        return int(self.typemap()[0].size)

    def flatten(self, count: int = 1, displacement: int = 0) -> RegionList:
        """Regions of ``count`` consecutive instances starting at byte
        ``displacement`` — the input to ``pvfs_read_list`` et al."""
        if count < 0:
            raise DatatypeError("count must be non-negative")
        off, ln = self.typemap()
        if count == 0 or off.size == 0:
            return RegionList.empty()
        reps = displacement + self.extent * np.arange(count, dtype=np.int64)
        all_off = (reps[:, None] + off[None, :]).ravel()
        all_len = np.broadcast_to(ln, (count, ln.size)).ravel()
        return RegionList(all_off, all_len).coalesced()

    def contiguous(self, count: int) -> "Contiguous":
        return Contiguous(self, count)

    def __mul__(self, count: int) -> "Contiguous":
        return Contiguous(self, count)

    @property
    def density(self) -> float:
        """Fraction of the extent that is real data."""
        return self.size / self.extent if self.extent else 1.0

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} size={self.size} extent={self.extent} "
            f"regions={self.region_count}>"
        )


class Predefined(Datatype):
    """A named fixed-width base type."""

    __slots__ = ("name", "size", "extent")

    def __init__(self, name: str, nbytes: int) -> None:
        if nbytes <= 0:
            raise DatatypeError("predefined type must have positive size")
        self.name = name
        self.size = nbytes
        self.extent = nbytes

    def _typemap(self):
        return (np.zeros(1, np.int64), np.array([self.size], np.int64))

    def __repr__(self) -> str:
        return f"<{self.name}>"


BYTE = Predefined("BYTE", 1)
CHAR = Predefined("CHAR", 1)
SHORT = Predefined("SHORT", 2)
INT = Predefined("INT", 4)
FLOAT = Predefined("FLOAT", 4)
DOUBLE = Predefined("DOUBLE", 8)


class Contiguous(Datatype):
    """``count`` back-to-back instances of ``base``."""

    __slots__ = ("base", "count", "size", "extent")

    def __init__(self, base: Datatype, count: int) -> None:
        if count < 0:
            raise DatatypeError("count must be non-negative")
        self.base = base
        self.count = count
        self.size = base.size * count
        self.extent = base.extent * count

    def _typemap(self):
        r = self.base.flatten(self.count)
        return (r.offsets, r.lengths)


class HVector(Datatype):
    """``count`` blocks of ``blocklength`` base elements, ``stride``
    **bytes** apart (``MPI_Type_create_hvector``)."""

    __slots__ = ("base", "count", "blocklength", "stride", "size", "extent")

    def __init__(self, base: Datatype, count: int, blocklength: int, stride: int) -> None:
        if count < 0 or blocklength < 0:
            raise DatatypeError("count and blocklength must be non-negative")
        if count > 1 and stride < blocklength * base.extent:
            raise DatatypeError("stride would overlap consecutive blocks")
        self.base = base
        self.count = count
        self.blocklength = blocklength
        self.stride = stride
        self.size = base.size * blocklength * count
        if count == 0 or blocklength == 0:
            self.extent = 0
        else:
            self.extent = stride * (count - 1) + blocklength * base.extent

    def _typemap(self):
        block = self.base.flatten(self.blocklength)
        starts = self.stride * np.arange(self.count, dtype=np.int64)
        off = (starts[:, None] + block.offsets[None, :]).ravel()
        ln = np.broadcast_to(block.lengths, (self.count, block.lengths.size)).ravel()
        return off, ln


class Vector(HVector):
    """``MPI_Type_vector``: stride counted in base-type *elements*."""

    __slots__ = ()

    def __init__(self, base: Datatype, count: int, blocklength: int, stride: int) -> None:
        super().__init__(base, count, blocklength, stride * base.extent)


class HIndexed(Datatype):
    """Blocks of varying length at explicit **byte** displacements
    (``MPI_Type_create_hindexed``)."""

    __slots__ = ("base", "blocklengths", "displacements", "size", "extent")

    def __init__(
        self,
        base: Datatype,
        blocklengths: Sequence[int],
        displacements: Sequence[int],
    ) -> None:
        bl = np.asarray(blocklengths, dtype=np.int64)
        dp = np.asarray(displacements, dtype=np.int64)
        if bl.shape != dp.shape or bl.ndim != 1:
            raise DatatypeError("blocklengths and displacements must be equal-length 1-D")
        if bl.size and (bl < 0).any():
            raise DatatypeError("blocklengths must be non-negative")
        if dp.size and (dp < 0).any():
            raise DatatypeError("displacements must be non-negative")
        self.base = base
        self.blocklengths = bl
        self.displacements = dp
        self.size = int(bl.sum()) * base.size
        ends = dp + bl * base.extent
        self.extent = int(ends.max()) if ends.size else 0

    def _typemap(self):
        offs = []
        lens = []
        for bl, dp in zip(self.blocklengths.tolist(), self.displacements.tolist()):
            r = self.base.flatten(bl, displacement=dp)
            offs.append(r.offsets)
            lens.append(r.lengths)
        if not offs:
            return np.empty(0, np.int64), np.empty(0, np.int64)
        return np.concatenate(offs), np.concatenate(lens)


class Indexed(HIndexed):
    """``MPI_Type_indexed``: displacements counted in base elements."""

    __slots__ = ()

    def __init__(
        self,
        base: Datatype,
        blocklengths: Sequence[int],
        displacements: Sequence[int],
    ) -> None:
        dp = np.asarray(displacements, dtype=np.int64) * base.extent
        super().__init__(base, blocklengths, dp)


class Struct(Datatype):
    """Heterogeneous fields at byte displacements
    (``MPI_Type_create_struct``)."""

    __slots__ = ("fields", "size", "extent")

    def __init__(self, fields: Sequence[Tuple[Datatype, int, int]]) -> None:
        """``fields`` is a sequence of (datatype, count, byte displacement)."""
        if not fields:
            raise DatatypeError("struct needs at least one field")
        self.fields = tuple(fields)
        self.size = sum(t.size * c for t, c, _ in self.fields)
        self.extent = max(d + t.extent * c for t, c, d in self.fields)

    def _typemap(self):
        offs, lens = [], []
        for t, c, d in self.fields:
            r = t.flatten(c, displacement=d)
            offs.append(r.offsets)
            lens.append(r.lengths)
        return np.concatenate(offs), np.concatenate(lens)


class Subarray(Datatype):
    """An n-dimensional sub-block of an n-dimensional array, C order
    (``MPI_Type_create_subarray``) — the natural description of the
    paper's block-block pattern and FLASH inner blocks."""

    __slots__ = ("shape", "subsizes", "starts", "base", "size", "extent")

    def __init__(
        self,
        shape: Sequence[int],
        subsizes: Sequence[int],
        starts: Sequence[int],
        base: Datatype = BYTE,
    ) -> None:
        shape = tuple(int(s) for s in shape)
        subsizes = tuple(int(s) for s in subsizes)
        starts = tuple(int(s) for s in starts)
        if not (len(shape) == len(subsizes) == len(starts)) or not shape:
            raise DatatypeError("shape, subsizes, starts must be equal-rank and non-empty")
        for dim, (n, sub, st) in enumerate(zip(shape, subsizes, starts)):
            if n <= 0 or sub <= 0 or st < 0 or st + sub > n:
                raise DatatypeError(
                    f"dimension {dim}: subarray [{st}, {st + sub}) outside [0, {n})"
                )
        if base.region_count != 1:
            raise DatatypeError(
                "subarray base type must hold one contiguous data block "
                "(its extent may exceed its size, e.g. a Resized element)"
            )
        self.shape = shape
        self.subsizes = subsizes
        self.starts = starts
        self.base = base
        n_elems = int(np.prod(subsizes))
        self.size = n_elems * base.size
        self.extent = int(np.prod(shape)) * base.extent

    def _typemap(self):
        eb = self.base.extent  # element stride in bytes
        data = self.base.size  # data bytes per element
        data_off = int(self.base.typemap()[0][0])  # data offset within element
        lead_sub = self.subsizes[:-1]
        lead_start = self.starts[:-1]
        if lead_sub:
            grids = np.meshgrid(
                *[
                    s + np.arange(n, dtype=np.int64)
                    for s, n in zip(lead_start, lead_sub)
                ],
                indexing="ij",
            )
            # linear element index of each row start in the full array
            lin = np.zeros_like(grids[0])
            for dim, g in enumerate(grids):
                stride = int(np.prod(self.shape[dim + 1 :]))
                lin = lin + g * stride
            row_starts = lin.ravel() + self.starts[-1]
        else:
            row_starts = np.array([self.starts[-1]], dtype=np.int64)
        if data == eb:
            # contiguous elements: one run per row
            off = row_starts * eb
            ln = np.full(off.size, self.subsizes[-1] * eb, dtype=np.int64)
            return off.astype(np.int64), ln
        # strided elements (e.g. a Resized double inside an interleaved
        # variable record): one region per element
        within = np.arange(self.subsizes[-1], dtype=np.int64) * eb
        off = (row_starts[:, None] * eb + within[None, :]).ravel() + data_off
        ln = np.full(off.size, data, dtype=np.int64)
        return off.astype(np.int64), ln


class Resized(Datatype):
    """Override a type's extent (``MPI_Type_create_resized``)."""

    __slots__ = ("base", "size", "extent")

    def __init__(self, base: Datatype, extent: int) -> None:
        if extent < 0:
            raise DatatypeError("extent must be non-negative")
        self.base = base
        self.size = base.size
        self.extent = extent

    def _typemap(self):
        off, ln = self.base.typemap()
        return off.copy(), ln.copy()
