"""Region algebra: vectorized (offset, length) list manipulation.

Noncontiguous I/O requests — in the paper's ``pvfs_read_list`` interface and
everywhere inside the simulator — are described by parallel arrays of byte
offsets and byte lengths.  This module provides an immutable, numpy-backed
:class:`RegionList` and the vectorized operations every other subsystem
builds on:

* validation / normalization (sort, drop empties, coalesce adjacent),
* splitting at fixed boundaries (striping),
* clipping to an extent (data sieving windows),
* pairing two equal-volume lists into matched copy pieces (memory<->file
  data movement),
* building flat fancy-index arrays for one-shot numpy gather/scatter.

Everything is O(n log n) or better in the number of regions and never loops
over regions in Python for the hot paths, per the HPC guide's "vectorize the
for loops" rule.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple

import numpy as np

from .errors import RegionError

__all__ = ["RegionList", "pair_pieces", "build_flat_indices", "split_with_parents"]


def _as_int64(a) -> np.ndarray:
    arr = np.asarray(a, dtype=np.int64)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise RegionError(f"region arrays must be 1-D, got shape {arr.shape}")
    return arr


class RegionList:
    """An immutable list of byte regions, stored as parallel int64 arrays.

    Regions may be unsorted and may overlap — some operations require (and
    check) sortedness or disjointness and say so in their docstrings.
    Zero-length regions are permitted on construction (the paper's interface
    does not forbid them) but are removed by :meth:`normalized`.
    """

    __slots__ = ("offsets", "lengths", "_tb", "_ne")

    def __init__(self, offsets, lengths) -> None:
        off = _as_int64(offsets)
        ln = _as_int64(lengths)
        if off.shape != ln.shape:
            raise RegionError(
                f"offsets ({off.shape}) and lengths ({ln.shape}) must have equal shape"
            )
        if off.size and (off < 0).any():
            raise RegionError("region offsets must be non-negative")
        if ln.size and (ln < 0).any():
            raise RegionError("region lengths must be non-negative")
        off.setflags(write=False)
        ln.setflags(write=False)
        self.offsets = off
        self.lengths = ln
        self._tb = None  # cached total_bytes (immutable => safe)
        self._ne = None  # cached "no zero-length regions" flag

    @classmethod
    def _trusted(
        cls, offsets: np.ndarray, lengths: np.ndarray, nonempty=None
    ) -> "RegionList":
        """Construct from already-validated 1-D int64 arrays.

        Internal constructor for derived lists (splits, clips, slices):
        every transformation below produces arrays that satisfy the public
        ``__init__`` invariants by construction, so re-running the dtype /
        shape / sign checks on each of the thousands of derived lists a
        simulated request creates is pure overhead.  ``nonempty`` preseeds
        the :meth:`drop_empty` cache when the producer knows no
        zero-length region can appear.
        """
        r = object.__new__(cls)
        offsets.setflags(write=False)
        lengths.setflags(write=False)
        r.offsets = offsets
        r.lengths = lengths
        r._tb = None
        r._ne = nonempty
        return r

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "RegionList":
        return cls(np.empty(0, np.int64), np.empty(0, np.int64))

    @classmethod
    def single(cls, offset: int, length: int) -> "RegionList":
        # The "multiple I/O" method builds one of these per contiguous
        # call, so skip the generic list->array validation pipeline.
        if offset < 0:
            raise RegionError("region offsets must be non-negative")
        if length < 0:
            raise RegionError("region lengths must be non-negative")
        return cls._trusted(
            np.array([offset], np.int64), np.array([length], np.int64)
        )

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[int, int]]) -> "RegionList":
        pairs = list(pairs)
        if not pairs:
            return cls.empty()
        off, ln = zip(*pairs)
        return cls(off, ln)

    @classmethod
    def contiguous(cls, start: int, total: int, piece: int) -> "RegionList":
        """Adjacent pieces of size ``piece`` covering ``total`` bytes from
        ``start`` (last piece may be short).  Useful for building strided
        test patterns."""
        if total <= 0:
            return cls.empty()
        if piece <= 0:
            raise RegionError("piece size must be positive")
        n = -(-total // piece)
        off = start + piece * np.arange(n, dtype=np.int64)
        ln = np.full(n, piece, dtype=np.int64)
        ln[-1] = total - piece * (n - 1)
        return cls(off, ln)

    @classmethod
    def strided(cls, start: int, count: int, length: int, stride: int) -> "RegionList":
        """``count`` regions of ``length`` bytes, ``stride`` bytes apart
        (an MPI vector datatype flattened)."""
        if count < 0:
            raise RegionError("count must be non-negative")
        if count and length < 0:
            raise RegionError("length must be non-negative")
        off = start + stride * np.arange(count, dtype=np.int64)
        ln = np.full(count, length, dtype=np.int64)
        return cls(off, ln)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return int(self.offsets.size)

    @property
    def total_bytes(self) -> int:
        tb = self._tb
        if tb is None:
            tb = int(self.lengths.sum()) if self.lengths.size else 0
            self._tb = tb
        return tb

    @property
    def ends(self) -> np.ndarray:
        """Exclusive end offsets of every region."""
        return self.offsets + self.lengths

    @property
    def extent(self) -> Tuple[int, int]:
        """``(start, end)`` of the smallest contiguous window covering all
        non-empty regions; ``(0, 0)`` for an empty/all-empty list."""
        mask = self.lengths > 0
        if not mask.any():
            return (0, 0)
        return (int(self.offsets[mask].min()), int(self.ends[mask].max()))

    @property
    def extent_bytes(self) -> int:
        s, e = self.extent
        return e - s

    def is_sorted(self) -> bool:
        if self.count <= 1:
            return True
        return bool((np.diff(self.offsets) >= 0).all())

    def is_disjoint(self) -> bool:
        """True when no two non-empty regions overlap (adjacency is fine)."""
        mask = self.lengths > 0
        if mask.sum() <= 1:
            return True
        off = self.offsets[mask]
        ln = self.lengths[mask]
        order = np.argsort(off, kind="stable")
        off, ln = off[order], ln[order]
        return bool((off[1:] >= (off + ln)[:-1]).all())

    def is_contiguous(self) -> bool:
        """True when the non-empty regions form one contiguous run in order."""
        mask = self.lengths > 0
        if mask.sum() <= 1:
            return True
        off = self.offsets[mask]
        ln = self.lengths[mask]
        return bool((off[1:] == (off + ln)[:-1]).all())

    # ------------------------------------------------------------------
    # Transformations (all return new RegionLists)
    # ------------------------------------------------------------------
    def drop_empty(self) -> "RegionList":
        if self._ne:
            return self
        mask = self.lengths > 0
        if mask.all():
            self._ne = True
            return self
        return RegionList._trusted(
            self.offsets[mask], self.lengths[mask], nonempty=True
        )

    def sorted(self) -> "RegionList":
        if self.is_sorted():
            return self
        order = np.argsort(self.offsets, kind="stable")
        return RegionList._trusted(
            self.offsets[order], self.lengths[order], nonempty=self._ne
        )

    def shift(self, delta: int) -> "RegionList":
        """Translate all offsets by ``delta`` (must not go negative)."""
        if self.count == 0:
            return self
        off = self.offsets + int(delta)
        if (off < 0).any():
            raise RegionError("shift would produce a negative offset")
        return RegionList._trusted(off, self.lengths, nonempty=self._ne)

    def coalesced(self) -> "RegionList":
        """Merge adjacent/overlapping regions.  Sorts and drops empties
        first; overlapping regions merge into their union."""
        r = self.drop_empty().sorted()
        if r.count <= 1:
            return r
        ends = np.maximum.accumulate(r.ends)
        # A new run starts where the offset exceeds the running max end.
        new_run = np.empty(r.count, dtype=bool)
        new_run[0] = True
        new_run[1:] = r.offsets[1:] > ends[:-1]
        starts = r.offsets[new_run]
        run_id = np.cumsum(new_run) - 1
        run_ends = np.zeros(run_id[-1] + 1, dtype=np.int64)
        np.maximum.at(run_ends, run_id, r.ends)
        return RegionList._trusted(starts, run_ends - starts, nonempty=True)

    def concat(self, other: "RegionList") -> "RegionList":
        return RegionList(
            np.concatenate([self.offsets, other.offsets]),
            np.concatenate([self.lengths, other.lengths]),
        )

    def take(self, index) -> "RegionList":
        """Fancy-select a subset of regions."""
        return RegionList(self.offsets[index], self.lengths[index])

    def slice_regions(self, start: int, stop: int) -> "RegionList":
        """Regions ``start:stop`` (by position, not byte offset)."""
        return RegionList._trusted(
            self.offsets[start:stop], self.lengths[start:stop], nonempty=self._ne
        )

    def split_at_boundaries(self, boundary: int) -> "RegionList":
        """Split every region at multiples of ``boundary`` bytes.

        This is the striping primitive: after splitting, no region crosses a
        ``boundary`` multiple, so each piece lives on exactly one stripe
        unit.  Fully vectorized; preserves byte order.
        """
        if boundary <= 0:
            raise RegionError("boundary must be positive")
        r = self.drop_empty()
        if r.count == 0:
            return r
        first_unit = r.offsets // boundary
        last_unit = (r.ends - 1) // boundary
        pieces_per = (last_unit - first_unit + 1).astype(np.int64)
        n_pieces = int(pieces_per.sum())
        if n_pieces == r.count:
            return r  # nothing crosses a boundary
        # For region i with k_i pieces, piece j (0-based) starts at
        # max(off_i, (first_unit_i + j) * boundary) and ends at
        # min(end_i, (first_unit_i + j + 1) * boundary).
        reg_idx = np.repeat(np.arange(r.count, dtype=np.int64), pieces_per)
        # j = position within its region's run of pieces
        firsts = np.zeros(n_pieces, dtype=np.int64)
        firsts[np.cumsum(pieces_per)[:-1]] = pieces_per[:-1]
        j = np.arange(n_pieces, dtype=np.int64) - np.cumsum(firsts)
        unit = first_unit[reg_idx] + j
        piece_start = np.maximum(r.offsets[reg_idx], unit * boundary)
        piece_end = np.minimum(r.ends[reg_idx], (unit + 1) * boundary)
        return RegionList._trusted(piece_start, piece_end - piece_start, nonempty=True)

    def subdivide(self, piece_size: int) -> "RegionList":
        """Split every region into adjacent pieces of ``piece_size`` bytes
        (measured from each region's start; final piece may be short).

        This is how the artificial benchmark "increases the number of
        accesses ... while preserving the aggregate data size" (paper
        Section 4.2.1): the same bytes, fragmented into more regions.
        """
        if piece_size <= 0:
            raise RegionError("piece_size must be positive")
        r = self.drop_empty()
        if r.count == 0:
            return r
        pieces_per = -(-r.lengths // piece_size)
        if (pieces_per == 1).all():
            return r
        n_pieces = int(pieces_per.sum())
        reg_idx = np.repeat(np.arange(r.count, dtype=np.int64), pieces_per)
        firsts = np.zeros(n_pieces, dtype=np.int64)
        firsts[np.cumsum(pieces_per)[:-1]] = pieces_per[:-1]
        j = np.arange(n_pieces, dtype=np.int64) - np.cumsum(firsts)
        start = r.offsets[reg_idx] + j * piece_size
        end = np.minimum(start + piece_size, r.ends[reg_idx])
        return RegionList._trusted(start, end - start, nonempty=True)

    def clip(self, window_start: int, window_end: int) -> "RegionList":
        """Intersect every region with ``[window_start, window_end)``,
        dropping regions that fall entirely outside.  Preserves order."""
        if window_end < window_start:
            raise RegionError("clip window end precedes start")
        r = self.drop_empty()
        if r.count == 0:
            return r
        start = np.maximum(r.offsets, window_start)
        end = np.minimum(r.ends, window_end)
        mask = end > start
        return RegionList._trusted(start[mask], (end - start)[mask], nonempty=True)

    def gaps(self) -> "RegionList":
        """The complement of this list within its extent.

        Requires a disjoint list; the result is the sorted list of holes
        between coalesced regions.  Empty input -> empty output.
        """
        if not self.is_disjoint():
            raise RegionError("gaps() requires a disjoint region list")
        r = self.coalesced()
        if r.count <= 1:
            return RegionList.empty()
        gap_off = r.ends[:-1]
        gap_len = r.offsets[1:] - r.ends[:-1]
        mask = gap_len > 0
        return RegionList(gap_off[mask], gap_len[mask])

    def byte_slice(self, skip: int, take: int) -> "RegionList":
        """The sub-list covering bytes ``[skip, skip + take)`` of this
        list's flattened byte stream (regions cut as needed).

        This is the stream-addressing primitive behind MPI-IO file views:
        a view position selects bytes *of the typemap stream*, not file
        offsets.  Fully vectorized.
        """
        if skip < 0 or take < 0:
            raise RegionError("skip and take must be non-negative")
        r = self.drop_empty()
        total = r.total_bytes
        if skip + take > total:
            raise RegionError(
                f"byte_slice [{skip}, {skip + take}) exceeds stream of {total} B"
            )
        if take == 0 or r.count == 0:
            return RegionList.empty()
        cum = np.cumsum(r.lengths)
        first = int(np.searchsorted(cum, skip, side="right"))
        last = int(np.searchsorted(cum, skip + take, side="left"))
        off = r.offsets[first : last + 1].copy()
        ln = r.lengths[first : last + 1].copy()
        start_of_first = int(cum[first - 1]) if first else 0
        head_trim = skip - start_of_first
        off[0] += head_trim
        ln[0] -= head_trim
        consumed = int(ln.sum())
        ln[-1] -= consumed - take
        return RegionList(off, ln)

    def chunks_of(self, max_regions: int) -> Iterator["RegionList"]:
        """Yield successive sub-lists of at most ``max_regions`` regions.

        This is exactly the paper's list I/O request splitting: "I/O
        requests that contain more file regions than the trailing data limit
        are broken up into several list I/O requests" (Section 3.3).
        """
        if max_regions <= 0:
            raise RegionError("max_regions must be positive")
        count = self.count
        if count <= max_regions:
            # Whole list fits in one request — the overwhelmingly common
            # case on the service path; avoid re-slicing the arrays.
            if count:
                yield self
            return
        for start in range(0, count, max_regions):
            yield self.slice_regions(start, start + max_regions)

    def split_by_bytes(self, byte_counts: Sequence[int]) -> list:
        """Split this list into consecutive pieces of exactly the given byte
        counts (summing to ``total_bytes``).  Regions are cut where needed.

        Used to carve a memory region list into per-request chunks matching
        the file regions each request covers.
        """
        counts = _as_int64(byte_counts)
        if counts.size and (counts < 0).any():
            raise RegionError("byte counts must be non-negative")
        if int(counts.sum()) != self.total_bytes:
            raise RegionError(
                f"byte counts sum to {int(counts.sum())} but list holds {self.total_bytes}"
            )
        out = []
        r = self.drop_empty()
        region_i = 0  # current region index
        inner = 0  # bytes already consumed from region_i
        for want in counts:
            offs, lens = [], []
            remaining = int(want)
            while remaining > 0:
                avail = int(r.lengths[region_i]) - inner
                take = min(avail, remaining)
                offs.append(int(r.offsets[region_i]) + inner)
                lens.append(take)
                inner += take
                remaining -= take
                if inner == int(r.lengths[region_i]):
                    region_i += 1
                    inner = 0
            out.append(RegionList(np.array(offs, np.int64), np.array(lens, np.int64)))
        return out

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.count

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        for o, l in zip(self.offsets.tolist(), self.lengths.tolist()):
            yield (o, l)

    def __eq__(self, other) -> bool:
        if not isinstance(other, RegionList):
            return NotImplemented
        return bool(
            np.array_equal(self.offsets, other.offsets)
            and np.array_equal(self.lengths, other.lengths)
        )

    def __hash__(self):  # immutable value type
        return hash((self.offsets.tobytes(), self.lengths.tobytes()))

    def __repr__(self) -> str:
        if self.count <= 6:
            body = ", ".join(f"({o}:+{l})" for o, l in self)
        else:
            head = ", ".join(f"({o}:+{l})" for o, l in self.slice_regions(0, 3))
            tail = ", ".join(f"({o}:+{l})" for o, l in self.slice_regions(-2, self.count))
            body = f"{head}, ..., {tail}"
        return f"RegionList<{self.count} regions, {self.total_bytes} B>[{body}]"


def pair_pieces(a: RegionList, b: RegionList) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pair two equal-volume region lists into matched copy pieces.

    Given a memory region list ``a`` and a file region list ``b`` describing
    the *same byte stream* (as in the paper's list interface, where the k-th
    byte of the flattened memory regions corresponds to the k-th byte of the
    flattened file regions), return arrays ``(a_offsets, b_offsets,
    lengths)`` of contiguous pieces such that copying piece-by-piece realizes
    the full noncontiguous transfer.

    Vectorized: piece boundaries are the union of both lists' cumulative
    length breakpoints.
    """
    a = a.drop_empty()
    b = b.drop_empty()
    if a.total_bytes != b.total_bytes:
        raise RegionError(
            f"region lists describe different volumes: {a.total_bytes} vs {b.total_bytes}"
        )
    if a.total_bytes == 0:
        z = np.empty(0, np.int64)
        return z, z.copy(), z.copy()
    cum_a = np.cumsum(a.lengths)
    cum_b = np.cumsum(b.lengths)
    bounds = np.union1d(cum_a, cum_b)  # sorted piece end positions
    piece_end = bounds
    piece_start = np.concatenate(([0], bounds[:-1]))
    piece_len = piece_end - piece_start
    # Source region for each piece: the region whose cumulative range
    # contains piece_start.
    ia = np.searchsorted(cum_a, piece_start, side="right")
    ib = np.searchsorted(cum_b, piece_start, side="right")
    base_a = np.concatenate(([0], cum_a[:-1]))
    base_b = np.concatenate(([0], cum_b[:-1]))
    a_off = a.offsets[ia] + (piece_start - base_a[ia])
    b_off = b.offsets[ib] + (piece_start - base_b[ib])
    return a_off, b_off, piece_len


def split_with_parents(regions: RegionList, boundary: int) -> Tuple[RegionList, np.ndarray]:
    """Like :meth:`RegionList.split_at_boundaries`, additionally returning
    each piece's originating region index.

    The analytic model needs parents to attribute stripe-unit pieces back
    to logical requests (region i of a plan belongs to request
    ``chunk_of_region[i]``).
    """
    if boundary <= 0:
        raise RegionError("boundary must be positive")
    r = regions.drop_empty()
    if r.count == 0:
        return r, np.empty(0, np.int64)
    first_unit = r.offsets // boundary
    last_unit = (r.ends - 1) // boundary
    pieces_per = (last_unit - first_unit + 1).astype(np.int64)
    n_pieces = int(pieces_per.sum())
    reg_idx = np.repeat(np.arange(r.count, dtype=np.int64), pieces_per)
    if n_pieces == r.count:
        return r, reg_idx
    firsts = np.zeros(n_pieces, dtype=np.int64)
    firsts[np.cumsum(pieces_per)[:-1]] = pieces_per[:-1]
    j = np.arange(n_pieces, dtype=np.int64) - np.cumsum(firsts)
    unit = first_unit[reg_idx] + j
    piece_start = np.maximum(r.offsets[reg_idx], unit * boundary)
    piece_end = np.minimum(r.ends[reg_idx], (unit + 1) * boundary)
    return RegionList._trusted(piece_start, piece_end - piece_start, nonempty=True), reg_idx


def build_flat_indices(offsets: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Flat element indices covering every region, in order.

    ``build_flat_indices([5, 20], [3, 2]) == [5, 6, 7, 20, 21]`` — the fancy
    index array that turns a noncontiguous gather/scatter into one numpy
    indexing operation.
    """
    offsets = _as_int64(offsets)
    lengths = _as_int64(lengths)
    if offsets.shape != lengths.shape:
        raise RegionError("offsets and lengths must have equal shape")
    mask = lengths > 0
    offsets, lengths = offsets[mask], lengths[mask]
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, np.int64)
    reg = np.repeat(np.arange(offsets.size, dtype=np.int64), lengths)
    starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    within = np.arange(total, dtype=np.int64) - starts[reg]
    return offsets[reg] + within
