"""Rendering experiment results: markdown tables and CSV.

Every figure driver returns a :class:`FigureResult`; the benchmark harness
prints its markdown so each pytest-benchmark run regenerates the paper's
tables, and the CLI can write CSV for external plotting.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .harness import DataPoint

__all__ = ["FigureResult", "Check", "series_table", "points_to_csv"]


@dataclass
class Check:
    """One verifiable claim from the paper about a figure."""

    description: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        extra = f" ({self.detail})" if self.detail else ""
        return f"[{mark}] {self.description}{extra}"


@dataclass
class FigureResult:
    """All data points and checks for one paper figure."""

    figure: str  # "fig09"
    title: str
    points: List[DataPoint]
    checks: List[Check] = field(default_factory=list)
    #: Sweep engine accounting (:class:`repro.sweep.SweepStats`) when the
    #: figure ran through :func:`repro.sweep.run_sweep`; None otherwise.
    sweep_stats: Optional[object] = None

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def series_names(self) -> List[str]:
        seen: List[str] = []
        for p in self.points:
            if p.series not in seen:
                seen.append(p.series)
        return seen

    def points_for(self, series: str, **filters) -> List[DataPoint]:
        out = []
        for p in self.points:
            if p.series != series:
                continue
            if any(getattr(p, k) != v for k, v in filters.items()):
                continue
            out.append(p)
        return sorted(out, key=lambda p: p.x)

    def markdown(self) -> str:
        buf = io.StringIO()
        buf.write(f"## {self.figure}: {self.title}\n\n")
        # group by (n_clients, mode) the way the paper splits sub-plots
        groups = sorted({(p.n_clients, p.mode) for p in self.points})
        for n_clients, mode in groups:
            pts = [p for p in self.points if p.n_clients == n_clients and p.mode == mode]
            series = []
            for p in pts:
                if p.series not in series:
                    series.append(p.series)
            buf.write(f"### {n_clients} clients ({mode})\n\n")
            buf.write(series_table(pts, series))
            buf.write("\n")
        if self.checks:
            buf.write("### checks\n\n")
            for c in self.checks:
                buf.write(f"- {c}\n")
        return buf.getvalue()

    def __repr__(self) -> str:
        status = "ok" if self.all_passed else "FAILING"
        return f"<FigureResult {self.figure} points={len(self.points)} {status}>"


def series_table(points: Sequence[DataPoint], series: Sequence[str]) -> str:
    """Markdown table: one row per x, one column per series (seconds)."""
    xs = sorted({p.x for p in points})
    by = {(p.series, p.x): p for p in points}
    header = "| x | " + " | ".join(f"{s} (s)" for s in series) + " |\n"
    rule = "|---" * (len(series) + 1) + "|\n"
    rows = []
    for x in xs:
        cells = []
        for s in series:
            p = by.get((s, x))
            cells.append(f"{p.elapsed:.3f}" if p is not None else "-")
        rows.append(f"| {x:g} | " + " | ".join(cells) + " |\n")
    return header + rule + "".join(rows)


def points_to_csv(points: Sequence[DataPoint]) -> str:
    """CSV dump of data points (for plotting outside the harness)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(
        [
            "figure",
            "series",
            "mode",
            "kind",
            "n_clients",
            "x",
            "elapsed_s",
            "logical_requests",
            "server_messages",
            "moved_bytes",
            "useful_bytes",
        ]
    )
    for p in points:
        writer.writerow(
            [
                p.figure,
                p.series,
                p.mode,
                p.kind,
                p.n_clients,
                p.x,
                f"{p.elapsed:.6f}",
                p.logical_requests,
                p.server_messages,
                p.moved_bytes,
                p.useful_bytes,
            ]
        )
    return buf.getvalue()
