"""Result comparison: diff two experiment CSV dumps.

Calibration work needs to answer "what did this constant change do to
every figure?"  :func:`compare_csv` matches points by
(figure, series, mode, kind, n_clients, x) and reports per-point ratios
plus per-figure aggregates; :func:`format_comparison` renders markdown.

Used by humans via::

    pvfs-sim --all --scale paper --mode model --csv before.csv
    # ...edit repro/config.py...
    pvfs-sim --all --scale paper --mode model --csv after.csv
    python -m repro.experiments.compare before.csv after.csv
"""

from __future__ import annotations

import csv
import math
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ReproError

__all__ = ["PointDelta", "Comparison", "compare_csv", "format_comparison", "main"]

Key = Tuple[str, str, str, str, int, float]


class CompareError(ReproError):
    """Malformed or incomparable result files."""


@dataclass(frozen=True)
class PointDelta:
    """One matched point's change."""

    key: Key
    before: float
    after: float

    @property
    def ratio(self) -> float:
        if self.before == 0:
            return math.inf if self.after > 0 else 1.0
        return self.after / self.before

    @property
    def figure(self) -> str:
        return self.key[0]


@dataclass
class Comparison:
    """All matched/unmatched points of a comparison."""

    deltas: List[PointDelta]
    only_before: List[Key]
    only_after: List[Key]

    @property
    def max_ratio(self) -> float:
        return max((d.ratio for d in self.deltas), default=1.0)

    @property
    def min_ratio(self) -> float:
        return min((d.ratio for d in self.deltas), default=1.0)

    def per_figure(self) -> Dict[str, Dict[str, float]]:
        grouped: Dict[str, List[float]] = {}
        for d in self.deltas:
            grouped.setdefault(d.figure, []).append(d.ratio)
        out = {}
        for fig, ratios in sorted(grouped.items()):
            ratios.sort()
            out[fig] = {
                "points": float(len(ratios)),
                "min": ratios[0],
                "median": ratios[len(ratios) // 2],
                "max": ratios[-1],
            }
        return out

    def worst(self, n: int = 5) -> List[PointDelta]:
        return sorted(self.deltas, key=lambda d: abs(math.log(max(d.ratio, 1e-12))))[
            -n:
        ][::-1]


def _load(path: str) -> Dict[Key, float]:
    out: Dict[Key, float] = {}
    with open(path, newline="") as fh:
        reader = csv.DictReader(fh)
        required = {"figure", "series", "mode", "kind", "n_clients", "x", "elapsed_s"}
        if reader.fieldnames is None or not required <= set(reader.fieldnames):
            raise CompareError(
                f"{path}: not an experiment CSV (need columns {sorted(required)})"
            )
        for row in reader:
            key: Key = (
                row["figure"],
                row["series"],
                row["mode"],
                row["kind"],
                int(row["n_clients"]),
                float(row["x"]),
            )
            out[key] = float(row["elapsed_s"])
    return out


def compare_csv(before_path: str, after_path: str) -> Comparison:
    before = _load(before_path)
    after = _load(after_path)
    deltas = [
        PointDelta(k, before[k], after[k]) for k in sorted(before.keys() & after.keys())
    ]
    return Comparison(
        deltas=deltas,
        only_before=sorted(before.keys() - after.keys()),
        only_after=sorted(after.keys() - before.keys()),
    )


def format_comparison(cmp: Comparison) -> str:
    lines = ["# result comparison", ""]
    if not cmp.deltas:
        lines.append("no matching points.")
        return "\n".join(lines) + "\n"
    lines.append(f"matched points: {len(cmp.deltas)}")
    lines.append(
        f"ratio range (after/before): {cmp.min_ratio:.3f} .. {cmp.max_ratio:.3f}"
    )
    lines.append("")
    lines.append("| figure | points | min | median | max |")
    lines.append("|---|---|---|---|---|")
    for fig, s in cmp.per_figure().items():
        lines.append(
            f"| {fig} | {int(s['points'])} | {s['min']:.3f} | {s['median']:.3f} "
            f"| {s['max']:.3f} |"
        )
    lines.append("")
    lines.append("largest changes:")
    for d in cmp.worst(5):
        fig, series, mode, kind, n, x = d.key
        lines.append(
            f"- {fig}/{series} ({kind}, {n} clients, x={x:g}): "
            f"{d.before:.3f}s -> {d.after:.3f}s ({d.ratio:.2f}x)"
        )
    if cmp.only_before:
        lines.append(f"\npoints only in before: {len(cmp.only_before)}")
    if cmp.only_after:
        lines.append(f"points only in after: {len(cmp.only_after)}")
    return "\n".join(lines) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 2:
        print("usage: python -m repro.experiments.compare BEFORE.csv AFTER.csv")
        return 2
    print(format_comparison(compare_csv(argv[0], argv[1])))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
