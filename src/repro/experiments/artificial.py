"""The artificial benchmark: Figures 9-12 (Section 4.2).

Four figures, same machinery: sweep the number of accesses per client at
fixed aggregate volume for several client counts, and time each
noncontiguous method.

* Figure 9 — 1-D cyclic reads (multiple vs data sieving vs list)
* Figure 10 — 1-D cyclic writes (multiple vs list; the paper skips data
  sieving writes here because of the serialization requirement)
* Figure 11 — block-block reads (all three)
* Figure 12 — block-block writes (multiple vs list)
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..config import ClusterConfig
from ..sweep import PointSpec, run_sweep
from .harness import DataPoint
from .presets import SCALED, Scale
from .report import Check, FigureResult

__all__ = ["figure9", "figure10", "figure11", "figure12", "build_specs"]

_READ_METHODS = ("multiple", "datasieve", "list")
_WRITE_METHODS = ("multiple", "list")

#: figure number -> (figure label, pattern recipe, methods, direction,
#: which Scale client list drives the sweep).  One row per artificial
#: figure so spec construction has a single source of truth shared by
#: the drivers and the service job builders.
FIGURE_RECIPES = {
    "9": ("fig09", "one_dim_cyclic", _READ_METHODS, "read", "cyclic_clients"),
    "10": ("fig10", "one_dim_cyclic", _WRITE_METHODS, "write", "cyclic_clients"),
    "11": ("fig11", "block_block", _READ_METHODS, "read", "blockblock_clients"),
    "12": ("fig12", "block_block", _WRITE_METHODS, "write", "blockblock_clients"),
}


def build_specs(
    figure: str,
    scale: Scale,
    mode: str,
    clients: Optional[Sequence[int]] = None,
    accesses: Optional[Sequence[int]] = None,
    faults=None,
) -> List[PointSpec]:
    """The sweep specs of one artificial figure (9/10/11/12) — exactly
    the points the figure driver runs, importable without running them
    (the service's ``figure`` jobs are built from this)."""
    label, pattern_name, methods, kind, client_attr = FIGURE_RECIPES[figure]
    clients = tuple(clients or getattr(scale, client_attr))
    accesses = tuple(accesses or scale.accesses_sweep)
    specs: List[PointSpec] = []
    for n_clients in clients:
        cfg = ClusterConfig.chiba_city(n_clients=n_clients)
        if faults is not None and mode != "model":
            # Fault/straggler injection is a DES concept; the analytic
            # model has no notion of time-varying degradation.
            cfg = cfg.with_(faults=faults)
        for acc in accesses:
            for method in methods:
                specs.append(
                    PointSpec(
                        figure=label,
                        pattern=pattern_name,
                        pattern_args=(scale.artificial_total, n_clients, acc),
                        method=method,
                        kind=kind,
                        mode=mode,
                        cfg=cfg,
                        x=acc,
                    )
                )
    return specs


def _run_sweep(
    figure: str,
    scale: Scale,
    mode: str,
    clients: Optional[Sequence[int]],
    accesses: Optional[Sequence[int]],
    obs=None,
    faults=None,
    jobs: int = 1,
    cache=None,
) -> Tuple[List[DataPoint], object]:
    specs = build_specs(
        figure, scale, mode, clients=clients, accesses=accesses, faults=faults
    )
    label = FIGURE_RECIPES[figure][0]
    return run_sweep(specs, jobs=jobs, cache=cache, obs=obs, label=label)


def _monotone_check(result_points, series, n_clients, label) -> Check:
    pts = sorted(
        (p for p in result_points if p.series == series and p.n_clients == n_clients),
        key=lambda p: p.x,
    )
    ys = [p.elapsed for p in pts]
    ok = all(b >= a * 0.95 for a, b in zip(ys, ys[1:]))
    return Check(
        f"{label}: {series} time grows with the number of accesses "
        f"({n_clients} clients)",
        ok,
        detail=" -> ".join(f"{y:.1f}" for y in ys),
    )


def _flat_check(result_points, series, n_clients, label, tolerance=1.5) -> Check:
    ys = [
        p.elapsed
        for p in result_points
        if p.series == series and p.n_clients == n_clients
    ]
    ok = bool(ys) and max(ys) <= tolerance * min(ys)
    return Check(
        f"{label}: {series} time is roughly constant in the number of "
        f"accesses ({n_clients} clients)",
        ok,
        detail=f"spread {min(ys):.1f}..{max(ys):.1f}" if ys else "no data",
    )


def _gap_check(result_points, slow, fast, n_clients, min_ratio, label) -> Check:
    def at_max(series):
        pts = [
            p
            for p in result_points
            if p.series == series and p.n_clients == n_clients
        ]
        return max(pts, key=lambda p: p.x).elapsed

    ratio = at_max(slow) / at_max(fast)
    return Check(
        f"{label}: {slow} at least {min_ratio}x slower than {fast} at the "
        f"largest access count ({n_clients} clients)",
        ratio >= min_ratio,
        detail=f"ratio {ratio:.1f}x",
    )


def figure9(
    scale: Scale = SCALED,
    mode: str = "model",
    clients: Optional[Sequence[int]] = None,
    accesses: Optional[Sequence[int]] = None,
    obs=None,
    faults=None,
    jobs: int = 1,
    cache=None,
) -> FigureResult:
    """One-dimensional cyclic read results (paper Figure 9)."""
    clients = tuple(clients or scale.cyclic_clients)
    accesses = tuple(accesses or scale.accesses_sweep)
    points, stats = _run_sweep(
        "9", scale, mode, clients, accesses, obs=obs, faults=faults, jobs=jobs, cache=cache
    )
    checks: List[Check] = []
    for n in clients:
        checks.append(_monotone_check(points, "multiple", n, "fig09"))
        checks.append(_flat_check(points, "datasieve", n, "fig09"))
        checks.append(_gap_check(points, "multiple", "list", n, 4.0, "fig09"))
    # "the time nearly doubles with data sieving I/O when the clients double"
    if 8 in clients and 16 in clients:
        d8 = max(p.elapsed for p in points if p.series == "datasieve" and p.n_clients == 8)
        d16 = max(p.elapsed for p in points if p.series == "datasieve" and p.n_clients == 16)
        checks.append(
            Check(
                "fig09: data sieving time roughly doubles from 8 to 16 clients",
                1.4 <= d16 / d8 <= 3.0,
                detail=f"ratio {d16 / d8:.2f}",
            )
        )
    return FigureResult(
        "fig09",
        f"1-D cyclic reads, {scale.name} scale ({mode})",
        points,
        checks,
        sweep_stats=stats,
    )


def figure10(
    scale: Scale = SCALED,
    mode: str = "model",
    clients: Optional[Sequence[int]] = None,
    accesses: Optional[Sequence[int]] = None,
    obs=None,
    faults=None,
    jobs: int = 1,
    cache=None,
) -> FigureResult:
    """One-dimensional cyclic write results (paper Figure 10)."""
    clients = tuple(clients or scale.cyclic_clients)
    accesses = tuple(accesses or scale.accesses_sweep)
    points, stats = _run_sweep(
        "10", scale, mode, clients, accesses, obs=obs, faults=faults, jobs=jobs, cache=cache
    )
    checks: List[Check] = []
    for n in clients:
        checks.append(_monotone_check(points, "multiple", n, "fig10"))
        checks.append(_monotone_check(points, "list", n, "fig10"))
        # "a performance gap of nearly two orders of magnitude"
        checks.append(_gap_check(points, "multiple", "list", n, 20.0, "fig10"))
    return FigureResult(
        "fig10",
        f"1-D cyclic writes, {scale.name} scale ({mode})",
        points,
        checks,
        sweep_stats=stats,
    )


def figure11(
    scale: Scale = SCALED,
    mode: str = "model",
    clients: Optional[Sequence[int]] = None,
    accesses: Optional[Sequence[int]] = None,
    obs=None,
    faults=None,
    jobs: int = 1,
    cache=None,
) -> FigureResult:
    """Block-block read results (paper Figure 11)."""
    clients = tuple(clients or scale.blockblock_clients)
    accesses = tuple(accesses or scale.accesses_sweep)
    points, stats = _run_sweep(
        "11", scale, mode, clients, accesses, obs=obs, faults=faults, jobs=jobs, cache=cache
    )
    checks: List[Check] = []
    for n in clients:
        checks.append(_monotone_check(points, "multiple", n, "fig11"))
        checks.append(_flat_check(points, "datasieve", n, "fig11"))
        checks.append(_gap_check(points, "multiple", "list", n, 3.0, "fig11"))
        # list I/O cost grows as accesses shrink toward ~150 B (the upturn)
        pts = sorted(
            (p for p in points if p.series == "list" and p.n_clients == n),
            key=lambda p: p.x,
        )
        if len(pts) >= 2 and pts[-1].logical_requests > pts[0].logical_requests:
            # Only meaningful when the sweep actually changes fragmentation
            # (tiny smoke geometries can collapse to one feasible grid).
            checks.append(
                Check(
                    f"fig11: list I/O rises with access count ({n} clients)",
                    pts[-1].elapsed > pts[0].elapsed,
                    detail=f"{pts[0].elapsed:.1f} -> {pts[-1].elapsed:.1f}",
                )
            )
    return FigureResult(
        "fig11",
        f"block-block reads, {scale.name} scale ({mode})",
        points,
        checks,
        sweep_stats=stats,
    )


def figure12(
    scale: Scale = SCALED,
    mode: str = "model",
    clients: Optional[Sequence[int]] = None,
    accesses: Optional[Sequence[int]] = None,
    obs=None,
    faults=None,
    jobs: int = 1,
    cache=None,
) -> FigureResult:
    """Block-block write results (paper Figure 12)."""
    clients = tuple(clients or scale.blockblock_clients)
    accesses = tuple(accesses or scale.accesses_sweep)
    points, stats = _run_sweep(
        "12", scale, mode, clients, accesses, obs=obs, faults=faults, jobs=jobs, cache=cache
    )
    checks: List[Check] = []
    for n in clients:
        checks.append(_monotone_check(points, "multiple", n, "fig12"))
        checks.append(_gap_check(points, "multiple", "list", n, 20.0, "fig12"))
    return FigureResult(
        "fig12",
        f"block-block writes, {scale.name} scale ({mode})",
        points,
        checks,
        sweep_stats=stats,
    )
