"""Experiment scale presets.

Three scales, same topology and cost model throughout:

* ``paper`` — the exact parameter grids of the evaluation section (1 GiB
  aggregate, up to 10^6 accesses, full FLASH mesh).  Run through the
  analytic model: request counts are exact, time is the model's bound
  analysis.
* ``scaled`` — 1/64 aggregate volume with access counts reduced so the
  *shape* of every curve survives; small enough for the discrete-event
  simulator in seconds per point.
* ``smoke`` — minimal geometry for unit tests and CI.

EXPERIMENTS.md records the paper-scale model results next to the scaled
DES results so the two can be compared point by point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..patterns import FlashConfig, TiledConfig
from ..units import GiB, MiB

__all__ = ["Scale", "SCALES", "PAPER", "SCALED", "SMOKE"]


@dataclass(frozen=True)
class Scale:
    """One consistent set of benchmark parameters."""

    name: str
    #: Aggregate volume for the artificial benchmark (paper: 1 GiB).
    artificial_total: int
    #: "Number of accesses" sweep, per client (paper x-axis: 0 .. 10^6).
    accesses_sweep: Tuple[int, ...]
    #: Client counts for the 1-D cyclic figures (paper: 8, 16, 32).
    cyclic_clients: Tuple[int, ...]
    #: Client counts for the block-block figures (paper: 4, 9, 16).
    blockblock_clients: Tuple[int, ...]
    #: FLASH client sweep (paper: 2..32) and mesh.
    flash_clients: Tuple[int, ...]
    flash: FlashConfig
    #: Tiled visualization geometry (paper: 3x2 x 1024x768x24bpp).
    tiled: TiledConfig
    #: Whether the discrete-event simulator is expected to run this scale.
    des_friendly: bool


PAPER = Scale(
    name="paper",
    artificial_total=1 * GiB,
    accesses_sweep=(25_000, 50_000, 100_000, 200_000, 400_000, 800_000),
    cyclic_clients=(8, 16, 32),
    blockblock_clients=(4, 9, 16),
    flash_clients=(2, 4, 8, 16, 32),
    flash=FlashConfig(),
    tiled=TiledConfig(),
    des_friendly=False,
)

SCALED = Scale(
    name="scaled",
    artificial_total=16 * MiB,
    accesses_sweep=(512, 1024, 2048, 4096, 8192),
    cyclic_clients=(8, 16, 32),
    blockblock_clients=(4, 9, 16),
    flash_clients=(2, 4, 8),
    flash=FlashConfig(n_blocks=8, nxb=4, nyb=4, nzb=4, n_vars=24, n_guard=2),
    tiled=TiledConfig(),  # 10 MB is already simulator-friendly
    des_friendly=True,
)

SMOKE = Scale(
    name="smoke",
    artificial_total=1 * MiB,
    accesses_sweep=(64, 256),
    cyclic_clients=(4,),
    blockblock_clients=(4,),
    flash_clients=(2,),
    flash=FlashConfig(n_blocks=2, nxb=2, nyb=2, nzb=2, n_vars=4, n_guard=1),
    tiled=TiledConfig(tiles_x=3, tiles_y=2, tile_width=64, tile_height=48, overlap_x=16, overlap_y=8),
    des_friendly=True,
)

SCALES: Dict[str, Scale] = {s.name: s for s in (PAPER, SCALED, SMOKE)}
