"""Command-line entry point: regenerate any figure of the paper.

::

    pvfs-sim --figure 9 --scale paper --mode model
    pvfs-sim --figure 15 --scale scaled --mode des --csv out.csv
    pvfs-sim --all --scale scaled --jobs 4
    pvfs-sim --figure 9 --scale smoke --mode des --trace-out t.json --report
    pvfs-sim obs t.json

``model`` mode evaluates the analytic bound model (fast, any scale);
``des`` mode runs the discrete-event simulator (exact event accounting,
use ``scaled``/``smoke``).

Sweeps run on ``repro.sweep``: ``--jobs N`` fans a figure's points
across N worker processes (results bit-identical to serial), and a
content-hashed result cache serves unchanged points from disk
(``--cache-dir PATH`` to relocate, ``--no-cache`` to bypass) — see
``docs/performance.md``.

Robustness (DES mode only): ``--straggler IDX:SCALE`` degrades one I/O
daemon for a whole figure run, and the ``chaos`` subcommand replays the
paper's benchmarks under injected faults (daemon crash + restart, disk
stalls, flaky networking) with client timeouts and retries — see
``docs/faults.md``::

    pvfs-sim chaos --scenario crash --benchmark artificial --scale smoke
    pvfs-sim --figure 9 --scale smoke --mode des --straggler 0:8

Benchmarking: the ``bench`` subcommand runs the deterministic
regression suite and gates on a committed baseline — see
``docs/benchmarking.md``::

    pvfs-sim bench run --scale smoke --out BENCH_ci.json
    pvfs-sim bench compare benchmarks/baseline_smoke.json BENCH_ci.json

Service mode: the ``serve`` subcommand runs a long-lived HTTP/JSON
daemon fronting the sweep engine, and ``submit``/``status``/``wait``/
``fetch``/``jobs`` are the thin client — see ``docs/service.md``::

    pvfs-sim serve --port 8642 &
    pvfs-sim submit figure 9 --scale smoke --mode des --wait

Observability (DES mode only): ``--trace-out FILE.json`` captures every
simulated run and writes the longest one as a Perfetto-loadable trace
(open it at ``ui.perfetto.dev``); ``--report`` prints the bottleneck
attribution for that run plus a per-run verdict overview.  The ``obs``
subcommand summarizes a previously saved trace file.  See
``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from .artificial import figure9, figure10, figure11, figure12
from .collective import figure18
from .flashio import figure15
from .presets import SCALES
from .report import FigureResult, points_to_csv
from .tiledvis import figure17

__all__ = ["main", "FIGURES", "SUBCOMMANDS"]

#: 9-17 are the paper's results figures; 18 is this repository's extension
#: experiment (two-phase collective I/O), DES-only.
FIGURES: Dict[str, Callable] = {
    "9": figure9,
    "10": figure10,
    "11": figure11,
    "12": figure12,
    "15": figure15,
    "17": figure17,
    "18": figure18,
}


#: Every subcommand main() dispatches before argparse sees the argv.
#: ``pvfs-sim --help`` prints this table so the top-level help can never
#: drift out of sync with the dispatcher again (tests pin the two).
SUBCOMMANDS: Dict[str, str] = {
    "obs": "summarize a saved trace or metrics file",
    "chaos": "run benchmarks under injected faults (docs/faults.md)",
    "bench": "deterministic regression suite: run|compare|list (docs/benchmarking.md)",
    "profile": "kernel + host profiling of the suite (docs/performance.md)",
    "serve": "run the simulation service daemon (docs/service.md)",
    "submit": "submit a figure/chaos/bench/spec-file job to the daemon",
    "status": "one service job's state and progress",
    "wait": "block until a service job finishes",
    "fetch": "download a finished service job's points",
    "jobs": "list jobs on the daemon",
}

_SERVICE_COMMANDS = ("serve", "submit", "status", "wait", "fetch", "jobs")


def _subcommand_epilog() -> str:
    width = max(len(name) for name in SUBCOMMANDS)
    lines = ["subcommands (run 'pvfs-sim CMD --help' for each):"]
    for name, text in SUBCOMMANDS.items():
        lines.append(f"  {name:<{width}}  {text}")
    return "\n".join(lines)


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="pvfs-sim",
        description="Reproduce 'Noncontiguous I/O through PVFS' (CLUSTER 2002)",
        epilog=_subcommand_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    g = p.add_mutually_exclusive_group(required=True)
    g.add_argument("--figure", choices=sorted(FIGURES, key=int), help="figure number")
    g.add_argument("--all", action="store_true", help="run every figure")
    p.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="scaled",
        help="parameter scale (default: scaled)",
    )
    p.add_argument(
        "--mode",
        choices=("model", "des"),
        default=None,
        help="engine (default: model for paper scale, des otherwise)",
    )
    p.add_argument("--csv", metavar="PATH", help="write raw points as CSV")
    p.add_argument(
        "--plot",
        action="store_true",
        help="render ASCII charts of each figure after its table",
    )
    p.add_argument(
        "--trace-out",
        metavar="FILE.json",
        help="write a Perfetto trace of the longest simulated run "
        "(DES mode only; open at ui.perfetto.dev)",
    )
    p.add_argument(
        "--report",
        action="store_true",
        help="print bottleneck attribution for the longest simulated run "
        "(DES mode only)",
    )
    p.add_argument(
        "--metrics-out",
        metavar="FILE.jsonl",
        help="export per-figure metrics (counters, histograms) as JSONL; "
        "summarize with 'pvfs-sim obs FILE.jsonl'",
    )
    p.add_argument(
        "--straggler",
        action="append",
        metavar="IDX:SCALE",
        help="run with I/O daemon IDX serving SCALE times slower "
        "(repeatable; DES mode only; e.g. --straggler 0:8)",
    )
    p.add_argument(
        "--cb-buffer",
        type=int,
        default=None,
        metavar="BYTES",
        help="collective buffer size for two-phase I/O, in bytes "
        "(figure 18 only; default: unbounded, one exchange round)",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for each figure sweep "
        "(default: 1 = serial; results are bit-identical at any job count)",
    )
    p.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="result cache directory (default: $PVFS_SIM_CACHE or "
        "~/.cache/pvfs-sim); unchanged points are served from the cache",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every point, neither reading nor writing the cache",
    )
    return p


def _run_one(
    fig: str,
    scale_name: str,
    mode: str,
    obs=None,
    faults=None,
    jobs=1,
    cache=None,
    cb_buffer=None,
) -> FigureResult:
    scale = SCALES[scale_name]
    driver = FIGURES[fig]
    kwargs = {}
    if fig == "18" and cb_buffer is not None:
        kwargs["cb_buffer"] = cb_buffer
    return driver(
        scale=scale, mode=mode, obs=obs, faults=faults, jobs=jobs, cache=cache, **kwargs
    )


def main(argv: List[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "obs":
        # `pvfs-sim obs TRACE.json` — summarize a saved trace.
        from ..obs.cli import main as obs_main

        return obs_main(argv[1:])
    if argv and argv[0] == "chaos":
        # `pvfs-sim chaos ...` — benchmarks under injected faults.
        from .chaos import main as chaos_main

        return chaos_main(argv[1:])
    if argv and argv[0] == "bench":
        # `pvfs-sim bench run|compare|list` — the regression suite.
        from ..bench.cli import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "profile":
        # `pvfs-sim profile ...` — kernel + host profiling (SSR headline).
        from ..obs.profcli import main as profile_main

        return profile_main(argv[1:])
    if argv and argv[0] in _SERVICE_COMMANDS:
        # `pvfs-sim serve|submit|status|wait|fetch|jobs` — the service.
        from ..service.cli import main as service_main

        return service_main(argv)
    args = _parser().parse_args(argv)
    scale = SCALES[args.scale]
    mode = args.mode or ("model" if not scale.des_friendly else "des")
    if mode == "des" and not scale.des_friendly:
        print(
            f"error: the '{scale.name}' scale is too large for the simulator; "
            "use --mode model or --scale scaled",
            file=sys.stderr,
        )
        return 2
    obs = None
    if args.trace_out or args.report:
        if mode != "des":
            print(
                "error: --trace-out/--report need the discrete-event simulator; "
                "add --mode des (and a des-friendly --scale)",
                file=sys.stderr,
            )
            return 2
        if args.trace_out:
            # Fail before the (potentially long) sweep, not after it.
            try:
                with open(args.trace_out, "w"):
                    pass
            except OSError as exc:
                print(f"error: cannot write {args.trace_out}: {exc}", file=sys.stderr)
                return 2
        from ..obs import ObsSession

        obs = ObsSession()
    faults = None
    if args.straggler:
        if mode != "des":
            print(
                "error: --straggler needs the discrete-event simulator; "
                "add --mode des (and a des-friendly --scale)",
                file=sys.stderr,
            )
            return 2
        from ..errors import ConfigError
        from ..faults import FaultConfig, FaultPlan, parse_straggler_spec

        try:
            stragglers = tuple(parse_straggler_spec(s) for s in args.straggler)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        faults = FaultConfig(plan=FaultPlan(stragglers))
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    cache = None
    if not args.no_cache:
        from ..sweep import ResultCache, default_cache_dir

        cache = ResultCache(args.cache_dir or default_cache_dir())
    metrics = None
    if args.metrics_out:
        from ..obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
    figures = sorted(FIGURES, key=int) if args.all else [args.figure]
    all_points = []
    failed = False
    if args.cb_buffer is not None and args.cb_buffer < 1:
        print("error: --cb-buffer must be a positive byte count", file=sys.stderr)
        return 2
    for fig in figures:
        result = _run_one(
            fig,
            args.scale,
            mode,
            obs=obs,
            faults=faults,
            jobs=args.jobs,
            cache=cache,
            cb_buffer=args.cb_buffer,
        )
        if metrics is not None:
            metrics.record_sweep(f"fig{fig}", result.points)
        print(result.markdown())
        if result.sweep_stats is not None:
            print(result.sweep_stats.summary_line())
            print()
        if args.plot:
            from .plot import render_figure

            print(render_figure(result))
        all_points.extend(result.points)
        failed = failed or not result.all_passed
    if args.csv:
        with open(args.csv, "w") as fh:
            fh.write(points_to_csv(all_points))
        print(f"wrote {len(all_points)} points to {args.csv}")
    if metrics is not None:
        metrics.write_jsonl(args.metrics_out)
        print(
            f"wrote metrics for {len(figures)} figure(s) to {args.metrics_out} "
            f"(summarize with 'pvfs-sim obs {args.metrics_out}')"
        )
    if obs is not None and obs.runs:
        best = obs.best_run()
        if args.report:
            print(obs.report_markdown(best))
            print("### per-run verdicts\n")
            print(obs.runs_overview_markdown())
            if obs.sweeps:
                print()
                print(obs.sweeps_markdown())
        if args.trace_out:
            obs.export_trace(args.trace_out, best)
            print(
                f"wrote Perfetto trace of {best.label!r} to {args.trace_out} "
                "(open at ui.perfetto.dev)"
            )
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
