"""Chaos benchmarking: the paper's workloads under injected faults.

``pvfs-sim chaos`` replays a paper benchmark (artificial 1-D cyclic,
FLASH I/O, or tiled visualization — list I/O throughout, the paper's
fastest method) twice: once fault-free to measure the baseline, then under
a fault scenario whose windows are placed *relative to the baseline
elapsed time* so they always land mid-benchmark regardless of scale:

* ``crash`` — I/O daemon 0 dies a third of the way in and restarts
  ``--restart-after`` seconds later; clients ride it out with timeouts,
  exponential backoff, and idempotent replay.
* ``disk-stall`` — daemon 0's disk serves 20x slower for half the run.
* ``flaky-net`` — daemon 0's NIC drops 5% of frames for most of the run
  and loses link entirely for a sixth of it.
* ``straggler`` — daemon 0 serves everything 8x slower, start to end.

Each scenario reports goodput (useful bytes / faulty elapsed), the
slowdown against the baseline, client survival counters (retries,
timeouts), and — for crashes — the recovery time (crash until the
restarted daemon completed its first request).  Runs are seeded and
deterministic; see ``docs/faults.md``.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..config import ClusterConfig
from ..core import METHODS
from ..errors import ConfigError
from ..faults import (
    DiskStall,
    FaultConfig,
    FaultPlan,
    IodCrash,
    LinkDown,
    PacketLoss,
    RetryPolicy,
    Straggler,
)
from ..patterns import flash_io, one_dim_cyclic, tiled_visualization
from ..pvfs import Cluster
from .presets import SCALES, SMOKE, Scale

__all__ = ["SCENARIOS", "BENCHMARKS", "ChaosRow", "run_scenario", "main"]

SCENARIOS: Tuple[str, ...] = ("crash", "disk-stall", "flaky-net", "straggler")
BENCHMARKS: Tuple[str, ...] = ("artificial", "flash", "tiled")


@dataclass
class ChaosRow:
    """One scenario's outcome next to its fault-free baseline."""

    scenario: str
    benchmark: str
    baseline_s: float
    faulty_s: float
    useful_bytes: int
    retries: int
    timeouts: int
    crashes: int
    #: Crash-to-first-served-request time (seconds); None for non-crash
    #: scenarios or when the daemon never recovered within the run.
    recovery_s: Optional[float]
    #: (sim time, description) fault transitions, for --events.
    events: List[Tuple[float, str]]

    @property
    def slowdown(self) -> float:
        return self.faulty_s / self.baseline_s if self.baseline_s > 0 else 0.0

    @property
    def goodput_mb_s(self) -> float:
        return self.useful_bytes / self.faulty_s / 1e6 if self.faulty_s > 0 else 0.0


def _pattern(benchmark: str, scale: Scale):
    """(pattern, kind) for one benchmark at one scale."""
    if benchmark == "artificial":
        # The largest access count in the sweep: each client then issues
        # several sequential list requests, so fault windows land while
        # work is still in flight (a single-request run can finish a
        # daemon's share before the fault fires).
        n = min(scale.cyclic_clients)
        return one_dim_cyclic(scale.artificial_total, n, max(scale.accesses_sweep)), "write"
    if benchmark == "flash":
        return flash_io(min(scale.flash_clients), scale.flash), "write"
    if benchmark == "tiled":
        return tiled_visualization(scale.tiled), "read"
    raise ConfigError(f"unknown benchmark {benchmark!r}")


def _plan(scenario: str, baseline: float, restart_after: float) -> FaultPlan:
    """Fault schedule for one scenario, windows scaled to the baseline."""
    T = baseline
    if scenario == "crash":
        return FaultPlan((IodCrash(iod=0, at=T / 3, restart_after=restart_after),))
    if scenario == "disk-stall":
        return FaultPlan((DiskStall(iod=0, at=T / 4, duration=T / 2, factor=20.0),))
    if scenario == "flaky-net":
        return FaultPlan(
            (
                PacketLoss(node="iod0", at=T / 6, duration=2 * T / 3, rate=0.05),
                LinkDown(node="iod0", at=T / 3, duration=T / 6),
            )
        )
    if scenario == "straggler":
        return FaultPlan((Straggler(iod=0, scale=8.0),))
    raise ConfigError(f"unknown scenario {scenario!r}")


def _retry_policy(scenario: str, baseline: float) -> RetryPolicy:
    if scenario == "straggler":
        # A slow daemon still answers; no survival machinery needed.
        return RetryPolicy()
    # Generous enough that healthy requests never time out, tight enough
    # that a dead daemon is noticed well before the run ends; the backoff
    # cap keeps the post-restart reconnect sweep prompt.
    return RetryPolicy(
        request_timeout=max(0.1, baseline / 2),
        max_retries=24,
        backoff_base=0.02,
        backoff_factor=2.0,
        backoff_cap=0.5,
        jitter=0.1,
    )


def _run_once(pattern, kind: str, cfg: ClusterConfig, trace: bool = False):
    """One list-I/O run of the pattern; returns (cluster, WorkloadResult)."""
    cluster = Cluster.build(cfg, move_bytes=False, trace=trace)
    method = METHODS["list"]()

    def workload(client):
        access = pattern.rank(client.index)
        f = yield from client.open("/chaos", create=True)
        if kind == "read":
            yield from method.read(f, None, access.mem_regions, access.file_regions)
        else:
            yield from method.write(f, None, access.mem_regions, access.file_regions)
        yield from f.close()

    result = cluster.run_workload(workload)
    return cluster, result


def run_scenario(
    scenario: str,
    benchmark: str = "artificial",
    scale: Scale = SMOKE,
    restart_after: float = 2.0,
    trace: bool = False,
) -> ChaosRow:
    """Run one fault scenario against one benchmark; fully deterministic."""
    pattern, kind = _pattern(benchmark, scale)
    cfg = ClusterConfig.chiba_city(n_clients=pattern.n_ranks)
    _, base = _run_once(pattern, kind, cfg)
    faults = FaultConfig(
        plan=_plan(scenario, base.elapsed, restart_after),
        retry=_retry_policy(scenario, base.elapsed),
    )
    cluster, res = _run_once(pattern, kind, cfg.with_(faults=faults), trace=trace)
    counters = cluster.counters

    def total(suffix: str) -> int:
        return int(
            sum(
                v
                for k, v in counters.items()
                if k.startswith("client.") and k.endswith(suffix)
            )
        )

    injector = cluster.fault_injector
    recovery = None
    if injector is not None:
        times = [t for t in injector.recovery_times().values() if t is not None]
        recovery = max(times) if times else None
    return ChaosRow(
        scenario=scenario,
        benchmark=benchmark,
        baseline_s=base.elapsed,
        faulty_s=res.elapsed,
        useful_bytes=pattern.total_bytes,
        retries=total(".retries"),
        timeouts=total(".timeouts"),
        crashes=int(counters.get("faults.crashes", 0)),
        recovery_s=recovery,
        events=list(injector.events) if injector is not None else [],
    )


def rows_markdown(rows: List[ChaosRow]) -> str:
    lines = [
        "### chaos sweep",
        "",
        "| scenario | benchmark | baseline (s) | faulty (s) | slowdown "
        "| goodput (MB/s) | retries | timeouts | crashes | recovery (s) |",
        "|---|---|---|---|---|---|---|---|---|---|",
    ]
    for r in rows:
        rec = f"{r.recovery_s:.3f}" if r.recovery_s is not None else "-"
        lines.append(
            f"| {r.scenario} | {r.benchmark} | {r.baseline_s:.4f} "
            f"| {r.faulty_s:.4f} | {r.slowdown:.2f}x | {r.goodput_mb_s:.2f} "
            f"| {r.retries} | {r.timeouts} | {r.crashes} | {rec} |"
        )
    return "\n".join(lines) + "\n"


def rows_csv(rows: List[ChaosRow]) -> str:
    out = [
        "scenario,benchmark,baseline_s,faulty_s,slowdown,goodput_mb_s,"
        "retries,timeouts,crashes,recovery_s"
    ]
    for r in rows:
        rec = f"{r.recovery_s:.6f}" if r.recovery_s is not None else ""
        out.append(
            f"{r.scenario},{r.benchmark},{r.baseline_s:.6f},{r.faulty_s:.6f},"
            f"{r.slowdown:.4f},{r.goodput_mb_s:.4f},{r.retries},{r.timeouts},"
            f"{r.crashes},{rec}"
        )
    return "\n".join(out) + "\n"


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="pvfs-sim chaos",
        description="Run the paper's benchmarks under injected faults",
    )
    p.add_argument(
        "--scenario",
        choices=SCENARIOS + ("all",),
        default="all",
        help="fault scenario (default: all)",
    )
    p.add_argument(
        "--benchmark",
        choices=BENCHMARKS,
        default="artificial",
        help="workload to stress (default: artificial)",
    )
    p.add_argument(
        "--scale",
        choices=sorted(name for name, s in SCALES.items() if s.des_friendly),
        default="smoke",
        help="parameter scale (default: smoke; chaos always uses the DES)",
    )
    p.add_argument(
        "--restart-after",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="crash scenario: simulated seconds until the daemon restarts "
        "(default: 2.0)",
    )
    p.add_argument("--csv", metavar="PATH", help="write raw rows as CSV")
    p.add_argument(
        "--events", action="store_true", help="print each run's fault event log"
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the scenario sweep (default: 1 = serial)",
    )
    p.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="result cache directory (default: $PVFS_SIM_CACHE or "
        "~/.cache/pvfs-sim)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every scenario, neither reading nor writing the cache",
    )
    return p


def main(argv: Optional[List[str]] = None) -> int:
    from ..sweep import ChaosSpec, ResultCache, default_cache_dir, run_sweep

    args = _parser().parse_args(sys.argv[1:] if argv is None else list(argv))
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    scale = SCALES[args.scale]
    scenarios = SCENARIOS if args.scenario == "all" else (args.scenario,)
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    specs = [
        ChaosSpec(
            scenario=scenario,
            benchmark=args.benchmark,
            scale=scale,
            restart_after=args.restart_after,
        )
        for scenario in scenarios
    ]
    rows, stats = run_sweep(specs, jobs=args.jobs, cache=cache, label="chaos")
    if args.events:
        for row in rows:
            if not row.events:
                continue
            print(f"-- {row.scenario} events --")
            for t, what in row.events:
                print(f"[{t:12.6f}] {what}")
            print()
    print(rows_markdown(rows))
    print(stats.summary_line())
    if args.csv:
        with open(args.csv, "w") as fh:
            fh.write(rows_csv(rows))
        print(f"wrote {len(rows)} rows to {args.csv}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
