"""Chaos benchmarking: the paper's workloads under injected faults.

``pvfs-sim chaos`` replays a paper benchmark (artificial 1-D cyclic,
FLASH I/O, or tiled visualization — list I/O throughout, the paper's
fastest method) twice: once fault-free to measure the baseline, then under
a fault scenario whose windows are placed *relative to the baseline
elapsed time* so they always land mid-benchmark regardless of scale:

* ``crash`` — I/O daemon 0 dies a third of the way in and restarts
  ``--restart-after`` seconds later; clients ride it out with timeouts,
  exponential backoff, and idempotent replay.
* ``disk-stall`` — daemon 0's disk serves 20x slower for half the run.
* ``flaky-net`` — daemon 0's NIC drops 5% of frames for most of the run
  and loses link entirely for a sixth of it.
* ``straggler`` — daemon 0 serves everything 8x slower, start to end.
* ``failover-read`` — the replication scenario (``--replicas R``): client
  0 seeds a file with a known byte pattern, every client reads it back
  with bytes moving, and daemon 0 dies a third of the way into the read
  phase.  With ``R > 1`` the manager fences the dead daemon and clients
  fail over to replicas — the run completes with **zero data errors**
  and the row reports failover latency and degraded-window goodput; with
  ``R = 1`` the same scenario dies with ``RetryExhausted``, which is
  exactly the regression the replication layer exists to fix.

Each scenario reports goodput (useful bytes / faulty elapsed), the
slowdown against the baseline, client survival counters (retries,
timeouts), and — for crashes — the recovery time (crash until the
restarted daemon completed its first request).  Runs are seeded and
deterministic; see ``docs/faults.md``.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

import numpy as np

from ..config import ClusterConfig
from ..core import METHODS
from ..errors import ConfigError, FaultError
from ..faults import (
    DiskStall,
    FaultConfig,
    FaultPlan,
    IodCrash,
    LinkDown,
    PacketLoss,
    RetryPolicy,
    Straggler,
)
from ..patterns import flash_io, one_dim_cyclic, tiled_visualization
from ..pvfs import Cluster
from ..regions import build_flat_indices
from ..simulate import Event
from .presets import SCALES, SMOKE, Scale

__all__ = [
    "SCENARIOS",
    "BENCHMARKS",
    "ChaosRow",
    "run_scenario",
    "run_failover_scenario",
    "main",
]

SCENARIOS: Tuple[str, ...] = (
    "crash",
    "disk-stall",
    "flaky-net",
    "straggler",
    "failover-read",
)
BENCHMARKS: Tuple[str, ...] = ("artificial", "flash", "tiled")


@dataclass
class ChaosRow:
    """One scenario's outcome next to its fault-free baseline."""

    scenario: str
    benchmark: str
    baseline_s: float
    faulty_s: float
    useful_bytes: int
    retries: int
    timeouts: int
    crashes: int
    #: Crash-to-first-served-request time (seconds); None for non-crash
    #: scenarios or when the daemon never recovered within the run.
    recovery_s: Optional[float]
    #: (sim time, description) fault transitions, for --events.
    events: List[Tuple[float, str]]
    # -- replication (defaults keep old cached rows loadable) ----------
    #: Copies per stripe the run was configured with (1 = no replication).
    replicas: int = 1
    #: Write acknowledgement policy ("primary" | "quorum").
    ack: str = "primary"
    #: Byte mismatches against the analytic oracle (failover-read only;
    #: None for timing-only scenarios that move no bytes).
    data_errors: Optional[int] = None
    #: Requests that re-routed to a replica after their primary failed.
    failovers: int = 0
    #: Requests whose per-daemon retry budget ran out (each one triggers a
    #: ``report_failure`` → fence → failover under replication).
    retries_exhausted: int = 0
    #: Worst failover latency: first failure noticed → request completed.
    failover_s: Optional[float] = None
    #: Degraded window: first fence until the daemon rejoined (or run end).
    degraded_s: Optional[float] = None
    #: Goodput sustained inside the degraded window (MB/s).
    degraded_goodput_mb_s: Optional[float] = None
    #: Resync passes completed by restarted daemons, and bytes they copied
    #: from live replicas before rejoining.
    resyncs: int = 0
    resync_bytes: int = 0
    # -- deterministic accounting (lets the bench suite fold chaos rows
    # -- into its zero-tolerance SimMetrics) ---------------------------
    moved_bytes: int = 0
    logical_requests: int = 0
    server_messages: int = 0
    sim_events: int = 0

    @property
    def elapsed(self) -> float:
        """Alias for :attr:`faulty_s` (the bench suite's SimMetrics
        aggregation reads ``elapsed`` off every sweep result)."""
        return self.faulty_s

    @property
    def slowdown(self) -> float:
        return self.faulty_s / self.baseline_s if self.baseline_s > 0 else 0.0

    @property
    def goodput_mb_s(self) -> float:
        return self.useful_bytes / self.faulty_s / 1e6 if self.faulty_s > 0 else 0.0


def _pattern(benchmark: str, scale: Scale):
    """(pattern, kind) for one benchmark at one scale."""
    if benchmark == "artificial":
        # The largest access count in the sweep: each client then issues
        # several sequential list requests, so fault windows land while
        # work is still in flight (a single-request run can finish a
        # daemon's share before the fault fires).
        n = min(scale.cyclic_clients)
        return one_dim_cyclic(scale.artificial_total, n, max(scale.accesses_sweep)), "write"
    if benchmark == "flash":
        return flash_io(min(scale.flash_clients), scale.flash), "write"
    if benchmark == "tiled":
        return tiled_visualization(scale.tiled), "read"
    raise ConfigError(f"unknown benchmark {benchmark!r}")


def _plan(scenario: str, baseline: float, restart_after: float) -> FaultPlan:
    """Fault schedule for one scenario, windows scaled to the baseline."""
    T = baseline
    if scenario == "crash":
        return FaultPlan((IodCrash(iod=0, at=T / 3, restart_after=restart_after),))
    if scenario == "disk-stall":
        return FaultPlan((DiskStall(iod=0, at=T / 4, duration=T / 2, factor=20.0),))
    if scenario == "flaky-net":
        return FaultPlan(
            (
                PacketLoss(node="iod0", at=T / 6, duration=2 * T / 3, rate=0.05),
                LinkDown(node="iod0", at=T / 3, duration=T / 6),
            )
        )
    if scenario == "straggler":
        return FaultPlan((Straggler(iod=0, scale=8.0),))
    raise ConfigError(f"unknown scenario {scenario!r}")


def _retry_policy(scenario: str, baseline: float) -> RetryPolicy:
    if scenario == "straggler":
        # A slow daemon still answers; no survival machinery needed.
        return RetryPolicy()
    # Generous enough that healthy requests never time out, tight enough
    # that a dead daemon is noticed well before the run ends; the backoff
    # cap keeps the post-restart reconnect sweep prompt.
    return RetryPolicy(
        request_timeout=max(0.1, baseline / 2),
        max_retries=24,
        backoff_base=0.02,
        backoff_factor=2.0,
        backoff_cap=0.5,
        jitter=0.1,
    )


def _oracle_stream(n: int) -> np.ndarray:
    """The analytic seed pattern: byte ``i`` is ``(i * 131 + 17) % 256``."""
    return ((np.arange(n, dtype=np.int64) * 131 + 17) % 256).astype(np.uint8)


def _oracle_bytes(regions) -> np.ndarray:
    """Expected read-back stream for ``regions`` of an oracle-seeded file."""
    idx = build_flat_indices(regions.offsets, regions.lengths)
    return ((idx * 131 + 17) % 256).astype(np.uint8)


def _run_once(pattern, kind: str, cfg: ClusterConfig, trace: bool = False):
    """One list-I/O run of the pattern; returns (cluster, WorkloadResult)."""
    cluster = Cluster.build(cfg, move_bytes=False, trace=trace)
    method = METHODS["list"]()

    def workload(client):
        access = pattern.rank(client.index)
        f = yield from client.open("/chaos", create=True)
        if kind == "read":
            yield from method.read(f, None, access.mem_regions, access.file_regions)
        else:
            yield from method.write(f, None, access.mem_regions, access.file_regions)
        yield from f.close()

    result = cluster.run_workload(workload)
    return cluster, result


def _totals(counters):
    """(client_total, iod_total) counter summers for one finished run."""

    def client_total(suffix: str) -> int:
        return int(
            sum(
                v
                for k, v in counters.items()
                if k.startswith("client.") and k.endswith(suffix)
            )
        )

    def iod_total(suffix: str) -> int:
        return int(
            sum(
                v
                for k, v in counters.items()
                if k.startswith("iod.") and k.endswith(suffix)
            )
        )

    return client_total, iod_total


def _replicated_cfg(pattern, replicas: int, ack: str) -> ClusterConfig:
    cfg = ClusterConfig.chiba_city(n_clients=pattern.n_ranks)
    return cfg.with_(
        stripe=replace(cfg.stripe, replicas=replicas), ack_policy=ack
    )


def run_scenario(
    scenario: str,
    benchmark: str = "artificial",
    scale: Scale = SMOKE,
    restart_after: float = 2.0,
    replicas: int = 1,
    ack: str = "primary",
    trace: bool = False,
) -> ChaosRow:
    """Run one fault scenario against one benchmark; fully deterministic."""
    if scenario == "failover-read":
        return run_failover_scenario(
            benchmark=benchmark,
            scale=scale,
            restart_after=restart_after,
            replicas=replicas,
            ack=ack,
            trace=trace,
        )
    pattern, kind = _pattern(benchmark, scale)
    cfg = _replicated_cfg(pattern, replicas, ack)
    _, base = _run_once(pattern, kind, cfg)
    faults = FaultConfig(
        plan=_plan(scenario, base.elapsed, restart_after),
        retry=_retry_policy(scenario, base.elapsed),
    )
    cluster, res = _run_once(pattern, kind, cfg.with_(faults=faults), trace=trace)
    counters = cluster.counters
    total, iod_total = _totals(counters)

    injector = cluster.fault_injector
    recovery = None
    if injector is not None:
        times = [t for t in injector.recovery_times().values() if t is not None]
        recovery = max(times) if times else None
    events = sorted(
        (list(injector.events) if injector is not None else [])
        + list(cluster.replication.events),
        key=lambda e: e[0],
    )
    return ChaosRow(
        scenario=scenario,
        benchmark=benchmark,
        baseline_s=base.elapsed,
        faulty_s=res.elapsed,
        useful_bytes=pattern.total_bytes,
        retries=total(".retries"),
        timeouts=total(".timeouts"),
        crashes=int(counters.get("faults.crashes", 0)),
        recovery_s=recovery,
        events=events,
        replicas=replicas,
        ack=ack,
        failovers=total(".failovers"),
        retries_exhausted=total(".retries_exhausted"),
        resyncs=iod_total(".resyncs"),
        resync_bytes=iod_total(".resync_bytes"),
        moved_bytes=total(".read_bytes") + total(".write_bytes"),
        logical_requests=total(".logical_requests"),
        server_messages=total(".server_messages"),
        sim_events=cluster.sim.events_scheduled,
    )


def _run_failover(pattern, cfg: ClusterConfig, trace: bool = False):
    """One replicated read-back run with bytes moving.

    Client 0 seeds ``/failover`` with the analytic oracle pattern across
    the full extent every rank touches, releases a barrier, and then
    every client reads its own regions back and verifies each byte.
    Both phases live in ONE workload (``run_workload`` drains the event
    queue, so a separate prewrite run would let an absolute-time crash
    fire in the gap between phases instead of mid-read).  Returns
    ``(cluster, prewrite_s, read_s, data_errors)``.
    """
    cluster = Cluster.build(cfg, move_bytes=True, trace=trace)
    sim = cluster.sim
    extent = max(
        pattern.rank(i).file_regions.extent[1] for i in range(pattern.n_ranks)
    )
    seed_data = _oracle_stream(extent)
    cluster.replication.record_detail = True
    barrier = Event(sim)
    phase = {}
    errors = [0]

    def workload(client):
        if client.index == 0:
            f = yield from client.open("/failover", create=True)
            yield from f.write(0, seed_data)
            yield from f.close()
            phase["read_start"] = sim.now
            barrier.succeed(None)
        else:
            yield barrier
        access = pattern.rank(client.index)
        regions = access.file_regions.drop_empty()
        f = yield from client.open("/failover")
        out = yield from f.read_list(regions)
        yield from f.close()
        errors[0] += int(np.count_nonzero(out != _oracle_bytes(regions)))

    res = cluster.run_workload(workload)
    pre_s = phase["read_start"]
    return cluster, pre_s, res.elapsed - pre_s, errors[0]


def run_failover_scenario(
    benchmark: str = "artificial",
    scale: Scale = SMOKE,
    restart_after: float = 2.0,
    replicas: int = 2,
    ack: str = "primary",
    trace: bool = False,
) -> ChaosRow:
    """The replication headline: kill a daemon mid-read, finish anyway.

    Three runs: an inert probe times the phases, a fault-free run under
    the real retry policy gives the baseline, and the measured run
    crashes daemon 0 a third of the way into the read phase.  With
    ``replicas > 1`` every read completes from replicas (zero data
    errors) while the dead daemon is fenced, resyncs, and rejoins; with
    ``replicas = 1`` the run raises
    :class:`~repro.errors.RetryExhausted` — the guarded regression.
    """
    pattern, _kind = _pattern(benchmark, scale)
    cfg = _replicated_cfg(pattern, replicas, ack)
    # Probe run: inert retries, no faults — sizes the retry policy.
    _, pre0, read0, probe_errors = _run_failover(pattern, cfg)
    if probe_errors:
        raise ConfigError(
            f"fault-free probe read back {probe_errors} wrong byte(s); the "
            "replication layer corrupted data with no fault injected"
        )
    # A dead daemon refuses instantly and a crash fails every in-flight
    # response on the spot, so failure detection does not ride on the
    # timeout — exhaustion is driven by the backoff schedule (~0.2 s),
    # far inside the restart window.  The timeout itself stays generous
    # so the large seed write never times out spuriously.
    policy = RetryPolicy(
        request_timeout=max(0.5, 2 * pre0, 2 * read0),
        max_retries=3,
        backoff_base=0.02,
        backoff_factor=2.0,
        backoff_cap=0.1,
        jitter=0.1,
    )
    base_cfg = cfg.with_(faults=FaultConfig(retry=policy))
    _, pre_s, base_read_s, base_errors = _run_failover(pattern, base_cfg)
    if base_errors:
        raise ConfigError(
            f"fault-free baseline read back {base_errors} wrong byte(s)"
        )
    plan = FaultPlan(
        (IodCrash(iod=0, at=pre_s + base_read_s / 3, restart_after=restart_after),)
    )
    faulty_cfg = cfg.with_(faults=FaultConfig(plan=plan, retry=policy))
    cluster, faulty_pre_s, read_s, errors = _run_failover(
        pattern, faulty_cfg, trace=trace
    )
    counters = cluster.counters
    total, iod_total = _totals(counters)
    repl = cluster.replication
    injector = cluster.fault_injector
    recovery = None
    if injector is not None:
        times = [t for t in injector.recovery_times().values() if t is not None]
        recovery = max(times) if times else None
    run_end = faulty_pre_s + read_s
    degraded_s = None
    degraded_goodput = None
    if repl.fences:
        t0 = repl.fences[0][0]
        # Clip to the workload's end: once every read has completed, the
        # cluster is idle and the window no longer measures goodput.
        t1 = min(repl.unfences[0][0], run_end) if repl.unfences else run_end
        degraded_s = max(t1 - t0, 0.0)
        window_bytes = sum(b for t, b in repl.goodput_log if t0 <= t <= t1)
        degraded_goodput = (
            window_bytes / degraded_s / 1e6 if degraded_s > 0 else 0.0
        )
    failover_s = (
        max(tc - td for td, tc, _p, _c in repl.failover_log)
        if repl.failover_log
        else None
    )
    events = sorted(
        (list(injector.events) if injector is not None else [])
        + list(repl.events),
        key=lambda e: e[0],
    )
    return ChaosRow(
        scenario="failover-read",
        benchmark=benchmark,
        baseline_s=base_read_s,
        faulty_s=read_s,
        useful_bytes=pattern.total_bytes,
        retries=total(".retries"),
        timeouts=total(".timeouts"),
        crashes=int(counters.get("faults.crashes", 0)),
        recovery_s=recovery,
        events=events,
        replicas=replicas,
        ack=ack,
        data_errors=errors,
        failovers=total(".failovers"),
        retries_exhausted=total(".retries_exhausted"),
        failover_s=failover_s,
        degraded_s=degraded_s,
        degraded_goodput_mb_s=degraded_goodput,
        resyncs=iod_total(".resyncs"),
        resync_bytes=iod_total(".resync_bytes"),
        moved_bytes=total(".read_bytes") + total(".write_bytes"),
        logical_requests=total(".logical_requests"),
        server_messages=total(".server_messages"),
        sim_events=cluster.sim.events_scheduled,
    )


def rows_markdown(rows: List[ChaosRow]) -> str:
    lines = [
        "### chaos sweep",
        "",
        "| scenario | benchmark | baseline (s) | faulty (s) | slowdown "
        "| goodput (MB/s) | retries | timeouts | crashes | recovery (s) |",
        "|---|---|---|---|---|---|---|---|---|---|",
    ]
    for r in rows:
        rec = f"{r.recovery_s:.3f}" if r.recovery_s is not None else "-"
        lines.append(
            f"| {r.scenario} | {r.benchmark} | {r.baseline_s:.4f} "
            f"| {r.faulty_s:.4f} | {r.slowdown:.2f}x | {r.goodput_mb_s:.2f} "
            f"| {r.retries} | {r.timeouts} | {r.crashes} | {rec} |"
        )
    replicated = [r for r in rows if r.replicas > 1]
    if replicated:
        lines += [
            "",
            "### replication",
            "",
            "| scenario | R | ack | data errors | failovers | exhausted "
            "| failover (s) | degraded (s) | degraded goodput (MB/s) "
            "| resyncs | resync bytes |",
            "|---|---|---|---|---|---|---|---|---|---|---|",
        ]
        for r in replicated:

            def fmt(v, spec=".3f"):
                return format(v, spec) if v is not None else "-"

            errors = str(r.data_errors) if r.data_errors is not None else "-"
            lines.append(
                f"| {r.scenario} | {r.replicas} | {r.ack} | {errors} "
                f"| {r.failovers} | {r.retries_exhausted} "
                f"| {fmt(r.failover_s)} | {fmt(r.degraded_s)} "
                f"| {fmt(r.degraded_goodput_mb_s, '.2f')} "
                f"| {r.resyncs} | {r.resync_bytes} |"
            )
    return "\n".join(lines) + "\n"


def rows_csv(rows: List[ChaosRow]) -> str:
    out = [
        "scenario,benchmark,baseline_s,faulty_s,slowdown,goodput_mb_s,"
        "retries,timeouts,crashes,recovery_s,replicas,ack,data_errors,"
        "failovers,retries_exhausted,failover_s,degraded_s,"
        "degraded_goodput_mb_s,resyncs,resync_bytes"
    ]

    def opt(v, spec=".6f"):
        return format(v, spec) if v is not None else ""

    for r in rows:
        out.append(
            f"{r.scenario},{r.benchmark},{r.baseline_s:.6f},{r.faulty_s:.6f},"
            f"{r.slowdown:.4f},{r.goodput_mb_s:.4f},{r.retries},{r.timeouts},"
            f"{r.crashes},{opt(r.recovery_s)},{r.replicas},{r.ack},"
            f"{opt(r.data_errors, 'd')},{r.failovers},{r.retries_exhausted},"
            f"{opt(r.failover_s)},{opt(r.degraded_s)},"
            f"{opt(r.degraded_goodput_mb_s)},{r.resyncs},{r.resync_bytes}"
        )
    return "\n".join(out) + "\n"


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="pvfs-sim chaos",
        description="Run the paper's benchmarks under injected faults",
    )
    p.add_argument(
        "--scenario",
        choices=SCENARIOS + ("all",),
        default="all",
        help="fault scenario (default: all)",
    )
    p.add_argument(
        "--benchmark",
        choices=BENCHMARKS,
        default="artificial",
        help="workload to stress (default: artificial)",
    )
    p.add_argument(
        "--scale",
        choices=sorted(name for name, s in SCALES.items() if s.des_friendly),
        default="smoke",
        help="parameter scale (default: smoke; chaos always uses the DES)",
    )
    p.add_argument(
        "--restart-after",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="crash scenario: simulated seconds until the daemon restarts "
        "(default: 2.0)",
    )
    p.add_argument(
        "--replicas",
        type=int,
        default=1,
        metavar="R",
        help="copies per stripe (chain replication; default: 1 = the "
        "paper's unreplicated layout)",
    )
    p.add_argument(
        "--ack",
        choices=("primary", "quorum"),
        default="primary",
        help="replicated-write acknowledgement policy (default: primary)",
    )
    p.add_argument("--csv", metavar="PATH", help="write raw rows as CSV")
    p.add_argument(
        "--events", action="store_true", help="print each run's fault event log"
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the scenario sweep (default: 1 = serial)",
    )
    p.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="result cache directory (default: $PVFS_SIM_CACHE or "
        "~/.cache/pvfs-sim)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every scenario, neither reading nor writing the cache",
    )
    return p


def main(argv: Optional[List[str]] = None) -> int:
    from ..sweep import ChaosSpec, ResultCache, default_cache_dir, run_sweep

    args = _parser().parse_args(sys.argv[1:] if argv is None else list(argv))
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    scale = SCALES[args.scale]
    if args.scenario == "all":
        # failover-read is pointless without a replica to fail over to, so
        # "all" only includes it once --replicas asks for redundancy.
        scenarios = tuple(
            s for s in SCENARIOS if s != "failover-read" or args.replicas > 1
        )
    else:
        scenarios = (args.scenario,)
    if "failover-read" in scenarios and args.replicas < 2:
        print(
            "warning: failover-read with --replicas 1 has no replica to "
            "fail over to and will fail with RetryExhausted",
            file=sys.stderr,
        )
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    specs = [
        ChaosSpec(
            scenario=scenario,
            benchmark=args.benchmark,
            scale=scale,
            restart_after=args.restart_after,
            replicas=args.replicas,
            ack=args.ack,
        )
        for scenario in scenarios
    ]
    try:
        rows, stats = run_sweep(specs, jobs=args.jobs, cache=cache, label="chaos")
    except FaultError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.events:
        for row in rows:
            if not row.events:
                continue
            print(f"-- {row.scenario} events --")
            for t, what in row.events:
                print(f"[{t:12.6f}] {what}")
            print()
    print(rows_markdown(rows))
    print(stats.summary_line())
    if args.csv:
        with open(args.csv, "w") as fh:
            fh.write(rows_csv(rows))
        print(f"wrote {len(rows)} rows to {args.csv}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
