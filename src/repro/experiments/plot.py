"""Terminal (ASCII) rendering of figure series.

The paper's figures are line charts (time vs number of accesses, linear or
log-scale) and grouped bars (FLASH, tiled).  This module renders both as
plain text so ``pvfs-sim --plot`` and EXPERIMENTS.md can show curve shapes
without any plotting dependency.

The renderer is deliberately simple: a fixed character grid, one marker
per series, optional log-y — enough to see "linear vs flat vs two orders
apart" at a glance.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from .report import FigureResult

__all__ = ["ascii_chart", "ascii_bars", "render_figure"]

_MARKERS = "oxs*+#@%"


def _format_val(v: float) -> str:
    if v >= 1000:
        return f"{v:.3g}"
    if v >= 1:
        return f"{v:.1f}"
    return f"{v:.3f}"


def ascii_chart(
    series: Dict[str, List[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    log_y: bool = False,
    title: str = "",
    y_label: str = "seconds",
) -> str:
    """Render named (x, y) series on one character grid.

    Returns a multi-line string: title, chart rows with a y-axis scale,
    x-range footer, and a marker legend.
    """
    pts = [(x, y) for s in series.values() for x, y in s]
    if not pts:
        return f"{title}\n(no data)\n"
    xs = [p[0] for p in pts]
    ys = [max(p[1], 1e-12) for p in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if log_y:
        y_lo, y_hi = math.log10(y_lo), math.log10(max(y_hi, y_lo * 1.0001))
    if x_hi == x_lo:
        x_hi = x_lo + 1
    if y_hi == y_lo:
        y_hi = y_lo + 1
    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, marker: str) -> None:
        yy = math.log10(max(y, 1e-12)) if log_y else y
        col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((yy - y_lo) / (y_hi - y_lo) * (height - 1))
        r = height - 1 - row
        if grid[r][col] not in (" ", marker):
            grid[r][col] = "&"  # overlapping series
        else:
            grid[r][col] = marker

    legend = []
    for i, (name, data) in enumerate(series.items()):
        marker = _MARKERS[i % len(_MARKERS)]
        legend.append(f"{marker}={name}")
        for x, y in data:
            place(x, y, marker)

    lines = []
    if title:
        lines.append(title)
    top_label = (
        f"1e{y_hi:.1f}" if log_y else _format_val(y_hi)
    )
    bot_label = (
        f"1e{y_lo:.1f}" if log_y else _format_val(y_lo)
    )
    label_w = max(len(top_label), len(bot_label))
    for r, row in enumerate(grid):
        label = top_label if r == 0 else (bot_label if r == height - 1 else "")
        lines.append(f"{label:>{label_w}} |" + "".join(row))
    lines.append(" " * label_w + " +" + "-" * width)
    lines.append(
        f"{' ' * label_w}  x: {x_lo:g} .. {x_hi:g}    y: {y_label}"
        + ("  (log scale)" if log_y else "")
    )
    lines.append(" " * label_w + "  " + "   ".join(legend))
    return "\n".join(lines) + "\n"


def ascii_bars(
    values: Dict[str, float],
    width: int = 50,
    log: bool = False,
    title: str = "",
    unit: str = "s",
) -> str:
    """Horizontal bars, optionally log-scaled (the paper's Figure 15
    style)."""
    if not values:
        return f"{title}\n(no data)\n"
    label_w = max(len(k) for k in values)
    vmax = max(max(values.values()), 1e-12)
    positive = [v for v in values.values() if v > 0]
    vmin = min(positive) if positive else vmax
    # Anchor the log axis one decade below the smallest value (the paper's
    # log plots start below their smallest bar) so every bar is visible.
    lo = vmin / 10.0
    lines = [title] if title else []
    for name, v in values.items():
        if log and vmax > lo:
            frac = (math.log10(max(v, lo)) - math.log10(lo)) / (
                math.log10(vmax) - math.log10(lo)
            )
        else:
            frac = v / vmax
        bar = "#" * max(int(frac * width), 1 if v > 0 else 0)
        lines.append(f"{name:>{label_w}} | {bar} {_format_val(v)} {unit}")
    if log:
        lines.append(f"{'':>{label_w}}   (log scale)")
    return "\n".join(lines) + "\n"


def render_figure(result: FigureResult, log_y: Optional[bool] = None) -> str:
    """Render a FigureResult the way the paper presents it: one chart per
    client count for sweeps, bars for single-x figures."""
    out = [f"== {result.figure}: {result.title} ==", ""]
    groups = sorted({(p.n_clients, p.mode) for p in result.points})
    for n_clients, mode in groups:
        pts = [
            p for p in result.points if p.n_clients == n_clients and p.mode == mode
        ]
        xs = {p.x for p in pts}
        use_log = log_y if log_y is not None else (pts[0].kind == "write")
        if len(xs) == 1:
            values = {p.series: p.elapsed for p in pts}
            out.append(
                ascii_bars(
                    values,
                    log=use_log,
                    title=f"{n_clients} clients ({mode})",
                )
            )
        else:
            series: Dict[str, List[Tuple[float, float]]] = {}
            for p in pts:
                series.setdefault(p.series, []).append((p.x, p.elapsed))
            for s in series.values():
                s.sort()
            out.append(
                ascii_chart(
                    series,
                    log_y=use_log,
                    title=f"{n_clients} clients ({mode})",
                )
            )
    return "\n".join(out)
