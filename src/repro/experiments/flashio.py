"""FLASH I/O benchmark: Figure 15 (Section 4.3).

Checkpoint writes of the FLASH mesh with 2..32 clients, one bar group per
client count, log scale.  Data sieving writes are serialized with the
barrier loop exactly as the paper implements them.

The paper's claims encoded as checks:

* data sieving beats list I/O by a large factor at small client counts
  ("List I/O is approximately two orders of magnitude slower than data
  sieving I/O"),
* list I/O beats multiple I/O by over an order of magnitude,
* multiple and list times are roughly flat in the client count
  ("performed fairly consistently regardless of the number of clients"),
* data sieving time *grows* with the client count (serialization + more
  useless data).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..config import ClusterConfig
from ..sweep import PointSpec, run_sweep
from .presets import SCALED, Scale
from .report import Check, FigureResult

__all__ = ["figure15", "build_specs"]

_METHODS = ("multiple", "datasieve", "list")


def build_specs(
    scale: Scale,
    mode: str,
    clients: Optional[Sequence[int]] = None,
    methods: Sequence[str] = _METHODS,
    include_text_accounting: bool = False,
    faults=None,
) -> List[PointSpec]:
    """The sweep specs of Figure 15 — the driver's exact points,
    importable without running them (service ``figure`` jobs)."""
    clients = tuple(clients or scale.flash_clients)
    specs: List[PointSpec] = []
    for n in clients:
        cfg = ClusterConfig.chiba_city(n_clients=n)
        if faults is not None and mode != "model":
            cfg = cfg.with_(faults=faults)
        for method in methods:
            specs.append(
                PointSpec(
                    figure="fig15",
                    pattern="flash_io",
                    pattern_args=(n, scale.flash),
                    method=method,
                    kind="write",
                    mode=mode,
                    cfg=cfg,
                    x=n,
                )
            )
        if include_text_accounting:
            specs.append(
                PointSpec(
                    figure="fig15",
                    pattern="flash_io",
                    pattern_args=(n, scale.flash),
                    method="list",
                    kind="write",
                    mode=mode,
                    cfg=cfg,
                    x=n,
                    series="list-text",
                    opts=(("split_memory_regions", False),),
                )
            )
    return specs


def figure15(
    scale: Scale = SCALED,
    mode: str = "model",
    clients: Optional[Sequence[int]] = None,
    methods: Sequence[str] = _METHODS,
    include_text_accounting: bool = False,
    obs=None,
    faults=None,
    jobs: int = 1,
    cache=None,
) -> FigureResult:
    """Regenerate Figure 15.

    ``include_text_accounting=True`` adds a fourth series, ``list-text``:
    list I/O split on the *file*-region cap only, i.e. the 30
    requests/processor the paper's text derives — so the discrepancy
    between the text's arithmetic and the measured figure is visible in
    one table (see EXPERIMENTS.md).
    """
    clients = tuple(clients or scale.flash_clients)
    specs = build_specs(
        scale,
        mode,
        clients=clients,
        methods=methods,
        include_text_accounting=include_text_accounting,
        faults=faults,
    )
    points, stats = run_sweep(specs, jobs=jobs, cache=cache, obs=obs, label="fig15")
    checks: List[Check] = []

    def series(name):
        return {p.x: p.elapsed for p in points if p.series == name}

    multiple, sieve, listio = series("multiple"), series("datasieve"), series("list")
    n_small = min(clients)
    if sieve and listio:
        ratio = listio[n_small] / sieve[n_small]
        checks.append(
            Check(
                f"fig15: data sieving far faster than list I/O at {n_small} clients",
                ratio >= 10.0,
                detail=f"list/sieve ratio {ratio:.0f}x",
            )
        )
        grow = sieve[max(clients)] / sieve[n_small]
        checks.append(
            Check(
                "fig15: data sieving time grows with the client count",
                grow > 1.5,
                detail=f"{sieve[n_small]:.1f}s -> {sieve[max(clients)]:.1f}s",
            )
        )
    if multiple and listio:
        ratio = multiple[n_small] / listio[n_small]
        checks.append(
            Check(
                "fig15: list I/O over an order of magnitude faster than multiple I/O",
                ratio >= 10.0,
                detail=f"multiple/list ratio {ratio:.0f}x",
            )
        )
        for name, s in (("multiple", multiple), ("list", listio)):
            spread = max(s.values()) / min(s.values())
            checks.append(
                Check(
                    f"fig15: {name} I/O roughly flat across client counts",
                    spread <= 2.0,
                    detail=f"spread {spread:.2f}x",
                )
            )
    return FigureResult(
        "fig15",
        f"FLASH I/O checkpoint writes, {scale.name} scale ({mode})",
        points,
        checks,
        sweep_stats=stats,
    )
