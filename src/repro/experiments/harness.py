"""Experiment execution: one pattern + method + direction -> one data point.

Two engines produce :class:`DataPoint` records with identical accounting:

* :func:`des_point` — builds a full cluster and runs the transfer through
  the discrete-event simulator (timing-only byte stores);
* :func:`model_point` — compiles the request plans and evaluates the
  analytic bound model (used at paper scale).

Both serialize data-sieving / RMW-hybrid writes exactly the way the paper
does (barrier loop).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..config import ClusterConfig
from ..core import METHODS, DataSievingIO, HybridIO
from ..errors import ConfigError
from ..mpi import Communicator
from ..model import predict_pattern
from ..patterns.base import Pattern
from ..pvfs import Cluster

__all__ = ["DataPoint", "des_point", "model_point"]


@dataclass
class DataPoint:
    """One measured/predicted benchmark point."""

    figure: str  # e.g. "fig09"
    series: str  # e.g. "multiple" / "datasieve" / "list"
    x: float  # sweep coordinate (accesses, clients, ...)
    elapsed: float  # simulated seconds
    mode: str  # "des" | "model"
    kind: str  # "read" | "write"
    n_clients: int
    logical_requests: int = 0
    server_messages: int = 0
    moved_bytes: int = 0
    useful_bytes: int = 0
    phases: Dict[str, float] = field(default_factory=dict)  # e.g. open/read/close
    #: Standard deviation of ``elapsed`` across repeats (0 for single runs
    #: and for the deterministic model).
    elapsed_std: float = 0.0
    repeats: int = 1
    #: Per-category span statistics (``Tracer.summary()``) when the point
    #: ran with ``trace=True``; None otherwise.
    trace_summary: Optional[Dict[str, Dict[str, float]]] = None
    #: Events the DES kernel scheduled for this point — a deterministic
    #: churn measure (0 in model mode, which runs no kernel).  Feeds the
    #: events/SSR accounting in ``repro.bench`` and ``repro.obs.prof``.
    sim_events: int = 0

    @property
    def wasted_bytes(self) -> int:
        return self.moved_bytes - self.useful_bytes

    def __repr__(self) -> str:
        return (
            f"<{self.figure}/{self.series} x={self.x:g} {self.elapsed:.3f}s "
            f"[{self.mode}]>"
        )


def _make_method(method_name: str, method_opts: Optional[dict]):
    try:
        cls = METHODS[method_name]
    except KeyError:
        raise ConfigError(f"unknown method {method_name!r}") from None
    return cls(**(method_opts or {}))


def des_point(
    pattern: Pattern,
    method_name: str,
    kind: str,
    cfg: Optional[ClusterConfig] = None,
    *,
    figure: str = "",
    x: float = 0.0,
    method_opts: Optional[dict] = None,
    measure_phases: bool = False,
    path: str = "/bench",
    repeats: int = 1,
    trace: bool = False,
    obs=None,
) -> DataPoint:
    """Run one benchmark point through the discrete-event simulator.

    With ``measure_phases=True`` the point's ``phases`` dict carries the
    open / transfer / close breakdown (max across clients per phase), as
    Figure 17 reports.

    ``repeats > 1`` reruns the point with distinct seeds (meaningful when
    the cost model has ``jitter > 0``, mirroring the paper's averaging of
    three runs) and reports the mean with ``elapsed_std``.

    ``trace=True`` enables span collection and stores the tracer summary
    on the returned point (``trace_summary``).  ``obs`` (an
    :class:`~repro.obs.ObsSession`) additionally wires resource monitors
    onto the cluster and captures the run for Perfetto export / bottleneck
    attribution.  Both are passive: the simulated times are bit-identical
    with and without them.
    """
    cfg = cfg or ClusterConfig.chiba_city(n_clients=pattern.n_ranks)
    if cfg.n_clients != pattern.n_ranks:
        cfg = cfg.with_(n_clients=pattern.n_ranks)
    if repeats > 1:
        points = [
            des_point(
                pattern,
                method_name,
                kind,
                cfg.with_(seed=cfg.seed + r),
                figure=figure,
                x=x,
                method_opts=method_opts,
                measure_phases=measure_phases,
                path=path,
                trace=trace,
                obs=obs,
            )
            for r in range(repeats)
        ]
        mean = sum(p.elapsed for p in points) / repeats
        var = sum((p.elapsed - mean) ** 2 for p in points) / repeats
        first = points[0]
        first.elapsed = mean
        first.elapsed_std = var**0.5
        first.repeats = repeats
        first.sim_events = sum(p.sim_events for p in points)
        return first
    cluster = Cluster.build(cfg, move_bytes=False, trace=trace or obs is not None)
    if obs is not None:
        obs.attach(cluster)
    method = _make_method(method_name, method_opts)
    serialize = kind == "write" and isinstance(method, (DataSievingIO, HybridIO))
    collective = getattr(method, "collective", False)
    comm = Communicator(cluster.sim, pattern.n_ranks) if serialize or collective else None
    shared: Dict = {}
    phase_times: Dict[str, list] = {"open": [], "transfer": [], "close": []}

    def workload(client):
        access = pattern.rank(client.index)
        sim = client.sim
        t0 = sim.now
        f = yield from client.open(path, create=True)
        t1 = sim.now
        if collective and kind == "read":
            yield from method.collective_read(
                comm, client.index, shared, f, None, access.mem_regions, access.file_regions
            )
        elif collective:
            yield from method.collective_write(
                comm, client.index, shared, f, None, access.mem_regions, access.file_regions
            )
        elif kind == "read":
            yield from method.read(f, None, access.mem_regions, access.file_regions)
        elif serialize:
            yield from method.serialized_write(
                comm, client.index, f, None, access.mem_regions, access.file_regions
            )
        else:
            yield from method.write(f, None, access.mem_regions, access.file_regions)
        t2 = sim.now
        yield from f.close()
        t3 = sim.now
        phase_times["open"].append(t1 - t0)
        phase_times["transfer"].append(t2 - t1)
        phase_times["close"].append(t3 - t2)

    result = cluster.run_workload(workload)
    if obs is not None:
        obs.capture(
            cluster,
            label=f"{figure or 'point'}/{method_name} {kind} "
            f"x={x:g} clients={pattern.n_ranks}",
        )
    counters = result.counters
    moved = int(
        counters.get("net.payload_bytes", 0.0)
    )  # includes headers; refined below
    useful = pattern.total_bytes
    point = DataPoint(
        figure=figure,
        series=method_name,
        x=x,
        elapsed=result.elapsed,
        mode="des",
        kind=kind,
        n_clients=pattern.n_ranks,
        logical_requests=result.total_logical_requests,
        server_messages=result.total_server_messages,
        moved_bytes=moved,
        useful_bytes=useful,
        sim_events=cluster.sim.events_scheduled,
    )
    if measure_phases:
        point.phases = {k: max(v) for k, v in phase_times.items() if v}
    if trace:
        point.trace_summary = cluster.tracer.summary()
    return point


def model_point(
    pattern: Pattern,
    method_name: str,
    kind: str,
    cfg: Optional[ClusterConfig] = None,
    *,
    figure: str = "",
    x: float = 0.0,
    **plan_opts,
) -> DataPoint:
    """Evaluate one benchmark point with the analytic model."""
    cfg = cfg or ClusterConfig.chiba_city(n_clients=pattern.n_ranks)
    if cfg.n_clients != pattern.n_ranks:
        cfg = cfg.with_(n_clients=pattern.n_ranks)
    pred = predict_pattern(pattern, method_name, kind, cfg, **plan_opts)
    return DataPoint(
        figure=figure,
        series=method_name,
        x=x,
        elapsed=pred.elapsed,
        mode="model",
        kind=kind,
        n_clients=pattern.n_ranks,
        logical_requests=pred.n_logical_requests,
        server_messages=pred.n_server_messages,
        moved_bytes=pred.moved_bytes,
        useful_bytes=pred.useful_bytes,
    )
