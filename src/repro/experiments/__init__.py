"""Experiment harness: per-figure drivers, presets, and reporting."""

from .artificial import figure9, figure10, figure11, figure12
from .compare import Comparison, compare_csv, format_comparison
from .flashio import figure15
from .harness import DataPoint, des_point, model_point
from .presets import PAPER, SCALED, SCALES, SMOKE, Scale
from .report import Check, FigureResult, points_to_csv, series_table
from .tiledvis import figure17

__all__ = [
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure15",
    "figure17",
    "DataPoint",
    "des_point",
    "model_point",
    "Scale",
    "SCALES",
    "PAPER",
    "SCALED",
    "SMOKE",
    "Check",
    "FigureResult",
    "series_table",
    "points_to_csv",
    "Comparison",
    "compare_csv",
    "format_comparison",
]
