"""Tiled visualization benchmark: Figure 17 (Section 4.4).

Six clients read their display tiles from one ~10.2 MB frame file; the
figure reports the open / read / close breakdown per method.  This figure
runs at the paper's actual scale even in the simulator — the file is small.

Paper claims encoded as checks:

* list I/O performs "more than twice as well as either of the other two
  methods" on the read phase,
* multiple I/O needs 768 requests per client, list I/O 12 (= 768/64).
"""

from __future__ import annotations

from typing import List, Sequence

from ..config import ClusterConfig
from ..patterns import tiled_visualization
from ..sweep import PointSpec, run_sweep
from .presets import SCALED, Scale
from .report import Check, FigureResult

__all__ = ["figure17", "build_specs"]

_METHODS = ("multiple", "datasieve", "list")


def build_specs(
    scale: Scale,
    mode: str,
    methods: Sequence[str] = _METHODS,
    faults=None,
) -> List[PointSpec]:
    """The sweep specs of Figure 17 — the driver's exact points,
    importable without running them (service ``figure`` jobs)."""
    pattern = tiled_visualization(scale.tiled)
    cfg = ClusterConfig.chiba_city(n_clients=pattern.n_ranks)
    if faults is not None and mode == "des":
        cfg = cfg.with_(faults=faults)
    return [
        PointSpec(
            figure="fig17",
            pattern="tiled_visualization",
            pattern_args=(scale.tiled,),
            method=method,
            kind="read",
            mode=mode,
            cfg=cfg,
            x=pattern.n_ranks,
            measure_phases=(mode == "des"),
        )
        for method in methods
    ]


def figure17(
    scale: Scale = SCALED,
    mode: str = "des",
    methods: Sequence[str] = _METHODS,
    obs=None,
    faults=None,
    jobs: int = 1,
    cache=None,
) -> FigureResult:
    pattern = tiled_visualization(scale.tiled)
    specs = build_specs(scale, mode, methods=methods, faults=faults)
    points, stats = run_sweep(specs, jobs=jobs, cache=cache, obs=obs, label="fig17")
    checks: List[Check] = []
    by = {p.series: p for p in points}
    if "list" in by:
        others = [by[m] for m in by if m != "list"]
        if others:
            worst = min(o.elapsed for o in others)
            ratio = worst / by["list"].elapsed
            checks.append(
                Check(
                    "fig17: list I/O at least 2x faster than both other methods",
                    ratio >= 2.0,
                    detail=f"best other / list = {ratio:.2f}x",
                )
            )
    if scale.tiled.tile_height == 768 and "multiple" in by and "list" in by:
        per_client_multiple = by["multiple"].logical_requests // pattern.n_ranks
        per_client_list = by["list"].logical_requests // pattern.n_ranks
        checks.append(
            Check(
                "fig17: multiple I/O issues 768 requests/client",
                per_client_multiple == 768,
                detail=f"measured {per_client_multiple}",
            )
        )
        checks.append(
            Check(
                "fig17: list I/O issues 12 requests/client (768/64)",
                per_client_list == 12,
                detail=f"measured {per_client_list}",
            )
        )
    return FigureResult(
        "fig17",
        f"tiled visualization reads, {scale.name} scale ({mode})",
        points,
        checks,
        sweep_stats=stats,
    )
