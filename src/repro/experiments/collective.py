"""Extension experiment ("Figure 18"): two-phase collective I/O on FLASH.

NOT a figure from the paper — this is the repository's extension of the
paper's Section 5 outlook, formalized with the same driver machinery as
the real figures so it regenerates, checks, and plots identically.

Four strategies checkpoint a FLASH-shaped interleaved file as the rank
count grows:

* ``multiple`` — the paper's baseline (one request per double),
* ``list`` — the paper's contribution (64 region pairs per request),
* ``mpiio-indep`` — independent MPI-IO through a file view (the view
  collapses the 8-byte memory pieces into per-rank streams; list I/O
  underneath),
* ``mpiio-coll`` — two-phase collective write (data redistribution over
  the compute network, one streaming domain write per aggregator),
* ``twophase`` — the same two-phase algorithm as a first-class access
  method (:class:`repro.core.TwoPhaseIO`) driven through the harness,
* ``twophase-model`` / ``list-model`` — the analytic model's predictions
  for the crossover between two-phase and native list I/O.

Checks encode the extension's claims: the view alone beats native list
I/O by >10x, the collective beats independent, the collective scales
sublinearly in rank count, two-phase beats native list I/O on the
interleaved FLASH pattern, and the analytic model agrees with the
simulator about the two-phase-vs-list winner.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..config import ClusterConfig
from ..datatypes import BYTE, Contiguous, Resized
from ..mpi import Communicator
from ..mpiio import open_one
from ..pvfs import Cluster
from ..sweep import MpiioSpec, PointSpec, run_sweep
from .harness import DataPoint
from .presets import SCALED, Scale
from .report import Check, FigureResult

__all__ = ["figure18", "build_specs"]


def build_specs(
    scale: Scale,
    clients: Optional[Sequence[int]] = None,
    faults=None,
    cb_buffer: Optional[int] = None,
) -> List[object]:
    """The sweep specs of Figure 18 — the driver's exact points,
    importable without running them (service ``figure`` jobs).

    ``cb_buffer`` bounds the collective buffer of both the MPI-IO
    collective and the first-class two-phase series (``None`` keeps
    ROMIO's unbounded default — and the historical cache keys).

    Callers are responsible for the ``des_friendly`` fallback that
    :func:`figure18` applies (scales too large for the simulator run at
    the ``scaled`` preset instead).
    """
    clients = tuple(clients or scale.flash_clients)
    tp_opts = (("cb_buffer", cb_buffer),) if cb_buffer is not None else ()
    specs: List[object] = []
    for n in clients:
        cfg = ClusterConfig.chiba_city(n_clients=n)
        if faults is not None:
            cfg = cfg.with_(faults=faults)
        for method in ("multiple", "list"):
            specs.append(
                PointSpec(
                    figure="fig18",
                    pattern="flash_io",
                    pattern_args=(n, scale.flash),
                    method=method,
                    kind="write",
                    mode="des",
                    cfg=cfg,
                    x=n,
                )
            )
        specs.append(
            MpiioSpec(
                scale=scale, n_ranks=n, collective=False, faults=faults, cb_buffer=cb_buffer
            )
        )
        specs.append(
            MpiioSpec(
                scale=scale, n_ranks=n, collective=True, faults=faults, cb_buffer=cb_buffer
            )
        )
        # First-class two-phase through the harness, plus the analytic
        # model's two-phase-vs-list crossover prediction.
        specs.append(
            PointSpec(
                figure="fig18",
                pattern="flash_io",
                pattern_args=(n, scale.flash),
                method="twophase",
                kind="write",
                mode="des",
                cfg=cfg,
                x=n,
                opts=tp_opts,
            )
        )
        for method, series in (("twophase", "twophase-model"), ("list", "list-model")):
            specs.append(
                PointSpec(
                    figure="fig18",
                    pattern="flash_io",
                    pattern_args=(n, scale.flash),
                    method=method,
                    kind="write",
                    mode="model",
                    cfg=cfg,
                    x=n,
                    series=series,
                    opts=tp_opts if method == "twophase" else (),
                )
            )
    return specs


def _mpiio_point(
    scale: Scale,
    n_ranks: int,
    collective: bool,
    cb_nodes=None,
    obs=None,
    faults=None,
    cb_buffer=None,
) -> DataPoint:
    mesh = scale.flash
    chunk = mesh.chunk_bytes
    nbytes = mesh.n_blocks * mesh.n_vars * chunk
    cfg = ClusterConfig.chiba_city(n_clients=n_ranks)
    if faults is not None:
        cfg = cfg.with_(faults=faults)
    cluster = Cluster.build(
        cfg,
        move_bytes=False,
        trace=obs is not None,
    )
    if obs is not None:
        obs.attach(cluster)
    comm = Communicator(cluster.sim, n_ranks)
    shared = {}

    def wl(client):
        r = client.index
        mf = yield from open_one(
            comm, client, "/f18", shared, cb_nodes=cb_nodes, cb_buffer=cb_buffer
        )
        mf.set_view(
            disp=r * chunk,
            filetype=Resized(Contiguous(BYTE, chunk), chunk * n_ranks),
        )
        if collective:
            yield from mf.write_at_all(0, None, nbytes=nbytes)
        else:
            yield from mf.write_at(0, None, nbytes=nbytes)
        yield from mf.close()

    res = cluster.run_workload(wl)
    if obs is not None:
        series = "mpiio-coll" if collective else "mpiio-indep"
        obs.capture(cluster, label=f"fig18/{series} write x={n_ranks}")
    return DataPoint(
        figure="fig18",
        series="mpiio-coll" if collective else "mpiio-indep",
        x=n_ranks,
        elapsed=res.elapsed,
        mode="des",
        kind="write",
        n_clients=n_ranks,
        logical_requests=res.total_logical_requests,
        server_messages=res.total_server_messages,
        useful_bytes=n_ranks * nbytes,
        moved_bytes=int(res.counters.get("net.payload_bytes", 0)),
        sim_events=cluster.sim.events_scheduled,
    )


def figure18(
    scale: Scale = SCALED,
    mode: str = "des",
    clients: Optional[Sequence[int]] = None,
    obs=None,
    faults=None,
    jobs: int = 1,
    cache=None,
    cb_buffer: Optional[int] = None,
) -> FigureResult:
    """Extension: MPI-IO over the paper's list I/O, FLASH-shaped writes.

    The DES series carry the measurements; the ``*-model`` series carry
    the analytic two-phase-vs-list crossover prediction (``mode`` is
    accepted for driver-signature symmetry and ignored).  Scales too
    large for the simulator fall back to the ``scaled`` preset.
    """
    if not scale.des_friendly:
        scale = SCALED
    clients = tuple(clients or scale.flash_clients)
    specs = build_specs(scale, clients=clients, faults=faults, cb_buffer=cb_buffer)
    points, stats = run_sweep(specs, jobs=jobs, cache=cache, obs=obs, label="fig18")

    checks: List[Check] = []

    def series(name):
        return {p.x: p.elapsed for p in points if p.series == name}

    listio = series("list")
    indep = series("mpiio-indep")
    coll = series("mpiio-coll")
    twophase = series("twophase")
    tp_model = series("twophase-model")
    list_model = series("list-model")
    for n in clients:
        checks.append(
            Check(
                f"fig18: the MPI-IO view alone beats native list I/O >10x "
                f"({n} ranks)",
                listio[n] / indep[n] > 10,
                detail=f"{listio[n]:.2f}s vs {indep[n]:.2f}s",
            )
        )
        checks.append(
            Check(
                f"fig18: collective beats independent MPI-IO ({n} ranks)",
                coll[n] < indep[n],
                detail=f"{indep[n]:.3f}s -> {coll[n]:.3f}s",
            )
        )
    lo, hi = min(clients), max(clients)
    if hi > lo:
        growth = coll[hi] / coll[lo]
        volume_growth = hi / lo
        checks.append(
            Check(
                "fig18: collective time grows sublinearly in rank count "
                "(volume grows linearly)",
                growth < volume_growth,
                detail=f"time x{growth:.2f} for volume x{volume_growth:.0f}",
            )
        )
    checks.append(
        Check(
            f"fig18: two-phase beats native list I/O on interleaved FLASH "
            f"({hi} ranks)",
            twophase[hi] < listio[hi],
            detail=f"{listio[hi]:.3f}s -> {twophase[hi]:.3f}s",
        )
    )
    # The analytic model must call the two-phase-vs-list winner the same
    # way the simulator does (ties within 10% are not a disagreement).
    agree = True
    details = []
    for n in clients:
        des_win = twophase[n] < listio[n]
        model_win = tp_model[n] < list_model[n]
        near_tie = abs(twophase[n] - listio[n]) <= 0.1 * max(twophase[n], listio[n])
        agree &= des_win == model_win or near_tie
        details.append(f"n={n}:{'tp' if des_win else 'list'}/{'tp' if model_win else 'list'}")
    checks.append(
        Check(
            "fig18: analytic model agrees with the simulator on the "
            "two-phase-vs-list crossover",
            agree,
            detail=" ".join(details),
        )
    )
    return FigureResult(
        "fig18",
        f"EXTENSION: two-phase collective I/O on FLASH, {scale.name} scale (des)",
        points,
        checks,
        sweep_stats=stats,
    )
