"""Analytic performance model (paper-scale sweeps without event simulation)."""

from .plan import RankPlan, compile_rank_plan
from .predict import Prediction, predict_pattern, predict_plans
from .twophase import crossover_point, predict_twophase

__all__ = [
    "RankPlan",
    "compile_rank_plan",
    "Prediction",
    "predict_pattern",
    "predict_plans",
    "predict_twophase",
    "crossover_point",
]
