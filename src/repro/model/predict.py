"""Closed-form performance prediction from compiled request plans.

The predictor computes three classic bounds for the parallel transfer and
takes their maximum (queueing-free bottleneck analysis):

* **server bound** — the busiest I/O daemon's total work: per-message parse
  cost, per-region service cost, disk model time, and (for writes) the
  per-message commit cost;
* **network bound** — the busiest NIC's serialization time (client or
  server side, wire bytes including framing overhead);
* **client bound** — the longest client's critical path: its own CPU
  costs, its wire time, two message latencies per logical request, and its
  requests' *unloaded* service time divided by the per-request server
  parallelism.

Serialized plans (data sieving / hybrid RMW writes) add up client paths
instead of maxing them, plus a barrier term — matching the paper's
``MPI_Barrier()`` loop.

All load attribution is computed *exactly* from the plans via vectorized
striping decomposition; only queueing is approximated.  The test suite
cross-validates predictions against the discrete-event simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..config import ClusterConfig
from ..errors import ModelError
from ..patterns.base import Pattern
from ..pvfs.protocol import REQUEST_HEADER_BYTES, RESPONSE_HEADER_BYTES
from ..regions import split_with_parents
from .plan import RankPlan, compile_rank_plan

__all__ = ["Prediction", "predict_pattern", "predict_plans"]


@dataclass
class Prediction:
    """Predicted elapsed time and its contributing bounds."""

    elapsed: float
    server_bound: float
    network_bound: float
    client_bound: float
    serialized: bool
    n_logical_requests: int
    n_server_messages: int
    moved_bytes: int
    useful_bytes: int
    per_server_work: List[float] = field(default_factory=list)
    per_client_path: List[float] = field(default_factory=list)
    #: Collective exchange time (two-phase metadata + redistribution);
    #: 0 for the independent methods.
    exchange_bound: float = 0.0

    @property
    def wasted_bytes(self) -> int:
        return self.moved_bytes - self.useful_bytes

    def __repr__(self) -> str:
        return (
            f"<Prediction {self.elapsed:.3f}s "
            f"(server={self.server_bound:.3f} net={self.network_bound:.3f} "
            f"client={self.client_bound:.3f}) reqs={self.n_logical_requests}>"
        )


def _wire(cfg: ClusterConfig, payload):
    """Vectorized wire bytes (payload + per-frame overhead)."""
    payload = np.asarray(payload, dtype=np.float64)
    frames = np.ceil(np.maximum(payload, 1) / cfg.network.mtu_payload)
    return payload + frames * (cfg.network.frame_overhead + cfg.network.ip_tcp_overhead)


class _Loads:
    """Accumulated per-server and per-client load totals."""

    def __init__(self, n_servers: int, n_clients: int) -> None:
        self.msgs = np.zeros(n_servers)
        self.pieces = np.zeros(n_servers)
        self.bytes = np.zeros(n_servers)
        self.write_msgs = np.zeros(n_servers)
        self.write_bytes = np.zeros(n_servers)
        self.read_bytes = np.zeros(n_servers)
        self.rx_wire = np.zeros(n_servers)  # into servers
        self.tx_wire = np.zeros(n_servers)  # out of servers
        self.client_tx = np.zeros(n_clients)
        self.client_rx = np.zeros(n_clients)


def _decompose_phase(
    phase: RankPlan, rank: int, cfg: ClusterConfig, loads: _Loads
) -> Dict[str, float]:
    """Attribute one phase's load to servers/links; return rank-local stats."""
    pcount = cfg.stripe.resolve_pcount(cfg.n_iods)
    ssize = cfg.stripe.stripe_size
    pieces, parents = split_with_parents(phase.regions, ssize)
    if pieces.count == 0:
        return {"msgs": 0.0, "work": 0.0, "req_wire": 0.0, "resp_wire": 0.0}
    unit = pieces.offsets // ssize
    server = ((cfg.stripe.base + unit % pcount) % cfg.n_iods).astype(np.int64)
    chunk = phase.chunk_of_region[parents]
    key = server * np.int64(phase.n_requests) + chunk
    uniq, inverse, counts = np.unique(key, return_inverse=True, return_counts=True)
    msg_server = (uniq // phase.n_requests).astype(np.int64)
    msg_bytes = np.bincount(inverse, weights=pieces.lengths.astype(np.float64))
    # -- wire sizing per message --------------------------------------
    if phase.wire_mode == "descriptor":
        trailing = np.full(len(uniq), 32.0)
    else:
        trailing = np.where(counts > 1, 16.0 * counts, 0.0)
    if phase.kind == "write":
        req_payload = REQUEST_HEADER_BYTES + trailing + msg_bytes
        resp_payload = np.full(len(uniq), float(RESPONSE_HEADER_BYTES))
    else:
        req_payload = REQUEST_HEADER_BYTES + trailing
        resp_payload = RESPONSE_HEADER_BYTES + msg_bytes
    req_wire = _wire(cfg, req_payload)
    resp_wire = _wire(cfg, resp_payload)
    # -- accumulate -----------------------------------------------------
    ns = cfg.n_iods
    loads.msgs += np.bincount(msg_server, minlength=ns)
    loads.pieces += np.bincount(server, minlength=ns)
    loads.bytes += np.bincount(server, weights=pieces.lengths.astype(np.float64), minlength=ns)
    if phase.kind == "write":
        loads.write_msgs += np.bincount(msg_server, minlength=ns)
        loads.write_bytes += np.bincount(
            server, weights=pieces.lengths.astype(np.float64), minlength=ns
        )
    else:
        loads.read_bytes += np.bincount(
            server, weights=pieces.lengths.astype(np.float64), minlength=ns
        )
    loads.rx_wire += np.bincount(msg_server, weights=req_wire, minlength=ns)
    loads.tx_wire += np.bincount(msg_server, weights=resp_wire, minlength=ns)
    loads.client_tx[rank] += req_wire.sum()
    loads.client_rx[rank] += resp_wire.sum()
    # -- rank-local -------------------------------------------------------
    costs = cfg.costs
    work = (
        len(uniq) * costs.iod_request_cost
        + pieces.count * costs.iod_region_cost
        + _disk_time_estimate(
            cfg,
            kind=phase.kind,
            nbytes=float(pieces.lengths.sum()),
            unique_bytes=float(pieces.lengths.sum()),
        )
    )
    if phase.kind == "write":
        work += len(uniq) * costs.iod_write_commit_cost
    return {
        "msgs": float(len(uniq)),
        "work": work,
        "req_wire": float(req_wire.sum()),
        "resp_wire": float(resp_wire.sum()),
    }


def _disk_time_estimate(cfg: ClusterConfig, kind: str, nbytes: float, unique_bytes: float) -> float:
    """Disk service estimate for ``nbytes`` of access, of which
    ``unique_bytes`` are first-touch (media) bytes."""
    cache = cfg.cache
    disk = cfg.disk
    memcpy = nbytes / cache.memory_copy_rate
    if kind == "read":
        media = unique_bytes / disk.transfer_rate
        window = max(cache.readahead, cache.block_size)
        positionings = unique_bytes / window
        return memcpy + media + positionings * disk.positioning_time
    # write-back: media only for volume beyond the cache
    spill = max(unique_bytes - cache.capacity, 0.0)
    media = spill / disk.transfer_rate
    positionings = spill / max(cache.capacity, cache.block_size)
    return memcpy + media + positionings * disk.positioning_time


def predict_plans(plans: List[RankPlan], cfg: ClusterConfig) -> Prediction:
    """Predict the elapsed time of one parallel transfer phase-set."""
    if not plans:
        raise ModelError("predict_plans needs at least one rank plan")
    n_clients = len(plans)
    loads = _Loads(cfg.n_iods, n_clients)
    client_paths = np.zeros(n_clients)
    total_requests = 0
    total_msgs = 0
    moved = 0
    useful = 0
    serialized = any(p.serialized for p in plans)
    costs = cfg.costs
    bw = cfg.network.bandwidth
    for rank, plan in enumerate(plans):
        useful += plan.useful_bytes
        for phase in plan.phases():
            stats = _decompose_phase(phase, rank, cfg, loads)
            moved += phase.moved_bytes
            n_req = phase.n_requests
            total_requests += n_req
            total_msgs += int(stats["msgs"])
            if n_req == 0:
                continue
            fanout = max(stats["msgs"] / n_req, 1.0)
            path = (
                n_req * (costs.client_request_cost + 2 * cfg.network.latency)
                + phase.regions.count * costs.client_region_cost
                + (stats["req_wire"] + stats["resp_wire"]) / bw
                + stats["work"] / fanout
                + phase.pack_bytes / costs.memcpy_rate
            )
            if phase.kind == "write":
                path += n_req * costs.client_write_turnaround
            client_paths[rank] += path

    # -- server bound -----------------------------------------------------
    # Shared-cache correction: when several ranks fetch the same bytes
    # (sieving reads overlapping windows), only first touches hit media.
    # Approximate unique read bytes per server by capping at the striped
    # share of the union extent.
    union_cap = _union_extent_bytes(plans) / max(cfg.stripe.resolve_pcount(cfg.n_iods), 1)
    server_work = np.zeros(cfg.n_iods)
    for s in range(cfg.n_iods):
        read_unique = min(loads.read_bytes[s], union_cap)
        work = (
            loads.msgs[s] * costs.iod_request_cost
            + loads.pieces[s] * costs.iod_region_cost
            + loads.write_msgs[s] * costs.iod_write_commit_cost
            + _disk_time_estimate(cfg, "read", loads.read_bytes[s], read_unique)
            + _disk_time_estimate(cfg, "write", loads.write_bytes[s], loads.write_bytes[s])
        )
        server_work[s] = work
    server_bound = float(server_work.max())

    # -- network bound ------------------------------------------------------
    link_times = np.concatenate(
        [loads.rx_wire, loads.tx_wire, loads.client_tx, loads.client_rx]
    ) / bw
    network_bound = float(link_times.max())

    # -- combine ------------------------------------------------------------
    if serialized:
        barrier = n_clients * cfg.network.latency * max(math.ceil(math.log2(max(n_clients, 2))), 1)
        client_bound = float(client_paths.sum()) + barrier
        elapsed = max(client_bound, server_bound, network_bound)
    else:
        client_bound = float(client_paths.max())
        elapsed = max(server_bound, network_bound, client_bound)
    return Prediction(
        elapsed=elapsed,
        server_bound=server_bound,
        network_bound=network_bound,
        client_bound=client_bound,
        serialized=serialized,
        n_logical_requests=total_requests,
        n_server_messages=total_msgs,
        moved_bytes=int(moved),
        useful_bytes=int(useful),
        per_server_work=server_work.tolist(),
        per_client_path=client_paths.tolist(),
    )


def _union_extent_bytes(plans: List[RankPlan]) -> float:
    """Upper estimate of distinct file bytes read across all phases."""
    lo, hi = math.inf, 0
    total = 0
    for plan in plans:
        for phase in plan.phases():
            if phase.kind != "read" or phase.regions.count == 0:
                continue
            a, b = phase.regions.extent
            lo, hi = min(lo, a), max(hi, b)
            total += phase.moved_bytes
    if hi == 0:
        return 0.0
    return float(min(total, hi - lo))


def predict_pattern(
    pattern: Pattern,
    method: str,
    kind: str,
    cfg: ClusterConfig,
    **plan_opts,
) -> Prediction:
    """Compile and predict a whole benchmark pattern."""
    if method == "twophase":
        from .twophase import predict_twophase

        return predict_twophase(pattern, kind, cfg, **plan_opts)
    plans = [
        compile_rank_plan(method, kind, a.mem_regions, a.file_regions, cfg, **plan_opts)
        for a in pattern.accesses
    ]
    return predict_plans(plans, cfg)
