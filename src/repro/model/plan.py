"""Request-plan compilation: what each method puts on the wire.

The analytic model and the live simulator must agree on *what* a method
does (how many logical requests, which file bytes move, what trailing data
each message carries) and differ only in *how time is charged* (closed-form
bounds vs discrete events).  A :class:`RankPlan` captures the "what" for
one rank: the file regions accessed, each region's logical request id, and
the bookkeeping needed for wire sizing.

Compilation mirrors the access methods exactly:

* ``multiple`` — one request per memory/file piece pair,
* ``list`` — requests of up to ``list_io_max_regions`` regions,
* ``datasieve`` — one contiguous request per buffer window (plus a
  read-modify-write pre-read phase and external serialization for writes),
* ``hybrid`` — list requests over gap-clustered extents (RMW when extents
  contain gaps),
* ``vector`` — a single descriptor-described request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..config import ClusterConfig
from ..core.datasieve import sieve_spans
from ..core.hybrid import cluster_extents
from ..errors import ModelError
from ..regions import RegionList, pair_pieces

__all__ = ["RankPlan", "compile_rank_plan"]


@dataclass
class RankPlan:
    """One rank's compiled transfer for one method."""

    method: str
    kind: str  # "read" | "write"
    #: File regions accessed on the wire, in request order (includes sieving
    #: waste — gaps inside fetched windows).
    regions: RegionList
    #: Logical request id of every region (monotone, 0-based).
    chunk_of_region: np.ndarray
    #: Application-useful bytes of the transfer.
    useful_bytes: int
    #: Trailing-data sizing: "per_region" (one 16-byte slot per described
    #: region) or "descriptor" (2 slots regardless of count).
    wire_mode: str = "per_region"
    #: Client-side pack/unpack volume (bytes through memcpy).
    pack_bytes: int = 0
    #: Read phase executed before a read-modify-write write phase.
    pre_read: Optional["RankPlan"] = None
    #: Whether concurrent ranks must serialize this plan (sieving writes).
    serialized: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("read", "write"):
            raise ModelError(f"bad kind {self.kind!r}")
        if self.wire_mode not in ("per_region", "descriptor"):
            raise ModelError(f"bad wire_mode {self.wire_mode!r}")
        if len(self.chunk_of_region) != self.regions.count:
            raise ModelError("chunk_of_region must parallel regions")

    @property
    def n_requests(self) -> int:
        if self.chunk_of_region.size == 0:
            return 0
        return int(self.chunk_of_region.max()) + 1

    @property
    def moved_bytes(self) -> int:
        """Bytes of file data crossing the wire (waste included)."""
        return self.regions.total_bytes

    @property
    def wasted_bytes(self) -> int:
        return self.moved_bytes - self.useful_bytes

    def phases(self):
        """Execution phases in order (RMW pre-read first when present)."""
        return ([self.pre_read] if self.pre_read is not None else []) + [self]


def _plan_multiple(kind, mem_regions, file_regions) -> RankPlan:
    _, file_off, lengths = pair_pieces(mem_regions, file_regions)
    regions = RegionList(file_off, lengths)
    return RankPlan(
        method="multiple",
        kind=kind,
        regions=regions,
        chunk_of_region=np.arange(regions.count, dtype=np.int64),
        useful_bytes=regions.total_bytes,
        pack_bytes=0,
    )


def _plan_list(kind, mem_regions, file_regions, cap, split_memory) -> RankPlan:
    if split_memory:
        _, file_off, lengths = pair_pieces(mem_regions, file_regions)
        regions = RegionList(file_off, lengths)
    else:
        regions = file_regions.drop_empty()
    return RankPlan(
        method="list",
        kind=kind,
        regions=regions,
        chunk_of_region=np.arange(regions.count, dtype=np.int64) // cap,
        useful_bytes=regions.total_bytes,
        pack_bytes=regions.total_bytes,
    )


def _plan_vector(kind, file_regions) -> RankPlan:
    regions = file_regions.drop_empty()
    return RankPlan(
        method="vector",
        kind=kind,
        regions=regions,
        chunk_of_region=np.zeros(regions.count, dtype=np.int64),
        useful_bytes=regions.total_bytes,
        wire_mode="descriptor",
        pack_bytes=regions.total_bytes,
    )


def _plan_sieve(kind, file_regions, buffer_size) -> RankPlan:
    spans, useful_per_span = sieve_spans(file_regions, buffer_size)
    useful = int(useful_per_span.sum())
    chunks = np.arange(spans.count, dtype=np.int64)
    if kind == "read":
        return RankPlan(
            method="datasieve",
            kind="read",
            regions=spans,
            chunk_of_region=chunks,
            useful_bytes=useful,
            pack_bytes=useful,
        )
    # Write: read-modify-write of every window that has holes, then write
    # the full spans back; all of it serialized across ranks.
    holes = spans.lengths > useful_per_span
    pre_spans = spans.take(np.flatnonzero(holes))
    pre = None
    if pre_spans.count:
        pre = RankPlan(
            method="datasieve",
            kind="read",
            regions=pre_spans,
            chunk_of_region=np.arange(pre_spans.count, dtype=np.int64),
            useful_bytes=int(useful_per_span[holes].sum()),
            pack_bytes=0,
        )
    return RankPlan(
        method="datasieve",
        kind="write",
        regions=spans,
        chunk_of_region=chunks,
        useful_bytes=useful,
        pack_bytes=useful,
        pre_read=pre,
        serialized=True,
    )


def _plan_hybrid(kind, file_regions, gap_threshold, cap) -> RankPlan:
    extents = cluster_extents(file_regions, gap_threshold)
    useful = file_regions.drop_empty().total_bytes
    chunks = np.arange(extents.count, dtype=np.int64) // cap
    if kind == "read":
        return RankPlan(
            method="hybrid",
            kind="read",
            regions=extents,
            chunk_of_region=chunks,
            useful_bytes=useful,
            pack_bytes=useful,
        )
    pre = None
    serialized = False
    if extents.total_bytes > useful:  # gaps inside extents -> RMW
        pre = RankPlan(
            method="hybrid",
            kind="read",
            regions=extents,
            chunk_of_region=chunks.copy(),
            useful_bytes=useful,
            pack_bytes=0,
        )
        serialized = True
    return RankPlan(
        method="hybrid",
        kind="write",
        regions=extents,
        chunk_of_region=chunks,
        useful_bytes=useful,
        pack_bytes=useful,
        pre_read=pre,
        serialized=serialized,
    )


def compile_rank_plan(
    method: str,
    kind: str,
    mem_regions: RegionList,
    file_regions: RegionList,
    config: ClusterConfig,
    *,
    sieve_buffer: Optional[int] = None,
    gap_threshold: int = 4096,
    split_memory_regions: bool = True,
) -> RankPlan:
    """Compile one rank's transfer into a :class:`RankPlan`."""
    if kind not in ("read", "write"):
        raise ModelError(f"bad kind {kind!r}")
    if method == "multiple":
        return _plan_multiple(kind, mem_regions, file_regions)
    if method == "list":
        return _plan_list(
            kind,
            mem_regions,
            file_regions,
            config.list_io_max_regions,
            split_memory_regions,
        )
    if method == "vector":
        return _plan_vector(kind, file_regions)
    if method == "datasieve":
        return _plan_sieve(kind, file_regions, sieve_buffer or config.sieve_buffer_size)
    if method == "hybrid":
        return _plan_hybrid(kind, file_regions, gap_threshold, config.list_io_max_regions)
    raise ModelError(f"unknown method {method!r}")
