"""Analytic model of two-phase collective I/O.

Mirrors the engine in :mod:`repro.mpiio.twophase` request-for-request:
every rank ships its offset list to all peers, the first ``cb_nodes``
ranks aggregate stripe-aligned file domains, and each collective-buffer
round redistributes data before (writes) or after (reads) one list-I/O
access per aggregator.

The file phase reuses :func:`repro.model.predict.predict_plans` on the
*aggregators'* plans (the only ranks that touch the file system), and the
exchange phases are charged as a separate per-rank critical path:

``pack + (meta wire + data wire) / bandwidth + latency * (1 + rounds)``

whose maximum across ranks becomes :attr:`Prediction.exchange_bound`.
The predicted elapsed time is ``exchange_bound + file phase``, which the
test suite cross-validates against the discrete-event simulator and the
crossover studies use to predict where two-phase overtakes list I/O.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..config import ClusterConfig
from ..core.twophase import wire_order
from ..mpiio.twophase import (
    DATA_HEADER,
    META_BYTES_PER_REGION,
    META_HEADER,
    partition_file_domains,
    round_count,
    round_window,
    select_aggregators,
)
from ..patterns.base import Pattern
from ..regions import RegionList
from .plan import RankPlan
from .predict import Prediction, _wire, predict_plans

__all__ = ["predict_twophase", "crossover_point"]


def _aggregator_regions(
    metas: dict, domains: List[Tuple[int, int]], rank: int, rounds: int, cb_buffer: Optional[int]
) -> RegionList:
    """File regions aggregator ``rank`` accesses, in round order (the
    engine's merged/coalesced per-window union)."""
    out = RegionList.empty()
    for rnd in range(rounds):
        wa, wb = round_window(domains[rank], rnd, cb_buffer)
        union = RegionList.empty()
        for r in metas.values():
            union = union.concat(r.clip(wa, wb))
        out = out.concat(union.coalesced())
    return out


def predict_twophase(
    pattern: Pattern,
    kind: str,
    cfg: ClusterConfig,
    *,
    cb_nodes: Optional[int] = None,
    cb_buffer: Optional[int] = None,
    **_ignored,
) -> Prediction:
    """Predict one two-phase collective transfer over ``pattern``."""
    n = pattern.n_ranks
    n_agg = len(select_aggregators(n, cb_nodes))
    metas = {}
    for rank, access in enumerate(pattern.accesses):
        regions, _order = wire_order(access.file_regions)
        metas[rank] = regions
    domains = partition_file_domains(metas, n, n_agg, cfg.stripe.stripe_size)
    rounds = round_count(domains, cb_buffer)
    cap = cfg.list_io_max_regions

    # -- file phase: only aggregators touch PVFS -----------------------
    plans = []
    for rank in range(n):
        regions = _aggregator_regions(metas, domains, rank, rounds, cb_buffer)
        plans.append(
            RankPlan(
                method="twophase",
                kind=kind,
                regions=regions,
                chunk_of_region=np.arange(regions.count, dtype=np.int64) // cap,
                useful_bytes=regions.total_bytes,
                pack_bytes=regions.total_bytes,
            )
        )
    file_pred = predict_plans(plans, cfg)

    # -- exchange phase: per-rank wire + memcpy critical path ----------
    bw = cfg.network.bandwidth
    memcpy = cfg.costs.memcpy_rate
    meta_msg = np.array(
        [META_HEADER + META_BYTES_PER_REGION * metas[r].count for r in range(n)], np.float64
    )
    meta_wire = _wire(cfg, meta_msg)
    exchange = np.zeros(n)
    exchange_payload = 0
    for rank in range(n):
        tx = (n - 1) * meta_wire[rank]
        rx = float(meta_wire.sum() - meta_wire[rank])
        for rnd in range(rounds):
            windows = [round_window(d, rnd, cb_buffer) for d in domains]
            for d, (wa, wb) in enumerate(windows):
                if kind == "write":
                    # rank ships its clip to aggregator d; d receives all clips
                    mine = metas[rank].clip(wa, wb)
                    if mine.count and d != rank:
                        msg = DATA_HEADER + META_BYTES_PER_REGION * mine.count
                        tx += float(_wire(cfg, msg + mine.total_bytes))
                        exchange_payload += mine.total_bytes
                    if d == rank:
                        for src, r in metas.items():
                            got = r.clip(wa, wb)
                            if got.count and src != rank:
                                msg = DATA_HEADER + META_BYTES_PER_REGION * got.count
                                rx += float(_wire(cfg, msg + got.total_bytes))
                else:
                    # aggregator d ships each requester its pieces
                    mine = metas[rank].clip(wa, wb)
                    if mine.count and d != rank:
                        rx += float(_wire(cfg, DATA_HEADER + mine.total_bytes))
                        exchange_payload += mine.total_bytes
                    if d == rank:
                        for req, r in metas.items():
                            want = r.clip(wa, wb)
                            if want.count and req != rank:
                                tx += float(_wire(cfg, DATA_HEADER + want.total_bytes))
        pack = metas[rank].total_bytes / memcpy  # pack (write) / unpack (read)
        exchange[rank] = pack + (tx + rx) / bw + cfg.network.latency * (1 + rounds)
    # exchange_payload double-counts nothing but loops over both sides;
    # writes counted at senders, reads at requesters — each transfer once.
    exchange_bound = float(exchange.max())

    return Prediction(
        elapsed=exchange_bound + file_pred.elapsed,
        server_bound=file_pred.server_bound,
        network_bound=file_pred.network_bound,
        client_bound=file_pred.client_bound,
        serialized=False,
        n_logical_requests=file_pred.n_logical_requests,
        n_server_messages=file_pred.n_server_messages,
        moved_bytes=file_pred.moved_bytes + int(exchange_payload),
        useful_bytes=int(pattern.total_bytes),
        per_server_work=file_pred.per_server_work,
        per_client_path=file_pred.per_client_path,
        exchange_bound=exchange_bound,
    )


def crossover_point(
    xs: Sequence[float], twophase: Sequence[float], other: Sequence[float]
) -> Optional[float]:
    """First sweep coordinate where two-phase beats ``other`` (None if it
    never does)."""
    for x, a, b in zip(xs, twophase, other):
        if a < b:
            return x
    return None
