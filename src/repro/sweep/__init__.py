"""Parallel sweep engine with a content-hashed on-disk result cache.

Every figure sweep in this repository is embarrassingly parallel: each
:class:`DataPoint` is one independent, deterministic simulation whose
seed lives on its own :class:`~repro.config.ClusterConfig`.  This package
exploits exactly that:

* :mod:`repro.sweep.spec` — picklable *point specs* (pattern recipe +
  method + config) that both worker processes and the cache key off;
* :mod:`repro.sweep.engine` — :func:`run_sweep`, which fans specs out
  across ``multiprocessing`` workers (spawn context, deterministic result
  ordering regardless of completion order) and reports
  :class:`SweepStats`;
* :mod:`repro.sweep.cache` — :class:`ResultCache`, a content-addressed
  JSON store keyed on the spec, the fault plan it embeds, and a
  fingerprint of every ``.py`` file under ``repro`` (so any code edit
  invalidates automatically);
* :mod:`repro.sweep.fingerprint` — that code fingerprint.

Parallel runs are bit-identical to serial runs (each point owns its
seeded RNG; the test suite asserts equality, not approximation), and a
cached point is byte-exact: floats survive the JSON round trip via
``repr`` shortest-roundtrip encoding.  See ``docs/performance.md``.
"""

from .cache import ResultCache, default_cache_dir
from .engine import SweepStats, run_sweep
from .fingerprint import code_fingerprint
from .spec import ChaosSpec, MpiioSpec, PointSpec, canonical

__all__ = [
    "ResultCache",
    "default_cache_dir",
    "SweepStats",
    "run_sweep",
    "code_fingerprint",
    "PointSpec",
    "MpiioSpec",
    "ChaosSpec",
    "canonical",
]
